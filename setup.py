"""Shim for legacy editable installs (``python setup.py develop``).

The execution environment has no network and no ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build; this shim
lets ``setup.py develop`` provide the same behaviour. All real metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
