"""Recorder: capture workload IR traces from live ``repro.mpi`` use.

:func:`record` runs ordinary rank programs (the ``examples/`` patterns)
against a real :class:`~repro.mpi.world.Cluster`, but hands each program
a :class:`RecordingContext` proxy instead of the raw
:class:`~repro.mpi.context.RankContext`.  The proxy forwards every call
to the live context *and* appends the equivalent IR op, so the finished
run yields a :class:`~repro.workloads.ir.Workload` that replays to the
same simulated schedule.

Application writes (NumPy stores between MPI calls) are captured by
shadow-memory diffing: before every recorded op, each buffer is diffed
against its shadow copy and changed spans become ``data`` ops.  Bytes
that the *network* will write — posted-receive landing blocks and
remote-put target blocks — are excluded from the diff until the
completing wait/fence, so a trace never bakes in scheme- or
timing-dependent delivered bytes: replaying the same trace under a
different scheme regenerates them through the protocol itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.datatypes.base import Datatype
from repro.mpi.world import Cluster
from repro.workloads import ir
from repro.workloads.ir import Workload, WorkloadError, encode_data, encode_type
from repro.workloads.replay import digest_buffers, pack_typed

__all__ = ["RecordedRun", "Recorder", "RecordingContext", "UnsupportedOp",
           "record"]


class UnsupportedOp(WorkloadError):
    """The live program used API the workload IR cannot express."""


@dataclass
class RecordedRun:
    """A finished recording: the trace plus the live run's observables.

    ``digests``/``payloads``/``time_us`` describe the *recorded* run —
    the differential tests replay ``workload`` and compare against them.
    """

    workload: Workload
    time_us: float
    digests: list
    payloads: list
    values: list


class _RankState:
    """Per-rank recorder bookkeeping."""

    def __init__(self, rank: int, memory):
        self.rank = rank
        self.memory = memory
        self.ops: list[ir.Op] = []
        #: (base_addr, size, name) in allocation order
        self.bufs: list[tuple[int, int, str]] = []
        self.shadow: dict[str, np.ndarray] = {}
        self.excl: dict[str, np.ndarray] = {}
        self.req_names: dict[int, str] = {}
        #: recv request name -> (buf name, buf offset, datatype, count, addr)
        self.recv_info: dict[str, tuple] = {}
        #: live window id -> {"name", "ordinal", "buf", "offset", "size"}
        self.windows: dict[int, dict] = {}
        self.win_by_ordinal: list[dict] = []
        self.nreq = 0

    # -- buffer resolution -------------------------------------------------

    def new_buffer(self, base: int, size: int) -> str:
        name = f"b{len(self.bufs)}"
        self.bufs.append((base, size, name))
        self.shadow[name] = self.memory.view(base, size).copy()
        self.excl[name] = np.zeros(size, dtype=bool)
        return name

    def locate(self, addr: int, lo: int, hi: int, what: str) -> tuple[str, int]:
        """(buffer name, offset) of the access spanning [addr+lo, addr+hi)."""
        for base, size, name in self.bufs:
            if base <= addr < base + size:
                if addr + lo < base or addr + hi > base + size:
                    raise UnsupportedOp(
                        f"rank {self.rank}: {what} spans [{addr + lo}, "
                        f"{addr + hi}) beyond buffer {name!r} "
                        f"[{base}, {base + size})"
                    )
                return name, addr - base
        raise UnsupportedOp(
            f"rank {self.rank}: {what} at address {addr:#x} is not in any "
            "recorded buffer (allocate through the recording context)"
        )

    # -- shadow diffing ----------------------------------------------------

    def sync(self) -> None:
        """Emit ``data`` ops for app-written bytes since the last sync.

        Spans never cross an excluded byte (those belong to the network),
        but they do merge across *unchanged* non-excluded gaps — those
        bytes are application-deterministic, so re-writing them in the
        replay is a no-op.
        """
        for base, size, name in self.bufs:
            live = self.memory.view(base, size)
            shadow = self.shadow[name]
            excl = self.excl[name]
            changed = live != shadow
            if excl.any():
                changed &= ~excl
            if not changed.any():
                continue
            idx = np.flatnonzero(changed)
            run_id = np.cumsum(excl)[idx]
            splits = np.flatnonzero(np.diff(run_id)) + 1
            for seg in np.split(idx, splits):
                s = int(seg[0])
                e = int(seg[-1]) + 1
                self.ops.append(
                    ir.Data(
                        buf=name,
                        offset=s,
                        zlib64=encode_data(live[s:e].tobytes()),
                    )
                )
                shadow[s:e] = live[s:e]

    def mask_blocks(
        self, name: str, offset: int, dt: Datatype, count: int
    ) -> None:
        excl = self.excl[name]
        for off, length in dt.flatten(count).blocks():
            excl[offset + int(off): offset + int(off) + int(length)] = True

    def resync_blocks(
        self, name: str, offset: int, dt: Datatype, count: int
    ) -> None:
        """Absorb network-delivered bytes into the shadow and unmask."""
        base = next(b for b, _s, n in self.bufs if n == name)
        live = self.memory.view(base, self.shadow[name].shape[0])
        shadow = self.shadow[name]
        excl = self.excl[name]
        for off, length in dt.flatten(count).blocks():
            s = offset + int(off)
            e = s + int(length)
            shadow[s:e] = live[s:e]
            excl[s:e] = False

    def resync_region(self, name: str, offset: int, nbytes: int) -> None:
        base = next(b for b, _s, n in self.bufs if n == name)
        live = self.memory.view(base, self.shadow[name].shape[0])
        self.shadow[name][offset: offset + nbytes] = live[offset: offset + nbytes]
        self.excl[name][offset: offset + nbytes] = False

    def digest(self) -> str:
        views = [
            (name, self.memory.view(base, size))
            for base, size, name in self.bufs
        ]
        return digest_buffers(views)


class Recorder:
    """Accumulates per-rank op streams + the shared datatype table."""

    def __init__(self, collect_payloads: bool = True):
        self.states: dict[int, _RankState] = {}
        self.type_names: dict[tuple, str] = {}
        self.type_nodes: dict[str, dict] = {}
        self.digests: dict[int, list] = {}
        self.payloads: dict[int, dict] = {}
        self.collect_payloads = collect_payloads

    def state_for(self, ctx) -> _RankState:
        state = self.states.get(ctx.rank)
        if state is None:
            state = _RankState(ctx.rank, ctx.node.memory)
            self.states[ctx.rank] = state
            self.digests[ctx.rank] = []
            self.payloads[ctx.rank] = {}
        return state

    def type_name(self, dt: Datatype) -> str:
        sig = dt.signature()
        name = self.type_names.get(sig)
        if name is None:
            name = f"t{len(self.type_names)}"
            self.type_names[sig] = name
            self.type_nodes[name] = encode_type(dt)
        return name

    def wrap(self, program: Callable) -> Callable:
        """A rank program factory that records through a proxy context."""

        def wrapped(ctx):
            return program(RecordingContext(self, ctx))

        return wrapped

    def build(
        self,
        name: str,
        scheme: str = "bc-spup",
        eager_rdma: bool = False,
    ) -> Workload:
        nranks = len(self.states)
        if sorted(self.states) != list(range(nranks)):
            raise WorkloadError(
                f"recorded ranks {sorted(self.states)} are not contiguous"
            )
        return Workload(
            name=name,
            nranks=nranks,
            ranks=tuple(
                tuple(self.states[r].ops) for r in range(nranks)
            ),
            types=dict(self.type_nodes),
            scheme=scheme,
            eager_rdma=eager_rdma,
        )


class RecordingContext:
    """RankContext proxy that appends IR ops as the program runs."""

    #: attributes forwarded untouched to the live context
    _PASSTHROUGH = ("rank", "nranks", "now", "node", "sim", "cm", "cluster")

    def __init__(self, recorder: Recorder, ctx):
        self._rec = recorder
        self._ctx = ctx
        self._state = recorder.state_for(ctx)

    def __getattr__(self, attr):
        if attr in self._PASSTHROUGH:
            return getattr(self._ctx, attr)
        raise UnsupportedOp(
            f"rank {self._ctx.rank}: RankContext.{attr} is not recordable "
            "into the workload IR"
        )

    # -- helpers -----------------------------------------------------------

    def _observe(self, op_index: int) -> None:
        self._rec.digests[self._ctx.rank].append(
            (op_index, self._state.digest())
        )

    def _grab(self, key: str, addr: int, dt: Datatype, count: int) -> None:
        if self._rec.collect_payloads:
            self._rec.payloads[self._ctx.rank][key] = pack_typed(
                self._ctx.node.memory, addr, dt, count
            )

    def _typed_access(
        self, addr: int, dt: Datatype, count: int, what: str
    ) -> tuple[str, int]:
        flat = dt.flatten(count)
        if flat.nblocks:
            lo = int(flat.offsets[0])
            hi = int(flat.offsets[-1] + flat.lengths[-1])
        else:
            lo = hi = 0
        return self._state.locate(addr, lo, hi, what)

    # -- memory ------------------------------------------------------------

    def alloc(self, nbytes: int, align: int = 64) -> int:
        self._state.sync()
        addr = self._ctx.alloc(nbytes, align)
        name = self._state.new_buffer(addr, nbytes)
        self._state.ops.append(ir.Alloc(buf=name, nbytes=nbytes, align=align))
        return addr

    def alloc_array(self, shape, dtype):
        self._state.sync()
        sa = self._ctx.alloc_array(shape, dtype)
        dt = np.dtype(dtype)
        nbytes = max(int(np.prod(shape)) * dt.itemsize, 1)
        name = self._state.new_buffer(sa.addr, nbytes)
        self._state.ops.append(
            ir.Alloc(buf=name, nbytes=nbytes, align=dt.itemsize or 1)
        )
        return sa

    # -- point-to-point ----------------------------------------------------

    def isend(self, addr, datatype, count, dest, tag):
        self._state.sync()
        buf, offset = self._typed_access(addr, datatype, count, "isend")
        req_name = f"r{self._state.nreq}"
        self._state.nreq += 1
        self._state.ops.append(
            ir.Isend(
                req=req_name, buf=buf, offset=offset,
                type=self._rec.type_name(datatype), count=count,
                dest=dest, tag=tag,
            )
        )
        req = yield from self._ctx.isend(addr, datatype, count, dest, tag)
        self._state.req_names[id(req)] = req_name
        return req

    def irecv(self, addr, datatype, count, source, tag):
        self._state.sync()
        buf, offset = self._typed_access(addr, datatype, count, "irecv")
        req_name = f"r{self._state.nreq}"
        self._state.nreq += 1
        self._state.ops.append(
            ir.Irecv(
                req=req_name, buf=buf, offset=offset,
                type=self._rec.type_name(datatype), count=count,
                source=source, tag=tag,
            )
        )
        # delivered bytes belong to the network, not the application
        self._state.mask_blocks(buf, offset, datatype, count)
        self._state.recv_info[req_name] = (buf, offset, datatype, count, addr)
        req = yield from self._ctx.irecv(addr, datatype, count, source, tag)
        self._state.req_names[id(req)] = req_name
        return req

    def send(self, addr, datatype, count, dest, tag):
        self._state.sync()
        buf, offset = self._typed_access(addr, datatype, count, "send")
        self._state.ops.append(
            ir.Send(
                buf=buf, offset=offset,
                type=self._rec.type_name(datatype), count=count,
                dest=dest, tag=tag,
            )
        )
        yield from self._ctx.send(addr, datatype, count, dest, tag)
        self._observe(len(self._state.ops) - 1)

    def recv(self, addr, datatype, count, source, tag):
        self._state.sync()
        buf, offset = self._typed_access(addr, datatype, count, "recv")
        index = len(self._state.ops)
        self._state.ops.append(
            ir.Recv(
                buf=buf, offset=offset,
                type=self._rec.type_name(datatype), count=count,
                source=source, tag=tag,
            )
        )
        req = yield from self._ctx.recv(addr, datatype, count, source, tag)
        self._state.resync_blocks(buf, offset, datatype, count)
        self._grab(f"op{index}", addr, datatype, count)
        self._observe(index)
        return req

    def _complete(self, req) -> None:
        req_name = self._state.req_names.get(id(req))
        if req_name is None:
            raise UnsupportedOp(
                f"rank {self._ctx.rank}: wait on a request the recorder "
                "did not issue"
            )
        info = self._state.recv_info.pop(req_name, None)
        if info is not None:
            buf, offset, datatype, count, addr = info
            self._state.resync_blocks(buf, offset, datatype, count)
            self._grab(req_name, addr, datatype, count)

    def wait(self, req):
        self._state.sync()
        req_name = self._state.req_names.get(id(req))
        if req_name is None:
            raise UnsupportedOp(
                f"rank {self._ctx.rank}: wait on a request the recorder "
                "did not issue"
            )
        index = len(self._state.ops)
        self._state.ops.append(ir.Wait(req=req_name))
        yield from self._ctx.wait(req)
        self._complete(req)
        self._observe(index)

    def waitall(self, reqs):
        self._state.sync()
        names = []
        for req in reqs:
            req_name = self._state.req_names.get(id(req))
            if req_name is None:
                raise UnsupportedOp(
                    f"rank {self._ctx.rank}: waitall on a request the "
                    "recorder did not issue"
                )
            names.append(req_name)
        index = len(self._state.ops)
        self._state.ops.append(ir.Waitall(reqs=tuple(names)))
        yield from self._ctx.waitall(reqs)
        for req in reqs:
            self._complete(req)
        self._observe(index)

    # -- collectives -------------------------------------------------------

    def barrier(self):
        self._state.sync()
        index = len(self._state.ops)
        self._state.ops.append(ir.Barrier())
        yield from self._ctx.barrier()
        self._observe(index)

    def alltoall(self, sendaddr, sendtype, sendcount,
                 recvaddr, recvtype, recvcount):
        self._state.sync()
        n = self._ctx.nranks
        sbuf, soff = self._typed_access(
            sendaddr, sendtype, sendcount * n, "alltoall send"
        )
        rbuf, roff = self._typed_access(
            recvaddr, recvtype, recvcount * n, "alltoall recv"
        )
        index = len(self._state.ops)
        self._state.ops.append(
            ir.Alltoall(
                sendbuf=sbuf, sendoffset=soff,
                sendtype=self._rec.type_name(sendtype), sendcount=sendcount,
                recvbuf=rbuf, recvoffset=roff,
                recvtype=self._rec.type_name(recvtype), recvcount=recvcount,
            )
        )
        yield from self._ctx.alltoall(
            sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
        )
        self._state.resync_blocks(rbuf, roff, recvtype, recvcount * n)
        self._grab(f"op{index}", recvaddr, recvtype, recvcount * n)
        self._observe(index)

    def bcast(self, addr, datatype, count, root):
        self._state.sync()
        buf, offset = self._typed_access(addr, datatype, count, "bcast")
        index = len(self._state.ops)
        self._state.ops.append(
            ir.Bcast(
                buf=buf, offset=offset,
                type=self._rec.type_name(datatype), count=count, root=root,
            )
        )
        yield from self._ctx.bcast(addr, datatype, count, root)
        self._state.resync_blocks(buf, offset, datatype, count)
        self._grab(f"op{index}", addr, datatype, count)
        self._observe(index)

    def allgather(self, sendaddr, sendtype, sendcount,
                  recvaddr, recvtype, recvcount):
        self._state.sync()
        n = self._ctx.nranks
        sbuf, soff = self._typed_access(
            sendaddr, sendtype, sendcount, "allgather send"
        )
        rbuf, roff = self._typed_access(
            recvaddr, recvtype, recvcount * n, "allgather recv"
        )
        index = len(self._state.ops)
        self._state.ops.append(
            ir.Allgather(
                sendbuf=sbuf, sendoffset=soff,
                sendtype=self._rec.type_name(sendtype), sendcount=sendcount,
                recvbuf=rbuf, recvoffset=roff,
                recvtype=self._rec.type_name(recvtype), recvcount=recvcount,
            )
        )
        yield from self._ctx.allgather(
            sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
        )
        self._state.resync_blocks(rbuf, roff, recvtype, recvcount * n)
        self._grab(f"op{index}", recvaddr, recvtype, recvcount * n)
        self._observe(index)

    # -- one-sided ---------------------------------------------------------

    def win_create(self, base, size):
        self._state.sync()
        buf, offset = self._state.locate(base, 0, size, "win_create")
        name = f"w{len(self._state.win_by_ordinal)}"
        self._state.ops.append(
            ir.WinCreate(win=name, buf=buf, offset=offset, size=size)
        )
        win = yield from self._ctx.win_create(base, size)
        entry = {
            "name": name,
            "ordinal": len(self._state.win_by_ordinal),
            "buf": buf,
            "offset": offset,
            "size": size,
        }
        self._state.windows[id(win)] = entry
        self._state.win_by_ordinal.append(entry)
        return win

    def put(self, win, target_rank, origin_addr, origin_dt, origin_count=1,
            target_disp=0, target_dt=None, target_count=None):
        self._state.sync()
        entry = self._state.windows.get(id(win))
        if entry is None:
            raise UnsupportedOp(
                f"rank {self._ctx.rank}: put on a window the recorder "
                "did not create"
            )
        buf, offset = self._typed_access(
            origin_addr, origin_dt, origin_count, "put origin"
        )
        tdt = target_dt if target_dt is not None else origin_dt
        tcount = target_count if target_count is not None else origin_count
        self._state.ops.append(
            ir.Put(
                win=entry["name"], target=target_rank, buf=buf,
                offset=offset, type=self._rec.type_name(origin_dt),
                count=origin_count, target_disp=target_disp,
                target_type=(
                    self._rec.type_name(target_dt)
                    if target_dt is not None else None
                ),
                target_count=target_count,
            )
        )
        # the target's landing blocks belong to the network until its
        # next fence — mask them on the *target* rank's shadow
        target_state = self._rec.states.get(target_rank)
        if target_state is not None:
            tentry = (
                target_state.win_by_ordinal[entry["ordinal"]]
                if entry["ordinal"] < len(target_state.win_by_ordinal)
                else None
            )
            if tentry is None:
                raise UnsupportedOp(
                    f"rank {self._ctx.rank}: put targets window "
                    f"#{entry['ordinal']} missing on rank {target_rank}"
                )
            target_state.mask_blocks(
                tentry["buf"], tentry["offset"] + target_disp, tdt, tcount
            )
        yield from self._ctx.put(
            win, target_rank, origin_addr, origin_dt, origin_count,
            target_disp, target_dt, target_count,
        )

    def win_fence(self, win):
        self._state.sync()
        entry = self._state.windows.get(id(win))
        if entry is None:
            raise UnsupportedOp(
                f"rank {self._ctx.rank}: fence on a window the recorder "
                "did not create"
            )
        index = len(self._state.ops)
        self._state.ops.append(ir.Fence(win=entry["name"]))
        yield from self._ctx.win_fence(win)
        self._state.resync_region(entry["buf"], entry["offset"], entry["size"])
        if self._rec.collect_payloads:
            base = next(
                b for b, _s, n in self._state.bufs if n == entry["buf"]
            )
            self._rec.payloads[self._ctx.rank][f"op{index}"] = (
                self._ctx.node.memory.view(
                    base + entry["offset"], entry["size"]
                ).tobytes()
            )
        self._observe(index)


def record(
    programs: Sequence[Callable] | Callable,
    *,
    name: str,
    nranks: int,
    scheme: str = "bc-spup",
    eager_rdma: bool = False,
    cost_model: Optional[Any] = None,
    collect_payloads: bool = True,
) -> RecordedRun:
    """Run programs live, returning the captured trace + observables."""
    cluster = Cluster(
        nranks=nranks, scheme=scheme, eager_rdma=eager_rdma,
        cost_model=cost_model,
    )
    recorder = Recorder(collect_payloads=collect_payloads)
    if callable(programs):
        programs = [programs] * nranks
    wrapped = [recorder.wrap(p) for p in programs]
    result = cluster.run(wrapped)
    workload = recorder.build(
        name=name, scheme=scheme, eager_rdma=eager_rdma
    )
    return RecordedRun(
        workload=workload,
        time_us=result.time_us,
        digests=[recorder.digests[r] for r in range(nranks)],
        payloads=[recorder.payloads[r] for r in range(nranks)],
        values=result.values,
    )
