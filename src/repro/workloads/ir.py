"""The workload IR: typed communication programs as data.

A :class:`Workload` is a complete n-rank communication program — the
declarative analogue of the generator programs handed to
:meth:`repro.mpi.world.Cluster.run`.  Each rank owns a straight-line
sequence of :class:`Op` records (no control flow: loops are unrolled at
construction or recording time), all datatypes live in a shared
name-keyed type table, and buffers/requests/windows are referenced by
name.  In the spirit of the xdsl MPI-dialect RFC, the ops are *typed*
and *valid by construction where possible*; everything else is caught by
:func:`repro.workloads.validate.validate` with rank/op-indexed errors.

The JSON wire form round-trips byte-stably::

    text = to_json(workload)
    assert to_json(parse(text)) == text

Op vocabulary
-------------

===========  =========================================================
``alloc``    allocate a named buffer (setup-time, like ``mpi.alloc``)
``fill``     write an affine byte pattern ``(a + b*j) % mod`` into a
             buffer region (models application initialisation)
``data``     write literal bytes (zlib+base64) into a buffer region —
             emitted by the recorder for application writes it observed
``isend``/``irecv``  nonblocking point-to-point, binding a request name
``send``/``recv``    blocking point-to-point
``wait``/``waitall`` complete requests by name
``barrier``/``alltoall``/``bcast``/``allgather``  collectives
``win_create``/``put``/``fence``  one-sided (MPI-2 RMA) epoch ops
===========  =========================================================
"""

from __future__ import annotations

import base64
import json
import zlib
from dataclasses import MISSING, dataclass, fields as dataclass_fields
from typing import Any, ClassVar, Optional

from repro.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    FLOAT,
    INT,
    LONG,
    SHORT,
    Datatype,
    Primitive,
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.datatypes.constructors import Derived

__all__ = [
    "FORMAT",
    "VERSION",
    "OPS",
    "Alloc",
    "Allgather",
    "Alltoall",
    "Barrier",
    "Bcast",
    "Data",
    "Fence",
    "Fill",
    "Irecv",
    "Isend",
    "Op",
    "Put",
    "Recv",
    "Send",
    "Wait",
    "Waitall",
    "WinCreate",
    "Workload",
    "WorkloadError",
    "build_type",
    "decode_data",
    "encode_data",
    "encode_type",
    "parse",
    "to_json",
]

#: wire-format identity and version of the JSON form
FORMAT = "repro-workload"
VERSION = 1

#: primitive types by IR name
PRIMITIVES: dict[str, Primitive] = {
    "byte": BYTE,
    "char": CHAR,
    "short": SHORT,
    "int": INT,
    "long": LONG,
    "float": FLOAT,
    "double": DOUBLE,
}

_PRIMITIVE_BY_SIGNATURE = {p.signature(): n for n, p in PRIMITIVES.items()}


class WorkloadError(ValueError):
    """A malformed workload; the message names the offending location."""


# ----------------------------------------------------------------------
# datatype nodes
# ----------------------------------------------------------------------

def _require(node: dict, keys: tuple, where: str) -> list:
    """Extract ``keys`` from a type node, rejecting extras/missing."""
    missing = [k for k in keys if k not in node]
    if missing:
        raise WorkloadError(f"{where}: missing field(s) {missing} in type node")
    extra = sorted(set(node) - set(keys) - {"type"})
    if extra:
        raise WorkloadError(f"{where}: unknown field(s) {extra} in type node")
    return [node[k] for k in keys]


def build_type(node: Any, where: str = "type") -> Datatype:
    """Materialize a type node into a live :class:`Datatype`.

    Raises :class:`WorkloadError` naming ``where`` on any malformed
    node, so callers can report "rank 2 op 5: ..." style locations.
    """
    if not isinstance(node, dict):
        raise WorkloadError(f"{where}: type node must be an object, got "
                            f"{type(node).__name__}")
    kind = node.get("type")
    try:
        if kind == "primitive":
            (name,) = _require(node, ("name",), where)
            if name not in PRIMITIVES:
                raise WorkloadError(
                    f"{where}: unknown primitive {name!r}; choose from "
                    f"{', '.join(sorted(PRIMITIVES))}"
                )
            return PRIMITIVES[name]
        if kind == "contiguous":
            count, base = _require(node, ("count", "base"), where)
            return contiguous(count, build_type(base, where))
        if kind == "vector":
            count, blocklength, stride, base = _require(
                node, ("count", "blocklength", "stride", "base"), where
            )
            return vector(count, blocklength, stride, build_type(base, where))
        if kind == "hvector":
            count, blocklength, stride_bytes, base = _require(
                node, ("count", "blocklength", "stride_bytes", "base"), where
            )
            return hvector(
                count, blocklength, stride_bytes, build_type(base, where)
            )
        if kind == "indexed":
            blocklengths, displacements, base = _require(
                node, ("blocklengths", "displacements", "base"), where
            )
            return indexed(blocklengths, displacements, build_type(base, where))
        if kind == "hindexed":
            blocklengths, displacements_bytes, base = _require(
                node, ("blocklengths", "displacements_bytes", "base"), where
            )
            return hindexed(
                blocklengths, displacements_bytes, build_type(base, where)
            )
        if kind == "indexed_block":
            blocklength, displacements, base = _require(
                node, ("blocklength", "displacements", "base"), where
            )
            return indexed_block(
                blocklength, displacements, build_type(base, where)
            )
        if kind == "struct":
            blocklengths, displacements_bytes, bases = _require(
                node, ("blocklengths", "displacements_bytes", "bases"), where
            )
            return struct(
                blocklengths,
                displacements_bytes,
                [build_type(b, where) for b in bases],
            )
        if kind == "resized":
            base, lb, extent = _require(node, ("base", "lb", "extent"), where)
            return resized(build_type(base, where), lb, extent)
        if kind == "subarray":
            sizes, subsizes, starts, base, order = _require(
                node, ("sizes", "subsizes", "starts", "base", "order"), where
            )
            return subarray(
                sizes, subsizes, starts, build_type(base, where), order
            )
        if kind == "derived":
            dkind, parts, lb, ub = _require(
                node, ("kind", "parts", "lb", "ub"), where
            )
            built = []
            for part in parts:
                if not isinstance(part, (list, tuple)) or len(part) != 3:
                    raise WorkloadError(
                        f"{where}: derived part must be [disp, base, count]"
                    )
                disp, base, count = part
                built.append((disp, build_type(base, where), count))
            return Derived(dkind, built, lb=lb, ub=ub)
    except WorkloadError:
        raise
    except (TypeError, ValueError) as exc:
        raise WorkloadError(f"{where}: bad {kind!r} type node: {exc}") from exc
    raise WorkloadError(
        f"{where}: unknown type constructor {kind!r}; known: primitive, "
        "contiguous, vector, hvector, indexed, hindexed, indexed_block, "
        "struct, resized, subarray, derived"
    )


def encode_type(dt: Datatype) -> dict:
    """The exact IR node of a live datatype (the recorder's direction).

    Primitives encode by name; every :class:`Derived` — the normal form
    all constructors lower to — encodes as a generic ``derived`` node
    carrying its parts and bounds, so ``build_type(encode_type(dt))``
    has the same :meth:`~repro.datatypes.base.Datatype.signature`.
    """
    sig_name = _PRIMITIVE_BY_SIGNATURE.get(dt.signature()) if isinstance(
        dt, Primitive
    ) else None
    if sig_name is not None:
        return {"type": "primitive", "name": sig_name}
    if isinstance(dt, Derived):
        return {
            "type": "derived",
            "kind": dt.kind,
            "parts": [
                [d, encode_type(t), c] for d, t, c in dt.parts
            ],
            "lb": dt.lb,
            "ub": dt.ub,
        }
    raise WorkloadError(
        f"cannot encode datatype {dt!r} ({type(dt).__name__}) into the IR"
    )


# ----------------------------------------------------------------------
# data payload helpers
# ----------------------------------------------------------------------

def encode_data(raw: bytes) -> str:
    """Literal bytes -> the ``data`` op's zlib+base64 wire form."""
    return base64.b64encode(zlib.compress(raw, 6)).decode("ascii")


def decode_data(text: str, where: str = "data") -> bytes:
    try:
        return zlib.decompress(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise WorkloadError(f"{where}: undecodable data payload: {exc}") from exc


# ----------------------------------------------------------------------
# ops
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Op:
    """Base class: one straight-line step of a rank program."""

    OP: ClassVar[str] = ""

    def to_dict(self) -> dict:
        out: dict[str, Any] = {"op": self.OP}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out


@dataclass(frozen=True)
class Alloc(Op):
    OP: ClassVar[str] = "alloc"
    buf: str
    nbytes: int
    align: int = 64


@dataclass(frozen=True)
class Fill(Op):
    """Byte ``offset + j`` of the region becomes ``(a + b*j) % mod``."""

    OP: ClassVar[str] = "fill"
    buf: str
    offset: int
    nbytes: int
    a: int
    b: int
    mod: int = 251


@dataclass(frozen=True)
class Data(Op):
    """Literal application bytes at ``offset`` (recorder-captured)."""

    OP: ClassVar[str] = "data"
    buf: str
    offset: int
    zlib64: str


@dataclass(frozen=True)
class Isend(Op):
    OP: ClassVar[str] = "isend"
    req: str
    buf: str
    offset: int
    type: str
    count: int
    dest: int
    tag: int


@dataclass(frozen=True)
class Irecv(Op):
    OP: ClassVar[str] = "irecv"
    req: str
    buf: str
    offset: int
    type: str
    count: int
    source: int
    tag: int


@dataclass(frozen=True)
class Send(Op):
    OP: ClassVar[str] = "send"
    buf: str
    offset: int
    type: str
    count: int
    dest: int
    tag: int


@dataclass(frozen=True)
class Recv(Op):
    OP: ClassVar[str] = "recv"
    buf: str
    offset: int
    type: str
    count: int
    source: int
    tag: int


@dataclass(frozen=True)
class Wait(Op):
    OP: ClassVar[str] = "wait"
    req: str


@dataclass(frozen=True)
class Waitall(Op):
    OP: ClassVar[str] = "waitall"
    reqs: tuple


@dataclass(frozen=True)
class Barrier(Op):
    OP: ClassVar[str] = "barrier"


@dataclass(frozen=True)
class Alltoall(Op):
    OP: ClassVar[str] = "alltoall"
    sendbuf: str
    sendoffset: int
    sendtype: str
    sendcount: int
    recvbuf: str
    recvoffset: int
    recvtype: str
    recvcount: int


@dataclass(frozen=True)
class Bcast(Op):
    OP: ClassVar[str] = "bcast"
    buf: str
    offset: int
    type: str
    count: int
    root: int


@dataclass(frozen=True)
class Allgather(Op):
    OP: ClassVar[str] = "allgather"
    sendbuf: str
    sendoffset: int
    sendtype: str
    sendcount: int
    recvbuf: str
    recvoffset: int
    recvtype: str
    recvcount: int


@dataclass(frozen=True)
class WinCreate(Op):
    OP: ClassVar[str] = "win_create"
    win: str
    buf: str
    offset: int
    size: int


@dataclass(frozen=True)
class Put(Op):
    OP: ClassVar[str] = "put"
    win: str
    target: int
    buf: str
    offset: int
    type: str
    count: int
    target_disp: int
    target_type: Optional[str] = None
    target_count: Optional[int] = None


@dataclass(frozen=True)
class Fence(Op):
    OP: ClassVar[str] = "fence"
    win: str


#: op name -> dataclass, the decode dispatch table
OPS: dict[str, type[Op]] = {
    cls.OP: cls
    for cls in (
        Alloc, Fill, Data, Isend, Irecv, Send, Recv, Wait, Waitall,
        Barrier, Alltoall, Bcast, Allgather, WinCreate, Put, Fence,
    )
}

#: ops whose completion is an observation point (digest + payload capture)
OBSERVE_OPS = frozenset(
    ("wait", "waitall", "send", "recv", "barrier", "alltoall", "bcast",
     "allgather", "fence")
)


def _decode_op(entry: Any, where: str) -> Op:
    if not isinstance(entry, dict):
        raise WorkloadError(f"{where}: op must be an object, got "
                            f"{type(entry).__name__}")
    name = entry.get("op")
    cls = OPS.get(name)
    if cls is None:
        raise WorkloadError(
            f"{where}: unknown op {name!r}; known ops: "
            f"{', '.join(sorted(OPS))}"
        )
    spec = {f.name: f for f in dataclass_fields(cls)}
    extra = sorted(set(entry) - set(spec) - {"op"})
    if extra:
        raise WorkloadError(
            f"{where}: unknown field(s) {extra} for op {name!r}"
        )
    kwargs: dict[str, Any] = {}
    for fname in spec:
        if fname in entry:
            value = entry[fname]
            if isinstance(value, list):
                value = tuple(value)
            kwargs[fname] = value
    missing = [
        f.name
        for f in dataclass_fields(cls)
        if f.name not in kwargs and _field_required(f)
    ]
    if missing:
        raise WorkloadError(
            f"{where}: missing field(s) {missing} for op {name!r}"
        )
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise WorkloadError(f"{where}: bad op {name!r}: {exc}") from exc


def _field_required(f: Any) -> bool:
    return f.default is MISSING and f.default_factory is MISSING


# ----------------------------------------------------------------------
# workload
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Workload:
    """A complete n-rank communication program plus its run parameters."""

    name: str
    nranks: int
    ranks: tuple  # tuple[tuple[Op, ...], ...]
    types: dict  # name -> type node (plain JSON-able dicts)
    scheme: str = "bc-spup"
    eager_rdma: bool = False

    def built_types(self) -> dict:
        """``{name: Datatype}`` — fresh objects, built once per call."""
        return {
            name: build_type(node, where=f"types[{name}]")
            for name, node in self.types.items()
        }


def to_json(workload: Workload) -> str:
    """Canonical JSON wire form (byte-stable: sorted keys, 2-space
    indent, trailing newline)."""
    doc = {
        "format": FORMAT,
        "version": VERSION,
        "name": workload.name,
        "nranks": workload.nranks,
        "cluster": {
            "scheme": workload.scheme,
            "eager_rdma": workload.eager_rdma,
        },
        "types": workload.types,
        "ranks": [
            [op.to_dict() for op in rank_ops] for rank_ops in workload.ranks
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def parse(text: str) -> Workload:
    """Parse the JSON wire form, with actionable structural errors.

    Structural validation only (shapes, known ops/fields); semantic
    validation (buffer bounds, request liveness, collective symmetry) is
    :func:`repro.workloads.validate.validate`.
    """
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise WorkloadError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise WorkloadError("workload document must be a JSON object")
    if doc.get("format") != FORMAT:
        raise WorkloadError(
            f"not a {FORMAT} document (format={doc.get('format')!r})"
        )
    if doc.get("version") != VERSION:
        raise WorkloadError(
            f"unsupported workload version {doc.get('version')!r} "
            f"(this build reads version {VERSION})"
        )
    known = {"format", "version", "name", "nranks", "cluster", "types", "ranks"}
    extra = sorted(set(doc) - known)
    if extra:
        raise WorkloadError(f"unknown top-level field(s) {extra}")
    name = doc.get("name")
    nranks = doc.get("nranks")
    if not isinstance(name, str) or not name:
        raise WorkloadError("'name' must be a non-empty string")
    if not isinstance(nranks, int) or nranks < 1:
        raise WorkloadError("'nranks' must be a positive integer")
    cluster = doc.get("cluster", {})
    if not isinstance(cluster, dict):
        raise WorkloadError("'cluster' must be an object")
    extra = sorted(set(cluster) - {"scheme", "eager_rdma"})
    if extra:
        raise WorkloadError(f"unknown cluster field(s) {extra}")
    scheme = cluster.get("scheme", "bc-spup")
    eager_rdma = bool(cluster.get("eager_rdma", False))
    types = doc.get("types", {})
    if not isinstance(types, dict):
        raise WorkloadError("'types' must be an object")
    ranks_doc = doc.get("ranks")
    if not isinstance(ranks_doc, list) or len(ranks_doc) != nranks:
        raise WorkloadError(
            f"'ranks' must be a list of {nranks} op lists "
            f"(got {len(ranks_doc) if isinstance(ranks_doc, list) else 'non-list'})"
        )
    ranks = []
    for r, rank_ops in enumerate(ranks_doc):
        if not isinstance(rank_ops, list):
            raise WorkloadError(f"rank {r}: op list must be a list")
        ops = tuple(
            _decode_op(entry, where=f"rank {r} op {i}")
            for i, entry in enumerate(rank_ops)
        )
        ranks.append(ops)
    return Workload(
        name=name,
        nranks=nranks,
        ranks=tuple(ranks),
        types=types,
        scheme=scheme,
        eager_rdma=eager_rdma,
    )
