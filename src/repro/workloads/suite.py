"""Usage-weighted scenario suite over the checked-in workload library.

Sweeps every library workload across datatype schemes and cost-model
presets through the cached pool runner (``repro.bench.parallel``), then
appends one ``scenario`` record to the run ledger so ``obs trends``
charts per-workload and weighted-aggregate trajectories alongside the
figure sweeps.

The weights approximate how often each communication shape occurs in
real MPI applications, following the large-scale static-usage surveys
of open-source HPC codes (Laguna et al., "A large-scale study of MPI
usage in open-source HPC applications", SC'19): nearest-neighbour
point-to-point halo exchange dominates, irregular point-to-point (here:
particle migration with fresh datatypes) is next, dense collectives
(alltoall transpose) follow, and one-sided RMA trails well behind.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.bench.parallel import Cell, run_cells
from repro.schemes import SCHEME_NAMES
from repro.workloads.library import library_names, load_workload

__all__ = [
    "DEFAULT_PRESETS",
    "SUITE_WEIGHTS",
    "evaluate_workload_cell",
    "run_suite",
    "suite_cells",
]

#: usage weight per library workload (see module docstring for the
#: provenance); unknown/new library entries default to 0.05
SUITE_WEIGHTS = {
    "halo_exchange_2d": 0.40,
    "particle_exchange": 0.25,
    "matrix_transpose_alltoall": 0.20,
    "one_sided_halo": 0.15,
}
_DEFAULT_WEIGHT = 0.05

#: cost-model presets the suite sweeps by default: the paper's platform
#: plus one modern fabric
DEFAULT_PRESETS = ("mellanox_2003", "hdr_ib_2020")


def evaluate_workload_cell(figure: str, series: str, extra: dict) -> float:
    """Replay one ``workload:<name>`` cell; returns simulated us.

    ``figure`` is ``workload:<library name>``, ``series`` is the scheme
    (a workload is a single point, so there is no x axis), and ``extra``
    may carry a cost-model ``preset`` name, resolved here exactly like
    the figure cells do.
    """
    name = figure.split(":", 1)[1]
    workload = load_workload(name)
    cost_model = None
    preset = extra.get("preset")
    if preset:
        from repro.ib.costmodel import get_preset

        cost_model = get_preset(preset)
    from repro.workloads.replay import replay

    return replay(workload, scheme=series, cost_model=cost_model).time_us


def suite_cells(
    workloads: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    presets: Optional[Sequence[str]] = None,
) -> list:
    """The full cell grid of one suite run, in canonical order."""
    names = list(workloads) if workloads is not None else list(library_names())
    schemes = list(schemes) if schemes is not None else list(SCHEME_NAMES)
    presets = list(presets) if presets is not None else list(DEFAULT_PRESETS)
    return [
        Cell(f"workload:{name}", scheme, 0, (("preset", preset),))
        for name in names
        for preset in presets
        for scheme in schemes
    ]


def run_suite(
    workloads: Optional[Sequence[str]] = None,
    schemes: Optional[Sequence[str]] = None,
    presets: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    ledger: bool = True,
) -> dict:
    """Run the scenario suite; returns ``{metric key: simulated us}``.

    Metric keys are ``scenario/<workload>/<scheme>/<preset>`` per cell
    plus ``scenario/weighted/<scheme>/<preset>`` usage-weighted
    aggregates.  With ``ledger=True`` the metrics are appended to the
    run ledger as one ``scenario`` record.
    """
    cells = suite_cells(workloads, schemes, presets)
    results = run_cells(cells, jobs=jobs)

    metrics: dict[str, float] = {}
    weighted: dict[tuple, float] = {}
    for cell in cells:
        name = cell.figure.split(":", 1)[1]
        preset = dict(cell.extra)["preset"]
        value = results[cell]
        metrics[f"scenario/{name}/{cell.series}/{preset}"] = value
        key = (cell.series, preset)
        weight = SUITE_WEIGHTS.get(name, _DEFAULT_WEIGHT)
        weighted[key] = weighted.get(key, 0.0) + weight * value
    for (scheme, preset), value in sorted(weighted.items()):
        metrics[f"scenario/weighted/{scheme}/{preset}"] = round(value, 3)

    if ledger:
        from repro.obs.ledger import append_record, make_record

        record = make_record(
            "scenario",
            timestamp=time.time(),
            status="pass",
            metrics={
                key: {"value": value, "unit": "us", "better": "lower"}
                for key, value in sorted(metrics.items())
            },
        )
        append_record(record)
    return metrics
