"""Checked-in workload traces recorded from the ``examples/`` patterns.

The library is the set of ``.json`` files next to this module (shipped
as package data).  Each file is a byte-stable serialization of one
recorded pattern run — loading and re-serializing it reproduces the file
exactly, which keeps the traces diff-reviewable and lets the sweep cache
key on content (:func:`workload_spec`).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from pathlib import Path

from repro.workloads.ir import Workload, WorkloadError, parse

__all__ = [
    "library_dir",
    "library_names",
    "load_workload",
    "workload_spec",
]


def library_dir() -> Path:
    """Directory holding the checked-in workload JSON files."""
    return Path(__file__).resolve().parent / "library"


def library_names() -> tuple:
    """Names of the checked-in workloads, sorted."""
    return tuple(sorted(p.stem for p in library_dir().glob("*.json")))


@lru_cache(maxsize=None)
def _load(name: str) -> tuple:
    path = library_dir() / f"{name}.json"
    if not path.is_file():
        raise WorkloadError(
            f"unknown library workload {name!r}; "
            f"choose from {', '.join(library_names()) or '(empty library)'}"
        )
    text = path.read_text()
    return parse(text), hashlib.sha256(text.encode()).hexdigest()


def load_workload(name: str) -> Workload:
    """Load a checked-in workload by name (no ``.json`` suffix)."""
    return _load(name)[0]


def workload_spec(name: str) -> str:
    """``name@sha12`` content identity of a library workload.

    Part of the sweep cache key for ``workload:`` cells, so re-recording
    a trace invalidates exactly that workload's cached measurements.
    """
    return f"{name}@{_load(name)[1][:12]}"
