"""CLI: ``python -m repro.workloads {list,validate,replay,record,run,fuzz}``.

``list`` prints the checked-in library with per-workload summaries.
``validate`` checks workload JSON files and reports rank/op-indexed
errors.  ``replay`` lowers a workload onto the simulator (any scheme or
cost-model preset) and prints the simulated time.  ``record`` captures
one of the example patterns into a fresh trace JSON.  ``run`` executes
the usage-weighted scenario suite through the cached pool runner and
appends a ``scenario`` ledger record.  ``fuzz`` runs the time-boxed
grammar fuzzer and writes any counterexample as a workload artifact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.schemes import SCHEME_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Workload IR: trace replay, fuzzing, scenario suite",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="checked-in workload library")

    val = sub.add_parser("validate", help="validate workload JSON files")
    val.add_argument("files", nargs="+", metavar="FILE")

    rep = sub.add_parser("replay", help="replay a workload JSON file")
    rep.add_argument("file", metavar="FILE")
    rep.add_argument(
        "--scheme", default=None, choices=SCHEME_NAMES,
        help="override the workload's datatype scheme",
    )
    rep.add_argument(
        "--preset", default=None,
        help="cost-model preset (default: paper's mellanox_2003)",
    )

    rec = sub.add_parser("record", help="record an example pattern")
    rec.add_argument("pattern", metavar="PATTERN")
    rec.add_argument(
        "--scheme", default="bc-spup", choices=SCHEME_NAMES,
        help="scheme to record under (default: bc-spup)",
    )
    rec.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="output JSON path (default: <pattern>.json)",
    )

    run = sub.add_parser(
        "run", help="usage-weighted scenario suite -> ledger"
    )
    run.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="library workloads (default: all)",
    )
    run.add_argument(
        "--schemes", nargs="+", default=None, choices=SCHEME_NAMES,
        help="schemes to sweep (default: all seven)",
    )
    run.add_argument(
        "--presets", nargs="+", default=None, metavar="PRESET",
        help="cost-model presets (default: mellanox_2003 hdr_ib_2020)",
    )
    run.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="worker processes (default: auto)",
    )
    run.add_argument(
        "--no-ledger", action="store_true",
        help="print metrics without appending a ledger record",
    )

    fuzz = sub.add_parser("fuzz", help="time-boxed grammar fuzzing")
    fuzz.add_argument(
        "--seconds", type=float, default=60.0,
        help="time budget (default: 60)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="base seed; chunk k uses seed+k (default: 0)",
    )
    fuzz.add_argument(
        "--artifact", default=None, metavar="DIR",
        help="directory for counterexample workload JSON",
    )
    return parser


def _cmd_list() -> int:
    from repro.workloads.library import library_names, load_workload
    from repro.workloads.suite import SUITE_WEIGHTS, _DEFAULT_WEIGHT

    names = library_names()
    if not names:
        print("library is empty")
        return 0
    for name in names:
        wl = load_workload(name)
        ops = sum(len(r) for r in wl.ranks)
        weight = SUITE_WEIGHTS.get(name, _DEFAULT_WEIGHT)
        print(
            f"{name:28s} nranks={wl.nranks} ops={ops:5d} "
            f"types={len(wl.types)} weight={weight:.2f}"
        )
    return 0


def _cmd_validate(files) -> int:
    from repro.workloads.validate import validate_text

    bad = 0
    for path in files:
        try:
            validate_text(Path(path).read_text())
        except Exception as exc:  # noqa: BLE001 - report and continue
            print(f"{path}: FAIL: {exc}")
            bad += 1
        else:
            print(f"{path}: ok")
    return 1 if bad else 0


def _cmd_replay(args) -> int:
    from repro.workloads import parse, replay

    workload = parse(Path(args.file).read_text())
    cost_model = None
    if args.preset:
        from repro.ib.costmodel import get_preset

        cost_model = get_preset(args.preset)
    result = replay(workload, scheme=args.scheme, cost_model=cost_model)
    print(
        f"{workload.name}: scheme={result.scheme} "
        f"time={result.time_us:.1f} us"
    )
    return 0


def _cmd_record(args) -> int:
    from repro.workloads import to_json
    from repro.workloads.patterns import pattern_names, record_pattern

    if args.pattern not in pattern_names():
        print(
            f"unknown pattern {args.pattern!r}; "
            f"choose from {', '.join(pattern_names())}"
        )
        return 2
    rec = record_pattern(args.pattern, scheme=args.scheme)
    out = Path(args.output or f"{args.pattern}.json")
    out.write_text(to_json(rec.workload))
    print(f"{out}: recorded {args.pattern} ({rec.time_us:.1f} us simulated)")
    return 0


def _cmd_run(args) -> int:
    from repro.workloads.suite import run_suite

    metrics = run_suite(
        workloads=args.workloads,
        schemes=args.schemes,
        presets=args.presets,
        jobs=args.jobs,
        ledger=not args.no_ledger,
    )
    width = max(len(k) for k in metrics)
    for key in sorted(metrics):
        print(f"{key:{width}s}  {metrics[key]:12.1f} us")
    if not args.no_ledger:
        from repro.obs.ledger import ledger_path

        print(f"scenario record appended to {ledger_path()}")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.workloads.fuzz import fuzz_time_boxed

    report = fuzz_time_boxed(
        args.seconds, seed=args.seed, artifact_dir=args.artifact
    )
    print(
        f"fuzz: {report.examples} examples in {report.chunks} chunks "
        f"({report.elapsed:.1f} s)"
    )
    if report.ok:
        print("no counterexample found")
        return 0
    print(f"COUNTEREXAMPLE: {report.failure['error']}")
    if report.failure["path"]:
        print(f"workload written to {report.failure['path']}")
    return 1


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "validate":
        return _cmd_validate(args.files)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "run":
        return _cmd_run(args)
    return _cmd_fuzz(args)


if __name__ == "__main__":
    sys.exit(main())
