"""Hypothesis grammar over the workload IR + the protocol oracle.

The grammar (:func:`workloads`) generates programs that are *valid by
construction* — every message has both endpoints, request names are
fresh, buffers are sized from the datatype's true span, per-stream
receive posts keep FIFO order — so all fuzz effort goes into semantic
corner cases: eager/rendezvous straddle within one (src, dst, tag)
stream, tag collisions, posting order (expected vs unexpected arrival),
nonblocking overlap, and datatype nesting (contiguous / hvector /
hindexed / struct over BYTE, nested up to three deep).

The oracle (:func:`expected_payloads`) is *static*: it computes each
receive's expected wire bytes from the IR alone (abstract memory from
``fill``/``data`` ops, per-stream FIFO matching, packed bytes via the
send type's flatten).  :func:`check_workload` replays a program and
asserts every delivered payload against it — the invariant that re-finds
the PR 2 matching-order hole when the ``BREAK_MATCHING_ORDER`` mutation
guard reverts the fix.

:func:`fuzz_time_boxed` drives seeded Hypothesis runs until a deadline,
writing any (shrunk) counterexample as a workload JSON artifact — CI
uploads it and it graduates into ``tests/workloads/corpus/``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from hypothesis import HealthCheck, given
from hypothesis import seed as hypothesis_seed
from hypothesis import settings as hypothesis_settings
from hypothesis import strategies as st

from repro.schemes import SCHEME_NAMES
from repro.workloads import ir
from repro.workloads.ir import Workload, build_type
from repro.workloads.replay import fill_pattern, replay

__all__ = [
    "FuzzReport",
    "MESSAGE_SIZES",
    "check_workload",
    "expected_payloads",
    "fuzz_time_boxed",
    "workloads",
]

_BYTE = {"type": "primitive", "name": "byte"}

#: payload sizes straddling the 8192 B eager threshold (mellanox_2003)
MESSAGE_SIZES = (1, 64, 512, 4096, 8192, 8193, 12288, 20000)

#: eager/rendezvous pair for the biased straddle stream
_STRADDLE_SMALL = 4096
_STRADDLE_LARGE = 12288


# ----------------------------------------------------------------------
# datatype grammar: nested nodes over BYTE with an exact total size
# ----------------------------------------------------------------------

def _hi(node: dict) -> int:
    """Last occupied byte (from offset 0) of one element of ``node``.

    The packing footprint, not the extent: a node whose lb > 0 has
    extent < span, and using extent for strides/cursors would let
    replicas overlap.
    """
    flat = build_type(node).flatten(1)
    if not flat.nblocks:
        return 1
    return int(flat.offsets[-1] + flat.lengths[-1])


@st.composite
def _type_node(draw, size: int, depth: int):
    """A type node of exactly ``size`` data bytes, nested <= ``depth``."""
    if size < 2 or depth <= 0:
        return {"type": "contiguous", "count": size, "base": _BYTE}
    kind = draw(st.sampled_from(
        ("contiguous", "hvector", "hindexed", "struct")
    ))
    if kind == "contiguous":
        return {"type": "contiguous", "count": size, "base": _BYTE}
    if kind == "hvector":
        nblocks = draw(
            st.sampled_from([n for n in (2, 3, 4, 8) if size % n == 0]
                            or [1])
        )
        block = size // nblocks
        inner = draw(_type_node(block, depth - 1))
        gap = draw(st.integers(min_value=0, max_value=64))
        return {
            "type": "hvector",
            "count": nblocks,
            "blocklength": 1,
            "stride_bytes": _hi(inner) + gap,
            "base": inner,
        }
    if kind == "hindexed":
        nblocks = draw(st.integers(min_value=1, max_value=min(4, size)))
        cuts = sorted(draw(st.sets(
            st.integers(min_value=1, max_value=size - 1),
            min_size=nblocks - 1, max_size=nblocks - 1,
        ))) if nblocks > 1 else []
        lengths = [
            b - a for a, b in zip([0] + cuts, cuts + [size])
        ]
        disps = []
        cursor = 0
        for length in lengths:
            cursor += draw(st.integers(min_value=0, max_value=32))
            disps.append(cursor)
            cursor += length
        return {
            "type": "hindexed",
            "blocklengths": lengths,
            "displacements_bytes": disps,
            "base": _BYTE,
        }
    # struct of nested parts
    nparts = draw(st.integers(min_value=1, max_value=3))
    cuts = sorted(draw(st.sets(
        st.integers(min_value=1, max_value=size - 1),
        min_size=nparts - 1, max_size=nparts - 1,
    ))) if nparts > 1 else []
    sizes = [b - a for a, b in zip([0] + cuts, cuts + [size])]
    bases = []
    disps = []
    cursor = 0
    for part in sizes:
        base = draw(_type_node(part, depth - 1))
        cursor += draw(st.integers(min_value=0, max_value=32))
        bases.append(base)
        disps.append(cursor)
        cursor += _hi(base)
    return {
        "type": "struct",
        "blocklengths": [1] * len(bases),
        "displacements_bytes": disps,
        "bases": bases,
    }


def _span_bytes(node: dict) -> int:
    """Buffer bytes needed to hold one element of ``node`` at offset 0."""
    return _hi(node)


# ----------------------------------------------------------------------
# program grammar
# ----------------------------------------------------------------------

def _stream_shuffle(draw, items, stream_of):
    """A permutation of ``items`` preserving per-stream relative order."""
    if len(items) < 2:
        return list(items)
    perm = draw(st.permutations(range(len(items))))
    queues: dict[Any, list] = {}
    for item in items:
        queues.setdefault(stream_of(item), []).append(item)
    iters = {key: iter(q) for key, q in queues.items()}
    return [next(iters[stream_of(items[i])]) for i in perm]


@st.composite
def workloads(draw) -> Workload:
    """A well-formed point-to-point workload program."""
    nranks = draw(st.integers(min_value=2, max_value=4))
    scheme = draw(st.sampled_from(SCHEME_NAMES))
    eager_rdma = draw(st.booleans())

    # messages: (src, dst, tag, type-node); straddle pairs biased in so
    # eager and rendezvous traffic share a (src, dst, tag) stream
    messages: list[dict] = []
    nmsg = draw(st.integers(min_value=1, max_value=4))
    for _ in range(nmsg):
        src = draw(st.integers(min_value=0, max_value=nranks - 1))
        dst = draw(
            st.integers(min_value=0, max_value=nranks - 2)
            .map(lambda v, s=src: v if v < s else v + 1)
        )
        tag = draw(st.integers(min_value=0, max_value=2))
        size = draw(st.sampled_from(MESSAGE_SIZES))
        node = draw(_type_node(size, depth=2))
        messages.append({"src": src, "dst": dst, "tag": tag, "node": node})
    if draw(st.booleans()):
        src = draw(st.integers(min_value=0, max_value=nranks - 1))
        dst = (src + 1) % nranks
        tag = draw(st.integers(min_value=0, max_value=2))
        for size in (_STRADDLE_SMALL, _STRADDLE_LARGE):
            messages.append({
                "src": src, "dst": dst, "tag": tag,
                "node": draw(_type_node(size, depth=1)),
            })

    start_barrier = draw(st.booleans())
    end_barrier = draw(st.booleans())

    # register type nodes in a shared table (dedup by JSON identity)
    types: dict[str, dict] = {}
    node_names: dict[str, str] = {}
    import json as _json

    def type_name(node: dict) -> str:
        key = _json.dumps(node, sort_keys=True)
        name = node_names.get(key)
        if name is None:
            name = f"t{len(types)}"
            node_names[key] = name
            types[name] = node
        return name

    for i, msg in enumerate(messages):
        msg["index"] = i
        msg["type"] = type_name(msg["node"])
        msg["span"] = _span_bytes(msg["node"])

    ranks: list[tuple] = []
    for rank in range(nranks):
        outgoing = [m for m in messages if m["src"] == rank]
        incoming = [m for m in messages if m["dst"] == rank]
        ops: list[ir.Op] = []
        for m in outgoing:
            buf = f"s{m['index']}"
            ops.append(ir.Alloc(buf=buf, nbytes=m["span"]))
            ops.append(ir.Fill(
                buf=buf, offset=0, nbytes=m["span"],
                a=(m["index"] * 37 + 11) % 251, b=1, mod=251,
            ))
        for m in incoming:
            ops.append(ir.Alloc(buf=f"r{m['index']}", nbytes=m["span"]))
        if start_barrier:
            ops.append(ir.Barrier())
        # receive posts keep per-(src, tag) stream FIFO order; send posts
        # keep per-(dst, tag) order; the merge order is drawn, so sends
        # can race ahead of the matching posts (unexpected-queue path)
        recv_seq = _stream_shuffle(
            draw, incoming, lambda m: (m["src"], m["tag"])
        )
        send_seq = _stream_shuffle(
            draw, outgoing, lambda m: (m["dst"], m["tag"])
        )
        recv_ops = [
            ir.Irecv(
                req=f"rr{m['index']}", buf=f"r{m['index']}", offset=0,
                type=m["type"], count=1, source=m["src"], tag=m["tag"],
            )
            for m in recv_seq
        ]
        send_ops = [
            ir.Isend(
                req=f"sr{m['index']}", buf=f"s{m['index']}", offset=0,
                type=m["type"], count=1, dest=m["dst"], tag=m["tag"],
            )
            for m in send_seq
        ]
        merged: list[ir.Op] = []
        ri = si = 0
        while ri < len(recv_ops) or si < len(send_ops):
            take_recv = ri < len(recv_ops) and (
                si >= len(send_ops) or draw(st.booleans())
            )
            if take_recv:
                merged.append(recv_ops[ri])
                ri += 1
            else:
                merged.append(send_ops[si])
                si += 1
        ops.extend(merged)
        req_names = [
            op.req for op in merged if isinstance(op, (ir.Isend, ir.Irecv))
        ]
        if req_names:
            if draw(st.booleans()):
                ops.append(ir.Waitall(reqs=tuple(req_names)))
            else:
                for req in _stream_shuffle(draw, req_names, lambda _r: 0):
                    ops.append(ir.Wait(req=req))
        if end_barrier:
            ops.append(ir.Barrier())
        ranks.append(tuple(ops))

    return Workload(
        name="fuzz",
        nranks=nranks,
        ranks=tuple(ranks),
        types=types,
        scheme=scheme,
        eager_rdma=eager_rdma,
    )


# ----------------------------------------------------------------------
# static oracle
# ----------------------------------------------------------------------

def expected_payloads(workload: Workload) -> dict:
    """``{(rank, request/op key): wire bytes | None}`` per receive.

    Computed from the IR alone: abstract per-buffer memory is built from
    ``alloc``/``fill``/``data`` ops, sends pack through their type's
    flatten at the point of posting, and the k-th receive of a
    (src, dst, tag) stream expects the k-th send of that stream (MPI
    non-overtaking).  ``None`` marks a receive whose bytes cannot be
    known statically (its sender read from a network-written buffer).
    """
    import numpy as np

    types = workload.built_types()
    streams_send: dict[tuple, list] = {}
    streams_recv: dict[tuple, list] = {}
    for rank, rank_ops in enumerate(workload.ranks):
        memory: dict[str, Any] = {}
        tainted: set[str] = set()
        for i, op in enumerate(rank_ops):
            if isinstance(op, ir.Alloc):
                memory[op.buf] = np.zeros(op.nbytes, dtype=np.uint8)
            elif isinstance(op, ir.Fill):
                memory[op.buf][op.offset: op.offset + op.nbytes] = (
                    fill_pattern(op.nbytes, op.a, op.b, op.mod)
                )
            elif isinstance(op, ir.Data):
                raw = ir.decode_data(op.zlib64)
                memory[op.buf][op.offset: op.offset + len(raw)] = (
                    np.frombuffer(raw, dtype=np.uint8)
                )
            elif isinstance(op, (ir.Isend, ir.Send)):
                if op.buf in tainted:
                    payload = None
                else:
                    flat = types[op.type].flatten(op.count)
                    buf = memory[op.buf]
                    payload = b"".join(
                        buf[op.offset + int(o): op.offset + int(o) + int(n)]
                        .tobytes()
                        for o, n in flat.blocks()
                    )
                streams_send.setdefault(
                    (rank, op.dest, op.tag), []
                ).append(payload)
            elif isinstance(op, (ir.Irecv, ir.Recv)):
                key = op.req if isinstance(op, ir.Irecv) else f"op{i}"
                streams_recv.setdefault(
                    (op.source, rank, op.tag), []
                ).append((rank, key))
                tainted.add(op.buf)
            elif isinstance(
                op, (ir.Alltoall, ir.Allgather, ir.Bcast)
            ):
                # collective-delivered bytes are protocol-level too, but
                # the payload oracle only covers point-to-point streams
                for buf in {
                    getattr(op, "recvbuf", None), getattr(op, "buf", None)
                }:
                    if buf is not None:
                        tainted.add(buf)
            elif isinstance(op, ir.WinCreate):
                tainted.add(op.buf)
    out: dict[tuple, Optional[bytes]] = {}
    for stream, recvs in streams_recv.items():
        sends = streams_send.get(stream, [])
        for (rank, key), payload in zip(recvs, sends):
            out[(rank, key)] = payload
    return out


def check_workload(
    workload: Workload,
    *,
    scheme: Optional[str] = None,
    eager_rdma: Optional[bool] = None,
) -> None:
    """Replay and assert every receive's payload against the oracle."""
    expected = expected_payloads(workload)
    result = replay(
        workload, scheme=scheme, eager_rdma=eager_rdma,
        collect_payloads=True,
    )
    for (rank, key), payload in sorted(expected.items()):
        if payload is None:
            continue
        got = result.payloads[rank].get(key)
        assert got == payload, (
            f"rank {rank} receive {key!r}: delivered payload differs from "
            f"the matched send ({len(got) if got is not None else 'no'} "
            f"bytes vs {len(payload)} expected) — matching order violated?"
        )


# ----------------------------------------------------------------------
# time-boxed fuzzing
# ----------------------------------------------------------------------

@dataclass
class FuzzReport:
    """Outcome of one :func:`fuzz_time_boxed` session."""

    chunks: int
    examples: int
    elapsed: float
    #: None when every example passed, else details of the (shrunk)
    #: counterexample: {"workload": json text, "error": str, "path": ...}
    failure: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def fuzz_time_boxed(
    seconds: float,
    *,
    seed: int = 0,
    artifact_dir: Optional[str] = None,
    chunk_examples: int = 25,
) -> FuzzReport:
    """Run seeded fuzz chunks until the deadline or a counterexample.

    Deterministic for a given ``seed``: chunk ``k`` runs Hypothesis with
    seed ``seed + k``, so CI reruns reproduce the exact exploration (the
    time box only decides how many chunks fit).  On failure the shrunk
    counterexample is serialized to ``artifact_dir`` (when given) and
    returned in the report.
    """
    deadline = time.monotonic() + seconds
    start = time.monotonic()
    chunk = 0
    examples = 0
    while time.monotonic() < deadline:
        state: dict = {}

        @hypothesis_seed(seed + chunk)
        @hypothesis_settings(
            max_examples=chunk_examples,
            database=None,
            deadline=None,
            derandomize=False,
            report_multiple_bugs=False,
            suppress_health_check=list(HealthCheck),
        )
        @given(workloads())
        def run_chunk(workload: Workload) -> None:
            state["workload"] = workload
            state["count"] = state.get("count", 0) + 1
            check_workload(workload)

        try:
            run_chunk()
        except Exception as exc:  # noqa: BLE001 - any failure is a find
            examples += state.get("count", 0)
            workload = state.get("workload")
            failure = {
                "error": f"{type(exc).__name__}: {exc}",
                "seed": seed + chunk,
                "workload": (
                    ir.to_json(workload) if workload is not None else None
                ),
                "path": None,
            }
            if workload is not None and artifact_dir is not None:
                out = Path(artifact_dir)
                out.mkdir(parents=True, exist_ok=True)
                path = out / f"counterexample-seed{seed + chunk}.json"
                path.write_text(failure["workload"])
                failure["path"] = str(path)
            return FuzzReport(
                chunks=chunk + 1,
                examples=examples,
                elapsed=time.monotonic() - start,
                failure=failure,
            )
        examples += state.get("count", 0)
        chunk += 1
    return FuzzReport(
        chunks=chunk,
        examples=examples,
        elapsed=time.monotonic() - start,
        failure=None,
    )
