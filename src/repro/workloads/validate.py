"""Semantic validation of workload IR programs.

:func:`parse` already guarantees *structure* (known ops, right fields).
This module checks the *semantics* a program needs to actually run:
buffers allocated before use and large enough for every typed access,
requests defined before they are waited on and completed exactly once,
peer ranks in range, and collective call sites symmetric across ranks
(same op sequence, matching byte counts, aligned window epochs).

Every failure raises :class:`WorkloadError` with a ``rank R op I``
location so fuzzer counterexamples and hand-written corpus files point
at the offending line.
"""

from __future__ import annotations

from typing import Optional

from repro.datatypes.base import Datatype
from repro.schemes import SCHEME_NAMES
from repro.workloads import ir
from repro.workloads.ir import Workload, WorkloadError

__all__ = ["validate"]

#: ops that participate in cross-rank collective symmetry, in program order
_COLLECTIVE_OPS = ("barrier", "alltoall", "bcast", "allgather", "win_create",
                   "fence")


def _span(dt: Datatype, count: int) -> tuple[int, int]:
    """(lowest, highest+1) byte touched by ``count`` elements, relative
    to the buffer origin.  Empty access -> (0, 0)."""
    flat = dt.flatten(count)
    if not flat.nblocks:
        return (0, 0)
    return (int(flat.offsets[0]), int(flat.offsets[-1] + flat.lengths[-1]))


def _check_access(
    buffers: dict,
    buf: str,
    offset: int,
    dt: Datatype,
    count: int,
    where: str,
) -> None:
    if buf not in buffers:
        raise WorkloadError(f"{where}: buffer {buf!r} used before alloc")
    if count < 0:
        raise WorkloadError(f"{where}: negative count {count}")
    lo, hi = _span(dt, count)
    if offset + lo < 0 or offset + hi > buffers[buf]:
        raise WorkloadError(
            f"{where}: access [{offset + lo}, {offset + hi}) outside "
            f"buffer {buf!r} of {buffers[buf]} bytes"
        )


def _check_region(
    buffers: dict, buf: str, offset: int, nbytes: int, where: str
) -> None:
    if buf not in buffers:
        raise WorkloadError(f"{where}: buffer {buf!r} used before alloc")
    if offset < 0 or nbytes < 0 or offset + nbytes > buffers[buf]:
        raise WorkloadError(
            f"{where}: region [{offset}, {offset + nbytes}) outside "
            f"buffer {buf!r} of {buffers[buf]} bytes"
        )


def _resolve_type(types: dict, name: str, where: str) -> Datatype:
    if name not in types:
        raise WorkloadError(f"{where}: unknown type {name!r}")
    return types[name]


def _check_peer(peer: int, rank: int, nranks: int, where: str, role: str) -> None:
    if not isinstance(peer, int) or not 0 <= peer < nranks:
        raise WorkloadError(
            f"{where}: {role} {peer!r} out of range for {nranks} ranks"
        )
    if peer == rank:
        raise WorkloadError(f"{where}: {role} is self (rank {rank})")


def validate(workload: Workload) -> None:
    """Raise :class:`WorkloadError` unless ``workload`` is runnable."""
    if workload.scheme not in SCHEME_NAMES:
        raise WorkloadError(
            f"unknown scheme {workload.scheme!r}; choose from "
            f"{', '.join(SCHEME_NAMES)}"
        )
    if workload.nranks < 1:
        raise WorkloadError("nranks must be >= 1")
    types = workload.built_types()  # raises with types[NAME] location

    # per-rank local checks + collective event extraction
    collective_events: list[list[tuple]] = []
    for rank, rank_ops in enumerate(workload.ranks):
        events: list[tuple] = []
        buffers: dict[str, int] = {}
        pending: set[str] = set()
        done: set[str] = set()
        windows: dict[str, tuple[int, str, int]] = {}  # name -> (ordinal, buf, size)
        win_ordinal = 0
        for i, op in enumerate(rank_ops):
            where = f"rank {rank} op {i} ({op.OP})"
            if isinstance(op, ir.Alloc):
                if op.buf in buffers:
                    raise WorkloadError(
                        f"{where}: buffer {op.buf!r} allocated twice"
                    )
                if op.nbytes <= 0:
                    raise WorkloadError(
                        f"{where}: alloc size must be positive"
                    )
                buffers[op.buf] = op.nbytes
            elif isinstance(op, ir.Fill):
                _check_region(buffers, op.buf, op.offset, op.nbytes, where)
                if not 1 <= op.mod <= 256:
                    raise WorkloadError(
                        f"{where}: fill mod {op.mod} outside [1, 256]"
                    )
            elif isinstance(op, ir.Data):
                raw = ir.decode_data(op.zlib64, where)
                _check_region(buffers, op.buf, op.offset, len(raw), where)
            elif isinstance(op, (ir.Isend, ir.Send)):
                dt = _resolve_type(types, op.type, where)
                _check_access(buffers, op.buf, op.offset, dt, op.count, where)
                _check_peer(op.dest, rank, workload.nranks, where, "dest")
                if op.tag < 0:
                    raise WorkloadError(f"{where}: negative tag {op.tag}")
                if isinstance(op, ir.Isend):
                    if op.req in pending or op.req in done:
                        raise WorkloadError(
                            f"{where}: request {op.req!r} reused"
                        )
                    pending.add(op.req)
            elif isinstance(op, (ir.Irecv, ir.Recv)):
                dt = _resolve_type(types, op.type, where)
                _check_access(buffers, op.buf, op.offset, dt, op.count, where)
                _check_peer(op.source, rank, workload.nranks, where, "source")
                if op.tag < 0:
                    raise WorkloadError(f"{where}: negative tag {op.tag}")
                if isinstance(op, ir.Irecv):
                    if op.req in pending or op.req in done:
                        raise WorkloadError(
                            f"{where}: request {op.req!r} reused"
                        )
                    pending.add(op.req)
            elif isinstance(op, ir.Wait):
                if op.req not in pending:
                    raise WorkloadError(
                        f"{where}: wait on "
                        f"{'completed' if op.req in done else 'undefined'} "
                        f"request {op.req!r}"
                    )
                pending.discard(op.req)
                done.add(op.req)
            elif isinstance(op, ir.Waitall):
                if len(set(op.reqs)) != len(op.reqs):
                    raise WorkloadError(f"{where}: duplicate request names")
                for req in op.reqs:
                    if req not in pending:
                        raise WorkloadError(
                            f"{where}: waitall on "
                            f"{'completed' if req in done else 'undefined'} "
                            f"request {req!r}"
                        )
                    pending.discard(req)
                    done.add(req)
            elif isinstance(op, ir.Barrier):
                events.append((i, "barrier"))
            elif isinstance(op, ir.Alltoall):
                sdt = _resolve_type(types, op.sendtype, where)
                rdt = _resolve_type(types, op.recvtype, where)
                n = workload.nranks
                _check_access(
                    buffers, op.sendbuf, op.sendoffset, sdt,
                    op.sendcount * n, where,
                )
                _check_access(
                    buffers, op.recvbuf, op.recvoffset, rdt,
                    op.recvcount * n, where,
                )
                sbytes = sdt.size * op.sendcount
                rbytes = rdt.size * op.recvcount
                if sbytes != rbytes:
                    raise WorkloadError(
                        f"{where}: send chunk {sbytes}B != recv chunk "
                        f"{rbytes}B"
                    )
                events.append((i, "alltoall", sbytes))
            elif isinstance(op, ir.Bcast):
                dt = _resolve_type(types, op.type, where)
                _check_access(buffers, op.buf, op.offset, dt, op.count, where)
                if not 0 <= op.root < workload.nranks:
                    raise WorkloadError(
                        f"{where}: root {op.root} out of range"
                    )
                events.append((i, "bcast", op.root, dt.size * op.count))
            elif isinstance(op, ir.Allgather):
                sdt = _resolve_type(types, op.sendtype, where)
                rdt = _resolve_type(types, op.recvtype, where)
                n = workload.nranks
                _check_access(
                    buffers, op.sendbuf, op.sendoffset, sdt,
                    op.sendcount, where,
                )
                _check_access(
                    buffers, op.recvbuf, op.recvoffset, rdt,
                    op.recvcount * n, where,
                )
                sbytes = sdt.size * op.sendcount
                rbytes = rdt.size * op.recvcount
                if sbytes != rbytes:
                    raise WorkloadError(
                        f"{where}: send chunk {sbytes}B != recv chunk "
                        f"{rbytes}B"
                    )
                events.append((i, "allgather", sbytes))
            elif isinstance(op, ir.WinCreate):
                if op.win in windows:
                    raise WorkloadError(
                        f"{where}: window {op.win!r} created twice"
                    )
                _check_region(buffers, op.buf, op.offset, op.size, where)
                windows[op.win] = (win_ordinal, op.buf, op.size)
                win_ordinal += 1
                events.append((i, "win_create"))
            elif isinstance(op, ir.Put):
                if op.win not in windows:
                    raise WorkloadError(
                        f"{where}: put on unknown window {op.win!r}"
                    )
                dt = _resolve_type(types, op.type, where)
                _check_access(buffers, op.buf, op.offset, dt, op.count, where)
                _check_peer(op.target, rank, workload.nranks, where, "target")
                tdt = (
                    _resolve_type(types, op.target_type, where)
                    if op.target_type is not None
                    else dt
                )
                tcount = (
                    op.target_count if op.target_count is not None else op.count
                )
                if tdt.size * tcount != dt.size * op.count:
                    raise WorkloadError(
                        f"{where}: origin {dt.size * op.count}B != target "
                        f"{tdt.size * tcount}B"
                    )
                events.append(
                    (i, "put", op.win, op.target, op.target_disp, tdt, tcount)
                )
            elif isinstance(op, ir.Fence):
                if op.win not in windows:
                    raise WorkloadError(
                        f"{where}: fence on unknown window {op.win!r}"
                    )
                events.append((i, "fence", windows[op.win][0]))
            else:  # pragma: no cover - decode already rejects unknown ops
                raise WorkloadError(f"{where}: unsupported op")
        if pending:
            raise WorkloadError(
                f"rank {rank}: request(s) {sorted(pending)} never completed"
            )
        # resolve put target spans now that this rank's windows are known
        collective_events.append([(rank, buffers, windows, events)])

    # cross-rank symmetry over the collective event sequences
    flat = [entry[0] for entry in collective_events]
    if workload.nranks > 1:
        _check_symmetry(workload, flat)


def _check_symmetry(workload: Workload, per_rank: list) -> None:
    """Collective calls must line up ordinal-by-ordinal across ranks."""
    sequences = []
    for rank, _buffers, _windows, events in per_rank:
        sequences.append(
            [e for e in events if e[1] != "put"]  # puts are one-sided
        )
    length = len(sequences[0])
    for rank, seq in enumerate(sequences[1:], start=1):
        if len(seq) != length:
            raise WorkloadError(
                f"rank {rank} has {len(seq)} collective calls but rank 0 "
                f"has {length}"
            )
    for ordinal in range(length):
        ref = sequences[0][ordinal]
        for rank in range(1, workload.nranks):
            got = sequences[rank][ordinal]
            if got[1:] != ref[1:]:
                raise WorkloadError(
                    f"rank {rank} op {got[0]}: collective #{ordinal} is "
                    f"{got[1]}{got[2:]} but rank 0 op {ref[0]} is "
                    f"{ref[1]}{ref[2:]}"
                )
    # every put must land inside the target rank's same-ordinal window
    windows_by_ordinal: list[dict[int, tuple[str, int]]] = []
    for _rank, _buffers, windows, _events in per_rank:
        windows_by_ordinal.append(
            {ordv[0]: (name, ordv[2]) for name, ordv in windows.items()}
        )
    for rank, _buffers, windows, events in per_rank:
        for event in events:
            if event[1] != "put":
                continue
            i, _tag, win, target, target_disp, tdt, tcount = event
            ordinal = windows[win][0]
            twin = windows_by_ordinal[target].get(ordinal)
            where = f"rank {rank} op {i} (put)"
            if twin is None:
                raise WorkloadError(
                    f"{where}: target rank {target} has no window "
                    f"#{ordinal}"
                )
            lo, hi = _span(tdt, tcount)
            if target_disp + lo < 0 or target_disp + hi > twin[1]:
                raise WorkloadError(
                    f"{where}: target span [{target_disp + lo}, "
                    f"{target_disp + hi}) outside window {twin[0]!r} of "
                    f"{twin[1]} bytes on rank {target}"
                )


def validate_text(text: str) -> Workload:
    """Parse + validate in one step (the CLI's entry point)."""
    workload = ir.parse(text)
    validate(workload)
    return workload


def is_valid(workload: Workload) -> Optional[str]:
    """None when valid, else the error message (for test assertions)."""
    try:
        validate(workload)
    except WorkloadError as exc:
        return str(exc)
    return None
