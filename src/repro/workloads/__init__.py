"""Workload IR: communication programs as data.

The package turns the repo's benchmark patterns into *data*: a small
typed IR for n-rank communication programs (:mod:`repro.workloads.ir`),
a validator with rank/op-indexed errors
(:mod:`repro.workloads.validate`), an interpreter that lowers IR onto
``repro.mpi`` and returns digests + simulated timings
(:mod:`repro.workloads.replay`), a recorder that captures traces from
live API use (:mod:`repro.workloads.record`), a Hypothesis grammar over
the IR (:mod:`repro.workloads.fuzz`), and a usage-weighted scenario
suite feeding the run ledger (:mod:`repro.workloads.suite`).

Quick tour::

    from repro.workloads import parse, replay, to_json
    from repro.workloads.patterns import record_pattern

    rec = record_pattern("halo_exchange_2d")     # live run -> trace
    text = to_json(rec.workload)                 # byte-stable JSON
    res = replay(parse(text), scheme="multi-w")  # same trace, new scheme

CLI: ``python -m repro.workloads {list,validate,replay,record,run,fuzz}``.
"""

from repro.workloads.ir import (
    Workload,
    WorkloadError,
    parse,
    to_json,
)
from repro.workloads.replay import ReplayResult, replay
from repro.workloads.validate import validate

__all__ = [
    "ReplayResult",
    "Workload",
    "WorkloadError",
    "parse",
    "replay",
    "to_json",
    "validate",
]
