"""The ``examples/`` communication patterns as recordable rank programs.

Each pattern mirrors one checked-in example (same structure, same
datatypes, same verification) at a parameter point chosen so the
noncontiguous messages land **above** the 8 KiB eager threshold — the
rendezvous regime where the seven datatype schemes actually diverge.
:func:`record_pattern` runs a pattern through the recorder, producing
the checked-in ``.json`` workload files in ``workloads/library/``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro import types
from repro.workloads.record import RecordedRun, record

__all__ = ["PATTERNS", "Pattern", "pattern_names", "record_pattern"]

# -- halo_exchange_2d ---------------------------------------------------
# LOCAL doubles per column halo: 1056 * 8 B = 8448 B > the 8192 B eager
# threshold, so east/west vectors go rendezvous through the scheme.

HALO_PX, HALO_PY = 2, 2
HALO_LOCAL = 1056
HALO_ITERS = 2


def _halo_neighbours(rank: int, px: int, py: int):
    gy, gx = divmod(rank, px)
    return (
        ((gy - 1) % py) * px + gx,
        ((gy + 1) % py) * px + gx,
        gy * px + (gx - 1) % px,
        gy * px + (gx + 1) % px,
    )


def halo_exchange_2d(mpi):
    n = HALO_LOCAL + 2
    tile = mpi.alloc_array((n, n), np.float64)
    tile.array[1:-1, 1:-1] = mpi.rank + 1
    row = types.contiguous(HALO_LOCAL, types.DOUBLE)
    col = types.vector(HALO_LOCAL, 1, n, types.DOUBLE)
    north, south, west, east = _halo_neighbours(mpi.rank, HALO_PX, HALO_PY)
    item = 8

    def at(r, c):
        return tile.addr + (r * n + c) * item

    for _ in range(HALO_ITERS):
        reqs = []
        for args in (
            (at(0, 1), row, 1, north, 0),
            (at(n - 1, 1), row, 1, south, 1),
            (at(1, 0), col, 1, west, 2),
            (at(1, n - 1), col, 1, east, 3),
        ):
            r = yield from mpi.irecv(*args)
            reqs.append(r)
        for args in (
            (at(1, 1), row, 1, north, 1),
            (at(n - 2, 1), row, 1, south, 0),
            (at(1, 1), col, 1, west, 3),
            (at(1, n - 2), col, 1, east, 2),
        ):
            r = yield from mpi.isend(*args)
            reqs.append(r)
        yield from mpi.waitall(reqs)
    assert (tile.array[0, 1:-1] == north + 1).all()
    assert (tile.array[-1, 1:-1] == south + 1).all()
    assert (tile.array[1:-1, 0] == west + 1).all()
    assert (tile.array[1:-1, -1] == east + 1).all()
    return 0


# -- particle_exchange --------------------------------------------------
# 256 leaving slots * 48 B = 12288 B per hindexed message, fresh types
# every iteration (the layout-cache-defeating case).

PART_NRANKS = 4
PART_NPARTICLES = 1024
PART_BYTES = 48
PART_ITERS = 2
PART_LEAVE = 0.25


def _leaving_datatype(seed: int):
    rng = np.random.default_rng(seed)
    nleave = int(PART_NPARTICLES * PART_LEAVE)
    slots = np.sort(rng.choice(PART_NPARTICLES, size=nleave, replace=False))
    disps = (slots * PART_BYTES).tolist()
    return types.hindexed([PART_BYTES] * nleave, disps, types.BYTE)


def particle_exchange(mpi):
    right = (mpi.rank + 1) % PART_NRANKS
    left = (mpi.rank - 1) % PART_NRANKS
    nbytes = PART_NPARTICLES * PART_BYTES
    particles = mpi.alloc(nbytes)
    inbox = mpi.alloc(nbytes)
    mpi.node.memory.view(particles, nbytes)[:] = mpi.rank + 1
    for it in range(PART_ITERS):
        send_dt = _leaving_datatype(seed=1000 * it + mpi.rank)
        recv_dt = _leaving_datatype(seed=1000 * it + left)
        sreq = yield from mpi.isend(particles, send_dt, 1, right, it)
        rreq = yield from mpi.irecv(inbox, recv_dt, 1, left, it)
        yield from mpi.waitall([sreq, rreq])
        for off, ln in recv_dt.flatten(1).blocks():
            blk = mpi.node.memory.view(inbox + off, ln)
            assert (blk == left + 1).all()
    return 0


# -- matrix_transpose_alltoall ------------------------------------------
# Send chunks are 64 x 64 double slabs (32768 B, noncontiguous vector).

TRANS_P = 4
TRANS_N = 256
TRANS_ROWS = TRANS_N // TRANS_P


def matrix_transpose_alltoall(mpi):
    cols_per = TRANS_N // TRANS_P
    panel = mpi.alloc_array((TRANS_ROWS, TRANS_N), np.float64)
    first_row = mpi.rank * TRANS_ROWS
    panel.array[:] = (
        np.arange(first_row, first_row + TRANS_ROWS)[:, None] * TRANS_N
        + np.arange(TRANS_N)
    )
    recv = mpi.alloc_array((TRANS_P, TRANS_ROWS, cols_per), np.float64)
    slab = types.vector(TRANS_ROWS, cols_per, TRANS_N, types.DOUBLE)
    send_chunk = types.resized(slab, lb=0, extent=cols_per * 8)
    recv_chunk = types.contiguous(TRANS_ROWS * cols_per, types.DOUBLE)
    yield from mpi.alltoall(
        panel.addr, send_chunk, 1, recv.addr, recv_chunk, 1
    )
    mine = np.concatenate([recv.array[i] for i in range(TRANS_P)], axis=0)
    first_col = mpi.rank * cols_per
    expect = (
        np.arange(TRANS_N)[None, :] * TRANS_N
        + np.arange(first_col, first_col + cols_per)[:, None]
    )
    assert np.array_equal(mine.T, expect), "transpose corrupted"
    return 0


# -- one_sided_halo -----------------------------------------------------
# The halo pattern again, but via RMA put + fence epochs.

OS_PX, OS_PY = 2, 2
OS_LOCAL = 1056
OS_ITERS = 2


def one_sided_halo(mpi):
    n = OS_LOCAL + 2
    item = 8
    tile = mpi.alloc_array((n, n), np.float64)
    tile.array[1:-1, 1:-1] = mpi.rank + 1
    win = yield from mpi.win_create(tile.addr, n * n * item)
    north, south, west, east = _halo_neighbours(mpi.rank, OS_PX, OS_PY)

    def disp(r, c):
        return (r * n + c) * item

    row = types.contiguous(OS_LOCAL, types.DOUBLE)
    col = types.vector(OS_LOCAL, 1, n, types.DOUBLE)
    yield from mpi.win_fence(win)
    for _ in range(OS_ITERS):
        yield from mpi.put(win, north, tile.addr + disp(1, 1), row,
                           target_disp=disp(n - 1, 1))
        yield from mpi.put(win, south, tile.addr + disp(n - 2, 1), row,
                           target_disp=disp(0, 1))
        yield from mpi.put(win, west, tile.addr + disp(1, 1), col,
                           target_disp=disp(1, n - 1), target_dt=col)
        yield from mpi.put(win, east, tile.addr + disp(1, n - 2), col,
                           target_disp=disp(1, 0), target_dt=col)
        yield from mpi.win_fence(win)
    assert (tile.array[0, 1:-1] == north + 1).all()
    assert (tile.array[-1, 1:-1] == south + 1).all()
    assert (tile.array[1:-1, 0] == west + 1).all()
    assert (tile.array[1:-1, -1] == east + 1).all()
    return 0


@dataclass(frozen=True)
class Pattern:
    """One recordable example pattern."""

    name: str
    nranks: int
    program: Callable
    summary: str


PATTERNS: dict[str, Pattern] = {
    p.name: p
    for p in (
        Pattern(
            "halo_exchange_2d", HALO_PX * HALO_PY, halo_exchange_2d,
            "2-D halo exchange, vector column halos (rendezvous)",
        ),
        Pattern(
            "particle_exchange", PART_NRANKS, particle_exchange,
            "ring exchange with fresh hindexed types per iteration",
        ),
        Pattern(
            "matrix_transpose_alltoall", TRANS_P, matrix_transpose_alltoall,
            "alltoall matrix transpose with resized vector slabs",
        ),
        Pattern(
            "one_sided_halo", OS_PX * OS_PY, one_sided_halo,
            "halo exchange via RMA put with target datatypes + fence",
        ),
    )
}


def pattern_names() -> tuple:
    return tuple(sorted(PATTERNS))


def record_pattern(
    name: str,
    *,
    scheme: str = "bc-spup",
    eager_rdma: bool = False,
    cost_model: Optional[Any] = None,
) -> RecordedRun:
    """Record one pattern's live run into a workload trace."""
    pattern = PATTERNS.get(name)
    if pattern is None:
        raise KeyError(
            f"unknown pattern {name!r}; choose from {pattern_names()}"
        )
    return record(
        pattern.program,
        name=name,
        nranks=pattern.nranks,
        scheme=scheme,
        eager_rdma=eager_rdma,
        cost_model=cost_model,
    )
