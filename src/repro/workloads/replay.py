"""Interpreter: lower a workload IR program onto ``repro.mpi``.

:func:`replay` builds one rank program per IR rank, runs them on a
:class:`~repro.mpi.world.Cluster`, and returns a :class:`ReplayResult`
carrying the simulated run time plus a per-rank *digest timeline* — a
SHA-256 over every application buffer taken after each observation op
(wait/waitall/send/recv and every collective).  Two runs are
behaviourally identical iff their digest timelines and ``time_us``
match, which is exactly what the differential tests assert between a
recorded trace and the live program it was recorded from.

Scheme, eager-RDMA flag, and cost model can be overridden per replay so
one checked-in workload file sweeps all seven schemes and every
cost-model preset.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.mpi.world import Cluster
from repro.workloads import ir
from repro.workloads.ir import Workload, WorkloadError
from repro.workloads.validate import validate

__all__ = ["ReplayResult", "digest_buffers", "fill_pattern", "pack_typed",
           "replay"]


def fill_pattern(nbytes: int, a: int, b: int, mod: int) -> np.ndarray:
    """The ``fill`` op's byte pattern: byte ``j`` is ``(a + b*j) % mod``."""
    return (
        (a + b * np.arange(nbytes, dtype=np.int64)) % mod
    ).astype(np.uint8)


def digest_buffers(views) -> str:
    """SHA-256 over named buffers: ``[(name, uint8-array), ...]`` in
    allocation order.  Shared by the interpreter and the recorder so
    their timelines are comparable byte-for-byte."""
    h = hashlib.sha256()
    for name, view in views:
        h.update(name.encode())
        h.update(b"\x00")
        h.update(view.tobytes())
    return h.hexdigest()


@dataclass
class ReplayResult:
    """Outcome of one IR replay."""

    name: str
    scheme: str
    time_us: float
    #: per-rank list of (op_index, sha256-hex) at each observation op
    digests: list
    #: per-rank dict of payload bytes (recv requests by name, collective
    #: and fence landing zones by ``op<i>``); filled when
    #: ``collect_payloads=True``
    payloads: list = field(default_factory=list)
    values: list = field(default_factory=list)


def pack_typed(memory, addr: int, dt, count: int) -> bytes:
    """The packed wire bytes of ``(datatype, count)`` at ``addr``."""
    flat = dt.flatten(count)
    out = bytearray()
    for off, length in flat.blocks():
        out += memory.view(addr + int(off), int(length)).tobytes()
    return bytes(out)


def _make_program(
    workload: Workload,
    rank: int,
    types: dict,
    digests: list,
    payloads: list,
    collect_payloads: bool,
):
    ops = workload.ranks[rank]
    my_digests: list = digests[rank]
    my_payloads: dict = payloads[rank]

    def program(ctx):
        memory = ctx.node.memory
        buffers: dict[str, tuple[int, int]] = {}
        order: list[str] = []
        requests: dict[str, Any] = {}
        recv_regions: dict[str, tuple[int, Any, int]] = {}
        windows: dict[str, Any] = {}
        win_regions: dict[str, tuple[int, int]] = {}

        def observe(i: int) -> None:
            views = [
                (name, memory.view(buffers[name][0], buffers[name][1]))
                for name in order
            ]
            my_digests.append((i, digest_buffers(views)))

        def grab(key: str, addr: int, dt, count: int) -> None:
            if collect_payloads:
                my_payloads[key] = pack_typed(memory, addr, dt, count)

        for i, op in enumerate(ops):
            if isinstance(op, ir.Alloc):
                addr = ctx.alloc(op.nbytes, op.align)
                buffers[op.buf] = (addr, op.nbytes)
                order.append(op.buf)
                memory.view(addr, op.nbytes)[:] = 0
            elif isinstance(op, ir.Fill):
                addr = buffers[op.buf][0] + op.offset
                memory.view(addr, op.nbytes)[:] = fill_pattern(
                    op.nbytes, op.a, op.b, op.mod
                )
            elif isinstance(op, ir.Data):
                raw = ir.decode_data(op.zlib64)
                addr = buffers[op.buf][0] + op.offset
                memory.view(addr, len(raw))[:] = np.frombuffer(
                    raw, dtype=np.uint8
                )
            elif isinstance(op, ir.Isend):
                addr = buffers[op.buf][0] + op.offset
                req = yield from ctx.isend(
                    addr, types[op.type], op.count, op.dest, op.tag
                )
                requests[op.req] = req
            elif isinstance(op, ir.Irecv):
                addr = buffers[op.buf][0] + op.offset
                dt = types[op.type]
                req = yield from ctx.irecv(
                    addr, dt, op.count, op.source, op.tag
                )
                requests[op.req] = req
                recv_regions[op.req] = (addr, dt, op.count)
            elif isinstance(op, ir.Send):
                addr = buffers[op.buf][0] + op.offset
                yield from ctx.send(
                    addr, types[op.type], op.count, op.dest, op.tag
                )
                observe(i)
            elif isinstance(op, ir.Recv):
                addr = buffers[op.buf][0] + op.offset
                dt = types[op.type]
                yield from ctx.recv(addr, dt, op.count, op.source, op.tag)
                grab(f"op{i}", addr, dt, op.count)
                observe(i)
            elif isinstance(op, ir.Wait):
                yield from ctx.wait(requests[op.req])
                if op.req in recv_regions:
                    grab(op.req, *recv_regions[op.req])
                observe(i)
            elif isinstance(op, ir.Waitall):
                yield from ctx.waitall([requests[r] for r in op.reqs])
                for r in op.reqs:
                    if r in recv_regions:
                        grab(r, *recv_regions[r])
                observe(i)
            elif isinstance(op, ir.Barrier):
                yield from ctx.barrier()
                observe(i)
            elif isinstance(op, ir.Alltoall):
                saddr = buffers[op.sendbuf][0] + op.sendoffset
                raddr = buffers[op.recvbuf][0] + op.recvoffset
                rdt = types[op.recvtype]
                yield from ctx.alltoall(
                    saddr, types[op.sendtype], op.sendcount,
                    raddr, rdt, op.recvcount,
                )
                grab(f"op{i}", raddr, rdt, op.recvcount * workload.nranks)
                observe(i)
            elif isinstance(op, ir.Bcast):
                addr = buffers[op.buf][0] + op.offset
                dt = types[op.type]
                yield from ctx.bcast(addr, dt, op.count, op.root)
                grab(f"op{i}", addr, dt, op.count)
                observe(i)
            elif isinstance(op, ir.Allgather):
                saddr = buffers[op.sendbuf][0] + op.sendoffset
                raddr = buffers[op.recvbuf][0] + op.recvoffset
                rdt = types[op.recvtype]
                yield from ctx.allgather(
                    saddr, types[op.sendtype], op.sendcount,
                    raddr, rdt, op.recvcount,
                )
                grab(f"op{i}", raddr, rdt, op.recvcount * workload.nranks)
                observe(i)
            elif isinstance(op, ir.WinCreate):
                addr = buffers[op.buf][0] + op.offset
                win = yield from ctx.win_create(addr, op.size)
                windows[op.win] = win
                win_regions[op.win] = (addr, op.size)
            elif isinstance(op, ir.Put):
                addr = buffers[op.buf][0] + op.offset
                tdt = (
                    types[op.target_type]
                    if op.target_type is not None
                    else None
                )
                yield from ctx.put(
                    windows[op.win], op.target, addr, types[op.type],
                    op.count, op.target_disp, tdt, op.target_count,
                )
            elif isinstance(op, ir.Fence):
                yield from ctx.win_fence(windows[op.win])
                waddr, wsize = win_regions[op.win]
                if collect_payloads:
                    my_payloads[f"op{i}"] = memory.view(
                        waddr, wsize
                    ).tobytes()
                observe(i)
            else:  # pragma: no cover - validate() rejects unknown ops
                raise WorkloadError(f"rank {rank} op {i}: unsupported op")
        return len(ops)

    return program


def replay(
    workload: Workload,
    *,
    scheme: Optional[str] = None,
    eager_rdma: Optional[bool] = None,
    cost_model: Optional[Any] = None,
    collect_payloads: bool = False,
    check: bool = True,
) -> ReplayResult:
    """Run a workload and return its digest timeline + simulated time.

    ``scheme``/``eager_rdma``/``cost_model`` override the workload's own
    run parameters (sweeps replay one file under many configurations).
    ``check=False`` skips semantic validation for already-trusted inputs.
    """
    if check:
        validate(workload)
    use_scheme = scheme if scheme is not None else workload.scheme
    use_eager = (
        eager_rdma if eager_rdma is not None else workload.eager_rdma
    )
    types = workload.built_types()
    digests: list = [[] for _ in range(workload.nranks)]
    payloads: list = [{} for _ in range(workload.nranks)]
    cluster = Cluster(
        nranks=workload.nranks,
        scheme=use_scheme,
        eager_rdma=use_eager,
        cost_model=cost_model,
    )
    programs = [
        _make_program(
            workload, rank, types, digests, payloads, collect_payloads
        )
        for rank in range(workload.nranks)
    ]
    result = cluster.run(programs)
    return ReplayResult(
        name=workload.name,
        scheme=use_scheme,
        time_us=result.time_us,
        digests=digests,
        payloads=payloads,
        values=result.values,
    )
