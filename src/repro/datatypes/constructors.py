"""MPI datatype constructors.

Mirrors the MPI-1/MPI-2 constructor set: ``contiguous``, ``vector``,
``hvector``, ``indexed``, ``hindexed``, ``indexed_block``, ``struct``,
``subarray`` and ``resized``.  Element-displacement constructors measure in
multiples of the base type's *extent* (MPI semantics); the ``h`` variants
measure in bytes.

All constructors are plain functions returning :class:`Derived` instances;
composition nests arbitrarily (a struct of vectors of indexed of ...).
"""

from __future__ import annotations

from typing import Sequence

from repro.datatypes.base import Datatype
from repro.datatypes.flatten import Flattened

__all__ = [
    "contiguous",
    "hindexed",
    "hvector",
    "indexed",
    "indexed_block",
    "resized",
    "struct",
    "subarray",
    "vector",
]


class Derived(Datatype):
    """A derived datatype built from (byte displacement, base, blocklength)
    triples — the normal form every constructor lowers to."""

    def __init__(
        self,
        kind: str,
        parts: Sequence[tuple[int, Datatype, int]],
        lb: int | None = None,
        ub: int | None = None,
    ):
        """``parts`` is a list of (byte_displacement, base_type, count):
        ``count`` consecutive copies of ``base_type`` starting at
        ``byte_displacement``."""
        super().__init__()
        self.kind = kind
        self.parts = [(int(d), t, int(c)) for d, t, c in parts]
        for _d, t, c in self.parts:
            if c < 0:
                raise ValueError("blocklength must be non-negative")
            if not isinstance(t, Datatype):
                raise TypeError(f"base must be a Datatype, got {type(t)!r}")
        self.size = sum(t.size * c for _d, t, c in self.parts)
        live = [(d, t, c) for d, t, c in self.parts if c > 0]
        if live:
            natural_lb = min(d + t.lb for d, t, c in live)
            natural_ub = max(
                d + t.lb + (c - 1) * t.extent + (t.ub - t.lb) for d, t, c in live
            )
        else:
            natural_lb = natural_ub = 0
        self.lb = natural_lb if lb is None else int(lb)
        self.ub = natural_ub if ub is None else int(ub)

    def _flatten_one(self) -> Flattened:
        blocks: list[tuple[int, int]] = []
        for disp, base, count in self.parts:
            flat = base.flatten(count)
            for off, length in flat.blocks():
                blocks.append((disp + off, length))
        return Flattened.from_blocks(blocks)

    def _typemap_one(self):
        for disp, base, count in self.parts:
            for rep in range(count):
                shift = disp + rep * base.extent
                for name, off in base.typemap():
                    yield (name, shift + off)

    def signature(self) -> tuple:
        return (
            self.kind,
            tuple((d, t.signature(), c) for d, t, c in self.parts),
            self.lb,
            self.ub,
        )

    def __repr__(self) -> str:
        return f"<{self.kind} size={self.size} extent={self.extent}>"


def contiguous(count: int, base: Datatype) -> Derived:
    """``count`` consecutive elements of ``base`` (MPI_Type_contiguous)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    return Derived("contiguous", [(0, base, count)])


def vector(count: int, blocklength: int, stride: int, base: Datatype) -> Derived:
    """MPI_Type_vector: ``count`` blocks of ``blocklength`` elements,
    block starts ``stride`` *elements* apart."""
    return hvector(count, blocklength, stride * base.extent, base)


def hvector(count: int, blocklength: int, stride_bytes: int, base: Datatype) -> Derived:
    """MPI_Type_hvector: like vector with the stride in bytes."""
    if count < 0 or blocklength < 0:
        raise ValueError("count and blocklength must be non-negative")
    parts = [(i * stride_bytes, base, blocklength) for i in range(count)]
    return Derived("hvector", parts)


def indexed(
    blocklengths: Sequence[int], displacements: Sequence[int], base: Datatype
) -> Derived:
    """MPI_Type_indexed: displacements in multiples of the base extent."""
    return hindexed(
        blocklengths, [d * base.extent for d in displacements], base
    )


def hindexed(
    blocklengths: Sequence[int], displacements_bytes: Sequence[int], base: Datatype
) -> Derived:
    """MPI_Type_hindexed: displacements in bytes."""
    if len(blocklengths) != len(displacements_bytes):
        raise ValueError("blocklengths and displacements length mismatch")
    parts = [(d, base, b) for d, b in zip(displacements_bytes, blocklengths)]
    return Derived("hindexed", parts)


def indexed_block(
    blocklength: int, displacements: Sequence[int], base: Datatype
) -> Derived:
    """MPI_Type_create_indexed_block: equal-size blocks."""
    return indexed([blocklength] * len(displacements), displacements, base)


def struct(
    blocklengths: Sequence[int],
    displacements_bytes: Sequence[int],
    types: Sequence[Datatype],
) -> Derived:
    """MPI_Type_struct: heterogeneous blocks at byte displacements."""
    if not (len(blocklengths) == len(displacements_bytes) == len(types)):
        raise ValueError("struct argument length mismatch")
    parts = list(zip(displacements_bytes, types, blocklengths))
    return Derived("struct", parts)


def resized(base: Datatype, lb: int, extent: int) -> Derived:
    """MPI_Type_create_resized: override lb and extent."""
    return Derived("resized", [(0, base, 1)], lb=lb, ub=lb + extent)


def subarray(
    sizes: Sequence[int],
    subsizes: Sequence[int],
    starts: Sequence[int],
    base: Datatype,
    order: str = "C",
) -> Derived:
    """MPI_Type_create_subarray: an n-dimensional slab of an n-dimensional
    array, C or Fortran order.

    The resulting type's extent equals the full array so consecutive
    counts tile correctly.
    """
    ndims = len(sizes)
    if not (len(subsizes) == len(starts) == ndims):
        raise ValueError("subarray argument length mismatch")
    if ndims == 0:
        raise ValueError("subarray needs at least one dimension")
    for d in range(ndims):
        if subsizes[d] < 0 or starts[d] < 0 or starts[d] + subsizes[d] > sizes[d]:
            raise ValueError(f"subarray slab exceeds array bounds in dim {d}")
    if order not in ("C", "F"):
        raise ValueError("order must be 'C' or 'F'")
    dims = list(range(ndims))
    if order == "F":
        dims.reverse()
        sizes = list(reversed(sizes))
        subsizes = list(reversed(subsizes))
        starts = list(reversed(starts))
    # Build innermost-out: a row of subsizes[-1] elements, then hvectors.
    elem = base.extent
    inner: Datatype = contiguous(subsizes[-1], base)
    row_bytes = elem
    for d in range(ndims - 1, 0, -1):
        row_bytes *= sizes[d]
        inner = hvector(subsizes[d - 1], 1, row_bytes, inner)
    # offset of the slab origin
    offset = 0
    scale = elem
    for d in range(ndims - 1, -1, -1):
        offset += starts[d] * scale
        scale *= sizes[d]
    total_extent = elem
    for s in sizes:
        total_extent *= s
    slab = Derived("subarray", [(offset, inner, 1)], lb=0, ub=total_extent)
    return slab
