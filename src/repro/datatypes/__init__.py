"""MPI derived datatype engine.

Implements the MPI type-constructor algebra (contiguous, vector, hvector,
indexed, hindexed, indexed_block, struct, subarray, resized over the
primitive types), flattening to merged ``<offset, length>`` block lists
(Section 5.4.2 of the paper), and **partial datatype processing** — the
resumable segment cursor that lets a scheme pack or unpack an arbitrary
byte range of a ``(datatype, count)`` stream (Section 4.3.1; Ross et al.
[26], Träff et al. [15]).

Typical use::

    from repro.datatypes import INT, vector

    # 7 columns of a 128 x 4096 int array (the paper's Section 3.2 example)
    dt = vector(count=128, blocklength=7, stride=4096, base=INT)
    flat = dt.flatten()          # 128 blocks of 28 bytes, 16384 apart
    assert dt.size == 128 * 7 * 4
"""

from repro.datatypes.base import Datatype, Primitive
from repro.datatypes.base import BYTE, CHAR, DOUBLE, FLOAT, INT, LONG, SHORT
from repro.datatypes.constructors import (
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)
from repro.datatypes.flatten import Flattened
from repro.datatypes.segment import SegmentCursor
from repro.datatypes.pack import pack_bytes, unpack_bytes

__all__ = [
    "BYTE",
    "CHAR",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "Flattened",
    "INT",
    "LONG",
    "Primitive",
    "SHORT",
    "SegmentCursor",
    "contiguous",
    "hindexed",
    "hvector",
    "indexed",
    "indexed_block",
    "pack_bytes",
    "resized",
    "struct",
    "subarray",
    "unpack_bytes",
    "vector",
]
