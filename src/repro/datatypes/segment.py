"""Partial datatype processing: the segment cursor.

BC-SPUP and RWG-UP pack/unpack a datatype message *segment by segment*
(Sections 4.2, 4.3.1, 5.1), which "allows us to start and stop the
processing of a datatype at nearly arbitrary points" (Ross et al. [26],
Träff et al. [15]).  :class:`SegmentCursor` provides exactly that: given a
``(datatype, count)`` stream it maps any **packed-byte** range
``[lo, hi)`` to the memory slices that hold those bytes, in stream order,
via a prefix-sum + binary-search over the flattened block list.

The packed-byte coordinate is the offset the byte would have in a fully
packed (contiguous) copy of the message — the natural unit for choosing
segment boundaries independent of the data layout.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.datatypes.base import Datatype
from repro.datatypes.flatten import Flattened

__all__ = ["SegmentCursor"]


class SegmentCursor:
    """Resumable pack/unpack position over a ``(datatype, count)`` stream.

    The cursor itself is stateless between calls — :meth:`slices` answers
    for any range — but also supports streaming use via :meth:`advance`.
    """

    def __init__(self, datatype: Datatype, count: int = 1):
        self.datatype = datatype
        self.count = count
        self.flat: Flattened = datatype.flatten(count)
        # cum[i] = packed offset of the start of block i; cum[-1] = total
        self._cum = np.concatenate(
            ([0], np.cumsum(self.flat.lengths, dtype=np.int64))
        )
        self.total = int(self._cum[-1])
        self._pos = 0

    # -- random access -----------------------------------------------------

    def slices(self, lo: int, hi: int) -> list[tuple[int, int]]:
        """Memory (offset, length) slices storing packed bytes [lo, hi).

        Offsets are relative to the buffer origin, in stream order.
        """
        if lo < 0 or hi > self.total or lo > hi:
            raise ValueError(
                f"packed range [{lo}, {hi}) outside [0, {self.total})"
            )
        if lo == hi:
            return []
        offsets, cum = self.flat.offsets, self._cum
        first = int(np.searchsorted(cum, lo, side="right")) - 1
        last = int(np.searchsorted(cum, hi, side="left")) - 1
        starts = cum[first : last + 1]
        blk_lo = np.maximum(lo, starts)
        blk_hi = np.minimum(hi, cum[first + 1 : last + 2])
        mem_off = offsets[first : last + 1] + (blk_lo - starts)
        lens = blk_hi - blk_lo
        pairs = [
            (o, l) for o, l in zip(mem_off.tolist(), lens.tolist()) if l > 0
        ]
        return pairs

    def block_count(self, lo: int, hi: int) -> int:
        """Number of memory slices the packed range [lo, hi) touches —
        the block count the cost model charges datatype processing for."""
        if lo >= hi:
            return 0
        cum = self._cum
        first = int(np.searchsorted(cum, lo, side="right")) - 1
        last = int(np.searchsorted(cum, hi, side="left")) - 1
        return last - first + 1

    # -- streaming ------------------------------------------------------

    @property
    def pos(self) -> int:
        """Current packed-byte position."""
        return self._pos

    @property
    def remaining(self) -> int:
        return self.total - self._pos

    @property
    def done(self) -> bool:
        return self._pos >= self.total

    def advance(self, nbytes: int) -> list[tuple[int, int]]:
        """Consume the next ``nbytes`` packed bytes; returns their slices."""
        hi = min(self._pos + nbytes, self.total)
        out = self.slices(self._pos, hi)
        self._pos = hi
        return out

    def reset(self) -> None:
        self._pos = 0

    def segments(self, segment_size: int) -> Iterator[tuple[int, int]]:
        """Yield (lo, hi) packed ranges of at most ``segment_size`` bytes
        covering the whole stream."""
        if segment_size <= 0:
            raise ValueError("segment_size must be positive")
        lo = 0
        while lo < self.total:
            hi = min(lo + segment_size, self.total)
            yield lo, hi
            lo = hi
