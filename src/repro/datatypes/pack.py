"""Operational pack/unpack between user buffers and contiguous buffers.

These functions actually move bytes inside a node's simulated address
space; the *time* cost (datatype processing + copy) is charged by the
caller via :meth:`repro.ib.costmodel.CostModel.pack_time`, because when
the cost is paid — and whether it overlaps the wire — is the whole point
of the paper's schemes.
"""

from __future__ import annotations

from repro.datatypes.segment import SegmentCursor
from repro.ib.memory import NodeMemory

__all__ = ["pack_bytes", "unpack_bytes"]


def pack_bytes(
    memory: NodeMemory,
    base_addr: int,
    cursor: SegmentCursor,
    lo: int,
    hi: int,
    dest_addr: int,
) -> int:
    """Pack packed-byte range [lo, hi) of the stream rooted at
    ``base_addr`` into the contiguous buffer at ``dest_addr``.

    Returns the number of memory blocks visited (for cost accounting).
    """
    slices = cursor.slices(lo, hi)
    memory.gather_blocks(base_addr, slices, dest_addr)
    return len(slices)


def unpack_bytes(
    memory: NodeMemory,
    base_addr: int,
    cursor: SegmentCursor,
    lo: int,
    hi: int,
    src_addr: int,
) -> int:
    """Unpack the contiguous buffer at ``src_addr`` into packed-byte range
    [lo, hi) of the stream rooted at ``base_addr``.

    Returns the number of memory blocks visited.
    """
    slices = cursor.slices(lo, hi)
    memory.scatter_blocks(base_addr, slices, src_addr)
    return len(slices)
