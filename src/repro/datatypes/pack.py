"""Operational pack/unpack between user buffers and contiguous buffers.

These functions actually move bytes inside a node's simulated address
space; the *time* cost (datatype processing + copy) is charged by the
caller via :meth:`repro.ib.costmodel.CostModel.pack_time`, because when
the cost is paid — and whether it overlaps the wire — is the whole point
of the paper's schemes.

The *host* cost of this byte movement is the one exception: when a
host-time profiler is active (:data:`repro.obs.hostprof.ACTIVE`, set by
the engine's profiled run loop), each call times itself and reports to
the ``pack-unpack`` host category.  With no active profiler the probe is
a single None check and the fast path is untouched.
"""

from __future__ import annotations

from time import perf_counter_ns

from repro.datatypes.segment import SegmentCursor
from repro.ib.memory import NodeMemory
from repro.obs import hostprof as _hostprof

__all__ = ["pack_bytes", "unpack_bytes"]


def pack_bytes(
    memory: NodeMemory,
    base_addr: int,
    cursor: SegmentCursor,
    lo: int,
    hi: int,
    dest_addr: int,
) -> int:
    """Pack packed-byte range [lo, hi) of the stream rooted at
    ``base_addr`` into the contiguous buffer at ``dest_addr``.

    Returns the number of memory blocks visited (for cost accounting).
    """
    hp = _hostprof.ACTIVE
    if hp is None:
        slices = cursor.slices(lo, hi)
        memory.gather_blocks(base_addr, slices, dest_addr)
        return len(slices)
    t0 = perf_counter_ns()
    slices = cursor.slices(lo, hi)
    memory.gather_blocks(base_addr, slices, dest_addr)
    hp.add_nested("pack-unpack", perf_counter_ns() - t0)
    return len(slices)


def unpack_bytes(
    memory: NodeMemory,
    base_addr: int,
    cursor: SegmentCursor,
    lo: int,
    hi: int,
    src_addr: int,
) -> int:
    """Unpack the contiguous buffer at ``src_addr`` into packed-byte range
    [lo, hi) of the stream rooted at ``base_addr``.

    Returns the number of memory blocks visited.
    """
    hp = _hostprof.ACTIVE
    if hp is None:
        slices = cursor.slices(lo, hi)
        memory.scatter_blocks(base_addr, slices, src_addr)
        return len(slices)
    t0 = perf_counter_ns()
    slices = cursor.slices(lo, hi)
    memory.scatter_blocks(base_addr, slices, src_addr)
    hp.add_nested("pack-unpack", perf_counter_ns() - t0)
    return len(slices)
