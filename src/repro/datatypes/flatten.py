"""Flattened datatype representation: merged <offset, length> block lists.

The paper (Section 5.4.2) represents a datatype as "a linear list of
<offset, length> tuples.  Each tuple describes a contiguous block of the
datatype by its length and by its offset related to the lower bound."
This is the representation the Multi-W scheme ships to the sender, and the
structure the segment cursor (partial datatype processing) walks.

Blocks are stored as two parallel ``int64`` numpy arrays so prefix sums
and binary search (the partial-processing machinery) are vectorized.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

__all__ = ["Flattened", "layout_cache_get", "layout_cache_put", "layout_cache_clear"]

#: bytes per <offset, length> tuple in the wire encoding of a flattened
#: datatype (two 8-byte integers) — used to cost datatype-representation
#: control messages for Multi-W.
WIRE_BYTES_PER_BLOCK = 16


# ----------------------------------------------------------------------
# process-wide layout memo
# ----------------------------------------------------------------------
#
# Benchmark sweeps construct the *same* datatype over and over (a fresh
# ``column_vector(c)`` per measurement), so the per-instance cache in
# ``Datatype.flatten`` misses across constructions.  Flattening is pure —
# the result depends only on the datatype's structural signature and the
# count — so layouts are also memoized process-wide, keyed by
# ``(signature, count)``.  Bounded LRU: sweeps touch a few hundred
# distinct layouts; the cap only guards against pathological workloads.

_LAYOUT_CACHE: "OrderedDict[tuple, Flattened]" = OrderedDict()
_LAYOUT_CACHE_MAX = 4096


def layout_cache_get(key: tuple) -> Optional["Flattened"]:
    """Look up a memoized flattened layout (None on miss)."""
    flat = _LAYOUT_CACHE.get(key)
    if flat is not None:
        _LAYOUT_CACHE.move_to_end(key)
    return flat


def layout_cache_put(key: tuple, flat: "Flattened") -> None:
    """Memoize a flattened layout under ``key``."""
    _LAYOUT_CACHE[key] = flat
    if len(_LAYOUT_CACHE) > _LAYOUT_CACHE_MAX:
        _LAYOUT_CACHE.popitem(last=False)


def layout_cache_clear() -> None:
    """Drop all memoized layouts (test isolation)."""
    _LAYOUT_CACHE.clear()


@dataclass(frozen=True)
class Flattened:
    """An immutable, merged block list.

    ``offsets[i]`` is the byte offset of block ``i`` relative to the start
    of the buffer (the datatype's origin), ``lengths[i]`` its byte length.
    Invariants (enforced by :meth:`from_blocks`):

    * offsets strictly increasing,
    * blocks non-overlapping,
    * no zero-length blocks,
    * no two adjacent blocks touching (they would have been merged).
    """

    offsets: np.ndarray
    lengths: np.ndarray

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_blocks(cls, blocks: Iterable[tuple[int, int]]) -> "Flattened":
        """Build from (offset, length) pairs: sort, drop empties, merge
        adjacent/overlapping-free runs."""
        pairs = [(int(o), int(l)) for o, l in blocks if l > 0]
        pairs.sort()
        merged: list[list[int]] = []
        for off, length in pairs:
            if merged and off < merged[-1][0] + merged[-1][1]:
                raise ValueError(
                    f"overlapping blocks at offset {off} "
                    f"(previous block ends at {merged[-1][0] + merged[-1][1]})"
                )
            if merged and off == merged[-1][0] + merged[-1][1]:
                merged[-1][1] += length
            else:
                merged.append([off, length])
        if merged:
            offs = np.array([m[0] for m in merged], dtype=np.int64)
            lens = np.array([m[1] for m in merged], dtype=np.int64)
        else:
            offs = np.empty(0, dtype=np.int64)
            lens = np.empty(0, dtype=np.int64)
        offs.setflags(write=False)
        lens.setflags(write=False)
        return cls(offs, lens)

    @classmethod
    def empty(cls) -> "Flattened":
        return cls.from_blocks([])

    # -- properties ----------------------------------------------------------

    @property
    def nblocks(self) -> int:
        return len(self.offsets)

    @property
    def size(self) -> int:
        """Total bytes of real data."""
        return int(self.lengths.sum())

    @property
    def span(self) -> int:
        """Bytes from the first block's start to the last block's end."""
        if self.nblocks == 0:
            return 0
        return int(self.offsets[-1] + self.lengths[-1] - self.offsets[0])

    @property
    def gap_bytes(self) -> int:
        """Total bytes of holes between blocks."""
        return self.span - self.size

    @property
    def is_contiguous(self) -> bool:
        return self.nblocks <= 1

    @property
    def min_block(self) -> int:
        return int(self.lengths.min()) if self.nblocks else 0

    @property
    def max_block(self) -> int:
        return int(self.lengths.max()) if self.nblocks else 0

    @property
    def mean_block(self) -> float:
        return float(self.lengths.mean()) if self.nblocks else 0.0

    @property
    def median_block(self) -> float:
        return float(np.median(self.lengths)) if self.nblocks else 0.0

    @property
    def wire_bytes(self) -> int:
        """Size of this block list's wire encoding (datatype
        representation message for Multi-W, Section 5.4.2)."""
        return self.nblocks * WIRE_BYTES_PER_BLOCK

    # -- derivation -------------------------------------------------------

    def repeat(self, count: int, extent: int) -> "Flattened":
        """The block list of ``count`` consecutive elements, each shifted
        by the datatype extent — how (datatype, count) send buffers are
        laid out."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0 or self.nblocks == 0:
            return Flattened.empty()
        if count == 1:
            return self
        first = int(self.offsets[0])
        last_end = int(self.offsets[-1] + self.lengths[-1])
        if extent > 0 and first + extent > last_end:
            # consecutive copies neither touch nor overlap: the repeated
            # block list is just the shifted concatenation — build it
            # directly instead of re-merging pair by pair in Python
            shifts = np.arange(count, dtype=np.int64) * extent
            offs = (self.offsets[None, :] + shifts[:, None]).ravel()
            lens = np.ascontiguousarray(
                np.broadcast_to(self.lengths, (count, self.nblocks))
            ).ravel()
            offs.setflags(write=False)
            lens.setflags(write=False)
            return Flattened(offs, lens)
        if (
            extent > 0
            and self.nblocks == 1
            and first + extent == last_end
            and int(self.lengths[0]) == extent
        ):
            # fully contiguous element: count copies merge into one block
            return Flattened.from_blocks([(first, count * extent)])
        shifts = np.arange(count, dtype=np.int64) * extent
        offs = (self.offsets[None, :] + shifts[:, None]).ravel()
        lens = np.broadcast_to(self.lengths, (count, self.nblocks)).ravel()
        return Flattened.from_blocks(zip(offs.tolist(), lens.tolist()))

    def shift(self, delta: int) -> "Flattened":
        """Translate all offsets by ``delta`` bytes."""
        offs = self.offsets + int(delta)
        offs.setflags(write=False)
        return Flattened(offs, self.lengths)

    def blocks(self) -> Iterator[tuple[int, int]]:
        """Iterate (offset, length) pairs."""
        for off, length in zip(self.offsets.tolist(), self.lengths.tolist()):
            yield off, length

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Flattened):
            return NotImplemented
        return np.array_equal(self.offsets, other.offsets) and np.array_equal(
            self.lengths, other.lengths
        )

    def __hash__(self) -> int:
        return hash((self.offsets.tobytes(), self.lengths.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Flattened {self.nblocks} blocks, {self.size} bytes>"
