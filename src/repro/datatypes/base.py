"""Datatype base class and primitive types.

MPI semantics implemented here:

* ``size`` — bytes of actual data in one element of the type.
* ``lb`` / ``ub`` — lower/upper bound markers; ``extent = ub - lb`` is the
  stride between consecutive elements in a ``(datatype, count)`` buffer.
  ``lb`` may be negative (hindexed/struct with negative displacements),
  and ``resized`` can set both arbitrarily.
* ``flatten(count)`` — the merged <offset, length> block list of ``count``
  elements, offsets relative to the buffer origin (the address passed to
  MPI_Send).  Cached per count, since the schemes flatten the same type on
  every operation and real implementations cache dataloops the same way.
* ``signature()`` — a hashable identity used by the receiver-datatype
  cache (Section 5.4.2).
"""

from __future__ import annotations


from repro.datatypes import flatten as flatten_mod
from repro.datatypes.flatten import Flattened

__all__ = [
    "BYTE",
    "CHAR",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "INT",
    "LONG",
    "Primitive",
    "SHORT",
]


class Datatype:
    """Base class for all MPI datatypes."""

    #: subclasses set these in __init__
    size: int
    lb: int
    ub: int

    def __init__(self):
        self._flat_cache: dict[int, Flattened] = {}

    @property
    def extent(self) -> int:
        return self.ub - self.lb

    @property
    def true_lb(self) -> int:
        """Lowest byte actually containing data (MPI_Type_get_true_extent);
        differs from ``lb`` for resized types."""
        flat = self.flatten(1)
        return int(flat.offsets[0]) if flat.nblocks else 0

    @property
    def true_ub(self) -> int:
        flat = self.flatten(1)
        if not flat.nblocks:
            return 0
        return int(flat.offsets[-1] + flat.lengths[-1])

    @property
    def true_extent(self) -> int:
        """Span of real data, gaps included but resizing padding excluded."""
        return self.true_ub - self.true_lb

    @property
    def is_contiguous(self) -> bool:
        """True when one element is a single block covering the extent."""
        flat = self.flatten(1)
        return flat.nblocks <= 1 and flat.size == self.extent

    # -- flattening -----------------------------------------------------

    def _flatten_one(self) -> Flattened:
        """Block list of a single element (offsets relative to origin).

        Subclasses implement this; ``flatten`` handles count repetition
        and caching.
        """
        raise NotImplementedError

    def flatten(self, count: int = 1) -> Flattened:
        """Merged block list of ``count`` consecutive elements.

        Cached twice: per instance (``_flat_cache``) and process-wide by
        ``(signature, count)`` — benchmark sweeps rebuild structurally
        identical datatypes for every measurement, and flattening is pure
        in the signature, so distinct instances share layouts.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        cached = self._flat_cache.get(count)
        if cached is not None:
            return cached
        key = (self.signature(), count)
        flat = flatten_mod.layout_cache_get(key)
        if flat is None:
            one = self._flat_cache.get(1)
            if one is None:
                one = flatten_mod.layout_cache_get((key[0], 1))
                if one is None:
                    one = self._flatten_one()
                    if one.size != self.size:
                        raise AssertionError(
                            f"{self!r}: flattened size {one.size} != "
                            f"declared {self.size}"
                        )
                    flatten_mod.layout_cache_put((key[0], 1), one)
                self._flat_cache[1] = one
            flat = one.repeat(count, self.extent) if count != 1 else one
            flatten_mod.layout_cache_put(key, flat)
        self._flat_cache[count] = flat
        return flat

    # -- typemap ----------------------------------------------------------

    def typemap(self):
        """The MPI typemap of one element: ``[(primitive_name, byte_offset),
        ...]`` in offset order.

        This is the *type signature* MPI matching is defined over — two
        datatypes match iff their typemaps list the same primitives in
        the same order (offsets aside).  Derived types recurse.
        """
        out = list(self._typemap_one())
        out.sort(key=lambda e: e[1])
        return out

    def _typemap_one(self):
        """Yield (primitive_name, offset) pairs; overridden by subclasses."""
        raise NotImplementedError

    def type_signature(self) -> tuple:
        """The ordered primitive sequence (offsets stripped) — what must
        agree between a matched send and receive."""
        return tuple(name for name, _off in self.typemap())

    # -- identity ----------------------------------------------------------

    def signature(self) -> tuple:
        """Hashable structural identity (for the datatype cache)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Datatype):
            return NotImplemented
        return self.signature() == other.signature()

    def __hash__(self) -> int:
        return hash(self.signature())

    def describe(self) -> str:
        """One-line human-readable description."""
        flat = self.flatten(1)
        return (
            f"{type(self).__name__}(size={self.size}, extent={self.extent}, "
            f"blocks={flat.nblocks})"
        )


class Primitive(Datatype):
    """A basic MPI type: MPI_INT, MPI_DOUBLE, ..."""

    def __init__(self, name: str, nbytes: int):
        super().__init__()
        if nbytes <= 0:
            raise ValueError("primitive size must be positive")
        self.name = name
        self.size = nbytes
        self.lb = 0
        self.ub = nbytes

    def _flatten_one(self) -> Flattened:
        return Flattened.from_blocks([(0, self.size)])

    def _typemap_one(self):
        yield (self.name, 0)

    def signature(self) -> tuple:
        return ("primitive", self.name, self.size)

    def __repr__(self) -> str:
        return f"MPI_{self.name}"


#: the MPI basic types used by the paper's benchmarks
CHAR = Primitive("CHAR", 1)
BYTE = Primitive("BYTE", 1)
SHORT = Primitive("SHORT", 2)
INT = Primitive("INT", 4)
LONG = Primitive("LONG", 8)
FLOAT = Primitive("FLOAT", 4)
DOUBLE = Primitive("DOUBLE", 8)
