"""Scheme interface and shared rendezvous machinery.

A scheme contributes two generator methods that plug into the rendezvous
protocol:

* ``sender(ctx, req)`` — runs on the sending rank after ``isend`` decides
  the message is a rendezvous message; must move all data and return when
  the *send* completes (user send buffer reusable).
* ``receiver(ctx, rreq, start)`` — spawned on the receiving rank when a
  ``RndvStart`` matches a posted receive; must return when all data is in
  the user receive buffer.

Shared helpers here implement the pieces several schemes have in common:
segment-buffer advertisement, the staged (segment-unpack) receiver used
by BC-SPUP and RWG-UP, and user-buffer registration through the OGR
planner + pin-down cache.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.mpi.messages import RndvReply, RndvStart, SegArrival
from repro.registration.ogr import plan_regions

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.context import RankContext
    from repro.mpi.requests import Request

__all__ = [
    "DatatypeScheme",
    "RegisteredUserBuffer",
    "predicted_handshake",
    "predicted_pipeline",
    "send_rndv_start",
    "staged_receiver",
]


def predicted_handshake(cm) -> dict:
    """Closed-form estimate of the rendezvous handshake's critical-path
    contribution, shared by every scheme's :meth:`predict_profile`.

    Two control messages (start + reply), each paying CPU control
    processing, a descriptor post, link latency and receive-side
    detection, plus the final completion delivery.  Keys match
    ``repro.obs.profile.CATEGORIES``.
    """
    return {
        "copy": 0.0,
        "wire": 2 * cm.wire_latency,
        "descriptor": 2 * (cm.post_descriptor + cm.hca_startup),
        "registration": 0.0,
        "resource-wait": 0.0,
        "protocol-wait": (
            2 * (cm.control_overhead + cm.channel_recv_overhead + cm.poll_cq)
            + cm.cqe_delay
        ),
    }


def predicted_pipeline(profile: dict, nseg: int, stage_times: dict) -> None:
    """Add the steady-state term of an ``nseg``-deep segment pipeline.

    Once a pipeline fills, each further segment costs one period of the
    slowest stage on the critical path; the first/last traversal of the
    other stages is charged separately by the caller.  ``stage_times``
    maps attribution category -> per-segment stage time.
    """
    if nseg <= 1 or not stage_times:
        return
    category, per_seg = max(stage_times.items(), key=lambda kv: kv[1])
    profile[category] += (nseg - 1) * per_seg


def send_rndv_start(ctx: "RankContext", req: "Request", scheme: str, meta=None):
    """Send the rendezvous start control message (generator)."""
    start = RndvStart(
        src=ctx.rank,
        tag=req.tag,
        msg_id=req.msg_id,
        nbytes=req.nbytes,
        scheme=scheme,
        seq=req.seq,
        meta=meta,
    )
    yield from ctx.ctrl_send(req.peer, start)
    return start


class RegisteredUserBuffer:
    """User-buffer registration served by the pin-down cache
    (Section 5.4.1).

    Three strategies, matching the section's discussion:

    * ``"ogr"`` (default) — Optimistic Group Registration: group blocks
      into covering regions by the gap/base-cost trade-off;
    * ``"per-block"`` — "registers only contiguous blocks.  A large
      number of buffer registration and deregistration events occur";
    * ``"whole"`` — "registers the whole buffer which covers the datatype
      message, including gaps ... at the cost of registering more space".

    On a cache hit any strategy costs nothing; with the cache disabled
    (Figure 14) every acquire registers and every release deregisters.
    """

    def __init__(self):
        self._mrs = []

    @classmethod
    def acquire(cls, ctx: "RankContext", base_addr: int, flat, mode: str = "ogr"):
        """Register the block list ``flat`` (offsets relative to
        ``base_addr``) per the chosen strategy (generator)."""
        self = cls()
        blocks = [(base_addr + off, length) for off, length in flat.blocks()]
        if not blocks:
            return self
        if mode == "ogr":
            plan = plan_regions(blocks, ctx.cm)
        elif mode == "per-block":
            plan = blocks
        elif mode == "whole":
            lo = min(a for a, _l in blocks)
            hi = max(a + l for a, l in blocks)
            plan = [(lo, hi - lo)]
        else:
            raise ValueError(f"unknown registration mode {mode!r}")
        for addr, length in plan:
            mr = yield from ctx.reg_cache.acquire(addr, length)
            self._mrs.append(mr)
        return self

    def lkey_for(self, addr: int, length: int) -> int:
        for mr in self._mrs:
            if mr.covers(addr, length):
                return mr.lkey
        raise KeyError(f"no registered region covers [{addr:#x}, +{length})")

    def regions(self) -> list[tuple[int, int, int]]:
        """(addr, length, rkey) advertisement for the remote side."""
        return [(mr.addr, mr.length, mr.rkey) for mr in self._mrs]

    def release(self, ctx: "RankContext"):
        """Return all regions to the cache (generator)."""
        for mr in self._mrs:
            yield from ctx.reg_cache.release(mr)
        self._mrs.clear()


class DatatypeScheme:
    """Base class: common naming and option plumbing."""

    #: registry name; subclasses override
    name = "base"
    #: constructor options accepted from Cluster(scheme_options=...)
    OPTIONS: tuple = ()
    #: True for the MPICH-derived eager path with staging copies
    eager_two_copy = False

    def __init__(self, ctx: "RankContext"):
        self.ctx = ctx

    def sender(self, ctx: "RankContext", req: "Request"):  # pragma: no cover
        raise NotImplementedError

    def receiver(self, ctx, rreq, start):  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def predict_profile(cls, cm, flat, nbytes: int) -> dict:
        """Closed-form prediction of this scheme's critical-path split.

        Returns predicted microseconds per attribution category (see
        ``repro.obs.profile.CATEGORIES``) for one rendezvous transfer of
        ``nbytes`` laid out as ``flat``, derived purely from
        :class:`~repro.ib.costmodel.CostModel` terms.  The cost-model
        explainer (``repro.obs.explain``) compares this against the
        measured critical path and flags divergence.
        """
        raise NotImplementedError  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} rank={self.ctx.rank}>"


def plan_segments(nbytes: int, segment_size: int) -> list[tuple[int, int]]:
    """Split [0, nbytes) into (lo, hi) segments of ``segment_size``."""
    nseg = max(1, math.ceil(nbytes / segment_size))
    return [
        (i * segment_size, min((i + 1) * segment_size, nbytes)) for i in range(nseg)
    ]


def staged_receiver(
    ctx: "RankContext",
    rreq: "Request",
    start: RndvStart,
    *,
    segment_unpack: bool = True,
):
    """The segment-unpack receiver shared by BC-SPUP and RWG-UP.

    Acquires one unpack segment buffer per expected segment, advertises
    them in the rendezvous reply, then unpacks each segment as its
    RDMA-write-with-immediate notification arrives (or, with
    ``segment_unpack=False`` — the Figure 12 ablation — only after the
    whole message has landed).
    """
    nbytes = start.nbytes
    segsize = (start.meta or {}).get("segsize") or ctx.cm.segment_size_for(nbytes)
    segs = plan_segments(nbytes, segsize)
    ctx.metrics.counter("scheme.segments", ctx.rank).inc(len(segs))
    t_acquire = ctx.sim.now
    bufs = yield from ctx.unpack_pool.acquire_block([hi - lo for lo, hi in segs])
    ctx.metrics.counter("scheme.buffer_wait_us", ctx.rank).inc(
        ctx.sim.now - t_acquire
    )
    reply = RndvReply(
        msg_id=start.msg_id,
        segments=tuple((b.addr, b.rkey, b.size) for b in bufs),
    )
    yield from ctx.rndv_reply(start, reply)
    cursor = rreq.cursor
    if cursor.total < nbytes:
        from repro.mpi.errors import TruncationError

        raise TruncationError(
            f"rank {ctx.rank}: receive buffer ({cursor.total} B) smaller "
            f"than incoming message ({nbytes} B)"
        )
    inbox = ctx.msg_inbox(start.msg_id)
    pending: list[SegArrival] = []
    arrived = 0
    while arrived < len(segs):
        note = yield inbox.get()
        assert isinstance(note, SegArrival)
        arrived += 1
        if segment_unpack:
            from repro.datatypes.pack import unpack_bytes

            nblocks = unpack_bytes(
                ctx.node.memory, rreq.addr, cursor, note.lo, note.hi,
                bufs[note.index].addr,
            )
            yield from ctx.charge_pack(note.hi - note.lo, nblocks, "unpack")
            yield from ctx.unpack_pool.release(bufs[note.index])
        else:
            pending.append(note)
    if not segment_unpack:
        # whole-message unpack after everything arrived: no overlap, and
        # the multi-megabyte staging footprint streams through the cache
        # cold (CostModel.deferred_unpack_penalty; Figure 12)
        from repro.datatypes.pack import unpack_bytes

        for note in sorted(pending, key=lambda s: s.index):
            nblocks = unpack_bytes(
                ctx.node.memory, rreq.addr, cursor, note.lo, note.hi,
                bufs[note.index].addr,
            )
            yield from ctx.charge_pack(
                note.hi - note.lo, nblocks, "unpack",
                penalty=ctx.cm.deferred_unpack_penalty,
            )
            yield from ctx.unpack_pool.release(bufs[note.index])
