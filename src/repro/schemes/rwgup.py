"""RDMA Write Gather with Unpack (RWG-UP, Sections 5.1, 7.3).

Sender-side packing is eliminated: the sender registers its user buffer
with Optimistic Group Registration and gathers the datatype's contiguous
blocks directly from user memory into the receiver's contiguous unpack
segment buffers — up to 64 blocks per descriptor (the Mellanox SGE
limit), so the per-operation startup is amortized across many blocks.
Immediate data on the last descriptor of each segment drives the
receiver's segment unpack (overlapping the remaining wire time).

``segment_unpack=False`` reproduces the Figure 12 ablation: the receiver
waits for the whole message before unpacking.
"""

from __future__ import annotations

from repro.ib.verbs import MAX_SGE, Opcode, SGE, SendWR
from repro.mpi.messages import RndvReply, SegArrival
from repro.schemes.base import (
    DatatypeScheme,
    RegisteredUserBuffer,
    plan_segments,
    send_rndv_start,
    staged_receiver,
)

__all__ = ["RWGUPScheme"]


class RWGUPScheme(DatatypeScheme):
    name = "rwg-up"
    OPTIONS = ("segment_unpack", "registration_mode")

    def __init__(self, ctx, segment_unpack: bool = True,
                 registration_mode: str = "ogr"):
        super().__init__(ctx)
        self.segment_unpack = segment_unpack
        self.registration_mode = registration_mode

    @classmethod
    def predict_profile(cls, cm, flat, nbytes):
        """No sender copy: per segment, datatype processing + gather posts
        feed the HCA; the receiver unpacks each segment on arrival."""
        import math

        from repro.schemes.base import predicted_handshake, predicted_pipeline

        p = predicted_handshake(cm)
        segsize = cm.segment_size_for(nbytes)
        nseg = max(1, math.ceil(nbytes / segsize))
        seg = min(segsize, max(nbytes, 1))
        bseg = max(1, math.ceil(max(1, flat.nblocks) / nseg))
        nchunks = max(1, math.ceil(bseg / MAX_SGE))
        # sender CPU per segment: build the gather list, post the chain
        desc_cpu = cm.dt_startup + bseg * cm.dt_per_block + cm.post_time(nchunks)
        # HCA per segment: per-descriptor startup, per-SGE gather, payload
        hca = (
            nchunks * cm.hca_startup
            + max(0, bseg - nchunks) * cm.hca_per_sge
            + cm.wire_time(seg)
        )
        unpack = cm.pack_time(seg, bseg)
        p["descriptor"] += desc_cpu
        p["copy"] += unpack  # last segment's unpack closes the operation
        p["wire"] += cm.wire_time(seg) + cm.wire_latency
        p["registration"] += cm.reg_time(flat.span)  # OGR over the user buffer
        predicted_pipeline(
            p, nseg, {"descriptor": desc_cpu, "wire": hca, "copy": unpack}
        )
        return p

    def sender(self, ctx, req):
        node = ctx.node
        cur = req.cursor
        nbytes = cur.total
        segsize = ctx.cm.segment_size_for(nbytes)
        segs = plan_segments(nbytes, segsize)
        ctx.metrics.counter("scheme.segments", ctx.rank).inc(len(segs))
        start = yield from send_rndv_start(
            ctx, req, self.name, meta={"segsize": segsize}
        )
        # register the user buffer while the handshake is in flight
        reg = yield from RegisteredUserBuffer.acquire(
            ctx, req.addr, cur.flat, mode=self.registration_mode
        )
        reply = yield from ctx.rndv_await_reply(req, start)
        assert isinstance(reply, RndvReply)
        completions = []
        for i, (lo, hi) in enumerate(segs):
            dst_addr, dst_rkey, cap = reply.segments[i]
            assert hi - lo <= cap
            slices = cur.slices(lo, hi)
            # datatype processing to build the gather list
            yield from ctx.node.cpu_work(
                ctx.cm.dt_startup + len(slices) * ctx.cm.dt_per_block, "dtproc"
            )
            # chunk into <= MAX_SGE gather entries per descriptor; only the
            # last descriptor of the segment carries the arrival notification
            chunks = [slices[k : k + MAX_SGE] for k in range(0, len(slices), MAX_SGE)]
            dst_off = 0
            for c, chunk in enumerate(chunks):
                sges = [
                    SGE(req.addr + off, length, reg.lkey_for(req.addr + off, length))
                    for off, length in chunk
                ]
                chunk_bytes = sum(length for _off, length in chunk)
                is_last_chunk = c == len(chunks) - 1
                wr_id = ctx.new_wr_id()
                if is_last_chunk:
                    done = ctx.send_completion(wr_id)
                    completions.append(done)
                    wr = SendWR(
                        Opcode.RDMA_WRITE_IMM,
                        sges=sges,
                        remote_addr=dst_addr + dst_off,
                        rkey=dst_rkey,
                        imm=i,
                        wr_id=wr_id,
                        payload=SegArrival(
                            req.msg_id, i, lo, hi, last=(i == len(segs) - 1)
                        ),
                    )
                else:
                    wr = SendWR(
                        Opcode.RDMA_WRITE,
                        sges=sges,
                        remote_addr=dst_addr + dst_off,
                        rkey=dst_rkey,
                        wr_id=wr_id,
                        signaled=False,
                    )
                yield from ctx.ctrl_qps[req.peer].post_send(wr)
                dst_off += chunk_bytes
        yield ctx.sim.all_of(completions)
        yield from reg.release(ctx)

    def receiver(self, ctx, rreq, start):
        yield from staged_receiver(
            ctx, rreq, start, segment_unpack=self.segment_unpack
        )
