"""The paper's datatype communication schemes.

* :mod:`~repro.schemes.generic` — the MPICH-derived baseline (Figure 1).
* :mod:`~repro.schemes.bcspup` — Buffer-Centric Segment Pack/Unpack
  (Section 4.2): pre-registered segment pools + pack/wire/unpack pipeline.
* :mod:`~repro.schemes.rwgup` — RDMA Write Gather with Unpack
  (Section 5.1): no sender-side copy; gather descriptors into receiver
  segment buffers; segment unpack.
* :mod:`~repro.schemes.prrs` — Pack with RDMA Read Scatter (Section 5.2;
  designed but not implemented in the paper — implemented here).
* :mod:`~repro.schemes.multiw` — Multiple RDMA Writes (Section 5.3):
  zero-copy; receiver ships its layout through the datatype cache;
  single- or list-descriptor post.
* :mod:`~repro.schemes.selector` — dynamic scheme choice (Section 6).

Every scheme moves *real bytes*; tests assert all schemes deliver
byte-identical results and differ only in simulated time.
"""

from repro.schemes.base import DatatypeScheme, send_rndv_start
from repro.schemes.buffers import PoolBuffer, SegmentPool
from repro.schemes.generic import GenericScheme
from repro.schemes.bcspup import BCSPUPScheme
from repro.schemes.rwgup import RWGUPScheme
from repro.schemes.prrs import PRRSScheme
from repro.schemes.multiw import MultiWScheme
from repro.schemes.hybrid import HybridScheme
from repro.schemes.selector import AdaptiveScheme

#: user-facing scheme names accepted by Cluster(scheme=...)
SCHEME_NAMES = (
    "generic", "bc-spup", "rwg-up", "p-rrs", "multi-w", "hybrid", "adaptive"
)

_FACTORIES = {
    "generic": GenericScheme,
    "bc-spup": BCSPUPScheme,
    "rwg-up": RWGUPScheme,
    "p-rrs": PRRSScheme,
    "multi-w": MultiWScheme,
    "hybrid": HybridScheme,
    "adaptive": AdaptiveScheme,
}


def make_scheme(name: str, ctx):
    """Instantiate a scheme for one rank, applying the cluster's
    scheme_options."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}") from None
    return factory(ctx, **_options_for(name, ctx.cluster.scheme_options))


def _options_for(name: str, options: dict) -> dict:
    """Filter cluster-wide scheme options to those the scheme accepts."""
    accepted = _FACTORIES[name].OPTIONS
    return {k: v for k, v in options.items() if k in accepted}


__all__ = [
    "AdaptiveScheme",
    "BCSPUPScheme",
    "DatatypeScheme",
    "GenericScheme",
    "HybridScheme",
    "MultiWScheme",
    "PRRSScheme",
    "PoolBuffer",
    "RWGUPScheme",
    "SCHEME_NAMES",
    "SegmentPool",
    "make_scheme",
    "send_rndv_start",
]
