"""The Generic scheme: MPICH-derived basic pack/unpack (Sections 3.1, 4.1).

The baseline every figure compares against.  For rendezvous messages:

* sender: obtain a dynamic pack buffer, pack the *whole* message, RDMA
  write it into the receiver's dynamic unpack buffer, notify;
* receiver: obtain a dynamic unpack buffer, advertise it, wait for all
  data, unpack the whole message.

Packing, communication and unpacking are fully serialized (the scheme's
defining flaw, Section 4.1), and two staging copies ride every message.

Buffer behaviour (Figure 2's two cases):

* ``fresh_buffers=False`` ("Datatype"): the staging buffer is persistent
  per rank — malloc/registration are paid once when it first grows to the
  needed size, modelling a warm malloc pool plus MVAPICH's pin-down cache
  hitting the same address every time.
* ``fresh_buffers=True`` ("DT + reg"): every operation allocates,
  registers, deregisters and frees its staging buffer — the paper's case
  where "different pack and unpack buffers are used in different datatype
  operations".

The eager path of this scheme stages small messages through a pack buffer
too (``eager_two_copy``), per Figure 1.
"""

from __future__ import annotations

from repro.datatypes.pack import pack_bytes, unpack_bytes
from repro.ib.verbs import Opcode, SGE, SendWR
from repro.mpi.messages import RndvReply, SegArrival
from repro.schemes.base import DatatypeScheme, send_rndv_start

__all__ = ["GenericScheme"]


class _StagePool:
    """Staging (pack or unpack) buffers with warm/fresh lifecycles.

    Warm mode models a hot malloc arena plus a pin-down cache that hits on
    address reuse: the first acquisition of a given size pays the full
    malloc (page faults) + registration; later acquisitions pop a free
    entry for the base malloc cost only.  Fresh mode tears everything down
    per operation.  A free-list (rather than one buffer) keeps concurrent
    operations — e.g. the 7 simultaneous sends of an alltoall — on
    distinct buffers.
    """

    def __init__(self):
        self._free: list[tuple[int, int, object]] = []  # (addr, size, mr)

    def acquire(self, node, nbytes: int, fresh: bool):
        """Generator returning an entry tuple (addr, size, mr)."""
        if fresh:
            addr = yield from node.malloc(nbytes)
            mr = yield from node.register(addr, nbytes)
            return (addr, nbytes, mr)
        for i, (addr, size, mr) in enumerate(self._free):
            if size >= nbytes:
                del self._free[i]
                # hot malloc: constant cost, no page faults, cached pin
                yield from node.cpu_work(node.cm.malloc_base, "malloc")
                return (addr, size, mr)
        addr = yield from node.malloc(nbytes)
        mr = yield from node.register(addr, nbytes)
        return (addr, nbytes, mr)

    def release(self, node, entry, fresh: bool):
        """Generator; only fresh buffers are torn down per operation."""
        addr, _size, mr = entry
        if fresh:
            yield from node.deregister(mr)
            yield from node.mfree(addr)
        else:
            yield from node.cpu_work(node.cm.free_base, "free")
            self._free.append(entry)


class GenericScheme(DatatypeScheme):
    name = "generic"
    OPTIONS = ("fresh_buffers",)
    eager_two_copy = True

    def __init__(self, ctx, fresh_buffers: bool = False):
        super().__init__(ctx)
        self.fresh_buffers = fresh_buffers
        self._pack_stage = _StagePool()
        self._unpack_stage = _StagePool()

    @classmethod
    def predict_profile(cls, cm, flat, nbytes):
        """Fully serialized: whole-message pack, one write, whole unpack
        (warm staging buffers — the Figure 2 "Datatype" case)."""
        from repro.schemes.base import predicted_handshake

        p = predicted_handshake(cm)
        b = max(1, flat.nblocks)
        p["copy"] += 2 * cm.pack_time(nbytes, b)  # pack + unpack, no overlap
        p["wire"] += cm.wire_time(nbytes) + cm.wire_latency
        p["descriptor"] += cm.post_descriptor + cm.hca_startup
        p["registration"] += 2 * cm.malloc_base  # warm stage acquire per side
        return p

    # -- sender -----------------------------------------------------------

    def sender(self, ctx, req):
        node = ctx.node
        cur = req.cursor
        nbytes = cur.total
        ctx.metrics.counter("scheme.segments", ctx.rank).inc()
        entry = yield from self._pack_stage.acquire(node, nbytes, self.fresh_buffers)
        addr, _size, mr = entry
        nblocks = pack_bytes(node.memory, req.addr, cur, 0, nbytes, addr)
        yield from ctx.charge_pack(nbytes, nblocks)
        start = yield from send_rndv_start(ctx, req, self.name)
        reply = yield from ctx.rndv_await_reply(req, start)
        assert isinstance(reply, RndvReply)
        dst_addr, dst_rkey, _cap = reply.segments[0]
        wr_id = ctx.new_wr_id()
        done = ctx.send_completion(wr_id)
        yield from ctx.ctrl_qps[req.peer].post_send(
            SendWR(
                Opcode.RDMA_WRITE_IMM,
                sges=[SGE(addr, nbytes, mr.lkey)],
                remote_addr=dst_addr,
                rkey=dst_rkey,
                imm=0,
                wr_id=wr_id,
                payload=SegArrival(req.msg_id, 0, 0, nbytes, last=True),
            )
        )
        yield done
        yield from self._pack_stage.release(node, entry, self.fresh_buffers)

    # -- receiver ----------------------------------------------------------

    def receiver(self, ctx, rreq, start):
        node = ctx.node
        nbytes = start.nbytes
        entry = yield from self._unpack_stage.acquire(
            node, nbytes, self.fresh_buffers
        )
        addr, _size, mr = entry
        reply = RndvReply(msg_id=start.msg_id, segments=((addr, mr.rkey, nbytes),))
        yield from ctx.rndv_reply(start, reply)
        note = yield ctx.msg_inbox(start.msg_id).get()
        assert isinstance(note, SegArrival) and note.last
        cur = rreq.cursor
        nblocks = unpack_bytes(node.memory, rreq.addr, cur, 0, nbytes, addr)
        yield from ctx.charge_pack(nbytes, nblocks, "unpack")
        yield from self._unpack_stage.release(node, entry, self.fresh_buffers)
