"""Multiple RDMA Writes (Multi-W, Sections 5.3, 5.4.2, 7.4).

Zero-copy datatype communication: every contiguous piece of the message
is RDMA-written directly from sender user memory into receiver user
memory.  Requirements handled here:

* both sides register their user buffers (OGR + pin-down cache);
* the receiver ships its flattened layout and region rkeys in the
  rendezvous reply, via the version-numbered datatype cache (the full
  representation rides the wire only on first use);
* the sender computes the **common refinement** of the two block lists —
  each RDMA write's source must be contiguous at the sender *and* its
  destination contiguous at the receiver — and posts one descriptor per
  refined piece;
* descriptors are posted one-by-one (``list_post=False``) or through the
  Mellanox extended list-post interface (default; Figure 13 measures the
  difference).

The last descriptor carries immediate data so the receiver learns the
message is complete (writes are ordered on an RC queue pair).
"""

from __future__ import annotations

from repro.datatypes.flatten import Flattened
from repro.ib.verbs import Opcode, SGE, SendWR
from repro.mpi.messages import CTRL_HEADER_BYTES, RndvReply, SegArrival
from repro.schemes.base import (
    DatatypeScheme,
    RegisteredUserBuffer,
    send_rndv_start,
)

__all__ = ["MultiWScheme", "refine"]


def refine(
    src_flat: Flattened, src_base: int, dst_flat: Flattened, dst_base: int
) -> list[tuple[int, int, int]]:
    """Common refinement of two equal-size block lists.

    Returns (src_addr, dst_addr, length) pieces in stream order; each
    piece is contiguous on both sides.
    """
    if src_flat.size != dst_flat.size:
        raise ValueError(
            f"type signatures disagree: sender has {src_flat.size} bytes, "
            f"receiver expects {dst_flat.size}"
        )
    pieces: list[tuple[int, int, int]] = []
    si = di = 0
    s_off = d_off = 0  # consumed bytes within the current blocks
    while si < src_flat.nblocks and di < dst_flat.nblocks:
        s_rem = int(src_flat.lengths[si]) - s_off
        d_rem = int(dst_flat.lengths[di]) - d_off
        take = min(s_rem, d_rem)
        pieces.append(
            (
                src_base + int(src_flat.offsets[si]) + s_off,
                dst_base + int(dst_flat.offsets[di]) + d_off,
                take,
            )
        )
        s_off += take
        d_off += take
        if s_off == int(src_flat.lengths[si]):
            si += 1
            s_off = 0
        if d_off == int(dst_flat.lengths[di]):
            di += 1
            d_off = 0
    return pieces


class MultiWScheme(DatatypeScheme):
    name = "multi-w"
    OPTIONS = ("list_post", "registration_mode", "use_dtype_cache")

    def __init__(self, ctx, list_post: bool = True,
                 registration_mode: str = "ogr", use_dtype_cache: bool = True):
        super().__init__(ctx)
        self.list_post = list_post
        self.registration_mode = registration_mode
        #: when False, the receiver resends the full flattened layout on
        #: every operation — the ablation for the Section 5.4.2 cache
        self.use_dtype_cache = use_dtype_cache

    @classmethod
    def predict_profile(cls, cm, flat, nbytes):
        """Zero copy: one descriptor per refined piece; descriptor startup
        and both-side registration buy the absence of any memcpy."""
        from repro.schemes.base import predicted_handshake

        p = predicted_handshake(cm)
        npieces = max(1, flat.nblocks)  # same layout both sides -> no refinement
        p["descriptor"] += (
            cm.dt_startup
            + npieces * cm.dt_per_block
            + cm.post_time(npieces, list_post=True)
            + npieces * cm.hca_startup
        )
        p["wire"] += cm.wire_time(nbytes) + cm.wire_latency
        p["registration"] += 2 * cm.reg_time(flat.span)  # both user buffers
        return p

    # -- sender -----------------------------------------------------------

    def sender(self, ctx, req):
        cur = req.cursor
        start = yield from send_rndv_start(ctx, req, self.name)
        # register the sender's user buffer while waiting for the reply
        reg = yield from RegisteredUserBuffer.acquire(
            ctx, req.addr, cur.flat, mode=self.registration_mode
        )
        reply = yield from ctx.rndv_await_reply(req, start)
        assert isinstance(reply, RndvReply)
        dst_flat = ctx.dt_cache.resolve(req.peer, reply.layout)
        dst_base = reply.meta["base"]
        dst_regions = reply.meta["regions"]  # [(addr, len, rkey)]

        def rkey_for(addr: int, length: int) -> int:
            for raddr, rlen, rkey in dst_regions:
                if raddr <= addr and addr + length <= raddr + rlen:
                    return rkey
            raise KeyError(f"no receiver region covers [{addr:#x}, +{length})")

        pieces = refine(cur.flat, req.addr, dst_flat, dst_base)
        ctx.metrics.counter("scheme.rdma_pieces", ctx.rank).inc(len(pieces))
        # datatype processing to build the descriptor list
        yield from ctx.node.cpu_work(
            ctx.cm.dt_startup + len(pieces) * ctx.cm.dt_per_block, "dtproc"
        )
        wrs = []
        last = len(pieces) - 1
        for k, (src, dst, length) in enumerate(pieces):
            if k == last:
                wr = SendWR(
                    Opcode.RDMA_WRITE_IMM,
                    sges=[SGE(src, length, reg.lkey_for(src, length))],
                    remote_addr=dst,
                    rkey=rkey_for(dst, length),
                    imm=k,
                    wr_id=ctx.new_wr_id(),
                    payload=SegArrival(req.msg_id, k, 0, cur.total, last=True),
                )
            else:
                wr = SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(src, length, reg.lkey_for(src, length))],
                    remote_addr=dst,
                    rkey=rkey_for(dst, length),
                    wr_id=ctx.new_wr_id(),
                    signaled=False,
                )
            wrs.append(wr)
        done = ctx.send_completion(wrs[-1].wr_id)
        qp = ctx.ctrl_qps[req.peer]
        if self.list_post:
            yield from qp.post_send_list(wrs)
        else:
            for wr in wrs:
                yield from qp.post_send(wr)
        yield done
        yield from reg.release(ctx)

    # -- receiver ----------------------------------------------------------

    def receiver(self, ctx, rreq, start):
        cur = rreq.cursor
        reg = yield from RegisteredUserBuffer.acquire(
            ctx, rreq.addr, cur.flat, mode=self.registration_mode
        )
        signature = (rreq.datatype.signature(), rreq.count)
        if self.use_dtype_cache:
            layout = ctx.type_registry.encode_for(
                start.src, signature, cur.flat, force_full=ctx.faults_active
            )
        else:
            # ablation: always ship the full representation
            idx, version = ctx.type_registry.intern(signature, cur.flat)
            layout = ("full", idx, version, cur.flat)
        # a full layout rides the wire at 16 bytes per block; a cached
        # reference costs only the header
        extra = cur.flat.wire_bytes if layout[0] == "full" else 0
        reply = RndvReply(
            msg_id=start.msg_id,
            layout=layout,
            meta={"base": rreq.addr, "regions": reg.regions()},
        )
        yield from ctx.rndv_reply(start, reply, nbytes=CTRL_HEADER_BYTES + extra)
        note = yield ctx.msg_inbox(start.msg_id).get()
        assert isinstance(note, SegArrival) and note.last
        yield from reg.release(ctx)
