"""Dynamic scheme selection (Section 6).

"Given a datatype communication, can we choose the best approach?"  The
selector applies the paper's decision procedure per message:

1. small messages go eager (decided upstream by the protocol);
2. the average and median contiguous-block sizes decide between the
   Copy-Reduced schemes: both at least ``multiw_block_threshold`` ("e.g.
   several KBytes") → **Multi-W** (zero copy pays off);
3. moderately sized blocks still amortize gather descriptors → **RWG-UP**;
4. tiny blocks (datatype processing and startup would dominate RDMA
   schemes) → **BC-SPUP**;
5. when registration cannot be amortized — the pin-down cache is disabled
   or a ``buffer_reuse=False`` hint was given (the MPI_Info mechanism the
   paper suggests) — prefer the Pack/Unpack-based BC-SPUP, whose
   registration needs are confined to the pre-registered pools;
6. (beyond the paper: its Section 10 future work) datatypes whose block
   sizes are *bimodal* — substantial bytes in huge blocks **and** many
   tiny blocks — go to the :class:`~repro.schemes.hybrid.HybridScheme`,
   which picks per piece.
"""

from __future__ import annotations

from repro.schemes.base import DatatypeScheme

__all__ = ["AdaptiveScheme", "apply_fault_fallback"]


def apply_fault_fallback(ctx, req, scheme: DatatypeScheme) -> DatatypeScheme:
    """Graceful degradation under fault injection (sender side).

    When the control QP toward the destination has taken repeated hard
    failures (``CostModel.fallback_hard_failures`` within the
    ``fallback_cooldown_us`` window), RDMA-heavy schemes stop paying
    recovery costs on every descriptor: the message falls back to the
    copy-based Generic path, whose single staged write minimizes exposure
    to the flaky QP.  The receiver follows automatically because it always
    runs the scheme named in the RndvStart.  Counted per fallback in
    ``scheme.fallbacks``.
    """
    if scheme.name == "generic" or ctx.rdma_healthy(req.peer):
        return scheme
    ctx.metrics.counter("scheme.fallbacks", ctx.rank).inc()
    return ctx.get_scheme("generic")


class AdaptiveScheme(DatatypeScheme):
    name = "adaptive"
    OPTIONS = (
        "multiw_block_threshold",
        "rwgup_block_threshold",
        "buffer_reuse",
        "enable_hybrid",
    )
    eager_two_copy = False

    def __init__(
        self,
        ctx,
        multiw_block_threshold: int = 4096,
        rwgup_block_threshold: int = 256,
        buffer_reuse: bool = True,
        enable_hybrid: bool = True,
    ):
        super().__init__(ctx)
        self.multiw_block_threshold = multiw_block_threshold
        self.rwgup_block_threshold = rwgup_block_threshold
        self.buffer_reuse = buffer_reuse
        self.enable_hybrid = enable_hybrid
        #: selection log for tests/reporting: msg_id -> chosen scheme name
        self.choices: dict[int, str] = {}

    @classmethod
    def predict_profile(cls, cm, flat, nbytes):
        """Predict for the scheme the default decision procedure would
        pick for this layout (hints and fault state are per-run inputs
        the closed form cannot see)."""
        from repro.schemes import _FACTORIES

        return _FACTORIES[cls.decide_static(flat)].predict_profile(cm, flat, nbytes)

    @staticmethod
    def decide_static(
        flat,
        multiw_block_threshold: int = 4096,
        rwgup_block_threshold: int = 256,
        enable_hybrid: bool = True,
    ) -> str:
        """The layout-only core of :meth:`_decide`, with the defaults and
        registration assumed amortizable — usable without a context."""
        if flat.is_contiguous:
            return "multi-w"
        if (
            enable_hybrid
            and flat.max_block >= multiw_block_threshold
            and flat.median_block < rwgup_block_threshold
        ):
            return "hybrid"
        if (
            flat.mean_block >= multiw_block_threshold
            and flat.median_block >= multiw_block_threshold
        ):
            return "multi-w"
        if flat.mean_block >= rwgup_block_threshold:
            return "rwg-up"
        return "bc-spup"

    def pick(self, ctx, req) -> DatatypeScheme:
        """Choose the concrete scheme for one message (sender side)."""
        name = self._decide(ctx, req)
        self.choices[req.msg_id] = name
        return ctx.get_scheme(name)

    def _decide(self, ctx, req) -> str:
        flat = req.cursor.flat
        if flat.is_contiguous:
            return "multi-w"  # single write, zero copy
        hint = ctx.buffer_hint(req.addr, max(req.datatype.extent * req.count, 1))
        buffer_reuse = self.buffer_reuse if hint is None else hint
        registration_amortizable = buffer_reuse and ctx.cluster.reg_cache_bytes > 0
        if not registration_amortizable:
            return "bc-spup"
        return self.decide_static(
            flat,
            self.multiw_block_threshold,
            self.rwgup_block_threshold,
            self.enable_hybrid,
        )

    # the adaptive scheme never runs a protocol itself; both sides always
    # execute the concrete scheme named in the RndvStart
    def sender(self, ctx, req):  # pragma: no cover - defensive
        raise RuntimeError("AdaptiveScheme.pick must route to a concrete scheme")

    def receiver(self, ctx, rreq, start):  # pragma: no cover - defensive
        raise RuntimeError("receiver side must use the scheme named in RndvStart")
