"""Hybrid per-piece scheme selection — the paper's future work.

Section 10: "We believe it is feasible to choose an appropriate [scheme]
to fit a given datatype communication ... **This selection is also
possible within different parts of a single datatype message.  We are
currently working in this direction.**"  This module implements that
direction:

1. the sender ships its flattened layout in the rendezvous start (through
   the same version-numbered datatype cache Multi-W uses for the receiver
   layout, so it rides the wire only once per datatype);
2. the receiver replies with its own layout, its registered user-buffer
   regions, and a set of unpack segment buffers;
3. **both sides independently compute the same common refinement** of the
   two layouts and split the pieces at ``split_threshold``:

   * pieces >= the threshold go as direct zero-copy RDMA writes into the
     receiver's user buffer (the Multi-W treatment — startup amortizes);
   * smaller pieces are packed, in stream order, into pool segments and
     RDMA-written into the receiver's segment buffers, where the arrival
     notification triggers an unpack of exactly those pieces (the BC-SPUP
     treatment — no per-piece startup);

4. a final zero-byte RDMA-write-with-immediate closes the message; RC
   ordering guarantees all data has landed when it arrives.

For a datatype like the paper's Figure 10 struct — block sizes spanning
4 B to 512 KB in one message — neither Multi-W nor BC-SPUP alone is right
for every block; the hybrid takes each piece's best path.
"""

from __future__ import annotations

from repro.ib.verbs import Opcode, SGE, SendWR
from repro.mpi.messages import CTRL_HEADER_BYTES, RndvReply, SegArrival
from repro.schemes.base import (
    DatatypeScheme,
    RegisteredUserBuffer,
)
from repro.schemes.multiw import refine

__all__ = ["HybridScheme", "split_pieces"]


def split_pieces(pieces, threshold: int):
    """Partition refined (src, dst, len) pieces into (direct, packed).

    Order within each partition is stream order, so both sides derive the
    same packed-byte layout deterministically.
    """
    direct = [p for p in pieces if p[2] >= threshold]
    packed = [p for p in pieces if p[2] < threshold]
    return direct, packed


class HybridScheme(DatatypeScheme):
    name = "hybrid"
    OPTIONS = ("split_threshold", "list_post")

    def __init__(self, ctx, split_threshold: int = 4096, list_post: bool = True):
        super().__init__(ctx)
        self.split_threshold = split_threshold
        self.list_post = list_post

    @classmethod
    def predict_profile(cls, cm, flat, nbytes):
        """Per-piece best path: big pieces take the Multi-W zero-copy
        treatment, small ones the BC-SPUP packed-segment treatment."""
        import math

        from repro.schemes.base import predicted_handshake, predicted_pipeline

        p = predicted_handshake(cm)
        threshold = 4096  # default split_threshold
        direct = [ln for _off, ln in flat.blocks() if ln >= threshold]
        packed = [ln for _off, ln in flat.blocks() if ln < threshold]
        direct_bytes = sum(direct)
        packed_bytes = sum(packed)
        p["descriptor"] += cm.dt_startup + flat.nblocks * cm.dt_per_block
        if direct:
            p["descriptor"] += cm.post_time(len(direct), list_post=True) + len(
                direct
            ) * cm.hca_startup
            p["wire"] += cm.wire_time(direct_bytes)
        if packed:
            segsize = cm.segment_size_for(max(packed_bytes, 1))
            nseg = max(1, math.ceil(packed_bytes / segsize))
            seg = min(segsize, max(packed_bytes, 1))
            bseg = max(1, math.ceil(len(packed) / nseg))
            pack = cm.pack_time(seg, bseg)
            p["copy"] += 2 * pack
            p["wire"] += cm.wire_time(seg)
            p["descriptor"] += nseg * cm.post_descriptor + cm.hca_startup
            predicted_pipeline(
                p, nseg, {"copy": pack, "wire": cm.descriptor_time(seg)}
            )
        # fin marker closes the message; both sides register user buffers
        # (sender only the direct blocks, receiver the whole layout)
        p["descriptor"] += cm.post_descriptor + cm.hca_startup
        p["wire"] += cm.wire_latency
        p["registration"] += cm.reg_time(flat.span) + (
            cm.reg_time(direct_bytes) if direct else 0.0
        )
        return p

    # -- sender -----------------------------------------------------------

    def sender(self, ctx, req):
        node = ctx.node
        cur = req.cursor
        # ship the sender layout (cached per datatype) in the start
        signature = (req.datatype.signature(), req.count)
        src_layout = ctx.type_registry.encode_for(
            req.peer, signature, cur.flat, force_full=ctx.faults_active
        )
        layout_bytes = cur.flat.wire_bytes if src_layout[0] == "full" else 0
        start = yield from self._send_start(ctx, req, src_layout, layout_bytes)
        reply = yield from ctx.rndv_await_reply(req, start)
        assert isinstance(reply, RndvReply)
        dst_flat = ctx.dt_cache.resolve(req.peer, reply.layout)
        dst_base = reply.meta["base"]
        dst_regions = reply.meta["regions"]
        pieces = refine(cur.flat, req.addr, dst_flat, dst_base)
        direct, packed = split_pieces(pieces, self.split_threshold)
        yield from ctx.node.cpu_work(
            ctx.cm.dt_startup + len(pieces) * ctx.cm.dt_per_block, "dtproc"
        )
        # register only what the direct path reads from user memory
        reg = None
        if direct:
            from repro.datatypes.flatten import Flattened

            direct_blocks = Flattened.from_blocks(
                sorted((src - req.addr, ln) for src, _dst, ln in direct)
            )
            reg = yield from RegisteredUserBuffer.acquire(ctx, req.addr, direct_blocks)

        def rkey_for(addr, length):
            for raddr, rlen, rkey in dst_regions:
                if raddr <= addr and addr + length <= raddr + rlen:
                    return rkey
            raise KeyError(f"no receiver region covers [{addr:#x}, +{length})")

        qp = ctx.ctrl_qps[req.peer]
        # 1. direct zero-copy writes for the big pieces
        if direct:
            wrs = [
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(src, ln, reg.lkey_for(src, ln))],
                    remote_addr=dst,
                    rkey=rkey_for(dst, ln),
                    signaled=False,
                )
                for src, dst, ln in direct
            ]
            if self.list_post:
                yield from qp.post_send_list(wrs)
            else:
                for wr in wrs:
                    yield from qp.post_send(wr)
        # 2. packed segments for the small pieces
        total_packed = sum(ln for _s, _d, ln in packed)
        seg_bufs = []
        if packed:
            segsize = ctx.cm.segment_size_for(max(total_packed, 1))
            seg_index = 0
            pos = 0
            while pos < total_packed:
                take = min(segsize, total_packed - pos)
                buf = yield from ctx.pack_pool.acquire()
                seg_bufs.append(buf)
                # pack pieces overlapping packed-byte range [pos, pos+take)
                nblocks = self._pack_range(node, packed, pos, take, buf.addr)
                yield from ctx.charge_pack(take, nblocks)
                dst_addr, dst_rkey, cap = reply.segments[seg_index]
                assert take <= cap
                wr_id = ctx.new_wr_id()
                done = ctx.send_completion(wr_id)
                yield from qp.post_send(
                    SendWR(
                        Opcode.RDMA_WRITE_IMM,
                        sges=[SGE(buf.addr, take, buf.lkey)],
                        remote_addr=dst_addr,
                        rkey=dst_rkey,
                        imm=seg_index,
                        wr_id=wr_id,
                        payload=SegArrival(
                            req.msg_id, seg_index, pos, pos + take, last=False
                        ),
                    )
                )
                ctx.sim.process(self._recycle(ctx, done, buf))
                pos += take
                seg_index += 1
        # 3. fin marker: zero-byte write-with-immediate closes the message
        wr_id = ctx.new_wr_id()
        fin_done = ctx.send_completion(wr_id)
        yield from qp.post_send(
            SendWR(
                Opcode.RDMA_WRITE_IMM,
                imm=0xFFFF,
                wr_id=wr_id,
                payload=SegArrival(req.msg_id, -1, 0, 0, last=True),
            )
        )
        yield fin_done
        if reg is not None:
            yield from reg.release(ctx)

    def _send_start(self, ctx, req, src_layout, layout_bytes):
        from repro.mpi.messages import RndvStart

        start = RndvStart(
            src=ctx.rank,
            tag=req.tag,
            msg_id=req.msg_id,
            nbytes=req.nbytes,
            scheme=self.name,
            seq=req.seq,
            meta={"layout": src_layout, "threshold": self.split_threshold},
        )
        yield from ctx.ctrl_send(
            req.peer, start, nbytes=CTRL_HEADER_BYTES + layout_bytes
        )
        return start

    @staticmethod
    def _pack_range(node, packed, pos, take, dest_addr):
        """Copy packed-byte range [pos, pos+take) of the small pieces
        (concatenated in stream order) into a contiguous buffer."""
        out = node.memory.view(dest_addr, take)
        written = 0
        walked = 0
        nblocks = 0
        for src, _dst, ln in packed:
            if walked + ln <= pos:
                walked += ln
                continue
            lo = max(0, pos - walked)
            hi = min(ln, pos + take - walked)
            if hi <= lo:
                break
            out[written : written + hi - lo] = node.memory.view(src + lo, hi - lo)
            written += hi - lo
            nblocks += 1
            walked += ln
            if written >= take:
                break
        return nblocks

    @staticmethod
    def _recycle(ctx, done, buf):
        yield done
        yield from ctx.pack_pool.release(buf)

    # -- receiver ----------------------------------------------------------

    def receiver(self, ctx, rreq, start):
        node = ctx.node
        cur = rreq.cursor
        src_flat = ctx.dt_cache.resolve(start.src, start.meta["layout"])
        threshold = start.meta["threshold"]
        pieces = refine(src_flat, 0, cur.flat, rreq.addr)
        _direct, packed = split_pieces(pieces, threshold)
        total_packed = sum(ln for _s, _d, ln in packed)
        # register the whole receive layout: direct pieces land in it, and
        # the registration must cover them (OGR groups as usual)
        reg = yield from RegisteredUserBuffer.acquire(ctx, rreq.addr, cur.flat)
        # advertise segment buffers for the packed portion
        bufs = []
        segments = ()
        if total_packed:
            segsize = ctx.cm.segment_size_for(total_packed)
            from repro.schemes.base import plan_segments

            segs = plan_segments(total_packed, segsize)
            bufs = yield from ctx.unpack_pool.acquire_block(
                [hi - lo for lo, hi in segs]
            )
            segments = tuple((b.addr, b.rkey, b.size) for b in bufs)
        signature = (rreq.datatype.signature(), rreq.count)
        layout = ctx.type_registry.encode_for(
            start.src, signature, cur.flat, force_full=ctx.faults_active
        )
        extra = cur.flat.wire_bytes if layout[0] == "full" else 0
        reply = RndvReply(
            msg_id=start.msg_id,
            segments=segments,
            layout=layout,
            meta={"base": rreq.addr, "regions": reg.regions()},
        )
        yield from ctx.rndv_reply(start, reply, nbytes=CTRL_HEADER_BYTES + extra)
        # consume segment arrivals (unpack small pieces) until the fin
        inbox = ctx.msg_inbox(start.msg_id)
        while True:
            note = yield inbox.get()
            assert isinstance(note, SegArrival)
            if note.last:
                break
            nblocks = self._unpack_range(
                node, packed, note.lo, note.hi - note.lo, bufs[note.index].addr
            )
            yield from ctx.charge_pack(note.hi - note.lo, nblocks, "unpack")
            yield from ctx.unpack_pool.release(bufs[note.index])
            bufs[note.index] = None
        for buf in bufs:
            if buf is not None:  # fin can outrun nothing on RC, but be safe
                yield from ctx.unpack_pool.release(buf)
        yield from reg.release(ctx)

    @staticmethod
    def _unpack_range(node, packed, pos, take, src_addr):
        """Scatter packed-byte range [pos, pos+take) into the small
        pieces' destination addresses."""
        src = node.memory.view(src_addr, take)
        consumed = 0
        walked = 0
        nblocks = 0
        for _src, dst, ln in packed:
            if walked + ln <= pos:
                walked += ln
                continue
            lo = max(0, pos - walked)
            hi = min(ln, pos + take - walked)
            if hi <= lo:
                break
            node.memory.view(dst + lo, hi - lo)[:] = src[consumed : consumed + hi - lo]
            consumed += hi - lo
            nblocks += 1
            walked += ln
            if consumed >= take:
                break
        return nblocks
