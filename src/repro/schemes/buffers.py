"""Pre-registered pack/unpack segment-buffer pools (Sections 4.2, 7.2).

Each pool is one large buffer allocated and registered at MPI_Init time
(uncharged, like the paper's 20 MB allocation "during MPI initialization
time"), divided into fixed 128 KB segment buffers.  Acquisition from the
pool is free; when the pool is exhausted — or disabled for the Figure 14
worst case — the scheme "falls back to the dynamic pack/unpack allocation
and registration as in the basic pack/unpack scheme" (Section 4.3.3):
malloc + register on acquire, deregister + free on release, all charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ib.memory import MemoryRegion

__all__ = ["PoolBuffer", "SegmentPool"]


@dataclass
class _SharedBlock:
    """Refcount for a whole-message dynamic chunk carved into segments."""

    mr: MemoryRegion
    base: int
    remaining: int


@dataclass
class PoolBuffer:
    """One acquired segment buffer."""

    addr: int
    size: int
    lkey: int
    rkey: int
    dynamic: bool
    _mr: Optional[MemoryRegion] = None  # set for dynamic buffers
    _shared: Optional[_SharedBlock] = None  # set for carved block pieces


class SegmentPool:
    """A pool of pre-registered, page-aligned segment buffers."""

    def __init__(self, node, total_bytes: int, segment_size: int, *,
                 enabled: bool = True, growth_limit: Optional[int] = None,
                 name: str = ""):
        """``growth_limit`` bounds how much the pool may grow by absorbing
        dynamically allocated fallback buffers on release (Section 4.3.3:
        extras "can be added into the pack/unpack buffer pool.  When the
        total size exceeds some threshold, some of these extra ...
        buffers may be deregistered").  Defaults to 2x the initial size;
        demand beyond that keeps paying dynamic allocation + registration
        per segment — which is exactly what makes buffer hold time matter
        (the whole-message unpack of Figure 12 holds segments longer,
        drains the pool, and eats registration churn).
        """
        self.node = node
        self.segment_size = segment_size
        self.enabled = enabled
        self.name = name
        self._free: list[int] = []
        self._mr: Optional[MemoryRegion] = None
        #: dynamic buffers absorbed into the pool: addr -> PoolBuffer
        self._absorbed: dict[int, "PoolBuffer"] = {}
        self.total_bytes = total_bytes if enabled else 0
        self.growth_limit = (
            growth_limit if growth_limit is not None else 2 * total_bytes
        )
        #: statistics
        self.pool_acquires = 0
        self.dynamic_acquires = 0
        if enabled:
            nseg = max(1, total_bytes // segment_size)
            region = node.memory.alloc(nseg * segment_size, align=node.cm.page_size)
            self._mr = node.memory.register(region, nseg * segment_size)
            self._free = [region + i * segment_size for i in range(nseg)]

    @property
    def available(self) -> int:
        return len(self._free)

    def acquire(self):
        """Get a segment buffer (generator returning :class:`PoolBuffer`).

        Free when served from the pool; charged malloc+registration on
        dynamic fallback.
        """
        if self._free:
            self.pool_acquires += 1
            addr = self._free.pop()
            absorbed = self._absorbed.get(addr)
            if absorbed is not None:
                return absorbed
            return PoolBuffer(
                addr, self.segment_size, self._mr.lkey, self._mr.rkey, dynamic=False
            )
        self.dynamic_acquires += 1
        addr = yield from self.node.malloc(
            self.segment_size, align=self.node.cm.page_size
        )
        mr = yield from self.node.register(addr, self.segment_size)
        return PoolBuffer(
            addr, self.segment_size, mr.lkey, mr.rkey, dynamic=True, _mr=mr
        )

    def acquire_block(self, sizes):
        """Acquire one buffer per entry of ``sizes`` (generator).

        With the pool enabled this is a loop of :meth:`acquire`.  With the
        pool disabled — the Figure 14 worst case — it falls back to "the
        dynamic pack/unpack allocation and registration as in the basic
        pack/unpack scheme" (Section 4.3.3): ONE whole-message malloc +
        registration, carved into per-segment pieces that share the MR and
        are deregistered/freed when the last piece is released.
        """
        if self.enabled:
            bufs = []
            for size in sizes:
                buf = yield from self.acquire()
                bufs.append(buf)
            return bufs
        self.dynamic_acquires += len(sizes)
        align = 64
        offsets, total = [], 0
        for size in sizes:
            offsets.append(total)
            total += -(-size // align) * align
        addr = yield from self.node.malloc(max(total, 1), align=self.node.cm.page_size)
        mr = yield from self.node.register(addr, max(total, 1))
        shared = _SharedBlock(mr=mr, base=addr, remaining=len(sizes))
        return [
            PoolBuffer(addr + off, size, mr.lkey, mr.rkey, dynamic=True,
                       _mr=mr, _shared=shared)
            for off, size in zip(offsets, sizes)
        ]

    def release(self, buf: PoolBuffer):
        """Return a segment buffer (generator).

        Dynamic fallback buffers are absorbed into the pool while the pool
        is under its growth limit (so a burst pays registration once);
        beyond the limit they are deregistered and freed (charged).
        Pieces of a carved block release their shared chunk when the last
        piece comes back.
        """
        if buf._shared is not None:
            buf._shared.remaining -= 1
            if buf._shared.remaining == 0:
                yield from self.node.deregister(buf._shared.mr)
                yield from self.node.mfree(buf._shared.base)
            return
        if buf.dynamic:
            grown = self.total_bytes + self.segment_size
            if self.enabled and grown <= self.growth_limit:
                self.total_bytes += self.segment_size
                absorbed = PoolBuffer(
                    buf.addr, buf.size, buf.lkey, buf.rkey, dynamic=False, _mr=buf._mr
                )
                self._absorbed[buf.addr] = absorbed
                self._free.append(buf.addr)
            else:
                yield from self.node.deregister(buf._mr)
                yield from self.node.mfree(buf.addr)
        else:
            self._free.append(buf.addr)
