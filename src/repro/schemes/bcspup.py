"""Buffer-Centric Segment Pack/Unpack (BC-SPUP, Sections 4.2-4.3, 7.2).

The message is split into segments (static rule of Section 7.2).  For
each segment the sender acquires a pre-registered pack buffer from the
pool, packs the segment, and RDMA-writes it with immediate data into the
receiver's advertised unpack segment buffer.  The pipeline emerges from
the simulation's resource model:

* while the HCA injects segment *i*, the CPU packs segment *i+1*;
* on the receiver, each immediate-data completion triggers the unpack of
  that segment while later segments are still on the wire (Figure 3).

Pack buffers are recycled as their send completions arrive (a dedicated
recycler consumes local CQEs), so a long message cycles through a few
buffers instead of draining the pool.
"""

from __future__ import annotations

from repro.datatypes.pack import pack_bytes
from repro.ib.verbs import Opcode, SGE, SendWR
from repro.mpi.messages import RndvReply, SegArrival
from repro.schemes.base import (
    DatatypeScheme,
    plan_segments,
    send_rndv_start,
    staged_receiver,
)

__all__ = ["BCSPUPScheme"]


class BCSPUPScheme(DatatypeScheme):
    name = "bc-spup"
    OPTIONS = ("segment_size",)

    def __init__(self, ctx, segment_size=None):
        """``segment_size`` overrides the static rule of Section 7.2 —
        "Tuning on the segment size is quite important; however, as a
        proof-of-concept implementation, we simplify the selection".  The
        segment-size ablation benchmark sweeps this."""
        super().__init__(ctx)
        self.segment_size = segment_size

    @classmethod
    def predict_profile(cls, cm, flat, nbytes):
        """Segmented pack/wire/unpack pipeline: the slowest stage repeats
        per segment; one traversal of each other stage frames it."""
        import math

        from repro.schemes.base import predicted_handshake, predicted_pipeline

        p = predicted_handshake(cm)
        segsize = cm.segment_size_for(nbytes)
        nseg = max(1, math.ceil(nbytes / segsize))
        seg = min(segsize, max(nbytes, 1))
        bseg = max(1, math.ceil(max(1, flat.nblocks) / nseg))
        pack = cm.pack_time(seg, bseg)
        p["copy"] += 2 * pack  # first pack + last unpack
        p["wire"] += cm.wire_time(seg) + cm.wire_latency
        p["descriptor"] += nseg * cm.post_descriptor + cm.hca_startup
        predicted_pipeline(
            p, nseg, {"copy": pack, "wire": cm.descriptor_time(seg)}
        )
        return p

    def sender(self, ctx, req):
        node = ctx.node
        cur = req.cursor
        nbytes = cur.total
        if self.segment_size is not None:
            # the pool's buffers bound the maximum supported segment size
            # (128 KB in the paper's implementation, Section 7.2)
            segsize = min(self.segment_size, ctx.cm.segment_size, max(nbytes, 1))
        else:
            segsize = ctx.cm.segment_size_for(nbytes)
        segs = plan_segments(nbytes, segsize)
        ctx.metrics.counter("scheme.segments", ctx.rank).inc(len(segs))
        start = yield from send_rndv_start(
            ctx, req, self.name, meta={"segsize": segsize}
        )
        reply = yield from ctx.rndv_await_reply(req, start)
        assert isinstance(reply, RndvReply)
        assert len(reply.segments) >= len(segs)
        t_acquire = ctx.sim.now
        bufs = yield from ctx.pack_pool.acquire_block([hi - lo for lo, hi in segs])
        ctx.metrics.counter("scheme.buffer_wait_us", ctx.rank).inc(
            ctx.sim.now - t_acquire
        )
        completions = []
        for i, (lo, hi) in enumerate(segs):
            buf = bufs[i]
            nblocks = pack_bytes(node.memory, req.addr, cur, lo, hi, buf.addr)
            yield from ctx.charge_pack(hi - lo, nblocks)
            dst_addr, dst_rkey, cap = reply.segments[i]
            assert hi - lo <= cap
            wr_id = ctx.new_wr_id()
            done = ctx.send_completion(wr_id)
            completions.append(done)
            yield from ctx.ctrl_qps[req.peer].post_send(
                SendWR(
                    Opcode.RDMA_WRITE_IMM,
                    sges=[SGE(buf.addr, hi - lo, buf.lkey)],
                    remote_addr=dst_addr,
                    rkey=dst_rkey,
                    imm=i,
                    wr_id=wr_id,
                    payload=SegArrival(
                        req.msg_id, i, lo, hi, last=(i == len(segs) - 1)
                    ),
                )
            )
            # recycle the pack buffer once the HCA is done with it, without
            # stalling the pipeline
            ctx.sim.process(self._recycle(ctx, done, buf))
        # the send completes when every segment has left the pack buffers;
        # time spent here is pipeline drain (CPU done, HCA still injecting)
        t_drain = ctx.sim.now
        yield ctx.sim.all_of(completions)
        ctx.metrics.counter("scheme.drain_wait_us", ctx.rank).inc(
            ctx.sim.now - t_drain
        )

    @staticmethod
    def _recycle(ctx, done, buf):
        yield done
        yield from ctx.pack_pool.release(buf)

    def receiver(self, ctx, rreq, start):
        yield from staged_receiver(ctx, rreq, start, segment_unpack=True)
