"""Pack with RDMA Read Scatter (P-RRS, Section 5.2).

The mirror image of RWG-UP: the *sender* packs segments into its
pre-registered pack buffers and advertises each with a control message;
the *receiver* RDMA-reads each packed segment, scattering it directly
into the contiguous blocks of its user buffer (read-scatter), then acks
so the sender can recycle the pack buffer.

The paper designs but does not implement this scheme, predicting it is
"a little more costly to pipeline" (a control message per segment
triggers each read) and slower because RDMA read trails RDMA write — our
cost model reflects both, and the ablation benchmark quantifies the gap
against RWG-UP.  It remains attractive for asymmetric communication
where only the receiver side is noncontiguous.
"""

from __future__ import annotations

from repro.datatypes.pack import pack_bytes
from repro.ib.verbs import MAX_SGE, Opcode, SGE, SendWR
from repro.mpi.messages import RndvReply, SegAck, SegReady
from repro.schemes.base import (
    DatatypeScheme,
    RegisteredUserBuffer,
    plan_segments,
    send_rndv_start,
)

__all__ = ["PRRSScheme"]


class PRRSScheme(DatatypeScheme):
    name = "p-rrs"
    OPTIONS = ()

    @classmethod
    def predict_profile(cls, cm, flat, nbytes):
        """Sender packs segments; receiver RDMA-read-scatters each one
        straight into user memory (no unpack copy), paying the slower
        read path and a control message per segment."""
        import math

        from repro.ib.verbs import MAX_SGE
        from repro.schemes.base import predicted_handshake, predicted_pipeline

        p = predicted_handshake(cm)
        segsize = cm.segment_size_for(nbytes)
        nseg = max(1, math.ceil(nbytes / segsize))
        seg = min(segsize, max(nbytes, 1))
        bseg = max(1, math.ceil(max(1, flat.nblocks) / nseg))
        nchunks = max(1, math.ceil(bseg / MAX_SGE))
        pack = cm.pack_time(seg, bseg)
        read = seg / cm.rdma_read_bandwidth + cm.rdma_read_extra
        p["copy"] += pack
        p["wire"] += read + cm.wire_latency
        p["descriptor"] += (
            cm.dt_startup
            + bseg * cm.dt_per_block
            + cm.post_time(nchunks)
            + nchunks * cm.hca_startup
        )
        p["registration"] += cm.reg_time(flat.span)  # receiver user buffer
        # the per-segment SegReady control round trip is protocol machinery
        p["protocol-wait"] += nseg * (cm.control_overhead + cm.poll_cq)
        predicted_pipeline(p, nseg, {"copy": pack, "wire": read})
        return p

    def sender(self, ctx, req):
        node = ctx.node
        cur = req.cursor
        nbytes = cur.total
        segsize = ctx.cm.segment_size_for(nbytes)
        segs = plan_segments(nbytes, segsize)
        start = yield from send_rndv_start(
            ctx, req, self.name, meta={"segsize": segsize, "nseg": len(segs)}
        )
        # P-RRS has no reply in the fault-free protocol (SegReady control
        # messages drive the receiver directly), but a lost start would
        # leave both sides waiting forever — so under fault injection the
        # receiver acks the start and the sender gates on that ack with
        # the usual timeout/retransmit machinery.
        if ctx.faults_active:
            ack = yield from ctx.rndv_await_reply(req, start)
            assert isinstance(ack, RndvReply)
        inbox = ctx.msg_inbox(req.msg_id)
        blocks = yield from ctx.pack_pool.acquire_block([hi - lo for lo, hi in segs])
        bufs = {}
        for i, (lo, hi) in enumerate(segs):
            buf = blocks[i]
            bufs[i] = buf
            nblocks = pack_bytes(node.memory, req.addr, cur, lo, hi, buf.addr)
            yield from ctx.charge_pack(hi - lo, nblocks)
            yield from ctx.ctrl_send(
                req.peer,
                SegReady(
                    req.msg_id, i, lo, hi, buf.addr, buf.rkey,
                    last=(i == len(segs) - 1),
                ),
            )
        # wait for every segment's ack, recycling buffers as they come
        acked = 0
        while acked < len(segs):
            note = yield inbox.get()
            assert isinstance(note, SegAck)
            yield from ctx.pack_pool.release(bufs.pop(note.index))
            acked += 1

    def receiver(self, ctx, rreq, start):
        cur = rreq.cursor
        if cur.total < start.nbytes:
            from repro.mpi.errors import TruncationError

            raise TruncationError("receive buffer smaller than incoming message")
        if ctx.faults_active:
            # ack the start so the sender's timeout machinery can tell a
            # lost start from a slow receiver (see sender above)
            yield from ctx.rndv_reply(start, RndvReply(msg_id=start.msg_id))
        reg = yield from RegisteredUserBuffer.acquire(ctx, rreq.addr, cur.flat)
        inbox = ctx.msg_inbox(start.msg_id)
        nseg = start.meta["nseg"]
        done = 0
        while done < nseg:
            ready = yield inbox.get()
            assert isinstance(ready, SegReady)
            slices = cur.slices(ready.lo, ready.hi)
            yield from ctx.node.cpu_work(
                ctx.cm.dt_startup + len(slices) * ctx.cm.dt_per_block, "dtproc"
            )
            # read-scatter: one RDMA read per <= MAX_SGE scatter entries
            src_off = 0
            reads = []
            for k in range(0, len(slices), MAX_SGE):
                chunk = slices[k : k + MAX_SGE]
                sges = [
                    SGE(rreq.addr + off, length, reg.lkey_for(rreq.addr + off, length))
                    for off, length in chunk
                ]
                chunk_bytes = sum(length for _o, length in chunk)
                wr_id = ctx.new_wr_id()
                reads.append(ctx.send_completion(wr_id))
                yield from ctx.ctrl_qps[start.src].post_send(
                    SendWR(
                        Opcode.RDMA_READ,
                        sges=sges,
                        remote_addr=ready.addr + src_off,
                        rkey=ready.rkey,
                        wr_id=wr_id,
                    )
                )
                src_off += chunk_bytes
            yield ctx.sim.all_of(reads)
            yield from ctx.ctrl_send(
                start.src, SegAck(start.msg_id, ready.index, ready.last)
            )
            done += 1
        yield from reg.release(ctx)
