"""MPI message matching: posted-receive queue and unexpected queue.

MPI ordering semantics: messages between a (sender, receiver) pair with
the same tag match posted receives in the order they were sent; posted
receives are considered in the order they were posted.  ``ANY_TAG``
receives match any tag from the given source.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

__all__ = ["ANY_TAG", "MatchEngine"]

ANY_TAG = -1


class MatchEngine:
    """Posted-receive and unexpected-message queues for one rank."""

    def __init__(self):
        self._posted: deque = deque()
        self._unexpected: deque = deque()

    # -- receiver side ----------------------------------------------------

    def post_recv(self, rreq) -> Optional[Any]:
        """Offer a receive request.  If an unexpected message matches, it
        is removed and returned; otherwise the request is queued."""
        for i, envelope in enumerate(self._unexpected):
            if self._matches(rreq, envelope):
                del self._unexpected[i]
                return envelope
        self._posted.append(rreq)
        return None

    def cancel_recv(self, rreq) -> bool:
        """Remove a posted receive; True if it was still queued."""
        try:
            self._posted.remove(rreq)
            return True
        except ValueError:
            return False

    # -- arrival side ---------------------------------------------------------

    def arrive(self, envelope) -> Optional[Any]:
        """Offer an inbound message envelope (has ``.src`` and ``.tag``).

        If a posted receive matches, it is removed and returned; otherwise
        the envelope joins the unexpected queue.
        """
        for i, rreq in enumerate(self._posted):
            if self._matches(rreq, envelope):
                del self._posted[i]
                return rreq
        self._unexpected.append(envelope)
        return None

    @staticmethod
    def _matches(rreq, envelope) -> bool:
        return rreq.source == envelope.src and (
            rreq.tag == ANY_TAG or rreq.tag == envelope.tag
        )

    # -- introspection ----------------------------------------------------------

    @property
    def posted_count(self) -> int:
        return len(self._posted)

    @property
    def unexpected_count(self) -> int:
        return len(self._unexpected)
