"""Send/receive request objects.

A :class:`Request` is what ``isend``/``irecv`` return: a handle carrying
the message description plus a completion event.  The schemes use the
same objects internally — the fields below are the union of what the
protocol sides need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datatypes.base import Datatype
from repro.datatypes.segment import SegmentCursor
from repro.simulator import Event

__all__ = ["Request"]


@dataclass
class Request:
    """An in-flight point-to-point operation."""

    kind: str  # "send" | "recv"
    rank: int  # owning rank
    peer: int  # dest (send) or source (recv)
    tag: int
    addr: int  # user buffer origin
    datatype: Datatype
    count: int
    done: Event = None  # triggers on completion
    msg_id: int = 0
    seq: int = 0  # per (src, dst) ordering sequence
    #: set on completion of a recv: actual source/tag (for ANY_TAG)
    status_src: Optional[int] = None
    status_tag: Optional[int] = None

    def __post_init__(self):
        self._cursor: Optional[SegmentCursor] = None

    @property
    def source(self) -> int:
        """Matching-side alias (recv requests)."""
        return self.peer

    @property
    def nbytes(self) -> int:
        return self.datatype.size * self.count

    @property
    def cursor(self) -> SegmentCursor:
        """Lazily-built segment cursor over (datatype, count)."""
        if self._cursor is None:
            self._cursor = SegmentCursor(self.datatype, self.count)
        return self._cursor

    @property
    def is_contiguous(self) -> bool:
        flat = self.datatype.flatten(1)
        return (flat.nblocks <= 1 and flat.size == self.datatype.extent) or (
            self.count <= 1 and flat.nblocks <= 1
        )

    @property
    def completed(self) -> bool:
        return self.done is not None and self.done.triggered
