"""Collective operations over point-to-point datatype communication.

The paper's Section 8.3 observation: collectives that are implemented
over point-to-point sends of derived datatypes (MPI_Alltoall among them,
per Thakur & Gropp [28]) inherit whatever the point-to-point datatype
path delivers — so the schemes' improvements carry over.  These
implementations deliberately use the plain pairwise/point-to-point
algorithms of MPICH-1.2-era code.

All functions are generators taking the calling rank's
:class:`~repro.mpi.context.RankContext` first.
"""

from __future__ import annotations

from repro.datatypes.base import Datatype

__all__ = [
    "allgather",
    "allreduce",
    "alltoall",
    "alltoallv",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "scatter",
]

_BARRIER_TAG = -1001
_BCAST_TAG = -1002
_ALLGATHER_TAG = -1003
_ALLTOALL_TAG = -1004
_GATHER_TAG = -1005
_SCATTER_TAG = -1006
_REDUCE_TAG = -1007

#: zero-byte datatype for barrier messages
from repro.datatypes import contiguous, BYTE

_EMPTY = contiguous(0, BYTE)


def barrier(ctx):
    """Dissemination barrier with zero-byte messages (log2(n) rounds)."""
    n = ctx.nranks
    if n == 1:
        return
        yield  # pragma: no cover
    # every rank needs a dummy 1-byte buffer for the empty messages
    scratch = getattr(ctx, "_barrier_scratch", None)
    if scratch is None:
        scratch = ctx.alloc(8)
        ctx._barrier_scratch = scratch
    dist = 1
    while dist < n:
        dest = (ctx.rank + dist) % n
        src = (ctx.rank - dist) % n
        sreq = yield from ctx.isend(scratch, _EMPTY, 0, dest, _BARRIER_TAG - dist)
        rreq = yield from ctx.irecv(scratch, _EMPTY, 0, src, _BARRIER_TAG - dist)
        yield from ctx.waitall([sreq, rreq])
        dist *= 2


def bcast(ctx, addr: int, datatype: Datatype, count: int, root: int):
    """Binomial-tree broadcast."""
    n = ctx.nranks
    if n == 1:
        return
        yield  # pragma: no cover
    vrank = (ctx.rank - root) % n
    # receive from parent
    if vrank != 0:
        mask = 1
        while not vrank & mask:
            mask <<= 1
        parent = (vrank - mask + root) % n
        yield from ctx.recv(addr, datatype, count, parent, _BCAST_TAG)
        mask >>= 1
    else:
        mask = 1
        while mask * 2 < n:
            mask *= 2
    # forward to children
    reqs = []
    while mask:
        child_v = vrank + mask
        if child_v < n:
            child = (child_v + root) % n
            req = yield from ctx.isend(addr, datatype, count, child, _BCAST_TAG)
            reqs.append(req)
        mask >>= 1
    if reqs:
        yield from ctx.waitall(reqs)


def allgather(ctx, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount):
    """Ring allgather: n-1 steps, each rank forwards the next chunk.

    ``recvaddr`` holds ``nranks`` consecutive (recvtype, recvcount)
    chunks, chunk ``i`` receiving rank ``i``'s contribution.
    """
    n = ctx.nranks
    chunk_extent = recvtype.extent * recvcount

    def chunk_addr(i):
        return recvaddr + i * chunk_extent

    # place own contribution (local copy through the self path)
    sreq = yield from ctx.isend(sendaddr, sendtype, sendcount, ctx.rank, _ALLGATHER_TAG)
    rreq = yield from ctx.irecv(
        chunk_addr(ctx.rank), recvtype, recvcount, ctx.rank, _ALLGATHER_TAG
    )
    yield from ctx.waitall([sreq, rreq])
    if n == 1:
        return
    right = (ctx.rank + 1) % n
    left = (ctx.rank - 1) % n
    for step in range(n - 1):
        send_chunk = (ctx.rank - step) % n
        recv_chunk = (ctx.rank - step - 1) % n
        sreq = yield from ctx.isend(
            chunk_addr(send_chunk), recvtype, recvcount, right,
            _ALLGATHER_TAG - 1 - step,
        )
        rreq = yield from ctx.irecv(
            chunk_addr(recv_chunk), recvtype, recvcount, left, _ALLGATHER_TAG - 1 - step
        )
        yield from ctx.waitall([sreq, rreq])


def gather(ctx, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount, root):
    """Linear gather to ``root``; chunk ``i`` of the root's receive buffer
    receives rank ``i``'s contribution."""
    n = ctx.nranks
    if ctx.rank == root:
        reqs = []
        chunk_extent = recvtype.extent * recvcount
        for src in range(n):
            req = yield from ctx.irecv(
                recvaddr + src * chunk_extent, recvtype, recvcount, src, _GATHER_TAG
            )
            reqs.append(req)
        sreq = yield from ctx.isend(sendaddr, sendtype, sendcount, root, _GATHER_TAG)
        reqs.append(sreq)
        yield from ctx.waitall(reqs)
    else:
        yield from ctx.send(sendaddr, sendtype, sendcount, root, _GATHER_TAG)


def scatter(ctx, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount, root):
    """Linear scatter from ``root``; chunk ``i`` of the root's send buffer
    goes to rank ``i``."""
    n = ctx.nranks
    if ctx.rank == root:
        reqs = []
        chunk_extent = sendtype.extent * sendcount
        for dst in range(n):
            req = yield from ctx.isend(
                sendaddr + dst * chunk_extent, sendtype, sendcount, dst, _SCATTER_TAG
            )
            reqs.append(req)
        rreq = yield from ctx.irecv(recvaddr, recvtype, recvcount, root, _SCATTER_TAG)
        reqs.append(rreq)
        yield from ctx.waitall(reqs)
    else:
        yield from ctx.recv(recvaddr, recvtype, recvcount, root, _SCATTER_TAG)


def _apply_op(ctx, op, accum_addr, contrib_addr, count, np_dtype):
    """Combine a contribution into an accumulator buffer, charging the
    CPU for the arithmetic as a copy-rate pass."""
    import numpy as np

    itemsize = np.dtype(np_dtype).itemsize
    acc = ctx.node.memory.view(accum_addr, count * itemsize).view(np_dtype)
    con = ctx.node.memory.view(contrib_addr, count * itemsize).view(np_dtype)
    if op == "sum":
        acc += con
    elif op == "max":
        import numpy as np

        np.maximum(acc, con, out=acc)
    elif op == "min":
        import numpy as np

        np.minimum(acc, con, out=acc)
    elif op == "prod":
        acc *= con
    else:
        raise ValueError(f"unknown reduction op {op!r}")
    yield from ctx.node.copy_work(count * itemsize, 0, f"reduce-{op}")


def reduce(ctx, sendaddr, recvaddr, count, np_dtype, op, root):
    """Binomial-tree reduction of ``count`` elements of ``np_dtype``.

    Contiguous data only (reductions on derived datatypes reduce their
    packed streams; pack first with :meth:`RankContext.user_pack`).
    """
    import numpy as np

    n = ctx.nranks
    itemsize = np.dtype(np_dtype).itemsize
    nbytes = count * itemsize
    dt = contiguous(nbytes, BYTE)
    accum = ctx.alloc(max(nbytes, 1))
    ctx.node.memory.view(accum, nbytes)[:] = ctx.node.memory.view(sendaddr, nbytes)
    scratch = ctx.alloc(max(nbytes, 1))
    vrank = (ctx.rank - root) % n
    mask = 1
    while mask < n:
        if vrank & mask:
            parent = ((vrank & ~mask) + root) % n
            yield from ctx.send(accum, dt, 1, parent, _REDUCE_TAG)
            break
        partner_v = vrank | mask
        if partner_v < n:
            partner = (partner_v + root) % n
            yield from ctx.recv(scratch, dt, 1, partner, _REDUCE_TAG)
            yield from _apply_op(ctx, op, accum, scratch, count, np_dtype)
        mask <<= 1
    if ctx.rank == root:
        ctx.node.memory.view(recvaddr, nbytes)[:] = ctx.node.memory.view(accum, nbytes)
        yield from ctx.node.copy_work(nbytes, 0, "reduce-copyout")
    ctx.node.memory.free(accum)
    ctx.node.memory.free(scratch)


def allreduce(ctx, sendaddr, recvaddr, count, np_dtype, op):
    """Reduce to rank 0, then broadcast (the classic two-phase allreduce)."""
    import numpy as np

    yield from reduce(ctx, sendaddr, recvaddr, count, np_dtype, op, root=0)
    nbytes = count * np.dtype(np_dtype).itemsize
    yield from bcast(ctx, recvaddr, contiguous(nbytes, BYTE), 1, root=0)


#: Bruck cutoffs, *measured on this cost model* (see tests/mpi/test_bruck):
#: the fully-pipelined eager path makes pairwise exchange cheap (~4.5 us
#: of sender CPU per message, wire overlapped), so Bruck's O(n log n)
#: extra copies only pay off for near-empty chunks at larger process
#: counts — much later than MPICH's cutoff on real hardware, where
#: per-message protocol costs are higher.
BRUCK_THRESHOLD = 16
BRUCK_MIN_RANKS = 32


def alltoall(ctx, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount):
    """MPI_Alltoall with measured algorithm selection.

    Tiny per-destination payloads at scale use Bruck's algorithm
    (log2(n) rounds of aggregated messages — fewer startups); everything
    else uses the pairwise irecv/isend exchange the paper's Figure 11
    measures.
    """
    nbytes = sendtype.size * sendcount
    if ctx.nranks >= BRUCK_MIN_RANKS and 0 < nbytes <= BRUCK_THRESHOLD:
        yield from _alltoall_bruck(
            ctx, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
        )
    else:
        yield from _alltoall_pairwise(
            ctx, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
        )


def _alltoall_bruck(ctx, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount):
    """Bruck's algorithm: ceil(log2 n) rounds; round k ships every chunk
    whose (rotated) destination index has bit k set, aggregated into one
    message — n startups become log n at the price of extra copies."""
    import math

    from repro.datatypes import BYTE, contiguous

    n = ctx.nranks
    nbytes = sendtype.size * sendcount
    send_extent = sendtype.extent * sendcount
    # local rotation: staging[i] = packed chunk for rank (rank + i) % n
    staging = ctx.alloc(n * nbytes)
    scratch = ctx.alloc(n * nbytes)  # outbound aggregate per round
    rscratch = ctx.alloc(n * nbytes)  # inbound aggregate per round
    for i in range(n):
        dst = (ctx.rank + i) % n
        yield from ctx.user_pack(
            sendaddr + dst * send_extent, sendtype, sendcount, staging + i * nbytes
        )
    rounds = max(1, math.ceil(math.log2(n)))
    for k in range(rounds):
        bit = 1 << k
        idxs = [i for i in range(n) if i & bit]
        if not idxs:
            continue
        # gather the selected chunks into scratch, exchange, scatter back
        for j, i in enumerate(idxs):
            ctx.node.memory.view(scratch + j * nbytes, nbytes)[:] = (
                ctx.node.memory.view(staging + i * nbytes, nbytes)
            )
        yield from ctx.node.copy_work(len(idxs) * nbytes, len(idxs), "bruck")
        blk = contiguous(len(idxs) * nbytes, BYTE)
        dest = (ctx.rank + bit) % n
        src = (ctx.rank - bit) % n
        sreq = yield from ctx.isend(scratch, blk, 1, dest, _ALLTOALL_TAG - 10 - k)
        rreq = yield from ctx.irecv(rscratch, blk, 1, src, _ALLTOALL_TAG - 10 - k)
        yield from ctx.waitall([sreq, rreq])
        for j, i in enumerate(idxs):
            ctx.node.memory.view(staging + i * nbytes, nbytes)[:] = (
                ctx.node.memory.view(rscratch + j * nbytes, nbytes)
            )
        yield from ctx.node.copy_work(len(idxs) * nbytes, len(idxs), "bruck")
    # inverse rotation + unpack: staging[i] now holds the chunk FROM rank
    # (rank - i) % n
    recv_extent = recvtype.extent * recvcount
    for i in range(n):
        src = (ctx.rank - i) % n
        yield from ctx.user_unpack(
            recvaddr + src * recv_extent, recvtype, recvcount, staging + i * nbytes
        )
    ctx.node.memory.free(staging)
    ctx.node.memory.free(scratch)
    ctx.node.memory.free(rscratch)


def _alltoall_pairwise(
    ctx, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
):
    """Pairwise-irecv/isend alltoall (the MPICH medium-message algorithm).

    Chunk ``i`` of the send buffer goes to rank ``i``; chunk ``i`` of the
    receive buffer comes from rank ``i``.  Chunks are laid out every
    ``extent * count`` bytes.
    """
    n = ctx.nranks
    send_extent = sendtype.extent * sendcount
    recv_extent = recvtype.extent * recvcount
    reqs = []
    # post all receives first (from rank+1, rank+2, ... wrapping) so
    # rendezvous starts always find a matched receive
    for step in range(n):
        src = (ctx.rank + step) % n
        req = yield from ctx.irecv(
            recvaddr + src * recv_extent, recvtype, recvcount, src, _ALLTOALL_TAG
        )
        reqs.append(req)
    for step in range(n):
        dst = (ctx.rank - step) % n
        req = yield from ctx.isend(
            sendaddr + dst * send_extent, sendtype, sendcount, dst, _ALLTOALL_TAG
        )
        reqs.append(req)
    yield from ctx.waitall(reqs)


def alltoallv(
    ctx,
    sendaddr,
    sendtype,
    sendcounts,
    sdispls,
    recvaddr,
    recvtype,
    recvcounts,
    rdispls,
):
    """MPI_Alltoallv: per-peer counts and byte displacements.

    ``sendcounts[i]`` elements of ``sendtype`` starting ``sdispls[i]``
    bytes into the send buffer go to rank ``i``; symmetric on receive.
    Zero-count exchanges are skipped entirely (no message).
    """
    n = ctx.nranks
    if not (len(sendcounts) == len(sdispls) == len(recvcounts) == len(rdispls) == n):
        raise ValueError("alltoallv argument arrays must have nranks entries")
    reqs = []
    for step in range(n):
        src = (ctx.rank + step) % n
        if recvcounts[src] > 0:
            req = yield from ctx.irecv(
                recvaddr + rdispls[src], recvtype, recvcounts[src], src, _ALLTOALL_TAG
            )
            reqs.append(req)
    for step in range(n):
        dst = (ctx.rank - step) % n
        if sendcounts[dst] > 0:
            req = yield from ctx.isend(
                sendaddr + sdispls[dst], sendtype, sendcounts[dst], dst, _ALLTOALL_TAG
            )
            reqs.append(req)
    yield from ctx.waitall(reqs)
