"""MPI-2 one-sided communication (RMA) over the simulated verbs.

The paper's datatype-cache mechanism (Section 5.4.2) was originally
proposed by Träff et al. [14] "in the context of performing MPI-2
one-sided communication" — this module closes that loop by implementing
windows, put, get and fence on the same substrate.

One-sided semantics map directly onto the verbs:

* :func:`win_create` — collective; every rank registers its window region
  and allgathers the (base, rkey) advertisement.
* :func:`put` — the *origin* specifies both its own and the target's
  datatype (MPI RMA semantics: the target datatype is interpreted against
  the window base, no target CPU involved).  The origin computes the
  common refinement and issues one RDMA write per piece — exactly the
  Multi-W machinery, minus the handshake, because the layout is known
  locally.
* :func:`get` — the mirror: one RDMA read per refined piece.
* :func:`fence` — completes all locally-issued operations, then runs a
  barrier; reliable-connection ordering makes remotely-written data
  visible before the barrier messages that follow it on the same HCA.
* :func:`lock` / :func:`unlock` — passive-target exclusive/shared locks
  served by the target's progress engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.datatypes import Datatype, SegmentCursor
from repro.ib.verbs import Opcode, SGE, SendWR
from repro.schemes.multiw import refine

__all__ = ["Window", "fence", "get", "lock", "put", "unlock", "win_create"]

_WIN_TAG = -1100


@dataclass
class Window:
    """One rank's handle on a created RMA window."""

    ctx: object
    win_id: int
    base: int  # local window base address
    size: int
    mr: object  # local registration
    #: per-rank remote advertisement: rank -> (base, size, rkey)
    remote: dict = field(default_factory=dict)
    #: completion events of operations issued since the last fence
    _pending: list = field(default_factory=list)

    def target_region(self, rank: int) -> tuple[int, int, int]:
        return self.remote[rank]


def win_create(ctx, base: int, size: int):
    """Collective window creation (generator returning a Window).

    Registers [base, base+size) locally (charged) and exchanges the
    advertisement with every rank via an allgather of control-sized eager
    messages.  The window id is the per-rank creation ordinal — creation
    is collective, so every rank derives the same id for the same window.
    """
    count = ctx.__dict__.get("_rma_win_count", 0) + 1
    ctx._rma_win_count = count
    win_id = count
    mr = yield from ctx.node.register(base, max(size, 1))
    win = Window(ctx=ctx, win_id=win_id, base=base, size=size, mr=mr)
    # allgather the advertisements through 16-byte eager messages
    import numpy as np

    from repro.datatypes import contiguous, LONG

    n = ctx.nranks
    adv_dt = contiguous(3, LONG)
    send = ctx.alloc(24)
    ctx.node.memory.view(send, 24).view(np.int64)[:] = [base, size, mr.rkey]
    recv = ctx.alloc(24 * n)
    yield from ctx.allgather(send, adv_dt, 1, recv, adv_dt, 1)
    table = ctx.node.memory.view(recv, 24 * n).view(np.int64).reshape(n, 3)
    for r in range(n):
        win.remote[r] = (int(table[r, 0]), int(table[r, 1]), int(table[r, 2]))
    ctx.node.memory.free(send)
    ctx.node.memory.free(recv)
    return win


def _check_target(win: Window, rank: int, flat, target_disp: int) -> tuple[int, int]:
    tbase, tsize, trkey = win.remote[rank]
    if flat.nblocks:
        end = int(flat.offsets[-1] + flat.lengths[-1])
        if target_disp < 0 or target_disp + end > tsize:
            raise ValueError(
                f"RMA access [{target_disp}, {target_disp + end}) outside "
                f"window of size {tsize} at rank {rank}"
            )
    return tbase + target_disp, trkey


def put(
    ctx,
    win: Window,
    target_rank: int,
    origin_addr: int,
    origin_dt: Datatype,
    origin_count: int = 1,
    target_disp: int = 0,
    target_dt: Optional[Datatype] = None,
    target_count: Optional[int] = None,
):
    """One-sided put (generator).  Completes locally at the next fence."""
    target_dt = target_dt or origin_dt
    target_count = target_count if target_count is not None else origin_count
    origin_flat = SegmentCursor(origin_dt, origin_count).flat
    target_flat = SegmentCursor(target_dt, target_count).flat
    tbase, trkey = _check_target(win, target_rank, target_flat, target_disp)
    if target_rank == ctx.rank:
        # local put: a straight refinement copy, charged at copy rate
        pieces = refine(origin_flat, origin_addr, target_flat, tbase)
        for src, dst, ln in pieces:
            ctx.node.memory.view(dst, ln)[:] = ctx.node.memory.view(src, ln)
        yield from ctx.node.copy_work(origin_flat.size, len(pieces), "rma-local")
        return
    from repro.schemes.base import RegisteredUserBuffer

    reg = yield from RegisteredUserBuffer.acquire(ctx, origin_addr, origin_flat)
    pieces = refine(origin_flat, origin_addr, target_flat, tbase)
    yield from ctx.node.cpu_work(
        ctx.cm.dt_startup + len(pieces) * ctx.cm.dt_per_block, "dtproc"
    )
    wrs = []
    for k, (src, dst, ln) in enumerate(pieces):
        wrs.append(
            SendWR(
                Opcode.RDMA_WRITE,
                sges=[SGE(src, ln, reg.lkey_for(src, ln))],
                remote_addr=dst,
                rkey=trkey,
                wr_id=ctx.new_wr_id(),
                signaled=(k == len(pieces) - 1),
            )
        )
    done = ctx.send_completion(wrs[-1].wr_id)
    yield from ctx.ctrl_qps[target_rank].post_send_list(wrs)
    win._pending.append((done, reg))


def get(
    ctx,
    win: Window,
    target_rank: int,
    origin_addr: int,
    origin_dt: Datatype,
    origin_count: int = 1,
    target_disp: int = 0,
    target_dt: Optional[Datatype] = None,
    target_count: Optional[int] = None,
):
    """One-sided get (generator).  Data is usable after the next fence."""
    target_dt = target_dt or origin_dt
    target_count = target_count if target_count is not None else origin_count
    origin_flat = SegmentCursor(origin_dt, origin_count).flat
    target_flat = SegmentCursor(target_dt, target_count).flat
    tbase, trkey = _check_target(win, target_rank, target_flat, target_disp)
    if target_rank == ctx.rank:
        pieces = refine(target_flat, tbase, origin_flat, origin_addr)
        for src, dst, ln in pieces:
            ctx.node.memory.view(dst, ln)[:] = ctx.node.memory.view(src, ln)
        yield from ctx.node.copy_work(origin_flat.size, len(pieces), "rma-local")
        return
    from repro.schemes.base import RegisteredUserBuffer

    reg = yield from RegisteredUserBuffer.acquire(ctx, origin_addr, origin_flat)
    # pieces: (target_src, origin_dst, len); one read per piece
    pieces = refine(target_flat, tbase, origin_flat, origin_addr)
    yield from ctx.node.cpu_work(
        ctx.cm.dt_startup + len(pieces) * ctx.cm.dt_per_block, "dtproc"
    )
    events = []
    for src, dst, ln in pieces:
        wr_id = ctx.new_wr_id()
        events.append(ctx.send_completion(wr_id))
        yield from ctx.ctrl_qps[target_rank].post_send(
            SendWR(
                Opcode.RDMA_READ,
                sges=[SGE(dst, ln, reg.lkey_for(dst, ln))],
                remote_addr=src,
                rkey=trkey,
                wr_id=wr_id,
            )
        )
    all_done = ctx.sim.all_of(events)
    win._pending.append((all_done, reg))


def fence(ctx, win: Window):
    """Complete all outstanding operations on the window, then barrier."""
    pending, win._pending = win._pending, []
    for done, reg in pending:
        yield done
        yield from reg.release(ctx)
    yield from ctx.barrier()


# ----------------------------------------------------------------------
# passive target synchronization
# ----------------------------------------------------------------------

def lock(ctx, win: Window, target_rank: int, exclusive: bool = True):
    """Acquire the target's window lock (generator).

    Served by the target's progress engine through the generic control
    path.  Conservatively, shared locks are treated as exclusive (all
    epochs serialize at the target) — correct, if pessimistic, for
    MPI_LOCK_SHARED readers.
    """
    ctx._msg_seq += 1
    msg_id = ctx.rank * 1_000_000 + ctx._msg_seq
    inbox = ctx.msg_inbox(msg_id)
    if target_rank == ctx.rank:
        grant = yield ctx._win_locks(win.win_id).acquire()
        win.__dict__.setdefault("_local_grants", []).append(grant)
        return
    yield from ctx.ctrl_send(
        target_rank, _LockReq(msg_id, ctx.rank, win.win_id, exclusive)
    )
    reply = yield inbox.get()
    assert isinstance(reply, _LockGrant)
    ctx.close_inbox(msg_id)


def unlock(ctx, win: Window, target_rank: int):
    """Release the target's window lock; completes pending ops first."""
    pending, win._pending = win._pending, []
    for done, reg in pending:
        yield done
        yield from reg.release(ctx)
    if target_rank == ctx.rank:
        grants = win.__dict__.get("_local_grants", [])
        ctx._win_locks(win.win_id).release(grants.pop())
        return
    yield from ctx.ctrl_send(target_rank, _LockRelease(ctx.rank, win.win_id))


@dataclass(frozen=True)
class _LockReq:
    msg_id: int
    origin: int
    win_id: int
    exclusive: bool


@dataclass(frozen=True)
class _LockGrant:
    msg_id: int


@dataclass(frozen=True)
class _LockRelease:
    origin: int
    win_id: int
