"""MPI-like runtime over the simulated InfiniBand verbs.

Rebuilds the MVAPICH structure the paper modifies (Section 3.1):

* **Eager protocol** for small messages — data staged through pre-posted
  internal buffers; the paper's optimized small-datatype path packs
  directly into them (Section 7.1, Figure 7).
* **Rendezvous protocol** for large messages — a handshake (start /
  reply / data / notify) into which the datatype schemes of
  :mod:`repro.schemes` plug their sender and receiver sides.
* **Message matching** — posted-receive and unexpected queues matched on
  (source, tag) in FIFO order, with MPI_ANY_TAG support.
* **Collectives** — Alltoall (pairwise point-to-point, the shape measured
  in Figure 11), plus Bcast / Allgather / Barrier.

Entry point: :class:`repro.mpi.world.Cluster`.  Rank programs are Python
generators receiving a :class:`repro.mpi.context.RankContext`::

    from repro import Cluster, types

    def rank0(mpi):
        buf = mpi.alloc_array((128, 4096), "int32")
        dt = types.vector(128, 8, 4096, types.INT)
        yield from mpi.send(buf.addr, dt, 1, dest=1, tag=0)

    def rank1(mpi):
        buf = mpi.alloc_array((128, 4096), "int32")
        dt = types.vector(128, 8, 4096, types.INT)
        yield from mpi.recv(buf.addr, dt, 1, source=0, tag=0)

    result = Cluster(2, scheme="bc-spup").run([rank0, rank1])
"""

from repro.mpi.context import ANY_TAG, RankContext
from repro.mpi.errors import MPIError, RankError, TruncationError
from repro.mpi.datatype_cache import DatatypeCache, ReceiverTypeRegistry
from repro.mpi.requests import Request
from repro.mpi.world import Cluster, RunResult

__all__ = [
    "ANY_TAG",
    "Cluster",
    "MPIError",
    "RankError",
    "TruncationError",
    "DatatypeCache",
    "RankContext",
    "ReceiverTypeRegistry",
    "Request",
    "RunResult",
]
