"""Protocol message headers.

These dataclasses ride the simulated wire as descriptor payloads; their
``WIRE_BYTES`` estimates size the control traffic (charged as
``extra_bytes`` on the SEND descriptors that carry them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "CTRL_HEADER_BYTES",
    "Credit",
    "EagerHeader",
    "RndvFin",
    "RndvReply",
    "RndvStart",
    "SegArrival",
]

#: nominal wire size of a bare protocol header
CTRL_HEADER_BYTES = 64


@dataclass(frozen=True)
class EagerHeader:
    """Header of an eager-protocol data message."""

    src: int
    tag: int
    nbytes: int
    seq: int


@dataclass(frozen=True)
class RndvStart:
    """Rendezvous start: sender announces a (matched or future) message.

    ``scheme`` names the sender's chosen datatype scheme so the receiver
    runs the matching receiver side.  ``meta`` carries scheme-specific
    extras (e.g. the P-RRS pack-buffer advertisement).
    """

    src: int
    tag: int
    msg_id: int
    nbytes: int
    scheme: str
    seq: int
    meta: Any = None


@dataclass(frozen=True)
class RndvReply:
    """Rendezvous reply: receiver's buffer advertisement.

    ``segments`` is a list of (addr, rkey, capacity) unpack buffers for
    the staging schemes; ``layout`` the receiver's flattened datatype (or
    a datatype-cache reference) for Multi-W; ``meta`` scheme extras.
    """

    msg_id: int
    segments: tuple = ()
    layout: Any = None
    meta: Any = None


@dataclass(frozen=True)
class SegArrival:
    """Rides RDMA_WRITE_IMM: segment ``index`` carrying packed bytes
    [lo, hi) of message ``msg_id`` has landed."""

    msg_id: int
    index: int
    lo: int
    hi: int
    last: bool


@dataclass(frozen=True)
class RndvFin:
    """Sender -> receiver: all data for ``msg_id`` has been written (used
    by schemes that do not notify per segment)."""

    msg_id: int
    meta: Any = None


@dataclass(frozen=True)
class SegReady:
    """P-RRS: sender -> receiver, a packed segment is ready to be RDMA
    read from (addr, rkey) on the sender."""

    msg_id: int
    index: int
    lo: int
    hi: int
    addr: int
    rkey: int
    last: bool


@dataclass(frozen=True)
class SegAck:
    """P-RRS: receiver -> sender, segment ``index`` has been read; its
    pack buffer may be recycled."""

    msg_id: int
    index: int
    last: bool


@dataclass(frozen=True)
class Credit:
    """Receiver -> sender eager-slot flow-control credit."""

    count: int


@dataclass(frozen=True)
class RingCredit:
    """Receiver -> sender: these RDMA-eager ring slots are free again
    (the polled eager channel's flow control, [19])."""

    slots: tuple
