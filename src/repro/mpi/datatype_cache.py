"""Receiver-datatype cache for the Multi-W scheme (Section 5.4.2).

MPI datatypes have local semantics only, so in Multi-W the receiver must
ship its flattened layout to the sender before the sender can target RDMA
writes.  To avoid resending the (possibly large) representation on every
operation, the paper extends Träff's datatype cache [14]:

* the **receiver** assigns each datatype a small ``index`` and a
  ``version``; when a datatype is freed and its index reused, the version
  increments;
* the **sender** caches layouts keyed by (receiver rank, index); a
  version mismatch is detected by the receiver, which then resends the
  full representation ("the sender simply replaces the obsolete datatype
  in its cache with the new one").

Protocol encoding used by the scheme: the rendezvous reply's ``layout``
field is either ``("full", index, version, flattened, total_wire_bytes)``
on first use / version change, or ``("ref", index, version)`` afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes.flatten import Flattened

__all__ = ["DatatypeCache", "ReceiverTypeRegistry"]


@dataclass
class _TypeSlot:
    signature: tuple
    flattened: Flattened
    version: int


class ReceiverTypeRegistry:
    """Receiver-side index/version assignment.

    ``max_indices`` forces index reuse (as a real implementation's finite
    handle table would), exercising the version-bump path.
    """

    def __init__(self, max_indices: int = 256, metrics=None, node=None):
        self.max_indices = max_indices
        self._by_signature: dict[tuple, int] = {}
        self._slots: dict[int, _TypeSlot] = {}
        self._next = 0
        #: index reuses forced by the finite handle table (version bumps)
        self.evictions = 0
        self._metrics = metrics
        self._node = node
        #: indices the peer ranks have been sent, per peer: peer -> {index: version}
        self._peer_state: dict[int, dict[int, int]] = {}

    def intern(self, signature: tuple, flattened: Flattened) -> tuple[int, int]:
        """Get (index, version) for a datatype, assigning or reusing an
        index as needed."""
        idx = self._by_signature.get(signature)
        if idx is not None:
            slot = self._slots[idx]
            return idx, slot.version
        if len(self._slots) < self.max_indices:
            idx = self._next
            self._next += 1
            self._slots[idx] = _TypeSlot(signature, flattened, version=1)
        else:
            # reuse the lowest index (simple deterministic policy) with a
            # version bump — the paper's free-and-reuse case
            idx = min(self._slots)
            old = self._slots[idx]
            # the old signature may already be gone if the slot was freed
            self._by_signature.pop(old.signature, None)
            self._slots[idx] = _TypeSlot(signature, flattened, old.version + 1)
            self.evictions += 1
            if self._metrics is not None:
                self._metrics.counter("dtype.registry.evictions", self._node).inc()
        self._by_signature[signature] = idx
        return idx, self._slots[idx].version

    def free(self, signature: tuple) -> None:
        """MPI_Type_free: drop the signature; index becomes reusable with
        a version bump on next intern."""
        idx = self._by_signature.pop(signature, None)
        if idx is not None:
            slot = self._slots[idx]
            # keep the slot (and its version) so reuse bumps correctly
            self._slots[idx] = _TypeSlot(("freed",), Flattened.empty(), slot.version)

    def encode_for(
        self,
        peer: int,
        signature: tuple,
        flattened: Flattened,
        force_full: bool = False,
    ):
        """What to put in the rendezvous reply for ``peer``.

        Returns ``("ref", index, version)`` when the peer already holds
        this exact (index, version), else ``("full", index, version,
        flattened)`` and records that the peer now holds it.

        ``force_full`` disables the ref optimization.  Fault injection
        requires it: "peer holds (index, version)" is recorded when the
        full layout is *sent*, but a lossy fabric may drop that message
        while a later ref-carrying reply for another message arrives
        first (replies are not sequence-ordered across messages), and
        the peer would resolve a ref it never received the full form of.
        """
        idx, version = self.intern(signature, flattened)
        state = self._peer_state.setdefault(peer, {})
        if not force_full and state.get(idx) == version:
            return ("ref", idx, version)
        state[idx] = version
        return ("full", idx, version, flattened)


class DatatypeCache:
    """Sender-side cache: (receiver rank, index) -> (version, Flattened)."""

    def __init__(self, metrics=None, node=None):
        self._cache: dict[tuple[int, int], tuple[int, Flattened]] = {}
        self.hits = 0
        self.misses = 0
        #: stale entries replaced by a newer version (version-mismatch refresh)
        self.evictions = 0
        self._metrics = metrics
        self._node = node

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, self._node).inc()

    def resolve(self, peer: int, layout) -> Flattened:
        """Decode a reply ``layout`` field into the receiver's block list."""
        kind = layout[0]
        if kind == "full":
            _k, idx, version, flattened = layout
            if (peer, idx) in self._cache:
                self.evictions += 1
                self._count("dtype.cache.evictions")
            self._cache[(peer, idx)] = (version, flattened)
            self.misses += 1
            self._count("dtype.cache.misses")
            return flattened
        if kind == "ref":
            _k, idx, version = layout
            entry = self._cache.get((peer, idx))
            if entry is None or entry[0] != version:
                raise KeyError(
                    f"datatype cache miss for peer {peer} index {idx} "
                    f"version {version}: receiver sent a ref the sender "
                    "does not hold (protocol error)"
                )
            self.hits += 1
            self._count("dtype.cache.hits")
            return entry[1]
        raise ValueError(f"bad layout encoding {layout!r}")

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
