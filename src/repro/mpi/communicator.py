"""Sub-communicators: MPI_Comm_split over the simulated runtime.

A :class:`Communicator` is a rank-translated, tag-isolated view of the
world context: sends address communicator ranks, tags are offset by a
context id (the MPI notion), and every collective algorithm in
:mod:`repro.mpi.collectives` runs unchanged against it because it
duck-types the parts of :class:`~repro.mpi.context.RankContext` they use.

Typical use — row/column communicators of a 2-D process grid::

    row = yield from mpi.comm_split(color=mpi.rank // PX, key=mpi.rank)
    yield from row.allgather(send, dt, 1, recv, dt, 1)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["Communicator", "comm_split"]

#: tag-space stride between context ids; user tags must stay below this
_CTX_STRIDE = 1 << 22


class Communicator:
    """A communicator over a subset of world ranks."""

    def __init__(self, ctx, context_id: int, members: Sequence[int]):
        self.ctx = ctx
        self.context_id = context_id
        #: communicator rank -> world rank
        self.members = list(members)
        self.nranks = len(members)
        self.rank = self.members.index(ctx.rank)
        self._barrier_scratch = None

    # -- plumbing the collectives expect -----------------------------------

    @property
    def sim(self):
        return self.ctx.sim

    @property
    def node(self):
        return self.ctx.node

    @property
    def cm(self):
        return self.ctx.cm

    @property
    def now(self):
        return self.ctx.now

    def alloc(self, nbytes: int, align: int = 64) -> int:
        return self.ctx.alloc(nbytes, align)

    def alloc_array(self, shape, dtype):
        return self.ctx.alloc_array(shape, dtype)

    def world_rank(self, comm_rank: int) -> int:
        return self.members[comm_rank]

    def _xlat_tag(self, tag: int) -> int:
        if tag >= 0:
            return tag + self.context_id * _CTX_STRIDE
        return tag - self.context_id * _CTX_STRIDE

    # -- point-to-point ----------------------------------------------------

    def isend(self, addr, datatype, count, dest, tag):
        req = yield from self.ctx.isend(
            addr, datatype, count, self.members[dest], self._xlat_tag(tag)
        )
        return req

    def irecv(self, addr, datatype, count, source, tag):
        req = yield from self.ctx.irecv(
            addr, datatype, count, self.members[source], self._xlat_tag(tag)
        )
        return req

    def send(self, addr, datatype, count, dest, tag):
        req = yield from self.isend(addr, datatype, count, dest, tag)
        yield from self.ctx.wait(req)

    def recv(self, addr, datatype, count, source, tag):
        req = yield from self.irecv(addr, datatype, count, source, tag)
        yield from self.ctx.wait(req)
        return req

    def wait(self, req):
        yield from self.ctx.wait(req)

    def waitall(self, reqs):
        yield from self.ctx.waitall(reqs)

    # -- collectives (reuse the world algorithms verbatim) ----------------

    def barrier(self):
        from repro.mpi.collectives import barrier

        yield from barrier(self)

    def bcast(self, addr, datatype, count, root):
        from repro.mpi.collectives import bcast

        yield from bcast(self, addr, datatype, count, root)

    def allgather(self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount):
        from repro.mpi.collectives import allgather

        yield from allgather(
            self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
        )

    def alltoall(self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount):
        from repro.mpi.collectives import alltoall

        yield from alltoall(
            self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
        )

    def gather(
        self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount, root
    ):
        from repro.mpi.collectives import gather

        yield from gather(
            self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount, root
        )

    def reduce(self, sendaddr, recvaddr, count, np_dtype, op="sum", root=0):
        from repro.mpi.collectives import reduce

        yield from reduce(self, sendaddr, recvaddr, count, np_dtype, op, root)

    def allreduce(self, sendaddr, recvaddr, count, np_dtype, op="sum"):
        from repro.mpi.collectives import allreduce

        yield from allreduce(self, sendaddr, recvaddr, count, np_dtype, op)

    def __repr__(self):  # pragma: no cover
        return (
            f"<Communicator ctx_id={self.context_id} rank={self.rank}/"
            f"{self.nranks} world={self.members}>"
        )


def comm_split(ctx, color: int, key: int = 0):
    """Collective split of the world communicator (generator).

    Ranks passing the same ``color`` form a new communicator, ordered by
    ``(key, world rank)``.  ``color=None`` yields no communicator
    (MPI_UNDEFINED).
    """
    from repro.datatypes import LONG, contiguous

    ctx._comm_seq = ctx.__dict__.get("_comm_seq", 0) + 1
    context_id = ctx._comm_seq
    n = ctx.nranks
    adv = contiguous(3, LONG)
    send = ctx.alloc(24)
    color_code = -(1 << 40) if color is None else int(color)
    ctx.node.memory.view(send, 24).view(np.int64)[:] = [
        color_code, int(key), ctx.rank
    ]
    recv = ctx.alloc(24 * n)
    yield from ctx.allgather(send, adv, 1, recv, adv, 1)
    table = ctx.node.memory.view(recv, 24 * n).view(np.int64).reshape(n, 3)
    rows = [tuple(int(v) for v in row) for row in table]
    ctx.node.memory.free(send)
    ctx.node.memory.free(recv)
    if color is None:
        return None
    members = [
        wrank
        for c, _k, wrank in sorted(rows, key=lambda r: (r[1], r[2]))
        if c == color_code
    ]
    # distinct colors from the same split get distinct context ids so
    # same-tag traffic in sibling communicators cannot collide even in
    # principle
    colors_in_order = sorted({c for c, _k, _w in rows if c != -(1 << 40)})
    context_id = context_id * 1024 + colors_in_order.index(color_code)
    return Communicator(ctx, context_id, members)
