"""Cluster construction and rank-program execution.

:class:`Cluster` assembles the whole simulated machine — fabric, nodes,
per-rank :class:`~repro.mpi.context.RankContext` with connected queue
pairs and pre-posted buffers (the "MPI_Init" work, not charged to
simulated time) — and runs rank programs to completion.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter_ns
from typing import Any, Callable, Optional, Sequence

from repro.ib.costmodel import MB, CostModel
from repro.ib.fabric import Fabric
from repro.mpi.context import RankContext
from repro.obs.metrics import MetricsRegistry
from repro.simulator import SimulationError, Simulator, Tracer
from repro.simulator.trace import TimedTracer

#: truthy spellings accepted for $REPRO_HOST_PROFILE
_TRUTHY = ("1", "true", "yes", "on")

__all__ = ["Cluster", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one :meth:`Cluster.run`."""

    #: per-rank return values of the rank programs
    values: list
    #: simulated end time (us) — clock starts at 0 per run
    time_us: float
    #: the cluster, for stats inspection
    cluster: "Cluster" = None

    def value(self, rank: int = 0):
        return self.values[rank]


class Cluster:
    """An n-rank MPI job on a simulated InfiniBand cluster.

    Parameters
    ----------
    nranks:
        number of MPI processes (one per node, as in the paper's runs).
    cost_model:
        platform timing; defaults to the paper's testbed.
    scheme:
        datatype communication scheme for noncontiguous rendezvous
        messages: ``"generic"``, ``"bc-spup"``, ``"rwg-up"``, ``"p-rrs"``,
        ``"multi-w"`` or ``"adaptive"`` (Section 6).
    scheme_options:
        per-scheme knobs, e.g. ``{"segment_unpack": False}`` for RWG-UP
        (Figure 12), ``{"list_post": False}`` for Multi-W (Figure 13),
        ``{"fresh_buffers": True}`` for Generic (the "DT+reg" case of
        Figure 2).
    reg_cache_bytes:
        pin-down cache budget for *user* buffers; ``0`` disables caching,
        forcing on-the-fly registration/deregistration per operation
        (Figure 14's worst case).
    staging_pools:
        when False, the pre-registered pack/unpack segment pools are
        disabled and the segmenting schemes fall back to dynamic
        allocation + registration per segment (also Figure 14).
    memory_per_rank:
        simulated address-space bytes per node.
    trace:
        enable interval tracing (CPU/wire/registration) for overlap
        analysis.
    profile:
        attach a :class:`repro.obs.profile.Profiler` to the simulator,
        enabling causal provenance on every event plus resource wait /
        queue-depth sampling — the input of the critical-path profiler.
        Off by default; a profiled run's simulated timings are identical
        to an unprofiled one (provenance is recording, not behaviour).
    host_profile:
        attach a :class:`repro.obs.hostprof.HostProfiler` to the
        simulator, attributing *wall-clock* nanoseconds per dispatched
        event to the host-category taxonomy (heap ops, dispatch,
        callback bodies by tag category, pack/unpack, observability
        overhead) — see docs/PROFILING.md.  ``None`` (the default)
        consults ``$REPRO_HOST_PROFILE``; host profiling measures the
        host, never the simulation: simulated results, traces, and
        metrics are byte-identical with it on or off.
    eager_rdma:
        route eager messages through the polled RDMA ring channel of Liu
        et al. [19] instead of channel-semantics send/receive — lower
        small-message latency (no receive-WQE processing at the
        responder).
    fault_plan:
        a :class:`repro.faults.FaultPlan` describing seeded fault
        injection; defaults to :meth:`FaultPlan.from_env` (the
        ``REPRO_FAULT_PROFILE`` / ``REPRO_FAULT_SEED`` environment
        variables, inert when unset).  An inert plan installs no injector
        and is byte-identical to a fault-free build.
    """

    def __init__(
        self,
        nranks: int,
        cost_model: Optional[CostModel] = None,
        scheme: str = "bc-spup",
        scheme_options: Optional[dict] = None,
        reg_cache_bytes: int = 256 * MB,
        staging_pools: bool = True,
        memory_per_rank: int = 256 * MB,
        trace: bool = False,
        eager_rdma: bool = False,
        fault_plan: Optional[Any] = None,
        profile: bool = False,
        host_profile: Optional[bool] = None,
    ):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        from repro.schemes import SCHEME_NAMES

        if scheme not in SCHEME_NAMES:
            raise ValueError(f"unknown scheme {scheme!r}; choose from {SCHEME_NAMES}")
        self.nranks = nranks
        self.cm = cost_model or CostModel.mellanox_2003()
        self.scheme_name = scheme
        self.scheme_options = dict(scheme_options or {})
        self.reg_cache_bytes = reg_cache_bytes
        self.staging_pools = staging_pools
        self.trace = trace
        self.eager_rdma = eager_rdma
        if host_profile is None:
            host_profile = (
                os.environ.get("REPRO_HOST_PROFILE", "").strip().lower()
                in _TRUTHY
            )
        self.sim = Simulator()
        self.metrics = MetricsRegistry()
        #: None unless host profiling was requested — with it off the
        #: engine run loop, tracer, metrics registry and pack/unpack
        #: fast paths are the exact unhooked code (byte-identical runs)
        self.host_profiler = None
        if host_profile:
            from repro.obs.hostprof import HostProfiler, TimedMetrics

            self.host_profiler = HostProfiler(clock=perf_counter_ns)
            self.sim.host_profiler = self.host_profiler
            # a disabled tracer is a boolean check — only worth timing
            # when tracing actually records
            self.tracer = (
                TimedTracer(self.host_profiler)
                if trace
                else Tracer(enabled=False)
            )
            self.metrics = TimedMetrics(
                self.metrics, self.host_profiler, perf_counter_ns
            )
        else:
            self.tracer = Tracer(enabled=trace)
        #: None unless profiling was requested — leaving the simulator's
        #: profiler unset keeps unprofiled runs free of provenance work
        self.profiler = None
        if profile:
            from repro.obs.profile import Profiler

            self.profiler = Profiler(self.metrics)
            self.sim.profiler = self.profiler
        self.fabric = Fabric(
            self.sim, self.cm, tracer=self.tracer, metrics=self.metrics
        )
        from repro.faults import FaultInjector, FaultPlan

        self.fault_plan = (
            fault_plan if fault_plan is not None else FaultPlan.from_env()
        )
        #: None unless the plan is active — an inert plan installs nothing,
        #: keeping fault-free runs byte-identical to builds without faults
        self.fault_injector = (
            FaultInjector(self.sim, self.fault_plan, self.metrics, tracer=self.tracer)
            if self.fault_plan.active
            else None
        )
        self.contexts: list[RankContext] = []
        for r in range(nranks):
            node = self.fabric.add_node(memory_per_rank)
            node.tracer = self.tracer
            node.fault_injector = self.fault_injector
            self.contexts.append(RankContext(self, r, node))
        for ctx in self.contexts:
            ctx._setup_network(self.contexts)
        for i in range(nranks):
            for j in range(i + 1, nranks):
                self.contexts[i]._connect(self.contexts[j], self.fabric)
        for ctx in self.contexts:
            ctx._setup_buffers()
        if eager_rdma:
            for ctx in self.contexts:
                ctx._exchange_rings(self.contexts)

    # -- scheme selection --------------------------------------------------

    def choose_scheme(self, ctx: RankContext, req) -> Any:
        """The scheme instance handling ``req`` on ``ctx``'s rank.

        For fixed configurations this is the configured scheme; the
        ``adaptive`` scheme decides per message (Section 6).  Contiguous
        rendezvous messages always take the zero-copy path (register user
        buffers, one RDMA write) — the behaviour MVAPICH already has for
        contiguous data regardless of the datatype scheme, and what the
        figures' "Contig" baseline measures.
        """
        if (
            req.nbytes > self.cm.eager_threshold
            and req.cursor.flat.is_contiguous
        ):
            scheme = ctx.get_scheme("multi-w")
        else:
            scheme = ctx.get_scheme(self.scheme_name)
            pick = getattr(scheme, "pick", None)
            if pick is not None:
                scheme = pick(ctx, req)
        if self.fault_injector is not None:
            from repro.schemes.selector import apply_fault_fallback

            scheme = apply_fault_fallback(ctx, req, scheme)
        return scheme

    # -- running ----------------------------------------------------------

    def run(
        self,
        programs: Sequence[Callable] | Callable,
        until: Optional[float] = None,
    ) -> RunResult:
        """Run one program per rank (or the same program on every rank).

        Each program is called as ``program(ctx)`` and must return a
        generator.  Returns after every rank program finishes.
        """
        if callable(programs):
            programs = [programs] * self.nranks
        if len(programs) != self.nranks:
            raise ValueError(
                f"got {len(programs)} programs for {self.nranks} ranks"
            )
        procs = [
            self.sim.process(prog(ctx), name=f"rank{ctx.rank}")
            for prog, ctx in zip(programs, self.contexts)
        ]
        self.sim.run(until=until)
        unfinished = [i for i, p in enumerate(procs) if not p.triggered]
        if unfinished:
            raise SimulationError(
                f"rank programs {unfinished} did not finish "
                "(deadlock: all events drained or `until` reached)"
            )
        return RunResult(
            values=[p.value for p in procs], time_us=self.sim.now, cluster=self
        )

    # -- stats -----------------------------------------------------------

    def stats(self) -> dict:
        """Aggregate counters for reporting."""
        return {
            "time_us": self.sim.now,
            "bytes_injected": [c.node.hca.bytes_injected for c in self.contexts],
            "descriptors": [c.node.hca.descriptors_processed for c in self.contexts],
            "reg_cache_hits": [c.reg_cache.hits for c in self.contexts],
            "reg_cache_misses": [c.reg_cache.misses for c in self.contexts],
            "reg_cache_evictions": [c.reg_cache.evictions for c in self.contexts],
            "dt_cache_hits": [c.dt_cache.hits for c in self.contexts],
            "dt_cache_misses": [c.dt_cache.misses for c in self.contexts],
            "dt_cache_evictions": [c.dt_cache.evictions for c in self.contexts],
            "cpu_busy_us": [c.node.cpu.busy_time for c in self.contexts],
        }
