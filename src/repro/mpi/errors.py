"""MPI-level error taxonomy.

All are subclasses of :class:`~repro.simulator.engine.SimulationError`, so
existing catch-alls keep working, but callers can distinguish protocol
misuse from genuine simulator faults.
"""

from repro.simulator import SimulationError

__all__ = ["MPIError", "RankError", "TruncationError"]


class MPIError(SimulationError):
    """Base for MPI semantic errors."""


class TruncationError(MPIError):
    """A message is larger than the posted receive buffer
    (MPI_ERR_TRUNCATE)."""


class RankError(MPIError):
    """A rank argument is outside the communicator (MPI_ERR_RANK)."""
