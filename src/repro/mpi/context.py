"""Per-rank MPI context: point-to-point protocols and the progress engine.

Structure (mirroring MVAPICH, Section 3.1):

* Each rank owns two queue pairs per peer: a **control QP** (protocol
  headers, rendezvous control, RDMA operations and their immediate-data
  notifications) and a **data QP** (eager payload, landing in pre-posted
  internal slot buffers).  Both feed a single receive CQ drained by the
  rank's *progress engine*; all send completions feed a single send CQ
  drained by a *send-completion dispatcher*.
* **Eager protocol** (payload <= ``eager_threshold``): the sender packs
  into a pre-registered send slot and SENDs; data lands in a receiver
  slot; the progress engine matches and unpacks into the user buffer.
  The paper's optimized path (Section 7.1) packs/unpacks directly
  between user buffers and the internal slots; the Generic scheme stages
  through an extra pack/unpack buffer on each side (Figure 1 top).
* **Rendezvous protocol** (larger): the sender's scheme sends a
  ``RndvStart``; the receiver's progress engine matches it and spawns the
  scheme's receiver side; they exchange ``RndvReply``/data/notification
  per the scheme (Sections 4, 5, 7).
* **Flow control**: eager sends consume per-destination credits; the
  receiver returns credits in batches as it recycles slots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.datatypes.base import Datatype
from repro.datatypes.pack import pack_bytes, unpack_bytes
from repro.datatypes.segment import SegmentCursor
from repro.ib.verbs import Opcode, RecvWR, SGE, SendWR
from repro.mpi.matching import ANY_TAG, MatchEngine
from repro.mpi.messages import (
    CTRL_HEADER_BYTES,
    Credit,
    EagerHeader,
    RingCredit,
    RndvReply,
    RndvStart,
)
from repro.mpi.errors import RankError, TruncationError
from repro.mpi.requests import Request
from repro.mpi.datatype_cache import DatatypeCache, ReceiverTypeRegistry
from repro.registration import RegistrationCache
from repro.simulator import Event, SimulationError, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.world import Cluster

__all__ = ["ANY_TAG", "RankContext", "SimArray"]

#: eager receive slots pre-posted per peer connection
EAGER_SLOTS_PER_PEER = 64
#: global eager send slots per rank
EAGER_SEND_SLOTS = 128
#: credits returned per flow-control message
CREDIT_BATCH = 16
#: RDMA-eager ring slots per directed pair (Liu et al. [19] style)
EAGER_RDMA_RING = 32
#: freed ring slots returned per RingCredit message
RING_CREDIT_BATCH = 8
#: maximum rendezvous receives serviced concurrently per rank — real
#: implementations bound outstanding rendezvous operations to bound
#: pinned staging memory; later starts wait their turn, which paces
#: unpack-buffer acquisition against release (the effect Figure 12
#: measures)
RNDV_RECV_LIMIT = 32
#: reserved tag space for internal collectives
_INTERNAL_TAG_BASE = -1000

#: TEST-ONLY mutation guard: when True, envelopes are admitted to
#: matching in *arrival* order instead of per-source sequence order,
#: reverting the non-overtaking fix so the workload fuzzer can prove it
#: re-finds the protocol hole (tests/workloads/test_mutation.py).  Never
#: set outside tests.
BREAK_MATCHING_ORDER = False


@dataclass
class SimArray:
    """A typed user buffer in simulated memory."""

    addr: int
    array: np.ndarray

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


class _PersistentOp:
    """A persistent point-to-point operation (MPI_Send_init family).

    ``start()`` launches one instance; the segment cursor built for the
    first start is shared by all later ones (persistent requests exist to
    amortize exactly this per-operation setup).
    """

    def __init__(self, ctx, kind, addr, datatype, count, peer, tag):
        self.ctx = ctx
        self.kind = kind
        self.addr = addr
        self.datatype = datatype
        self.count = count
        self.peer = peer
        self.tag = tag
        self._cursor = None
        self.active: Optional[Request] = None

    def start(self):
        """Launch one instance (generator returning the active Request)."""
        if self.active is not None and not self.active.completed:
            raise SimulationError("persistent request started while active")
        if self.kind == "send":
            req = yield from self.ctx.isend(
                self.addr, self.datatype, self.count, self.peer, self.tag
            )
        else:
            req = yield from self.ctx.irecv(
                self.addr, self.datatype, self.count, self.peer, self.tag
            )
        if self._cursor is None:
            self._cursor = req.cursor  # build once
        else:
            req._cursor = self._cursor  # reuse across starts
        self.active = req
        return req

    def wait(self):
        """Wait for the active instance (generator)."""
        if self.active is None:
            raise SimulationError("persistent request never started")
        yield from self.ctx.wait(self.active)


class _Envelope:
    """Matching-side wrapper for inbound messages (eager or rndv start)."""

    __slots__ = ("src", "tag", "kind", "header", "slot")

    def __init__(self, src, tag, kind, header, slot=None):
        self.src = src
        self.tag = tag
        self.kind = kind  # "eager" | "rndv" | "self"
        self.header = header
        self.slot = slot  # (peer, slot_addr) for eager


class RankContext:
    """The ``mpi`` handle a rank program receives."""

    def __init__(self, cluster: "Cluster", rank: int, node):
        self.cluster = cluster
        self.rank = rank
        self.node = node
        self.sim = node.sim
        self.cm = node.cm
        self.nranks = cluster.nranks
        self.matching = MatchEngine()
        self._buffer_hints: list[tuple[int, int, bool]] = []
        self.reg_cache = RegistrationCache(
            node, cluster.reg_cache_bytes, hint_fn=self.buffer_hint
        )
        self.metrics = node.metrics
        self.dt_cache = DatatypeCache(metrics=self.metrics, node=rank)
        self.type_registry = ReceiverTypeRegistry(
            metrics=self.metrics, node=rank
        )
        self._eager_sends_metric = self.metrics.counter("mpi.eager_sends", rank)
        self._rndv_sends_metric = self.metrics.counter("mpi.rndv_sends", rank)
        self._unexpected_gauge = self.metrics.gauge("mpi.unexpected_depth", rank)
        self._msg_seq = 0
        self._send_seq = 0
        self._wr_seq = 0
        #: msg_id -> Store of inbound rendezvous control for that message
        self._msg_inbox: dict[int, Store] = {}
        #: wr_id -> Event resolved by the send-completion dispatcher
        self._send_events: dict[object, Event] = {}
        self._schemes: dict[str, object] = {}
        self._pack_pool = None
        self._unpack_pool = None
        # wired by _setup_network
        self.ctrl_qps: dict[int, object] = {}
        self.data_qps: dict[int, object] = {}
        self._qp_rank: dict[int, int] = {}
        self._credits: dict[int, Store] = {}
        self._slot_free_count: dict[int, int] = {}
        self._send_slot_tokens: Optional[Store] = None
        self._slot_size = max(cluster.cm.eager_threshold, 1024)
        # staging buffers for the Generic eager path (grown on demand)
        self._eager_stage_addr = 0
        self._eager_stage_size = 0
        from repro.simulator import Resource

        self._rndv_recv_slots = Resource(
            self.sim, capacity=RNDV_RECV_LIMIT, name=f"rndv{rank}", node=rank
        )
        # RDMA-eager rings (when cluster.eager_rdma): inbound ring
        # metadata per peer, outbound free-slot tokens per peer
        self._ring_in: dict[int, tuple] = {}
        self._ring_out: dict[int, Store] = {}
        self._ring_rkey: dict[int, int] = {}
        self._ring_free_pending: dict[int, list] = {}
        # RMA window locks this rank serves as target
        self._window_locks: dict[int, object] = {}
        self._win_lock_held: dict[tuple, int] = {}
        # MPI non-overtaking: per-destination send sequence numbers and
        # per-source admission state.  Envelopes can physically arrive
        # out of order (a rendezvous start posts immediately; an earlier
        # eager send first does staging CPU work), so the progress engine
        # admits them to matching strictly in sequence — exactly the PSN
        # mechanism real implementations use.
        self._dst_seq: dict[int, int] = {}
        self._recv_expected: dict[int, int] = {}
        self._recv_ooo: dict[int, dict[int, "_Envelope"]] = {}
        # processes blocked in probe(), woken on every unexpected arrival
        self._probe_waiters: list[Event] = []
        # fault recovery: replies recorded so a duplicate (retransmitted)
        # rendezvous start can be answered again, and reply dedup so a
        # retransmitted reply is delivered to the sender at most once.
        # Both are only populated while fault injection is active.
        self._rndv_replies: dict[int, tuple[int, object, int]] = {}
        self._rndv_reply_seen: set[int] = set()

    # ------------------------------------------------------------------
    # setup (called by Cluster during "MPI_Init"; no simulated time)
    # ------------------------------------------------------------------

    def _setup_network(self, contexts: Sequence["RankContext"]) -> None:
        hca = self.node.hca
        self._send_cq = hca.create_cq(f"r{self.rank}.send")
        self._recv_cq = hca.create_cq(f"r{self.rank}.recv")
        for peer_ctx in contexts:
            if peer_ctx.rank == self.rank:
                continue
            self._credits[peer_ctx.rank] = Store(self.sim)
            for _ in range(EAGER_SLOTS_PER_PEER):
                self._credits[peer_ctx.rank].put(1)
            self._slot_free_count[peer_ctx.rank] = 0

    def _connect(self, peer_ctx: "RankContext", fabric) -> None:
        """Create and connect the ctrl/data QP pairs toward ``peer_ctx``.

        Called once per unordered rank pair (by the Cluster).
        """
        for kind in ("ctrl", "data"):
            qp_a = self.node.hca.create_qp(self._send_cq, self._recv_cq)
            qp_b = peer_ctx.node.hca.create_qp(peer_ctx._send_cq, peer_ctx._recv_cq)
            fabric.connect(qp_a, qp_b)
            if kind == "ctrl":
                self.ctrl_qps[peer_ctx.rank] = qp_a
                peer_ctx.ctrl_qps[self.rank] = qp_b
            else:
                self.data_qps[peer_ctx.rank] = qp_a
                peer_ctx.data_qps[self.rank] = qp_b
            # map both local and remote QP numbers to the peer rank: CQEs
            # report the *sender's* QP number in src_qp
            self._qp_rank[qp_a.qp_num] = peer_ctx.rank
            self._qp_rank[qp_b.qp_num] = peer_ctx.rank
            peer_ctx._qp_rank[qp_b.qp_num] = self.rank
            peer_ctx._qp_rank[qp_a.qp_num] = self.rank

    def _setup_buffers(self) -> None:
        """Pre-post eager receive slots and carve out send slots."""
        mem = self.node.memory
        # receive slots, per peer data QP
        self._recv_slot_mr = {}
        for peer, qp in self.data_qps.items():
            region = mem.alloc(EAGER_SLOTS_PER_PEER * self._slot_size)
            mr = mem.register(region, EAGER_SLOTS_PER_PEER * self._slot_size)
            self._recv_slot_mr[peer] = mr
            for i in range(EAGER_SLOTS_PER_PEER):
                addr = region + i * self._slot_size
                qp.post_recv_nocost(
                    RecvWR(
                        sges=[SGE(addr, self._slot_size, mr.lkey)],
                        wr_id=("slot", peer, addr),
                    )
                )
        # control receive descriptors (no data) on ctrl QPs — replenished
        # by the progress engine as they are consumed.  The prepost depth
        # covers a deep rendezvous burst (e.g. a 100-message bandwidth
        # window, each with per-segment notifications) because the
        # replenishment lags by the progress engine's CPU scheduling.
        for peer, qp in self.ctrl_qps.items():
            for _ in range(4096):
                qp.post_recv_nocost(RecvWR(wr_id=("ctrl", peer)))
        # send slots (shared across destinations)
        region = mem.alloc(EAGER_SEND_SLOTS * self._slot_size)
        self._send_slot_region_mr = mem.register(
            region, EAGER_SEND_SLOTS * self._slot_size
        )
        self._send_slot_tokens = Store(self.sim)
        for i in range(EAGER_SEND_SLOTS):
            self._send_slot_tokens.put(region + i * self._slot_size)
        # RDMA-eager rings: this rank's inbound slots per peer (the
        # address/rkey advertisement is exchanged by the Cluster)
        if self.cluster.eager_rdma:
            for peer in self.data_qps:
                region = mem.alloc(EAGER_RDMA_RING * self._slot_size)
                mr = mem.register(region, EAGER_RDMA_RING * self._slot_size)
                slots = [region + i * self._slot_size for i in range(EAGER_RDMA_RING)]
                self._ring_in[peer] = (mr, slots)
                self._ring_free_pending[peer] = []
        # progress engines
        self.sim.process(self._progress_engine(), name=f"progress{self.rank}")
        self.sim.process(self._send_dispatcher(), name=f"sendcq{self.rank}")

    def _exchange_rings(self, contexts) -> None:
        """Learn peers' inbound rings (MPI_Init-time exchange)."""
        for peer_ctx in contexts:
            if peer_ctx.rank == self.rank:
                continue
            mr, slots = peer_ctx._ring_in[self.rank]
            self._ring_rkey[peer_ctx.rank] = mr.rkey
            store = Store(self.sim)
            for addr in slots:
                store.put(addr)
            self._ring_out[peer_ctx.rank] = store

    # ------------------------------------------------------------------
    # public API: memory
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in microseconds (MPI_Wtime)."""
        return self.sim.now

    def alloc(self, nbytes: int, align: int = 64) -> int:
        """Allocate an application buffer (setup-time, not charged)."""
        return self.node.memory.alloc(nbytes, align)

    def alloc_array(self, shape, dtype) -> SimArray:
        """Allocate a typed application array (setup-time, not charged)."""
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dt.itemsize
        addr = self.node.memory.alloc(max(nbytes, 1), align=dt.itemsize or 1)
        return SimArray(addr, self.node.memory.view_as(addr, tuple(shape), dt))

    # ------------------------------------------------------------------
    # public API: persistent requests (MPI_Send_init / MPI_Recv_init)
    # ------------------------------------------------------------------

    def send_init(self, addr, datatype, count, dest, tag):
        """Create a persistent send request (not a generator).

        The datatype cursor — the expensive part of request setup — is
        built once and shared by every start."""
        return _PersistentOp(self, "send", addr, datatype, count, dest, tag)

    def recv_init(self, addr, datatype, count, source, tag):
        """Create a persistent receive request (not a generator)."""
        return _PersistentOp(self, "recv", addr, datatype, count, source, tag)

    def startall(self, ops):
        """Start several persistent operations (generator returning the
        active Requests, in order)."""
        reqs = []
        for op in ops:
            req = yield from op.start()
            reqs.append(req)
        return reqs

    def comm_split(self, color, key: int = 0):
        """Collective MPI_Comm_split (generator returning a
        :class:`~repro.mpi.communicator.Communicator` or None)."""
        from repro.mpi.communicator import comm_split

        comm = yield from comm_split(self, color, key)
        return comm

    # ------------------------------------------------------------------
    # public API: one-sided communication (MPI-2 RMA)
    # ------------------------------------------------------------------

    def win_create(self, base, size):
        from repro.mpi.rma import win_create

        win = yield from win_create(self, base, size)
        return win

    def put(self, win, target_rank, origin_addr, origin_dt, origin_count=1,
            target_disp=0, target_dt=None, target_count=None):
        from repro.mpi.rma import put

        yield from put(self, win, target_rank, origin_addr, origin_dt,
                       origin_count, target_disp, target_dt, target_count)

    def get(self, win, target_rank, origin_addr, origin_dt, origin_count=1,
            target_disp=0, target_dt=None, target_count=None):
        from repro.mpi.rma import get

        yield from get(self, win, target_rank, origin_addr, origin_dt,
                       origin_count, target_disp, target_dt, target_count)

    def win_fence(self, win):
        from repro.mpi.rma import fence

        yield from fence(self, win)

    def win_lock(self, win, target_rank, exclusive=True):
        from repro.mpi.rma import lock

        yield from lock(self, win, target_rank, exclusive)

    def win_unlock(self, win, target_rank):
        from repro.mpi.rma import unlock

        yield from unlock(self, win, target_rank)

    def _win_locks(self, win_id: int):
        """Per-window lock resource on this (target) rank."""
        from repro.simulator import Resource

        res = self._window_locks.get(win_id)
        if res is None:
            res = Resource(self.sim, capacity=1, name=f"winlock{win_id}@{self.rank}")
            self._window_locks[win_id] = res
        return res

    def _serve_lock(self, req):
        """Grant a remote lock request when the window lock frees up."""
        grant = yield self._win_locks(req.win_id).acquire()
        self._win_lock_held[(req.origin, req.win_id)] = grant
        from repro.mpi.rma import _LockGrant

        yield from self.ctrl_send(req.origin, _LockGrant(req.msg_id))

    # ------------------------------------------------------------------
    # public API: buffer usage hints (the paper's MPI_Info suggestion)
    # ------------------------------------------------------------------

    def set_buffer_hint(self, addr: int, length: int, *, reuse: bool) -> None:
        """Declare a buffer's reuse pattern (Section 6).

        "It is also helpful if we can make use of MPI_Info objects to
        notify the MPI implementation of buffers on which the application
        has many communication operations.  This can help to decide
        whether to register these buffers or not."

        ``reuse=True`` marks a long-lived communication buffer (worth
        pinning and caching); ``reuse=False`` marks a one-shot buffer —
        the registration cache will not retain its regions and the
        adaptive selector avoids registration-heavy schemes for it.
        The most recent hint covering a range wins.
        """
        if length <= 0:
            raise ValueError("hint length must be positive")
        self._buffer_hints.append((addr, length, bool(reuse)))

    def buffer_hint(self, addr: int, length: int):
        """The effective reuse hint for [addr, addr+length), or None."""
        for haddr, hlen, reuse in reversed(self._buffer_hints):
            if haddr <= addr and addr + length <= haddr + hlen:
                return reuse
        return None

    def user_pack(self, addr: int, datatype: Datatype, count: int, dest_addr: int):
        """Application-level manual packing (generator): copy the data
        blocks of (datatype, count) at ``addr`` into the contiguous buffer
        at ``dest_addr``, charging the CPU.  Models the paper's "Manual"
        strategy (Section 3.2), where the programmer packs by hand and
        sends contiguous data."""
        cur = SegmentCursor(datatype, count)
        nblocks = pack_bytes(self.node.memory, addr, cur, 0, cur.total, dest_addr)
        yield from self.charge_pack(cur.total, nblocks, "user-pack")

    def user_unpack(self, addr: int, datatype: Datatype, count: int, src_addr: int):
        """Application-level manual unpacking (generator); see
        :meth:`user_pack`."""
        cur = SegmentCursor(datatype, count)
        nblocks = unpack_bytes(self.node.memory, addr, cur, 0, cur.total, src_addr)
        yield from self.charge_pack(cur.total, nblocks, "user-unpack")

    # ------------------------------------------------------------------
    # public API: point-to-point
    # ------------------------------------------------------------------

    def isend(self, addr: int, datatype: Datatype, count: int, dest: int, tag: int):
        """Nonblocking send (generator returning a Request)."""
        if not 0 <= dest < self.nranks:
            raise RankError(f"bad destination rank {dest}")
        req = self._make_request("send", dest, tag, addr, datatype, count)
        if dest == self.rank:
            self.sim.process(self._self_send(req), name=f"selfsend{self.rank}")
            return req
        # per-destination stream sequence (MPI non-overtaking)
        self._dst_seq[dest] = self._dst_seq.get(dest, 0) + 1
        req.seq = self._dst_seq[dest]
        if req.nbytes <= self.cm.eager_threshold:
            self._eager_sends_metric.inc()
            self.sim.process(self._eager_send(req), name=f"eager{self.rank}")
        else:
            self._rndv_sends_metric.inc()
            scheme = self.cluster.choose_scheme(self, req)
            self._msg_inbox[req.msg_id] = Store(self.sim)
            self.sim.process(
                self._run_sender(scheme, req), name=f"rndv_s{self.rank}"
            )
        return req
        yield  # pragma: no cover - marks this as a generator for symmetry

    def irecv(self, addr: int, datatype: Datatype, count: int, source: int, tag: int):
        """Nonblocking receive (generator returning a Request)."""
        if not 0 <= source < self.nranks:
            raise RankError(f"bad source rank {source}")
        req = self._make_request("recv", source, tag, addr, datatype, count)
        envelope = self.matching.post_recv(req)
        if envelope is not None:
            self._unexpected_gauge.set(len(self.matching._unexpected))
            self._dispatch_matched(req, envelope)
        return req
        yield  # pragma: no cover

    def send(self, addr, datatype, count, dest, tag):
        """Blocking send (generator)."""
        req = yield from self.isend(addr, datatype, count, dest, tag)
        yield from self.wait(req)

    def recv(self, addr, datatype, count, source, tag):
        """Blocking receive (generator returning the completed Request)."""
        req = yield from self.irecv(addr, datatype, count, source, tag)
        yield from self.wait(req)
        return req

    def wait(self, req: Request):
        """Wait for one request (generator)."""
        yield req.done

    def waitall(self, reqs: Sequence[Request]):
        """Wait for all requests (generator)."""
        yield self.sim.all_of([r.done for r in reqs])

    def waitany(self, reqs: Sequence[Request]):
        """Wait for any request; returns (index, request) (generator)."""
        ev, _value = yield self.sim.any_of([r.done for r in reqs])
        for i, r in enumerate(reqs):
            if r.done is ev:
                return i, r
        raise SimulationError("waitany: no request matched")  # pragma: no cover

    def iprobe(self, source: int, tag: int):
        """Non-blocking probe: the (src, tag) of a matching unexpected
        message, or None.  Not a generator — costs no simulated time,
        like a real MPI_Iprobe fast path."""
        for envelope in self.matching._unexpected:
            if envelope.src == source and (tag == ANY_TAG or envelope.tag == tag):
                return envelope.src, envelope.tag
        return None

    def probe(self, source: int, tag: int):
        """Blocking probe (generator): waits until a matching message is
        queued, without receiving it.  Returns (src, tag)."""
        while True:
            hit = self.iprobe(source, tag)
            if hit is not None:
                return hit
            ev = self.sim.event()
            self._probe_waiters.append(ev)
            yield ev

    # collectives are implemented in repro.mpi.collectives and re-exported
    # as bound helpers here

    def barrier(self):
        from repro.mpi.collectives import barrier

        yield from barrier(self)

    def alltoall(self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount):
        from repro.mpi.collectives import alltoall

        yield from alltoall(
            self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
        )

    def bcast(self, addr, datatype, count, root):
        from repro.mpi.collectives import bcast

        yield from bcast(self, addr, datatype, count, root)

    def allgather(self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount):
        from repro.mpi.collectives import allgather

        yield from allgather(
            self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount
        )

    def alltoallv(
        self, sendaddr, sendtype, sendcounts, sdispls,
        recvaddr, recvtype, recvcounts, rdispls,
    ):
        from repro.mpi.collectives import alltoallv

        yield from alltoallv(
            self, sendaddr, sendtype, sendcounts, sdispls,
            recvaddr, recvtype, recvcounts, rdispls,
        )

    def gather(
        self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount, root
    ):
        from repro.mpi.collectives import gather

        yield from gather(
            self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount, root
        )

    def scatter(
        self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount, root
    ):
        from repro.mpi.collectives import scatter

        yield from scatter(
            self, sendaddr, sendtype, sendcount, recvaddr, recvtype, recvcount, root
        )

    def reduce(self, sendaddr, recvaddr, count, np_dtype, op="sum", root=0):
        from repro.mpi.collectives import reduce

        yield from reduce(self, sendaddr, recvaddr, count, np_dtype, op, root)

    def allreduce(self, sendaddr, recvaddr, count, np_dtype, op="sum"):
        from repro.mpi.collectives import allreduce

        yield from allreduce(self, sendaddr, recvaddr, count, np_dtype, op)

    # ------------------------------------------------------------------
    # scheme / pool access
    # ------------------------------------------------------------------

    def get_scheme(self, name: str):
        """Per-rank scheme instance (lazily constructed)."""
        if name not in self._schemes:
            from repro.schemes import make_scheme

            self._schemes[name] = make_scheme(name, self)
        return self._schemes[name]

    @property
    def pack_pool(self):
        if self._pack_pool is None:
            from repro.schemes.buffers import SegmentPool

            self._pack_pool = SegmentPool(
                self.node,
                self.cm.pool_size,
                self.cm.segment_size,
                enabled=self.cluster.staging_pools,
                name=f"pack{self.rank}",
            )
        return self._pack_pool

    @property
    def unpack_pool(self):
        if self._unpack_pool is None:
            from repro.schemes.buffers import SegmentPool

            self._unpack_pool = SegmentPool(
                self.node,
                self.cm.pool_size,
                self.cm.segment_size,
                enabled=self.cluster.staging_pools,
                name=f"unpack{self.rank}",
            )
        return self._unpack_pool

    # ------------------------------------------------------------------
    # rendezvous plumbing used by the schemes
    # ------------------------------------------------------------------

    def new_wr_id(self) -> tuple:
        self._wr_seq += 1
        return (self.rank, self._wr_seq)

    def send_completion(self, wr_id) -> Event:
        """Event that fires when the send WR with ``wr_id`` completes."""
        ev = self.sim.event()
        self._send_events[wr_id] = ev
        return ev

    def ctrl_send(self, dest: int, payload, nbytes: int = CTRL_HEADER_BYTES):
        """Send a control message (generator).  ``nbytes`` models the
        header size on the wire."""
        qp = self.ctrl_qps[dest]
        yield from self.node.cpu_work(self.cm.control_overhead, "ctrl")
        yield from qp.post_send(
            SendWR(Opcode.SEND, payload=payload, extra_bytes=nbytes, signaled=False)
        )

    @property
    def faults_active(self) -> bool:
        """True when this node carries an enabled fault injector."""
        inj = self.node.fault_injector
        return inj is not None and inj.enabled

    def rdma_healthy(self, peer: int) -> bool:
        """False while the control QP toward ``peer`` is inside the
        hard-failure fallback window (see
        :func:`repro.schemes.selector.apply_fault_fallback`)."""
        qp = self.ctrl_qps.get(peer)
        if qp is None or qp.hard_failures < self.cm.fallback_hard_failures:
            return True
        return (self.sim.now - qp.last_hard_failure_us) > self.cm.fallback_cooldown_us

    def rndv_await_reply(self, req, start, nbytes: int = CTRL_HEADER_BYTES):
        """Wait for the rendezvous reply to ``start`` (generator).

        The fault-free path reduces to a plain inbox get.  With faults
        active the wait is guarded by a timeout: on expiry the start is
        retransmitted — idempotent, because the receiver admits envelopes
        by sequence number and answers a duplicate start by re-sending its
        recorded reply — and the timeout doubles, capped at 16x.  The
        retransmit budget is soft: exhaustion is counted, not fatal, since
        a reply can be legitimately late (deep rendezvous backlog) and
        every retransmission remains safe.
        """
        inbox = self.msg_inbox(req.msg_id)
        if not self.faults_active:
            reply = yield inbox.get()
            return reply
        timeouts = self.metrics.counter("rndv.timeouts", self.rank)
        retransmits = self.metrics.counter("rndv.retransmits", self.rank)
        attempt = 0
        while True:
            get_ev = inbox.get()
            timeout_us = self.cm.rndv_timeout_us * min(2.0**attempt, 16.0)
            timer = self.sim.timeout(timeout_us, tag="rndv-timeout")
            ev, value = yield self.sim.any_of([get_ev, timer])
            if ev is get_ev:
                timer.cancel()  # abandoned timer must not hold the clock
                return value
            if not inbox.cancel_get(get_ev):
                # the reply landed on the timeout's own timestamp
                reply = yield get_ev
                return reply
            attempt += 1
            timeouts.inc()
            if attempt > self.cm.rndv_retry_limit:
                self.metrics.counter("rndv.retry_exhausted", self.rank).inc()
            retransmits.inc()
            yield from self.ctrl_send(req.peer, start, nbytes=nbytes)

    def rndv_reply(self, start, reply, nbytes: int = CTRL_HEADER_BYTES):
        """Send a rendezvous reply (generator), recording it while faults
        are active so a duplicate (retransmitted) start can be answered
        again if this reply is lost on the wire."""
        if self.faults_active:
            self._rndv_replies[start.msg_id] = (start.src, reply, nbytes)
        yield from self.ctrl_send(start.src, reply, nbytes=nbytes)

    def msg_inbox(self, msg_id: int) -> Store:
        """Control-message inbox for a rendezvous message."""
        box = self._msg_inbox.get(msg_id)
        if box is None:
            box = Store(self.sim)
            self._msg_inbox[msg_id] = box
        return box

    def close_inbox(self, msg_id: int) -> None:
        self._msg_inbox.pop(msg_id, None)

    def charge_pack(
        self, nbytes: int, nblocks: int, tag: str = "pack", penalty: float = 1.0
    ):
        """Charge datatype-processing + copy CPU time, under current
        memory-bus contention (generator)."""
        start = self.sim.now
        yield from self.node.copy_work(nbytes, max(nblocks, 1), tag, penalty)
        self.node.tracer.record(start, self.sim.now, self.rank, tag)
        self.metrics.counter("scheme.copy_bytes", self.rank).inc(nbytes)
        self.metrics.counter("scheme.copy_blocks", self.rank).inc(max(nblocks, 1))

    # ------------------------------------------------------------------
    # internal: request bookkeeping
    # ------------------------------------------------------------------

    def _make_request(self, kind, peer, tag, addr, datatype, count) -> Request:
        self._msg_seq += 1
        if kind == "send":
            self._send_seq += 1
        return Request(
            kind=kind,
            rank=self.rank,
            peer=peer,
            tag=tag,
            addr=addr,
            datatype=datatype,
            count=count,
            done=self.sim.event(),
            msg_id=self.rank * 1_000_000 + self._msg_seq,
            seq=self._send_seq,
        )

    def _complete(self, req: Request, src: int = None, tag: int = None) -> None:
        req.status_src = src if src is not None else req.peer
        req.status_tag = tag if tag is not None else req.tag
        if not req.done.triggered:
            req.done.succeed(req, tag="complete")

    # ------------------------------------------------------------------
    # internal: self messages
    # ------------------------------------------------------------------

    def _self_send(self, req: Request):
        """Send-to-self: stage through a temporary packed buffer."""
        cur = SegmentCursor(req.datatype, req.count)
        tmp = self.node.memory.alloc(max(cur.total, 1))
        nblocks = pack_bytes(self.node.memory, req.addr, cur, 0, cur.total, tmp)
        yield from self.charge_pack(cur.total, nblocks)
        envelope = _Envelope(self.rank, req.tag, "self", (req, tmp))
        rreq = self.matching.arrive(envelope)
        self._complete(req)  # buffered: sender may reuse its buffer now
        if rreq is not None:
            yield from self._self_deliver(rreq, envelope)
        else:
            self._wake_probes()

    def _self_deliver(self, rreq: Request, envelope: _Envelope):
        sreq, tmp = envelope.header
        cur = SegmentCursor(rreq.datatype, rreq.count)
        if cur.total < sreq.datatype.size * sreq.count:
            raise TruncationError("receive buffer too small for self message")
        hi = sreq.datatype.size * sreq.count
        nblocks = unpack_bytes(self.node.memory, rreq.addr, cur, 0, hi, tmp)
        yield from self.charge_pack(hi, nblocks, "unpack")
        self.node.memory.free(tmp)
        self._complete(rreq, src=self.rank, tag=sreq.tag)

    # ------------------------------------------------------------------
    # internal: eager protocol
    # ------------------------------------------------------------------

    def _eager_send(self, req: Request):
        scheme = self.cluster.choose_scheme(self, req)
        cur = req.cursor
        nbytes = cur.total
        # the extra staging copies of the Generic path only exist for
        # noncontiguous data; contiguous eager data goes user->slot
        two_copy = getattr(scheme, "eager_two_copy", False) and cur.flat.nblocks > 1
        # flow control + slot acquisition; in RDMA-eager mode the free
        # ring-slot token IS the credit
        if self.cluster.eager_rdma:
            ring_addr = yield self._ring_out[req.peer].get()
        else:
            yield self._credits[req.peer].get()
        slot_addr = yield self._send_slot_tokens.get()
        if two_copy:
            # Generic path (Figure 1): pack into a temporary buffer, then
            # copy into the eager internal buffer.
            stage = yield from self._acquire_eager_stage(nbytes)
            nblocks = pack_bytes(self.node.memory, req.addr, cur, 0, nbytes, stage)
            yield from self.charge_pack(nbytes, nblocks)
            self.node.memory.view(slot_addr, nbytes)[:] = self.node.memory.view(
                stage, nbytes
            )
            yield from self.node.copy_work(nbytes, 0, "copy")
        else:
            # optimized path (Figure 7): pack straight into the slot
            nblocks = pack_bytes(self.node.memory, req.addr, cur, 0, nbytes, slot_addr)
            yield from self.charge_pack(nbytes, nblocks)
        header = EagerHeader(self.rank, req.tag, nbytes, req.seq)
        wr_id = self.new_wr_id()
        done = self.send_completion(wr_id)
        qp = self.data_qps[req.peer]
        sge = [SGE(slot_addr, nbytes, self._send_slot_region_mr.lkey)] if nbytes else []
        if self.cluster.eager_rdma:
            # the polled RDMA-eager channel [19]: write into the peer's
            # ring slot; no receive descriptor is involved
            yield from qp.post_send(
                SendWR(
                    Opcode.RDMA_WRITE_POLLED,
                    sges=sge,
                    remote_addr=ring_addr,
                    rkey=self._ring_rkey[req.peer],
                    payload=header,
                    extra_bytes=CTRL_HEADER_BYTES,
                    wr_id=wr_id,
                )
            )
        else:
            yield from qp.post_send(
                SendWR(
                    Opcode.SEND,
                    sges=sge,
                    payload=header,
                    extra_bytes=CTRL_HEADER_BYTES,
                    wr_id=wr_id,
                )
            )
        # eager sends are buffered: complete as soon as the data left the
        # user buffer (it is in the slot); recycle the slot on the CQE
        self._complete(req)
        yield done
        self._send_slot_tokens.put(slot_addr)

    def _acquire_eager_stage(self, nbytes: int):
        """Persistent staging buffer for the Generic eager path (grown on
        demand; growth pays malloc)."""
        if self._eager_stage_size < nbytes:
            if self._eager_stage_size:
                self.node.memory.free(self._eager_stage_addr)
            self._eager_stage_addr = yield from self.node.malloc(nbytes)
            self._eager_stage_size = nbytes
        return self._eager_stage_addr

    def _eager_deliver(self, rreq: Request, envelope: _Envelope):
        """Progress-engine side: unpack a matched eager message."""
        header: EagerHeader = envelope.header
        peer, slot_addr, slot_kind = envelope.slot
        nbytes = header.nbytes
        cur = rreq.cursor
        if nbytes > cur.total:
            raise TruncationError(
                f"rank {self.rank}: {nbytes}-byte message overruns "
                f"{cur.total}-byte receive buffer (tag {header.tag})"
            )
        scheme = self.get_scheme(self.cluster.scheme_name)
        two_copy = getattr(scheme, "eager_two_copy", False) and cur.flat.nblocks > 1
        if two_copy and nbytes:
            stage = yield from self._acquire_eager_stage(nbytes)
            self.node.memory.view(stage, nbytes)[:] = self.node.memory.view(
                slot_addr, nbytes
            )
            yield from self.node.copy_work(nbytes, 0, "copy")
            nblocks = unpack_bytes(self.node.memory, rreq.addr, cur, 0, nbytes, stage)
            yield from self.charge_pack(nbytes, nblocks, "unpack")
        elif nbytes:
            nblocks = unpack_bytes(
                self.node.memory, rreq.addr, cur, 0, nbytes, slot_addr
            )
            yield from self.charge_pack(nbytes, nblocks, "unpack")
        self._complete(rreq, src=header.src, tag=header.tag)
        if slot_kind == "poll":
            yield from self._recycle_ring_slot(peer, slot_addr)
        else:
            yield from self._recycle_slot(peer, slot_addr)

    def _recycle_ring_slot(self, peer: int, slot_addr: int):
        """Return a freed RDMA-eager ring slot to its sender (batched)."""
        pending = self._ring_free_pending[peer]
        pending.append(slot_addr)
        if len(pending) >= RING_CREDIT_BATCH:
            slots = tuple(pending)
            pending.clear()
            yield from self.ctrl_send(peer, RingCredit(slots))

    def _recycle_slot(self, peer: int, slot_addr: int):
        """Repost the consumed slot descriptor and return credits."""
        mr = self._recv_slot_mr[peer]
        self.data_qps[peer].post_recv_nocost(
            RecvWR(
                sges=[SGE(slot_addr, self._slot_size, mr.lkey)],
                wr_id=("slot", peer, slot_addr),
            )
        )
        self._slot_free_count[peer] += 1
        if self._slot_free_count[peer] >= CREDIT_BATCH:
            count = self._slot_free_count[peer]
            self._slot_free_count[peer] = 0
            yield from self.ctrl_send(peer, Credit(count))

    # ------------------------------------------------------------------
    # internal: rendezvous dispatch
    # ------------------------------------------------------------------

    def _run_sender(self, scheme, req: Request):
        span = self.node.tracer.begin(
            self.sim.now, self.rank, f"scheme:{scheme.name}", "send",
            meta=req.msg_id,
        )
        try:
            yield from scheme.sender(self, req)
        finally:
            span.finish(self.sim.now)
        self.close_inbox(req.msg_id)
        self._complete(req)

    def _run_receiver(self, rreq: Request, start: RndvStart):
        grant = yield self._rndv_recv_slots.acquire()
        span = self.node.tracer.begin(
            self.sim.now, self.rank, f"scheme:{start.scheme}", "recv",
            meta=start.msg_id,
        )
        try:
            scheme = self.get_scheme(start.scheme)
            yield from scheme.receiver(self, rreq, start)
        finally:
            span.finish(self.sim.now)
            self._rndv_recv_slots.release(grant)
        self.close_inbox(start.msg_id)
        self._rndv_replies.pop(start.msg_id, None)
        self._complete(rreq, src=start.src, tag=start.tag)

    def _dispatch_matched(self, rreq: Request, envelope: _Envelope) -> None:
        """A posted receive matched a queued unexpected message."""
        if envelope.kind == "eager":
            self.sim.process(self._eager_deliver(rreq, envelope))
        elif envelope.kind == "rndv":
            self.sim.process(self._run_receiver(rreq, envelope.header))
        elif envelope.kind == "self":
            self.sim.process(self._self_deliver(rreq, envelope))
        else:  # pragma: no cover
            raise SimulationError(f"bad envelope kind {envelope.kind}")

    # ------------------------------------------------------------------
    # internal: progress engines
    # ------------------------------------------------------------------

    def _progress_engine(self):
        """Drain the receive CQ: matching, control routing, credits."""
        while True:
            cqe = yield self._recv_cq.wait()
            yield from self.node.cpu_work(self.cm.poll_cq, "poll")
            payload = cqe.payload
            if isinstance(payload, EagerHeader):
                peer = self._qp_rank[cqe.src_qp]
                wr_id = cqe.wr_id  # ("slot", peer, addr) | ("poll", addr)
                slot_addr = wr_id[2] if wr_id[0] == "slot" else wr_id[1]
                envelope = _Envelope(
                    payload.src, payload.tag, "eager", payload,
                    (peer, slot_addr, wr_id[0]),
                )
                yield from self._admit(payload.src, payload.seq, envelope)
            elif isinstance(payload, RndvStart):
                self._replenish_ctrl(cqe)
                envelope = _Envelope(payload.src, payload.tag, "rndv", payload)
                yield from self._admit(payload.src, payload.seq, envelope)
            elif isinstance(payload, Credit):
                self._replenish_ctrl(cqe)
                peer = self._qp_rank[cqe.src_qp]
                for _ in range(payload.count):
                    self._credits[peer].put(1)
            elif isinstance(payload, RingCredit):
                self._replenish_ctrl(cqe)
                peer = self._qp_rank[cqe.src_qp]
                for addr in payload.slots:
                    self._ring_out[peer].put(addr)
            elif type(payload).__name__ == "_LockReq":
                self._replenish_ctrl(cqe)
                self.sim.process(self._serve_lock(payload))
            elif type(payload).__name__ == "_LockRelease":
                self._replenish_ctrl(cqe)
                grant = self._win_lock_held.pop((payload.origin, payload.win_id))
                self._win_locks(payload.win_id).release(grant)
            elif hasattr(payload, "msg_id"):
                # rendezvous control (reply/fin/segment arrival/read ack):
                # route to the owning message's inbox
                self._replenish_ctrl(cqe)
                if isinstance(payload, RndvReply) and self.faults_active:
                    # under fault injection a reply may arrive more than
                    # once (the receiver re-answers retransmitted starts);
                    # deliver it to the waiting sender exactly once.  The
                    # seen-set is bounded by the run's message count.
                    if payload.msg_id in self._rndv_reply_seen:
                        continue
                    self._rndv_reply_seen.add(payload.msg_id)
                self.msg_inbox(payload.msg_id).put(payload)
            elif payload is None:
                # bare notification (e.g. an imm-only write); replenish
                self._replenish_ctrl(cqe)
            else:  # pragma: no cover
                raise SimulationError(f"unroutable payload {payload!r}")

    def _admit(self, src: int, seq: int, envelope: _Envelope):
        """Admit envelopes to matching strictly in per-source sequence
        order (generator); out-of-order arrivals are parked, and an
        already-admitted sequence number (only possible when fault
        injection retransmits a rendezvous start) is answered with the
        recorded reply instead of being matched twice."""
        if BREAK_MATCHING_ORDER:
            # mutation-test path: no sequencing, first arrival wins
            yield from self._deliver_envelope(envelope)
            return
        expected = self._recv_expected.get(src, 1)
        if seq < expected:
            if envelope.kind == "rndv" and self.faults_active:
                recorded = self._rndv_replies.get(envelope.header.msg_id)
                if recorded is not None:
                    dest, reply, nbytes = recorded
                    self.metrics.counter("rndv.reply_resends", self.rank).inc()
                    yield from self.ctrl_send(dest, reply, nbytes=nbytes)
            return
        if seq > expected:
            self._recv_ooo.setdefault(src, {})[seq] = envelope
            return
        yield from self._deliver_envelope(envelope)
        self._recv_expected[src] = expected + 1
        parked = self._recv_ooo.get(src)
        while parked and self._recv_expected[src] in parked:
            nxt = parked.pop(self._recv_expected[src])
            yield from self._deliver_envelope(nxt)
            self._recv_expected[src] += 1

    def _deliver_envelope(self, envelope: _Envelope):
        """Run matching for an admitted envelope (generator)."""
        rreq = self.matching.arrive(envelope)
        self._unexpected_gauge.set(len(self.matching._unexpected))
        if envelope.kind == "eager":
            if rreq is not None:
                yield from self._eager_deliver(rreq, envelope)
            else:
                self._wake_probes()
        else:  # rendezvous start
            if rreq is not None:
                self.sim.process(self._run_receiver(rreq, envelope.header))
            else:
                self._wake_probes()

    def _wake_probes(self) -> None:
        """An unexpected message arrived: let blocked probes re-check."""
        waiters, self._probe_waiters = self._probe_waiters, []
        for ev in waiters:
            ev.succeed()

    def _replenish_ctrl(self, cqe) -> None:
        """Repost a control receive descriptor for the one consumed."""
        wr_id = cqe.wr_id
        if isinstance(wr_id, tuple) and wr_id and wr_id[0] == "ctrl":
            peer = wr_id[1]
            self.ctrl_qps[peer].post_recv_nocost(RecvWR(wr_id=("ctrl", peer)))

    def _send_dispatcher(self):
        """Drain the send CQ, resolving registered completion events."""
        while True:
            cqe = yield self._send_cq.wait()
            ev = self._send_events.pop(cqe.wr_id, None)
            if ev is not None and not ev.triggered:
                ev.succeed(cqe)
