"""Synchronization primitives built on the event engine.

* :class:`Resource` — a counted FIFO resource (a CPU core, an HCA send
  engine, a DMA channel).  ``acquire()`` returns an event that triggers when
  a slot is granted; ``release()`` hands the slot to the next waiter.
* :class:`Store` — an unbounded FIFO mailbox of items; ``get()`` returns an
  event carrying the next item.  Used for message queues, completion queues
  and control channels.
* :class:`Signal` — a level-triggered broadcast: waiters block until
  :meth:`Signal.set` fires, after which waits complete immediately until
  :meth:`Signal.clear`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from repro.simulator.engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Signal", "Store"]


class Resource:
    """Counted resource with strict FIFO granting.

    Example::

        cpu = Resource(sim, capacity=1, name="cpu0")

        def work(sim, cpu):
            grant = yield cpu.acquire()
            try:
                yield sim.timeout(10.0)
            finally:
                cpu.release(grant)
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        #: total microseconds of grant-held time, for utilization stats
        self.busy_time = 0.0
        self._grant_times: dict[int, float] = {}
        self._grant_seq = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request a slot; the returned event's value is an opaque grant
        token to pass back to :meth:`release`."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self._new_grant())
        else:
            self._waiters.append(ev)
        return ev

    def release(self, grant: int) -> None:
        """Return a slot.  The oldest waiter (if any) is granted at the
        current simulated time."""
        start = self._grant_times.pop(grant, None)
        if start is None:
            raise SimulationError(f"release of unknown grant {grant!r} on {self.name}")
        self.busy_time += self.sim.now - start
        if self._waiters:
            self._waiters.popleft().succeed(self._new_grant())
        else:
            self._in_use -= 1

    def _new_grant(self) -> int:
        self._grant_seq += 1
        self._grant_times[self._grant_seq] = self.sim.now
        return self._grant_seq

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
            f"queue={len(self._waiters)}>"
        )


class Store:
    """Unbounded FIFO mailbox.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    next item (immediately if one is queued).  Items are delivered strictly
    in FIFO order to getters in FIFO order.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        #: total items ever put (statistics)
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def cancel_get(self, ev: Event) -> bool:
        """Withdraw a pending :meth:`get` event (e.g. after a timeout won
        a race against it).  Returns False when the event is not waiting —
        either it already triggered with an item or it was never ours; the
        caller must then consume the event's value instead of dropping it.
        """
        try:
            self._getters.remove(ev)
            return True
        except ValueError:
            return False

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (does not consume)."""
        return list(self._items)


class Signal:
    """Level-triggered broadcast event.

    While *clear*, :meth:`wait` returns pending events; :meth:`set` fires
    them all (with ``value``) and subsequent waits complete immediately.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._set = False
        self._value: Any = None
        self._waiters: list[Event] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        if self._set:
            return
        self._set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)

    def clear(self) -> None:
        self._set = False
        self._value = None

    def wait(self) -> Event:
        ev = Event(self.sim)
        if self._set:
            ev.succeed(self._value)
        else:
            self._waiters.append(ev)
        return ev
