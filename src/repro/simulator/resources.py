"""Synchronization primitives built on the event engine.

* :class:`Resource` — a counted FIFO resource (a CPU core, an HCA send
  engine, a DMA channel).  ``acquire()`` returns an event that triggers when
  a slot is granted; ``release()`` hands the slot to the next waiter.
* :class:`Store` — an unbounded FIFO mailbox of items; ``get()`` returns an
  event carrying the next item.  Used for message queues, completion queues
  and control channels.
* :class:`Signal` — a level-triggered broadcast: waiters block until
  :meth:`Signal.set` fires, after which waits complete immediately until
  :meth:`Signal.clear`.

When the owning simulator carries a profiler (``sim.profiler``), all
three primitives record grant/put provenance for the critical-path
walker — a queued :class:`Resource` grant is tagged with its request
time so the wait re-labels as ``resource-wait``; :class:`Store` and
:class:`Signal` waits keep their upstream cause (they are communication
dependencies, not contention) — plus wait-time histograms and
queue-depth samples.  Without a profiler nothing is recorded.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from repro.simulator.engine import Event, SimulationError, Simulator

__all__ = ["Resource", "Signal", "Store"]


class Resource:
    """Counted resource with strict FIFO granting.

    Example::

        cpu = Resource(sim, capacity=1, name="cpu0")

        def work(sim, cpu):
            grant = yield cpu.acquire()
            try:
                yield sim.timeout(10.0)
            finally:
                cpu.release(grant)
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1,
        name: str = "",
        node: Optional[int] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.node = node
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        #: total microseconds of grant-held time, for utilization stats
        self.busy_time = 0.0
        self._grant_times: dict[int, float] = {}
        self._grant_seq = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request a slot; the returned event's value is an opaque grant
        token to pass back to :meth:`release`."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self._new_grant())
        else:
            if self.sim.profiler is not None:
                # re-labels the wait as resource contention on the
                # critical path (see repro.obs.profile)
                ev._ptag = ("resource-wait", self.sim.now, self.name)
            self._waiters.append(ev)
        prof = self.sim.profiler
        if prof is not None:
            prof.sample_resource(self)
        return ev

    def release(self, grant: int) -> None:
        """Return a slot.  The oldest waiter (if any) is granted at the
        current simulated time."""
        start = self._grant_times.pop(grant, None)
        if start is None:
            raise SimulationError(f"release of unknown grant {grant!r} on {self.name}")
        self.busy_time += self.sim.now - start
        prof = self.sim.profiler
        if self._waiters:
            waiter = self._waiters.popleft()
            if prof is not None and waiter._ptag is not None:
                prof.observe_wait(
                    "resource.wait_us", self.node, self.sim.now - waiter._ptag[1]
                )
            waiter.succeed(self._new_grant())
        else:
            self._in_use -= 1
        if prof is not None:
            prof.sample_resource(self)

    def _new_grant(self) -> int:
        self._grant_seq += 1
        self._grant_times[self._grant_seq] = self.sim.now
        return self._grant_seq

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Resource {self.name!r} {self._in_use}/{self.capacity} "
            f"queue={len(self._waiters)}>"
        )


class Store:
    """Unbounded FIFO mailbox.

    ``put`` never blocks; ``get`` returns an event that triggers with the
    next item (immediately if one is queued).  Items are delivered strictly
    in FIFO order to getters in FIFO order.
    """

    def __init__(self, sim: Simulator, name: str = "", node: Optional[int] = None):
        self.sim = sim
        self.name = name
        self.node = node
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        #: total items ever put (statistics)
        self.total_put = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.total_put += 1
        if self._getters:
            getter = self._getters.popleft()
            prof = self.sim.profiler
            if prof is not None and getter._ptag is not None:
                prof.observe_wait(
                    "store.wait_us", self.node, self.sim.now - getter._ptag[1]
                )
            getter.succeed(item)
        else:
            self._items.append(item)
            prof = self.sim.profiler
            if prof is not None and self.name:
                prof.sample_store(self)

    def get(self) -> Event:
        ev = Event(self.sim)
        if self._items:
            ev.succeed(self._items.popleft())
            prof = self.sim.profiler
            if prof is not None and self.name:
                prof.sample_store(self)
        else:
            if self.sim.profiler is not None:
                # a marker, not an attribution override: the walker keeps
                # following the putter's cause chain through store waits
                ev._ptag = ("store-wait", self.sim.now, self.name)
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking pop; returns None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def cancel_get(self, ev: Event) -> bool:
        """Withdraw a pending :meth:`get` event (e.g. after a timeout won
        a race against it).  Returns False when the event is not waiting —
        either it already triggered with an item or it was never ours; the
        caller must then consume the event's value instead of dropping it.
        """
        try:
            self._getters.remove(ev)
            return True
        except ValueError:
            return False

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (does not consume)."""
        return list(self._items)


class Signal:
    """Level-triggered broadcast event.

    While *clear*, :meth:`wait` returns pending events; :meth:`set` fires
    them all (with ``value``) and subsequent waits complete immediately.
    """

    def __init__(self, sim: Simulator, name: str = "", node: Optional[int] = None):
        self.sim = sim
        self.name = name
        self.node = node
        self._set = False
        self._value: Any = None
        self._waiters: list[Event] = []

    @property
    def is_set(self) -> bool:
        return self._set

    def set(self, value: Any = None) -> None:
        if self._set:
            return
        self._set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        prof = self.sim.profiler
        for ev in waiters:
            if prof is not None and ev._ptag is not None:
                prof.observe_wait(
                    "signal.wait_us", self.node, self.sim.now - ev._ptag[1]
                )
            ev.succeed(value)

    def clear(self) -> None:
        self._set = False
        self._value = None

    def wait(self) -> Event:
        ev = Event(self.sim)
        if self._set:
            ev.succeed(self._value)
        else:
            if self.sim.profiler is not None:
                ev._ptag = ("signal-wait", self.sim.now, self.name)
            self._waiters.append(ev)
        return ev
