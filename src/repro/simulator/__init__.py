"""Discrete-event simulation kernel.

This subpackage is the substrate everything else runs on.  It provides a
small, deterministic, generator-coroutine event engine in the style of
SimPy: simulated processes are Python generators that ``yield`` events
(timeouts, resource grants, signals, other processes) and are resumed by
the :class:`~repro.simulator.engine.Simulator` when those events trigger.

Time is a floating-point number of **microseconds**; all cost models in
:mod:`repro.ib.costmodel` are expressed in the same unit.

The engine is deterministic: events scheduled for the same timestamp fire
in scheduling order (a monotonically increasing sequence number breaks
ties), so every simulation run is exactly reproducible.
"""

from repro.simulator.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simulator.resources import Resource, Signal, Store
from repro.simulator.trace import Span, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "Resource",
    "Signal",
    "SimulationError",
    "Simulator",
    "Span",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
