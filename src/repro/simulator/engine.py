"""Core discrete-event engine: simulator, events, processes.

The design follows the classic generator-coroutine pattern (SimPy, desmod):

* An :class:`Event` is a one-shot future.  It starts *untriggered*; calling
  :meth:`Event.succeed` (or :meth:`Event.fail`) triggers it, after which the
  simulator invokes its callbacks at the current simulated time.
* A :class:`Process` wraps a generator.  Each value the generator yields must
  be an :class:`Event`; the process suspends until that event triggers and is
  then resumed with the event's value (or the event's exception is thrown
  into the generator).  A :class:`Process` is itself an :class:`Event` that
  triggers when the generator returns, carrying its return value.
* The :class:`Simulator` owns the event heap and the clock.

Determinism: the heap is keyed by ``(time, seq)`` where ``seq`` is a global
monotonically increasing counter, so same-time events fire in the order they
were scheduled.  Nothing in the engine consults wall-clock time or a global
RNG.

Causal provenance (the critical-path profiler, ``repro.obs.profile``):
when :attr:`Simulator.profiler` is set, every scheduled event records the
event being processed at scheduling time (``_cause``), its scheduling time
(``_sched_at``), its due time (``_fire_at``), and an optional attribution
tag (``_ptag``).  Because every trigger happens while some event is being
processed, ``_sched_at`` of an event equals the fire time of its cause, so
the backward ``_cause`` chain from any completion partitions the run into
time-contiguous intervals — the invariant the profiler's attribution sum
rests on.  With ``profiler`` left ``None`` (the default) nothing is
recorded and scheduling order is untouched, keeping unprofiled runs
byte-identical.
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter_ns
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(RuntimeError):
    """Raised for illegal simulation operations (double trigger, deadlock,
    protection faults in the IB model, ...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value supplied by the interrupter.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot future tied to a :class:`Simulator`.

    States: *untriggered* -> *triggered* (pending in the heap) ->
    *processed* (callbacks have run).  An event can carry a value or an
    exception; a process waiting on a failed event has the exception thrown
    into it.
    """

    __slots__ = (
        "sim",
        "callbacks",
        "_value",
        "_exc",
        "triggered",
        "processed",
        "cancelled",
        "_cause",
        "_ptag",
        "_sched_at",
        "_fire_at",
    )

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with ``self`` when the event is processed.
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self.triggered = False
        self.processed = False
        self.cancelled = False
        #: provenance (populated only while ``sim.profiler`` is set):
        #: the event being processed when this one was scheduled, the
        #: scheduling/fire times, and an attribution tag for the
        #: critical-path profiler (see repro.obs.profile)
        self._cause: Optional["Event"] = None
        self._ptag: Any = None
        self._sched_at: float = -1.0
        self._fire_at: float = -1.0

    # -- triggering -----------------------------------------------------

    def succeed(
        self, value: Any = None, delay: float = 0.0, tag: Any = None
    ) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``.

        ``tag`` labels the delay for critical-path attribution (ignored —
        but harmless — when no profiler is attached)."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self.triggered = True
        self._value = value
        if tag is not None:
            self._ptag = tag
        self.sim._schedule(self, delay)
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception after ``delay``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.triggered = True
        self._exc = exc
        self.sim._schedule(self, delay)
        return self

    def cancel(self) -> "Event":
        """Withdraw a triggered-but-unprocessed event from the heap.

        The heap entry is skipped without running callbacks or advancing
        the clock — essential for abandoned timers (e.g. the losing arm
        of an ``any_of([get, timeout])`` race), which would otherwise
        keep the simulation alive until their deadline.  Cancelling
        twice is idempotent; cancelling a processed event is an error.
        """
        if self.processed:
            raise SimulationError(f"cannot cancel processed {self!r}")
        self.cancelled = True
        return self

    # -- inspection ------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The event's value (raises if the event failed or is pending)."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not triggered yet")
        if self._exc is not None:
            raise self._exc
        return self._value

    def _process(self) -> None:
        """Run callbacks.  Called by the simulator; not user API."""
        self.processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers ``delay`` microseconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self.triggered = True
        self._value = value
        sim._schedule(self, delay)


class Process(Event):
    """A running simulated process wrapping a generator.

    The process is itself an event: it triggers when the generator returns
    (value = the generator's return value) or raises (the exception
    propagates to waiters, or aborts the simulation if nobody waits).
    """

    __slots__ = ("_gen", "_waiting_on", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {type(gen)!r}")
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        self.name = name or getattr(gen, "__name__", "process")
        # Kick off the generator at the current time.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its callback is
        disarmed); the process resumes immediately with the interrupt.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        waiting = self._waiting_on
        if waiting is not None and self._resume in waiting.callbacks:
            waiting.callbacks.remove(self._resume)
        self._waiting_on = None
        hook = Event(self.sim)
        hook.callbacks.append(lambda _ev: self._step(throw=Interrupt(cause)))
        hook.succeed()

    # -- internal --------------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._exc is not None:
            self._step(throw=event._exc)
        else:
            self._step(send=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        if self.triggered:  # interrupted after completion race; ignore
            return
        self.sim._active_process = self
        try:
            if throw is not None:
                target = self._gen.throw(throw)
            else:
                target = self._gen.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.triggered = True
            self._exc = exc
            self.sim._schedule(self, 0.0)
            self.sim._register_failure(self, exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (Timeout, Process, Resource grants, ...)"
            )
        if target.processed:
            # Already completed: resume at the same timestamp via a relay
            # event carrying the target's outcome.  Appending the bound
            # ``_resume`` directly (rather than a per-yield closure) keeps
            # this path allocation-light — it runs once per yield of an
            # already-satisfied dependency, a very hot pattern.
            hook = Event(self.sim)
            hook.callbacks.append(self._resume)
            if target._exc is not None:
                hook.fail(target._exc)
            else:
                hook.succeed(target._value)
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composite events."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if not isinstance(ev, Event):
                raise TypeError(f"expected Event, got {type(ev)!r}")
        self._pending = 0
        if not self.events:
            self.succeed([])
            return
        for ev in self.events:
            self._pending += 1
            if ev.processed:
                hook = Event(sim)
                hook.callbacks.append(lambda _h, ev=ev: self._check(ev))
                hook.succeed()
            else:
                ev.callbacks.append(self._check)

    def _check(self, event: Event) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when every child event has triggered; value is the list of
    child values in construction order.  Fails fast on the first failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the first child event triggers; value is ``(event,
    value)`` for that child.  Fails if the first child to trigger failed."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self.succeed((event, event._value))


class Simulator:
    """Owns the clock and the event heap; runs the simulation.

    Typical use::

        sim = Simulator()

        def hello(sim):
            yield sim.timeout(5.0)
            return sim.now

        proc = sim.process(hello(sim))
        sim.run()
        assert proc.value == 5.0
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._failures: list[tuple[Process, BaseException]] = []
        #: a :class:`repro.obs.profile.Profiler` (or None).  While set,
        #: scheduled events record causal provenance; the default None
        #: keeps the hot path free of any recording.
        self.profiler: Optional[Any] = None
        #: the event currently being processed by :meth:`step` — the
        #: cause of anything scheduled during its callbacks.  Cleared as
        #: soon as the dispatch returns: events scheduled from *driver*
        #: code (between ``run()`` calls, or before the first) are causal
        #: roots and must not inherit a stale cause from the previous
        #: dispatch (see the critical-path profiler).
        self._current_event: Optional[Event] = None
        #: a :class:`repro.obs.hostprof.HostProfiler` (or None).  While
        #: set, :meth:`run` uses a timestamp-chained loop attributing
        #: host nanoseconds per dispatched event (heap ops, dispatch
        #: bookkeeping, callback bodies by tag category); the default
        #: None keeps :meth:`run` and :meth:`_schedule` on the exact
        #: unprofiled code paths.
        self.host_profiler: Optional[Any] = None
        #: total events dispatched by :meth:`step` (cancelled heap entries
        #: excluded) — the numerator of the selftest's events/sec metric
        self.events_processed: int = 0

    # -- factory helpers --------------------------------------------------

    def event(self) -> Event:
        """Create an untriggered one-shot event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None, tag: Any = None) -> Timeout:
        """Create an event that triggers after ``delay`` microseconds.

        ``tag`` labels the delay for critical-path attribution."""
        t = Timeout(self, delay, value)
        if tag is not None:
            t._ptag = tag
        return t

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new process from a generator."""
        return Process(self, gen, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        seq = self._seq + 1
        self._seq = seq
        due = self.now + delay
        heappush(self._heap, (due, seq, event))
        hp = self.host_profiler
        if hp is not None and hp._in_run:
            # push host-time stays inside the enclosing callback body
            # (timing each push costs more than the push); the count
            # keeps heap-op volume visible in the hotspot table
            hp.heap_pushes += 1
        if self.profiler is not None:
            event._cause = self._current_event
            event._sched_at = self.now
            event._fire_at = due

    def _register_failure(self, proc: Process, exc: BaseException) -> None:
        self._failures.append((proc, exc))

    # -- running -------------------------------------------------------------

    def step(self) -> None:
        """Process the next event in the heap."""
        time, _seq, event = heappop(self._heap)
        if event.cancelled:
            return
        if time < self.now:
            raise SimulationError("time went backwards")  # pragma: no cover
        self.now = time
        self.events_processed += 1
        self._current_event = event
        had_waiters = bool(event.callbacks)
        try:
            event._process()
        finally:
            # Anything scheduled after this point comes from driver code,
            # not from this dispatch: drop the cause so causal roots of a
            # later transfer never chain to the previous one.
            self._current_event = None
        # A process that died with nobody waiting aborts the simulation;
        # otherwise the exception was delivered to the waiters.
        if isinstance(event, Process) and event._exc is not None and not had_waiters:
            raise event._exc

    def run(self, until: Optional[float] = None) -> float:
        """Run until the heap drains or the clock passes ``until``.

        Returns the final simulated time.  With :attr:`host_profiler`
        attached the loop additionally attributes host nanoseconds per
        event (:meth:`_run_host_profiled`); simulated behaviour is
        identical either way.
        """
        if self.host_profiler is not None:
            return self._run_host_profiled(until)
        heap = self._heap
        step = self.step
        if until is None:
            while heap:
                step()
        else:
            while heap:
                nxt = self.peek()
                if not heap:
                    break
                if nxt > until:
                    self.now = until
                    break
                step()
        return self.now

    def _run_host_profiled(self, until: Optional[float]) -> float:
        """:meth:`run` with host-nanosecond attribution per dispatch.

        Consecutive ``perf_counter_ns`` timestamps chain through the
        loop — every segment boundary is shared, so the per-category
        sums tile the loop's wall time (the host profiler's closure
        invariant): loop-top + pop time to ``heap``, pre-callback
        bookkeeping (category lookup, provenance) to ``dispatch``, the
        callback body (minus nested probes) to ``callback.<tag
        category>``, and the periodic flush/sample blocks to
        ``profiler-self`` — three clock reads per instrumented event,
        one more per ``sample_every`` events.

        Clock reads are expensive enough to distort what they measure,
        so the loop duty-cycles: after ``duty_on`` instrumented
        dispatches it runs ``duty_off`` dispatches through the plain
        :meth:`step` body (nested probes disarmed), timing the whole
        stretch with a single clock read into the profiler's
        ``unsampled`` pool — apportioned pro-rata at reporting time,
        keeping closure exact at a fraction of the instrumentation
        cost.  ``duty_off == 0`` instruments every dispatch.
        """
        from repro.obs import hostprof as hostprof_mod
        hp = self.host_profiler
        heap = self._heap
        pcn = perf_counter_ns
        # hot-path locals: accumulate in ints, flush to hp at sample
        # boundaries and on exit (attribute RMW per event is ~3x costlier)
        cat_cache = hp._cat_cache
        cb_ns = hp.callback_ns
        cb_events = hp.callback_events
        sample_every = hp.sample_every
        duty_on = hp.duty_on
        duty_off = hp.duty_off
        heap_ns = dispatch_ns = 0
        n_events = n_cancelled = 0
        stop = False
        t_start = pcn()
        hp.run_begin()
        t_last = t_start
        try:
            while heap and not stop:
                # ---- instrumented burst: duty_on dispatches ----
                burst = 0
                while burst < duty_on:
                    if not heap:
                        break
                    if until is not None:
                        nxt = self.peek()
                        if not heap:
                            break
                        if nxt > until:
                            self.now = until
                            stop = True
                            break
                    time, _seq, event = heappop(heap)
                    t1 = pcn()
                    heap_ns += t1 - t_last
                    if event.cancelled:
                        n_cancelled += 1
                        t_last = t1  # skip bookkeeping rides in the next pop
                        continue
                    if time < self.now:
                        raise SimulationError(
                            "time went backwards"
                        )  # pragma: no cover
                    self.now = time
                    self.events_processed += 1
                    self._current_event = event
                    had_waiters = bool(event.callbacks)
                    tag = event._ptag
                    try:
                        cat = cat_cache[tag]
                    except (KeyError, TypeError):
                        cat = hp.category_of(tag)
                    hp._nested_ns = 0
                    hp._current_cat = cat
                    t2 = pcn()
                    dispatch_ns += t2 - t1
                    try:
                        event._process()
                    finally:
                        t3 = pcn()
                        self._current_event = None
                        body = t3 - t2 - hp._nested_ns
                        cb_events[cat] += 1
                        cb_ns[cat] += body if body > 0 else 0
                        n_events += 1
                        burst += 1
                        t_last = t3
                    if (
                        isinstance(event, Process)
                        and event._exc is not None
                        and not had_waiters
                    ):
                        raise event._exc
                    if n_events >= sample_every:
                        hp.heap_ns += heap_ns
                        hp.dispatch_ns += dispatch_ns
                        hp.events += n_events
                        hp.cancelled += n_cancelled
                        heap_ns = dispatch_ns = 0
                        n_events = n_cancelled = 0
                        hp.sample(self.now)
                        t_new = pcn()
                        hp.self_ns += t_new - t_last
                        t_last = t_new
                if stop or duty_off == 0 or not heap:
                    continue
                # ---- plain stretch: duty_off dispatches through the
                # uninstrumented step body, one clock read total ----
                hostprof_mod.ACTIVE = None
                hp._in_run = False
                off_n = 0
                try:
                    while off_n < duty_off:
                        if not heap:
                            break
                        if until is not None:
                            nxt = self.peek()
                            if not heap:
                                break
                            if nxt > until:
                                self.now = until
                                stop = True
                                break
                        time, _seq, event = heappop(heap)
                        if event.cancelled:
                            continue
                        if time < self.now:
                            raise SimulationError(
                                "time went backwards"
                            )  # pragma: no cover
                        self.now = time
                        self.events_processed += 1
                        self._current_event = event
                        had_waiters = bool(event.callbacks)
                        try:
                            event._process()
                        finally:
                            self._current_event = None
                        off_n += 1
                        if (
                            isinstance(event, Process)
                            and event._exc is not None
                            and not had_waiters
                        ):
                            raise event._exc
                finally:
                    t_new = pcn()
                    hp.unsampled_ns += t_new - t_last
                    hp.unsampled_events += off_n
                    t_last = t_new
                    hp._in_run = True
                    hostprof_mod.ACTIVE = hp
        finally:
            end = pcn()
            hp.heap_ns += heap_ns
            hp.dispatch_ns += dispatch_ns
            hp.self_ns += end - t_last
            hp.events += n_events
            hp.cancelled += n_cancelled
            hp._current_cat = None
            hp.run_end(end - t_start, self.now)
        return self.now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heappop(heap)
        return heap[0][0] if heap else float("inf")
