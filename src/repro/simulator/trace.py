"""Structured tracing of simulation activity.

A :class:`Tracer` collects timestamped :class:`TraceRecord` entries tagged
with a category (``"cpu"``, ``"wire"``, ``"reg"``, ...) and a node id.  The
benchmark harness uses traces to quantify overlap (e.g. how much packing
time was hidden behind wire time in BC-SPUP) and to explain the figures in
EXPERIMENTS.md.

Records form a **span hierarchy**: every record carries a ``span_id`` and
a ``parent_id``.  Long-lived enclosing spans (e.g. one ``scheme:bc-spup``
span per rendezvous operation) are opened with :meth:`Tracer.begin` and
closed with :meth:`Span.finish`; any record emitted on the same node while
a span is open is parented to it.  Flat callers that only ever use
:meth:`Tracer.record` keep working unchanged — their records become root
spans (``parent_id == 0``).

Tracing is off by default and adds no overhead beyond a boolean check.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from time import perf_counter_ns
from typing import Any, Iterator, Optional

__all__ = ["Span", "TimedTracer", "TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced interval of activity."""

    start: float
    end: float
    node: int
    category: str
    detail: str = ""
    meta: Any = None
    #: unique id of this interval within its tracer (0 = untracked)
    span_id: int = 0
    #: id of the enclosing span, 0 for root spans
    parent_id: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class Span:
    """An open hierarchical span; close it with :meth:`finish`.

    Returned by :meth:`Tracer.begin`.  While open, every record emitted on
    the same node (via :meth:`Tracer.record` or nested :meth:`Tracer.begin`)
    is parented to it.  A disabled tracer hands out inert spans with
    ``span_id == 0``.
    """

    __slots__ = ("tracer", "span_id", "parent_id", "start", "node",
                 "category", "detail", "meta", "closed")

    def __init__(self, tracer, span_id, parent_id, start, node, category,
                 detail="", meta=None):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.node = node
        self.category = category
        self.detail = detail
        self.meta = meta
        self.closed = False

    def finish(self, end: float) -> Optional[TraceRecord]:
        """Close the span at simulated time ``end`` and emit its record."""
        if self.span_id == 0:  # disabled tracer
            return None
        if self.closed:
            raise ValueError(f"span {self.span_id} already finished")
        self.closed = True
        return self.tracer._finish_span(self, end)


@dataclass
class Tracer:
    """Collects trace records; cheap no-op when disabled."""

    enabled: bool = False
    records: list[TraceRecord] = field(default_factory=list)
    #: per-node stack of open span ids (innermost last)
    _open: dict = field(default_factory=dict, repr=False)
    _next_id: int = field(default=0, repr=False)

    # -- span API -----------------------------------------------------------

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def current_span(self, node: int) -> int:
        """Id of the innermost open span on ``node`` (0 if none)."""
        stack = self._open.get(node)
        return stack[-1].span_id if stack else 0

    def begin(
        self,
        start: float,
        node: int,
        category: str,
        detail: str = "",
        meta: Any = None,
    ) -> Span:
        """Open a hierarchical span; records on ``node`` nest under it
        until :meth:`Span.finish` is called."""
        if not self.enabled:
            return Span(self, 0, 0, start, node, category, detail, meta)
        span = Span(
            self, self._new_id(), self.current_span(node), start, node,
            category, detail, meta,
        )
        self._open.setdefault(node, []).append(span)
        return span

    def _finish_span(self, span: Span, end: float) -> TraceRecord:
        stack = self._open.get(span.node, [])
        if span in stack:
            stack.remove(span)
        rec = TraceRecord(
            span.start, end, span.node, span.category, span.detail,
            span.meta, span.span_id, span.parent_id,
        )
        self.records.append(rec)
        return rec

    def record(
        self,
        start: float,
        end: float,
        node: int,
        category: str,
        detail: str = "",
        meta: Any = None,
    ) -> None:
        if self.enabled:
            self.records.append(
                TraceRecord(
                    start, end, node, category, detail, meta,
                    self._new_id(), self.current_span(node),
                )
            )

    def clear(self) -> None:
        self.records.clear()
        self._open.clear()

    # -- analysis helpers ---------------------------------------------------

    def iter_category(
        self, category: str, node: Optional[int] = None
    ) -> Iterator[TraceRecord]:
        for rec in self.records:
            if rec.category == category and (node is None or rec.node == node):
                yield rec

    def children(self, span_id: int) -> list[TraceRecord]:
        """Records directly parented to ``span_id``, in emission order."""
        return [r for r in self.records if r.parent_id == span_id]

    def roots(self) -> list[TraceRecord]:
        """Top-level records (no enclosing span)."""
        return [r for r in self.records if r.parent_id == 0]

    def total_time(self, category: str, node: Optional[int] = None) -> float:
        """Sum of durations for a category (intervals may overlap)."""
        return sum(rec.duration for rec in self.iter_category(category, node))

    def busy_time(self, category: str, node: Optional[int] = None) -> float:
        """Union length of the intervals for a category (overlaps merged)."""
        spans = sorted(
            (rec.start, rec.end) for rec in self.iter_category(category, node)
        )
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in spans:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def summary(self, node: Optional[int] = None) -> dict:
        """Per-category totals: {category: {"total": .., "busy": ..,
        "count": ..}} for one node (or all)."""
        cats = sorted(
            {r.category for r in self.records if node is None or r.node == node}
        )
        return {
            cat: {
                "total": self.total_time(cat, node),
                "busy": self.busy_time(cat, node),
                "count": sum(1 for _ in self.iter_category(cat, node)),
            }
            for cat in cats
        }

    def to_csv(self, path: str) -> None:
        """Dump all records to a CSV file for external analysis.

        The header lists every :class:`TraceRecord` field in declaration
        order; ``meta`` is included (``""`` when None).
        """
        import csv
        import os

        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        header = [f.name for f in fields(TraceRecord)]
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(header)
            for r in self.records:
                writer.writerow(
                    [
                        r.start, r.end, r.node, r.category, r.detail,
                        "" if r.meta is None else r.meta,
                        r.span_id, r.parent_id,
                    ]
                )

    def overlap_time(self, cat_a: str, cat_b: str, node: Optional[int] = None) -> float:
        """Total time during which *both* categories were active.

        Used to measure how much copy time is hidden behind wire time in the
        pipelined schemes.
        """
        a = sorted((r.start, r.end) for r in self.iter_category(cat_a, node))
        b = sorted((r.start, r.end) for r in self.iter_category(cat_b, node))
        i = j = 0
        total = 0.0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                total += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return total


class TimedTracer(Tracer):
    """A :class:`Tracer` that bills its own host cost to a host profiler.

    Installed by :class:`repro.mpi.world.Cluster` when *both* tracing and
    host profiling are enabled: every record/span operation times itself
    with ``perf_counter_ns`` and reports the nanoseconds to the host
    profiler's ``observability`` category (excluded from the enclosing
    callback body).  Behaviour — record contents, span ids, ordering —
    is identical to a plain enabled :class:`Tracer`.
    """

    def __init__(self, sink, enabled: bool = True):
        super().__init__(enabled=enabled)
        #: a :class:`repro.obs.hostprof.HostProfiler`
        self.sink = sink

    def begin(self, start, node, category, detail="", meta=None):
        if not self.sink._in_run:  # off-duty / outside run: no clock reads
            return super().begin(start, node, category, detail, meta)
        t0 = perf_counter_ns()
        span = super().begin(start, node, category, detail, meta)
        self.sink.add_nested("observability", perf_counter_ns() - t0)
        return span

    def _finish_span(self, span, end):
        if not self.sink._in_run:
            return super()._finish_span(span, end)
        t0 = perf_counter_ns()
        rec = super()._finish_span(span, end)
        self.sink.add_nested("observability", perf_counter_ns() - t0)
        return rec

    def record(self, start, end, node, category, detail="", meta=None):
        if not self.sink._in_run:
            return super().record(start, end, node, category, detail, meta)
        t0 = perf_counter_ns()
        super().record(start, end, node, category, detail, meta)
        self.sink.add_nested("observability", perf_counter_ns() - t0)
