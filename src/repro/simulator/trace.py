"""Structured tracing of simulation activity.

A :class:`Tracer` collects timestamped :class:`TraceRecord` entries tagged
with a category (``"cpu"``, ``"wire"``, ``"reg"``, ...) and a node id.  The
benchmark harness uses traces to quantify overlap (e.g. how much packing
time was hidden behind wire time in BC-SPUP) and to explain the figures in
EXPERIMENTS.md.

Tracing is off by default and adds no overhead beyond a boolean check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced interval of activity."""

    start: float
    end: float
    node: int
    category: str
    detail: str = ""
    meta: Any = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects trace records; cheap no-op when disabled."""

    enabled: bool = False
    records: list[TraceRecord] = field(default_factory=list)

    def record(
        self,
        start: float,
        end: float,
        node: int,
        category: str,
        detail: str = "",
        meta: Any = None,
    ) -> None:
        if self.enabled:
            self.records.append(TraceRecord(start, end, node, category, detail, meta))

    def clear(self) -> None:
        self.records.clear()

    # -- analysis helpers ---------------------------------------------------

    def iter_category(self, category: str, node: Optional[int] = None) -> Iterator[TraceRecord]:
        for rec in self.records:
            if rec.category == category and (node is None or rec.node == node):
                yield rec

    def total_time(self, category: str, node: Optional[int] = None) -> float:
        """Sum of durations for a category (intervals may overlap)."""
        return sum(rec.duration for rec in self.iter_category(category, node))

    def busy_time(self, category: str, node: Optional[int] = None) -> float:
        """Union length of the intervals for a category (overlaps merged)."""
        spans = sorted(
            (rec.start, rec.end) for rec in self.iter_category(category, node)
        )
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in spans:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    def summary(self, node: Optional[int] = None) -> dict:
        """Per-category totals: {category: {"total": .., "busy": ..,
        "count": ..}} for one node (or all)."""
        cats = sorted({r.category for r in self.records if node is None or r.node == node})
        return {
            cat: {
                "total": self.total_time(cat, node),
                "busy": self.busy_time(cat, node),
                "count": sum(1 for _ in self.iter_category(cat, node)),
            }
            for cat in cats
        }

    def to_csv(self, path: str) -> None:
        """Dump all records to a CSV file for external analysis."""
        import csv
        import os

        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["start", "end", "node", "category", "detail"])
            for r in self.records:
                writer.writerow([r.start, r.end, r.node, r.category, r.detail])

    def overlap_time(self, cat_a: str, cat_b: str, node: Optional[int] = None) -> float:
        """Total time during which *both* categories were active.

        Used to measure how much copy time is hidden behind wire time in the
        pipelined schemes.
        """
        a = sorted((r.start, r.end) for r in self.iter_category(cat_a, node))
        b = sorted((r.start, r.end) for r in self.iter_category(cat_b, node))
        i = j = 0
        total = 0.0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo < hi:
                total += hi - lo
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return total
