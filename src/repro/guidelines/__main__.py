"""CLI: ``python -m repro.guidelines {check,presets} [options]``.

``check`` sweeps every (scheme x preset x workload) cell, classifies
the guideline catalogue (pass / violation / crossover-shift), explains
violations via the predicted-vs-simulated cost-model machinery, applies
the checked-in waiver file, appends a record to the run ledger, and
exits nonzero when any *unwaived* violation remains — the CI gate.

``presets`` lists the registered cost-model presets with their
provenance lines.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench import parallel
from repro.guidelines import harness, report, waivers as waivers_mod
from repro.ib.costmodel import preset_names, preset_provenance


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.guidelines",
        description="Cross-hardware MPI performance-guidelines checker",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="sweep, classify, waive, gate (nonzero on violation)"
    )
    check.add_argument(
        "--preset",
        action="append",
        dest="presets",
        metavar="NAME",
        default=None,
        help=(
            "cost-model preset to sweep (repeatable; default: "
            + ", ".join(harness.DEFAULT_PRESETS)
            + ")"
        ),
    )
    check.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the machine-readable report here",
    )
    check.add_argument(
        "--markdown",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the markdown summary table here (CI job summary)",
    )
    check.add_argument(
        "--waivers",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "expectations file of known, explained violations "
            f"(default {waivers_mod.DEFAULT_WAIVERS_PATH})"
        ),
    )
    check.add_argument(
        "--write-waivers",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "draft a waiver entry per unwaived violation into PATH "
            "(reasons left as TODO) and exit 0"
        ),
    )
    check.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = all cores; default $REPRO_BENCH_JOBS or 1)",
    )
    check.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-addressed result cache (measure fresh)",
    )
    check.add_argument(
        "--no-explain",
        action="store_true",
        help="skip the per-violation cost-category attribution",
    )
    check.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="PATH",
        help="ledger file to append this run's record to",
    )
    check.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append a run record to the ledger",
    )
    check.add_argument(
        "--live",
        action="store_true",
        help="stream per-cell sweep telemetry to stderr",
    )
    check.add_argument(
        "--live-log",
        type=Path,
        default=None,
        metavar="FILE",
        help="stream per-cell sweep telemetry (JSONL) to FILE",
    )

    sub.add_parser("presets", help="list cost-model presets with provenance")
    return parser


def run_presets() -> int:
    for name in preset_names():
        line = preset_provenance(name)
        print(f"{name:<22} {line}")
    return 0


def run_checkcmd(args) -> int:
    if args.live_log is not None:
        parallel.set_live_log(str(args.live_log))
    elif args.live:
        parallel.set_live_log("-")

    presets = tuple(args.presets) if args.presets else harness.DEFAULT_PRESETS
    results = harness.run_check(
        presets=presets,
        jobs=args.jobs,
        use_cache=False if args.no_cache else None,
        explain_violations=not args.no_explain,
    )

    waiver_path = args.waivers or waivers_mod.DEFAULT_WAIVERS_PATH
    waivers = waivers_mod.load_waivers(waiver_path)
    unused = waivers_mod.apply_waivers(results, waivers)

    if args.write_waivers is not None:
        drafts = list(waivers) + waivers_mod.waivers_from_results(results)
        out = waivers_mod.save_waivers(args.write_waivers, drafts)
        print(f"wrote {len(drafts)} waiver(s) to {out}")
        return 0

    print(report.format_text(results, presets))
    if unused:
        print(f"\nnote: {len(unused)} waiver(s) matched nothing (prune?):")
        for w in unused:
            print(f"  {w.guideline}/{w.preset}/{w.scheme}: {w.reason}")

    if args.json is not None:
        report.write_json(args.json, results, presets)
        print(f"wrote {args.json}")
    if args.markdown is not None:
        args.markdown.write_text(report.format_markdown(results, presets))
        print(f"wrote {args.markdown}")
    if not args.no_ledger:
        path = harness.append_guidelines_record(results, presets, path=args.ledger)
        print(f"appended guidelines record to ledger {path}")

    return 1 if any(r.failing for r in results) else 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "presets":
        return run_presets()
    return run_checkcmd(args)


if __name__ == "__main__":
    sys.exit(main())
