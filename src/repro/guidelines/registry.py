"""The declarative guideline catalogue.

Each :class:`Guideline` states one performance expectation, in the
spirit of Träff/Gropp/Thakur's self-consistent performance guidelines.
Guidelines come in two strengths:

* **self-consistent** (``self_consistent=True``): the expectation
  relates an implementation to *itself* on the same hardware (datatype
  send vs pack-then-send, monotonicity in message size).  Breaking one
  is a genuine *violation* on any substrate — there is no hardware on
  which it is reasonable.
* **expectation** (``self_consistent=False``): the expectation encodes
  the *paper's* result on the *paper's* testbed (e.g. the specialized
  schemes beat the Generic baseline at large messages).  On the
  baseline preset a failure is a violation; on another preset it is a
  **crossover-shift** — the interesting, publishable observation that
  the trade-off moved with the hardware, not a bug.

Tolerances are relative slack (simulated numbers are deterministic, so
these absorb intended model noise, not measurement noise); ``slack_us``
adds a small absolute floor so microsecond-scale ties never flap.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GUIDELINES", "Guideline", "guideline"]


@dataclass(frozen=True)
class Guideline:
    """One declarative performance expectation."""

    name: str
    title: str
    description: str
    #: True: violation anywhere; False: violation on the baseline preset
    #: only, crossover-shift elsewhere
    self_consistent: bool
    #: relative tolerance applied to the comparison
    tolerance: float = 0.02
    #: absolute slack in simulated microseconds
    slack_us: float = 0.5


GUIDELINES: dict[str, Guideline] = {
    g.name: g
    for g in (
        Guideline(
            name="datatype-vs-manual",
            title="Datatype send is no slower than pack-then-send",
            description=(
                "Sending a derived datatype through the library must not be "
                "slower than the application packing into a contiguous "
                "buffer, sending, and unpacking by hand (the paper's "
                "'Manual' strategy; Träff et al.'s MPI_PACK guideline)."
            ),
            self_consistent=True,
        ),
        Guideline(
            name="count-monotonic",
            title="Latency is monotone in message size",
            description=(
                "Ping-pong latency of the same datatype family must not "
                "decrease as the element count grows: a larger message "
                "must never be faster than a smaller one."
            ),
            self_consistent=True,
        ),
        Guideline(
            name="scheme-dominance",
            title="Specialized schemes beat Generic at large messages",
            description=(
                "At bandwidth-dominated sizes, every specialized scheme "
                "(BC-SPUP, RWG-UP, P-RRS, Multi-W, hybrid, adaptive) "
                "should reach at least the Generic baseline's streaming "
                "bandwidth — the paper's headline result on its testbed. "
                "On other substrates a miss is a crossover-shift, not a "
                "violation."
            ),
            self_consistent=False,
            tolerance=0.05,
        ),
        Guideline(
            name="eager-rendezvous-crossover",
            title="No latency inversion across the eager/rendezvous switch",
            description=(
                "Contiguous ping-pong latency probed just below, at, and "
                "just above the preset's eager threshold must stay "
                "monotone: the protocol switch may add cost, but a larger "
                "message must never get cheaper by crossing it."
            ),
            self_consistent=True,
        ),
    )
}


def guideline(name: str) -> Guideline:
    """Look up a guideline, with an actionable error on a miss."""
    try:
        return GUIDELINES[name]
    except KeyError:
        raise KeyError(
            f"unknown guideline {name!r}; choose from {', '.join(GUIDELINES)}"
        ) from None
