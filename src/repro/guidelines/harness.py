"""Sweep, classify, explain: the guidelines checking harness.

The harness builds one grid of :class:`~repro.bench.parallel.Cell`
measurements per cost-model preset — every scheme's ping-pong latency
(fig08 workload), the Manual pack-then-send reference (fig02), every
scheme's streaming bandwidth (fig09), and a contiguous latency probe
around the preset's eager threshold — and fans the grid out through the
cached process-pool runner.  Cells carry their preset *by name* in
``Cell.extra``, so they stay picklable and the content-addressed cache
keys each preset's cells on the preset's resolved parameters.

:func:`evaluate` then walks the guideline catalogue over the measured
values and classifies every check:

* ``pass`` — the expectation holds;
* ``violation`` — a self-consistent guideline broke, or a paper
  expectation broke on the paper's own testbed;
* ``crossover-shift`` — a paper expectation moved on different
  hardware (reported, never failing).

Every violation is handed to the :mod:`repro.obs.explain`
predicted-vs-simulated machinery: the violating transfer is re-run
under the critical-path profiler on the violating preset (and on the
baseline, for comparison), and the check is annotated with the cost
category — copy / wire / descriptor / registration / waits — whose
share of the critical path moved the most.  That category is what a
waiver can pin (:mod:`repro.guidelines.waivers`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.bench.parallel import Cell, run_cells
from repro.guidelines.registry import GUIDELINES
from repro.ib.costmodel import get_preset

__all__ = [
    "BASELINE_PRESET",
    "BW_COLUMNS",
    "DEFAULT_PRESETS",
    "GUIDELINE_SCHEMES",
    "LAT_COLUMNS",
    "CheckResult",
    "append_guidelines_record",
    "build_cells",
    "crossover_sizes",
    "evaluate",
    "explain_violation",
    "run_check",
    "sweep",
]

#: the paper's testbed — expectations are anchored here
BASELINE_PRESET = "mellanox_2003"

#: presets the observatory sweeps by default (the cross-era line-up)
DEFAULT_PRESETS = (
    "mellanox_2003",
    "hdr_ib_2020",
    "ndr_ib_2023",
    "shared_memory_node",
    "gpu_kernel_pack",
)

#: all seven schemes — the four paper schemes plus p-rrs, hybrid, adaptive
GUIDELINE_SCHEMES = (
    "generic",
    "bc-spup",
    "rwg-up",
    "p-rrs",
    "multi-w",
    "hybrid",
    "adaptive",
)

#: column-vector sizes for the latency guidelines (small / mid / large)
LAT_COLUMNS = (8, 64, 512)
#: column-vector sizes for the bandwidth (dominance) guideline
BW_COLUMNS = (64, 512)

#: scheme used for the contiguous eager/rendezvous probe
_CONTIG_SCHEME = "bc-spup"


@dataclass
class CheckResult:
    """One classified guideline check."""

    guideline: str
    preset: str
    status: str  # "pass" | "violation" | "crossover-shift"
    scheme: Optional[str] = None
    figure: Optional[str] = None
    x: Optional[int] = None
    detail: str = ""
    measured: dict = field(default_factory=dict)
    #: filled for violations: moved_category, shares, divergent, total_us
    explanation: Optional[dict] = None
    waived: bool = False
    waiver_reason: str = ""

    @property
    def failing(self) -> bool:
        """True when this check should fail CI."""
        return self.status == "violation" and not self.waived

    def key(self) -> str:
        """Stable coordinate string (reports, ledger, debugging)."""
        parts = [self.guideline, self.preset]
        if self.scheme:
            parts.append(self.scheme)
        if self.figure:
            parts.append(self.figure)
        if self.x is not None:
            parts.append(str(self.x))
        return "/".join(parts)


def crossover_sizes(preset: str) -> tuple:
    """Contiguous probe sizes straddling the preset's eager threshold."""
    thr = get_preset(preset).eager_threshold
    return (max(1024, thr // 2), thr, 2 * thr)


def _extra(preset: str) -> tuple:
    return (("preset", preset),)


def build_cells(
    presets: Sequence[str] = DEFAULT_PRESETS,
    schemes: Sequence[str] = GUIDELINE_SCHEMES,
    lat_cols: Sequence[int] = LAT_COLUMNS,
    bw_cols: Sequence[int] = BW_COLUMNS,
) -> list:
    """The full measurement grid, in canonical order."""
    cells = []
    for preset in presets:
        extra = _extra(preset)
        for x in lat_cols:
            cells.append(Cell("fig02", "Manual", x, extra))
            for scheme in schemes:
                cells.append(Cell("fig08", scheme, x, extra))
        for x in bw_cols:
            for scheme in schemes:
                cells.append(Cell("fig09", scheme, x, extra))
        for nbytes in crossover_sizes(preset):
            cells.append(Cell("contig", _CONTIG_SCHEME, nbytes, extra))
    return cells


def sweep(
    presets: Sequence[str] = DEFAULT_PRESETS,
    schemes: Sequence[str] = GUIDELINE_SCHEMES,
    lat_cols: Sequence[int] = LAT_COLUMNS,
    bw_cols: Sequence[int] = BW_COLUMNS,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> dict:
    """Measure the grid through the cached process-pool runner.

    Returns ``{cell: value}`` — complete whatever the worker count, so
    downstream classification is byte-identical at any ``-j``.
    """
    cells = build_cells(presets, schemes, lat_cols, bw_cols)
    return run_cells(cells, jobs=jobs, use_cache=use_cache)


# ----------------------------------------------------------------------
# violation explanation (obs.explain integration)
# ----------------------------------------------------------------------


def explain_violation(scheme: str, preset: str, figure: str, x: int) -> dict:
    """Attribute a violating cell to a cost category.

    Profiles the violating transfer under the violating preset, compares
    its closed-form prediction per category (the
    :mod:`repro.obs.explain` machinery), and names the category whose
    share of the critical path grew the most relative to the baseline
    preset — or simply the dominant category when the violation *is* on
    the baseline.
    """
    from repro.bench.workloads import column_vector
    from repro.datatypes import BYTE, contiguous
    from repro.obs.explain import explain
    from repro.obs.profile import CATEGORIES, profile_transfer

    if figure == "contig":
        dt = contiguous(x, BYTE)
    else:
        dt = column_vector(x).datatype
    cm = get_preset(preset)
    attr, _cluster = profile_transfer(scheme, dt, cost_model=cm)
    if preset == BASELINE_PRESET:
        moved = attr.dominant()
    else:
        base_attr, _ = profile_transfer(
            scheme, dt, cost_model=get_preset(BASELINE_PRESET)
        )
        moved = max(CATEGORIES, key=lambda c: attr.share(c) - base_attr.share(c))
    deltas = explain(scheme, cm, dt.flatten(1), dt.size, attr)
    return {
        "moved_category": moved,
        "shares": {c: round(attr.share(c), 4) for c in CATEGORIES},
        "divergent": [d.category for d in deltas if d.flagged],
        "total_us": round(attr.total_us, 3),
    }


def _attach_explanation(result: CheckResult) -> None:
    if result.scheme is None or result.figure is None or result.x is None:
        return
    result.explanation = explain_violation(
        result.scheme, result.preset, result.figure, result.x
    )
    moved = result.explanation["moved_category"]
    result.detail += f" [explained: {moved} moved]"


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------


def _check_datatype_vs_manual(values, preset, schemes, lat_cols) -> list:
    g = GUIDELINES["datatype-vs-manual"]
    extra = _extra(preset)
    out = []
    for scheme in schemes:
        for x in lat_cols:
            lat = values[Cell("fig08", scheme, x, extra)]
            manual = values[Cell("fig02", "Manual", x, extra)]
            bound = manual * (1.0 + g.tolerance) + g.slack_us
            ok = lat <= bound
            out.append(
                CheckResult(
                    guideline=g.name,
                    preset=preset,
                    status="pass" if ok else "violation",
                    scheme=scheme,
                    figure="fig08",
                    x=x,
                    detail=(
                        f"datatype {lat:.1f}us vs manual {manual:.1f}us"
                        + ("" if ok else f" (bound {bound:.1f}us)")
                    ),
                    measured={
                        "latency_us": lat,
                        "manual_us": manual,
                        "ratio": lat / manual if manual else 0.0,
                    },
                )
            )
    return out


def _check_count_monotonic(values, preset, schemes, lat_cols) -> list:
    g = GUIDELINES["count-monotonic"]
    extra = _extra(preset)
    out = []
    for scheme in schemes:
        lats = [values[Cell("fig08", scheme, x, extra)] for x in lat_cols]
        bad = None
        for i in range(len(lats) - 1):
            if lats[i + 1] < lats[i] * (1.0 - g.tolerance) - g.slack_us:
                bad = i + 1
                break
        series = ", ".join(f"{x}:{v:.1f}us" for x, v in zip(lat_cols, lats))
        out.append(
            CheckResult(
                guideline=g.name,
                preset=preset,
                status="pass" if bad is None else "violation",
                scheme=scheme,
                figure="fig08",
                x=None if bad is None else lat_cols[bad],
                detail=(
                    f"latency over cols [{series}]"
                    + (
                        ""
                        if bad is None
                        else (
                            f"; decreased at cols={lat_cols[bad]} "
                            f"({lats[bad]:.1f} < {lats[bad - 1]:.1f}us)"
                        )
                    )
                ),
                measured={
                    "columns": list(lat_cols),
                    "latencies_us": [round(v, 3) for v in lats],
                },
            )
        )
    return out


def _check_scheme_dominance(values, preset, schemes, bw_cols) -> list:
    g = GUIDELINES["scheme-dominance"]
    extra = _extra(preset)
    x = max(bw_cols)
    base_bw = values[Cell("fig09", "generic", x, extra)]
    out = []
    for scheme in schemes:
        if scheme == "generic":
            continue
        bw = values[Cell("fig09", scheme, x, extra)]
        ok = bw >= base_bw * (1.0 - g.tolerance)
        if ok:
            status = "pass"
        elif preset == BASELINE_PRESET:
            status = "violation"
        else:
            status = "crossover-shift"
        out.append(
            CheckResult(
                guideline=g.name,
                preset=preset,
                status=status,
                scheme=scheme,
                figure="fig09",
                x=x,
                detail=(
                    f"{bw:.0f} MB/s vs generic {base_bw:.0f} MB/s"
                    + ("" if ok else f" ({bw / base_bw:.2f}x)")
                ),
                measured={
                    "bandwidth_mbps": bw,
                    "generic_mbps": base_bw,
                    "ratio": bw / base_bw if base_bw else 0.0,
                },
            )
        )
    return out


def _check_fastest_scheme_shift(values, presets, schemes, bw_cols) -> list:
    """Informational: did the fastest scheme change off-baseline?"""
    if BASELINE_PRESET not in presets:
        return []
    x = max(bw_cols)

    def fastest(preset):
        extra = _extra(preset)
        return max(schemes, key=lambda s: values[Cell("fig09", s, x, extra)])

    base_best = fastest(BASELINE_PRESET)
    out = []
    for preset in presets:
        if preset == BASELINE_PRESET:
            continue
        best = fastest(preset)
        shifted = best != base_best
        out.append(
            CheckResult(
                guideline="scheme-dominance",
                preset=preset,
                status="crossover-shift" if shifted else "pass",
                scheme=best,
                figure="fig09",
                x=x,
                detail=(
                    f"fastest scheme at cols={x}: {best}"
                    + (
                        f" (was {base_best} on {BASELINE_PRESET})"
                        if shifted
                        else " (unchanged vs baseline)"
                    )
                ),
                measured={
                    "fastest": best,
                    "baseline_fastest": base_best,
                },
            )
        )
    return out


def _check_eager_crossover(values, preset) -> list:
    g = GUIDELINES["eager-rendezvous-crossover"]
    extra = _extra(preset)
    sizes = crossover_sizes(preset)
    lats = [values[Cell("contig", _CONTIG_SCHEME, n, extra)] for n in sizes]
    bad = None
    for i in range(len(lats) - 1):
        if lats[i + 1] < lats[i] * (1.0 - g.tolerance) - g.slack_us:
            bad = i + 1
            break
    series = ", ".join(f"{n}B:{v:.1f}us" for n, v in zip(sizes, lats))
    return [
        CheckResult(
            guideline=g.name,
            preset=preset,
            status="pass" if bad is None else "violation",
            scheme=_CONTIG_SCHEME,
            figure="contig",
            x=None if bad is None else sizes[bad],
            detail=(
                f"contiguous latency around eager threshold [{series}]"
                + (
                    ""
                    if bad is None
                    else (
                        f"; inverted at {sizes[bad]}B "
                        f"({lats[bad]:.1f} < {lats[bad - 1]:.1f}us)"
                    )
                )
            ),
            measured={
                "sizes": list(sizes),
                "latencies_us": [round(v, 3) for v in lats],
            },
        )
    ]


def evaluate(
    values: dict,
    presets: Sequence[str] = DEFAULT_PRESETS,
    schemes: Sequence[str] = GUIDELINE_SCHEMES,
    lat_cols: Sequence[int] = LAT_COLUMNS,
    bw_cols: Sequence[int] = BW_COLUMNS,
    explain_violations: bool = True,
) -> list:
    """Classify every guideline over the measured grid.

    Deterministic: results come out in catalogue x preset x scheme x
    size order, independent of how the sweep was parallelized.
    """
    results: list[CheckResult] = []
    for preset in presets:
        results.extend(_check_datatype_vs_manual(values, preset, schemes, lat_cols))
        results.extend(_check_count_monotonic(values, preset, schemes, lat_cols))
        results.extend(_check_scheme_dominance(values, preset, schemes, bw_cols))
        results.extend(_check_eager_crossover(values, preset))
    results.extend(_check_fastest_scheme_shift(values, presets, schemes, bw_cols))
    if explain_violations:
        for result in results:
            if result.status == "violation":
                _attach_explanation(result)
    return results


def run_check(
    presets: Sequence[str] = DEFAULT_PRESETS,
    schemes: Sequence[str] = GUIDELINE_SCHEMES,
    lat_cols: Sequence[int] = LAT_COLUMNS,
    bw_cols: Sequence[int] = BW_COLUMNS,
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    explain_violations: bool = True,
) -> list:
    """Sweep + evaluate in one call (the CLI's core)."""
    values = sweep(presets, schemes, lat_cols, bw_cols, jobs, use_cache)
    return evaluate(values, presets, schemes, lat_cols, bw_cols, explain_violations)


# ----------------------------------------------------------------------
# ledger integration
# ----------------------------------------------------------------------


def append_guidelines_record(
    results: Sequence[CheckResult],
    presets: Sequence[str],
    timestamp: Optional[float] = None,
    path=None,
):
    """Append one ``guidelines`` record to the append-only run ledger.

    Per-preset violation / crossover-shift / waived counts land in the
    record's ``metrics`` section under ``guidelines/<preset>/...`` keys,
    so the existing trends CLI and dashboard chart them with no extra
    wiring; the full per-check classification rides in ``checks``.
    """
    from repro.obs import ledger as ledger_mod

    metrics: dict = {}
    for preset in presets:
        mine = [r for r in results if r.preset == preset]
        counts = {
            "violations": sum(r.status == "violation" for r in mine),
            "crossover_shifts": sum(r.status == "crossover-shift" for r in mine),
            "waived": sum(r.waived for r in mine),
        }
        for name, value in counts.items():
            metrics[f"guidelines/{preset}/{name}"] = {
                "value": value,
                "unit": "checks",
                "better": "lower",
            }
    status = "fail" if any(r.failing for r in results) else "pass"
    record = ledger_mod.make_record(
        "guidelines",
        timestamp=time.time() if timestamp is None else timestamp,
        sha=ledger_mod.git_sha(),
        status=status,
        metrics=metrics,
        extra={
            "presets": list(presets),
            "checks": [
                {
                    "key": r.key(),
                    "status": r.status,
                    "waived": r.waived,
                    "moved_category": (r.explanation or {}).get("moved_category"),
                }
                for r in results
                if r.status != "pass"
            ],
        },
    )
    return ledger_mod.append_record(record, path)
