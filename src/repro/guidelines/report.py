"""Renderers for guideline check results: console, markdown, JSON.

All three renderers consume the same deterministic
:class:`~repro.guidelines.harness.CheckResult` list, so the JSON
document is byte-identical however the sweep was parallelized — the
property the determinism tests pin down.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.guidelines.registry import GUIDELINES

__all__ = [
    "format_markdown",
    "format_text",
    "summarize",
    "to_json_doc",
]

#: JSON document schema version
SCHEMA_VERSION = 1

_STATUS_ICON = {"pass": "ok", "violation": "VIOLATION", "crossover-shift": "shift"}


def summarize(results: Sequence) -> dict:
    """Counts the gate decision hangs off."""
    return {
        "checks": len(results),
        "passes": sum(r.status == "pass" for r in results),
        "violations": sum(r.status == "violation" for r in results),
        "crossover_shifts": sum(r.status == "crossover-shift" for r in results),
        "waived": sum(r.waived for r in results),
        "failing": sum(r.failing for r in results),
    }


def to_json_doc(results: Sequence, presets: Sequence[str]) -> dict:
    """The machine-readable report (``--json``)."""
    return {
        "schema": SCHEMA_VERSION,
        "presets": list(presets),
        "guidelines": {
            name: {"title": g.title, "self_consistent": g.self_consistent}
            for name, g in GUIDELINES.items()
        },
        "summary": summarize(results),
        "checks": [
            {
                "guideline": r.guideline,
                "preset": r.preset,
                "scheme": r.scheme,
                "figure": r.figure,
                "x": r.x,
                "status": r.status,
                "detail": r.detail,
                "measured": r.measured,
                "explanation": r.explanation,
                "waived": r.waived,
                "waiver_reason": r.waiver_reason,
            }
            for r in results
        ],
    }


def format_markdown(results: Sequence, presets: Sequence[str]) -> str:
    """The job-summary table (``--markdown``)."""
    s = summarize(results)
    lines = [
        "# Performance guidelines",
        "",
        f"**{s['checks']}** checks across presets "
        f"`{'`, `'.join(presets)}`: "
        f"{s['passes']} pass, {s['violations']} violations "
        f"({s['waived']} waived), {s['crossover_shifts']} crossover-shifts "
        f"— **{'FAIL' if s['failing'] else 'PASS'}**",
        "",
    ]
    flagged = [r for r in results if r.status != "pass"]
    if flagged:
        lines += [
            "| guideline | preset | scheme | x | status | cause | detail |",
            "|---|---|---|---|---|---|---|",
        ]
        for r in flagged:
            status = r.status + (" (waived)" if r.waived else "")
            cause = (r.explanation or {}).get("moved_category") or ""
            lines.append(
                f"| {r.guideline} | {r.preset} | {r.scheme or ''} "
                f"| {'' if r.x is None else r.x} | {status} | {cause} "
                f"| {r.detail} |"
            )
        lines.append("")
    waived = [r for r in flagged if r.waived and r.waiver_reason]
    if waived:
        lines.append("## Waiver reasons")
        lines.append("")
        for r in waived:
            lines.append(f"- `{r.key()}` — {r.waiver_reason}")
        lines.append("")
    return "\n".join(lines)


def format_text(results: Sequence, presets: Sequence[str]) -> str:
    """Console summary: one line per non-pass check plus totals."""
    s = summarize(results)
    lines = []
    for r in results:
        if r.status == "pass":
            continue
        mark = _STATUS_ICON.get(r.status, r.status)
        if r.waived:
            mark += " (waived)"
        cause = (r.explanation or {}).get("moved_category")
        suffix = f"  <- {cause}" if cause else ""
        lines.append(f"  {mark:<20} {r.key():<55} {r.detail}{suffix}")
    header = (
        f"guidelines: {s['checks']} checks / {len(presets)} presets -- "
        f"{s['violations']} violations ({s['waived']} waived), "
        f"{s['crossover_shifts']} crossover-shifts"
    )
    verdict = "guidelines check FAILED" if s["failing"] else "guidelines check passed"
    return "\n".join([header] + lines + [verdict])


def write_json(path, results: Sequence, presets: Sequence[str]) -> None:
    doc = to_json_doc(results, presets)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
