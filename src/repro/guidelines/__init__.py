"""Cross-hardware performance-guidelines observatory.

Träff, Gropp and Thakur's *Performance Expectations and Status Quo*
(self-consistent MPI performance guidelines) formalized what users may
reasonably expect of an MPI implementation: sending a derived datatype
should never be slower than packing it yourself and sending the bytes, a
larger message should never travel faster than a smaller one, and so on.
The paper reproduced here predates that work — and its motivating
Figure 2 is precisely a *violation* of the pack-then-send guideline on
2003 hardware.

This package turns those expectations into a checked, CI-gated sweep
across cost-model presets spanning two decades of hardware
(:data:`repro.ib.costmodel.PRESETS`):

* :mod:`~repro.guidelines.registry` — the declarative guideline
  catalogue;
* :mod:`~repro.guidelines.harness` — sweeps every (scheme x preset x
  workload) cell through the cached process-pool runner, classifies each
  check as pass / violation / crossover-shift vs the paper's testbed,
  and attributes violations to a cost category via the
  :mod:`repro.obs.explain` predicted-vs-simulated machinery;
* :mod:`~repro.guidelines.waivers` — the checked-in expectations file
  (``benchmarks/guidelines.json``): known, explained violations are
  waived, new ones fail CI;
* :mod:`~repro.guidelines.report` — markdown / JSON / console renderers;
* ``python -m repro.guidelines check`` — the CLI the CI job runs.
"""

from repro.guidelines.registry import GUIDELINES, Guideline
from repro.guidelines.harness import (
    BASELINE_PRESET,
    DEFAULT_PRESETS,
    CheckResult,
    evaluate,
    run_check,
    sweep,
)
from repro.guidelines.waivers import Waiver, apply_waivers, load_waivers, save_waivers

__all__ = [
    "BASELINE_PRESET",
    "DEFAULT_PRESETS",
    "GUIDELINES",
    "CheckResult",
    "Guideline",
    "Waiver",
    "apply_waivers",
    "evaluate",
    "load_waivers",
    "run_check",
    "save_waivers",
    "sweep",
]
