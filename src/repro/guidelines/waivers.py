"""The checked-in expectations file: waiving known, explained violations.

``benchmarks/guidelines.json`` records every guideline violation the
repository *knows about and has explained* — e.g. the Generic scheme
losing to pack-then-send on the paper's testbed, which is the paper's
own motivating Figure 2.  The CI guidelines job fails only on
violations **not** covered here, so a new violation (a regression, a
preset recalibration, a protocol change) fails loudly while the
documented status quo stays green.

A waiver matches a :class:`~repro.guidelines.harness.CheckResult` by
``fnmatch`` on each coordinate (``"*"`` wildcards), and — when its
``category`` is pinned — only if the explainer attributed the violation
to that cost category.  A waiver whose explanation no longer matches
stops applying, so a violation whose *cause* moves (say, from
descriptor cost to registration cost) resurfaces in CI even though its
coordinates are unchanged.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

__all__ = [
    "SCHEMA_VERSION",
    "Waiver",
    "apply_waivers",
    "load_waivers",
    "save_waivers",
    "waivers_from_results",
]

#: bump when the waiver-file shape changes incompatibly
SCHEMA_VERSION = 1

#: default checked-in location, relative to the repo root
DEFAULT_WAIVERS_PATH = Path("benchmarks") / "guidelines.json"


@dataclass(frozen=True)
class Waiver:
    """One waived (known, explained) guideline violation."""

    guideline: str = "*"
    preset: str = "*"
    scheme: str = "*"
    figure: str = "*"
    #: x coordinate as a string pattern ("*" matches any size)
    x: str = "*"
    #: required explainer category ("*" accepts any attribution)
    category: str = "*"
    reason: str = ""

    def matches(self, result) -> bool:
        """True when this waiver covers ``result``."""
        if result.status != "violation":
            return False
        coords = (
            (self.guideline, result.guideline),
            (self.preset, result.preset),
            (self.scheme, result.scheme or ""),
            (self.figure, result.figure or ""),
            (self.x, "" if result.x is None else str(result.x)),
        )
        if not all(fnmatchcase(value, pattern) for pattern, value in coords):
            return False
        if self.category != "*":
            moved = (result.explanation or {}).get("moved_category")
            if moved != self.category:
                return False
        return True


def load_waivers(path: Union[str, Path, None] = None) -> list[Waiver]:
    """Read the waiver file; a missing file is an empty waiver set."""
    src = Path(path) if path is not None else DEFAULT_WAIVERS_PATH
    try:
        payload = json.loads(src.read_text())
    except OSError:
        return []
    except ValueError as exc:
        raise SystemExit(
            f"guidelines: cannot parse waiver file {src}: {exc}"
        ) from None
    entries = payload.get("waivers", []) if isinstance(payload, dict) else []
    waivers = []
    fields = set(Waiver.__dataclass_fields__)
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        waivers.append(Waiver(**{k: v for k, v in entry.items() if k in fields}))
    return waivers


def save_waivers(
    path: Union[str, Path], waivers: Sequence[Waiver], note: Optional[str] = None
) -> Path:
    """Write the waiver file (sorted, stable formatting)."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    doc = {
        "schema": SCHEMA_VERSION,
        "note": note
        or (
            "Known, explained performance-guideline violations. Each entry "
            "waives matching violations reported by `python -m "
            "repro.guidelines check`; remove an entry to re-arm CI for it."
        ),
        "waivers": [asdict(w) for w in sorted(waivers, key=_sort_key)],
    }
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return out


def _sort_key(w: Waiver) -> tuple:
    return (w.guideline, w.preset, w.scheme, w.figure, w.x)


def apply_waivers(results: Iterable, waivers: Sequence[Waiver]) -> list[Waiver]:
    """Mark waived violations in place; returns the *unused* waivers.

    Unused waivers are reported (not failed on): they usually mean a
    violation was fixed and the expectations file deserves pruning.
    """
    used: set[int] = set()
    for result in results:
        for i, waiver in enumerate(waivers):
            if waiver.matches(result):
                result.waived = True
                result.waiver_reason = waiver.reason
                used.add(i)
                break
    return [w for i, w in enumerate(waivers) if i not in used]


def waivers_from_results(results: Iterable) -> list[Waiver]:
    """Draft one exact waiver per unwaived violation (``--write-waivers``).

    Reasons are left for the committer to fill in — a waiver is a
    *documented* exception, and the documentation is the point.
    """
    drafts = []
    for r in results:
        if r.status != "violation" or r.waived:
            continue
        drafts.append(
            Waiver(
                guideline=r.guideline,
                preset=r.preset,
                scheme=r.scheme or "*",
                figure=r.figure or "*",
                x="*" if r.x is None else str(r.x),
                category=(r.explanation or {}).get("moved_category", "*"),
                reason="TODO: explain why this violation is expected",
            )
        )
    return drafts
