"""The storage server: files as registered regions, a tiny control
protocol, and no CPU on the data path.

Files live in one large registered region of the server's address space
(the PVFS-style data store).  Because clients move data with one-sided
RDMA — write-gather in, read-scatter out — the server's CPU only touches
``open`` and ``commit`` control messages; the server HCA serves all data
traffic.  That asymmetry is the design point of [33] this subpackage
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ib.verbs import Opcode, RecvWR, SendWR
from repro.simulator import SimulationError

__all__ = ["FileHandle", "FileServer"]

#: control descriptors pre-posted per client connection
_CTRL_DEPTH = 1024


@dataclass(frozen=True)
class FileHandle:
    """Client-side handle: where a file lives on the server."""

    name: str
    addr: int
    size: int
    rkey: int


@dataclass(frozen=True)
class _OpenReq:
    client: int
    name: str
    size: int
    req_id: int


@dataclass(frozen=True)
class _OpenReply:
    req_id: int
    addr: int
    size: int
    rkey: int


@dataclass(frozen=True)
class _Commit:
    client: int
    name: str
    nbytes: int
    req_id: int


@dataclass(frozen=True)
class _CommitAck:
    req_id: int


class FileServer:
    """A storage node.  Construct via :class:`~repro.io.cluster.StorageCluster`."""

    def __init__(self, node, store_capacity: int):
        self.node = node
        self.sim = node.sim
        self.cm = node.cm
        base = node.memory.alloc(store_capacity, align=node.cm.page_size)
        #: the whole store is registered once at startup (PVFS pins its
        #: buffer pool the same way)
        self.store_mr = node.memory.register(base, store_capacity)
        self._base = base
        self._next = base
        self._end = base + store_capacity
        self._files: dict[str, FileHandle] = {}
        self._qps: dict[int, object] = {}
        #: commit log for tests: (client, name, nbytes)
        self.commits: list[tuple[int, str, int]] = []

    # -- wiring (done by StorageCluster at setup time) ---------------------

    def attach_client(self, client_id: int, qp) -> None:
        self._qps[client_id] = qp
        for _ in range(_CTRL_DEPTH):
            qp.post_recv_nocost(RecvWR(wr_id=("srv-ctrl", client_id)))
        self.sim.process(self._serve(client_id, qp), name=f"fsrv-c{client_id}")

    # -- file namespace -----------------------------------------------------

    def _create(self, name: str, size: int) -> FileHandle:
        fh = self._files.get(name)
        if fh is not None:
            if fh.size < size:
                raise SimulationError(
                    f"file {name!r} exists with smaller size {fh.size}"
                )
            return fh
        addr = (self._next + 63) // 64 * 64
        if addr + size > self._end:
            raise SimulationError("file store exhausted")
        self._next = addr + size
        fh = FileHandle(name, addr, size, self.store_mr.rkey)
        self._files[name] = fh
        return fh

    def file_view(self, name: str):
        """Server-side bytes of a file (for tests and local tooling)."""
        fh = self._files[name]
        return self.node.memory.view(fh.addr, fh.size)

    # -- control protocol ----------------------------------------------------

    def _serve(self, client_id: int, qp):
        while True:
            cqe = yield qp.recv_cq.wait()
            qp.post_recv_nocost(RecvWR(wr_id=("srv-ctrl", client_id)))
            yield from self.node.cpu_work(self.cm.control_overhead, "fsrv")
            msg = cqe.payload
            if isinstance(msg, _OpenReq):
                fh = self._create(msg.name, msg.size)
                yield from qp.post_send(
                    SendWR(
                        Opcode.SEND,
                        payload=_OpenReply(msg.req_id, fh.addr, fh.size, fh.rkey),
                        extra_bytes=64,
                        signaled=False,
                    )
                )
            elif isinstance(msg, _Commit):
                self.commits.append((msg.client, msg.name, msg.nbytes))
                yield from qp.post_send(
                    SendWR(
                        Opcode.SEND,
                        payload=_CommitAck(msg.req_id),
                        extra_bytes=64,
                        signaled=False,
                    )
                )
            else:  # pragma: no cover
                raise SimulationError(f"file server: bad request {msg!r}")
