"""Noncontiguous file I/O over the simulated verbs — the paper's
"other domains" claim, exercised.

The paper closes its abstract with: "Techniques discussed in this paper
can be applied to other domains such as file and storage systems to
support efficient noncontiguous I/O access", building on the authors'
PVFS-over-InfiniBand work ([31], [33]) where client memory is
noncontiguous and server-side file regions are contiguous.

This subpackage implements that system shape:

* :class:`~repro.io.server.FileServer` — a storage node exporting files
  as registered regions; passive for data (clients drive one-sided RDMA),
  active only for open/commit control messages.
* :class:`~repro.io.client.IOClient` — writes gather noncontiguous user
  memory straight into the contiguous file region (**RDMA write
  gather**); reads scatter the file region straight into user blocks
  (**RDMA read scatter**); both with a pack/unpack ("list I/O") strategy
  as the baseline.
* :class:`~repro.io.cluster.StorageCluster` — one server plus N client
  nodes wired through the fabric.
"""

from repro.io.client import IOClient, StripedHandle
from repro.io.cluster import StorageCluster
from repro.io.server import FileHandle, FileServer

__all__ = ["FileHandle", "FileServer", "IOClient", "StorageCluster", "StripedHandle"]
