"""The I/O client: noncontiguous file access strategies.

Write path (client memory noncontiguous, file contiguous):

* ``"rdma"`` — register the user blocks (OGR through the client's
  pin-down cache) and **RDMA-write-gather** them straight into the file
  region, up to 64 blocks per descriptor.  Zero copy; this is the [33]
  design the paper's Section 9 contrasts itself with.
* ``"pack"`` — list-I/O baseline: pack into a bounce buffer, one
  contiguous RDMA write, i.e. one extra copy.

Read path mirrors it: ``"rdma"`` **RDMA-read-scatters** the contiguous
file region directly into the user blocks; ``"pack"`` reads into a bounce
buffer and unpacks.

Both paths finish with a commit/ack round trip to the server, which is
the only part of an operation that touches the server CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes import Datatype, SegmentCursor
from repro.datatypes.pack import pack_bytes, unpack_bytes
from repro.ib.verbs import MAX_SGE, Opcode, RecvWR, SGE, SendWR
from repro.io.server import FileHandle, _Commit, _CommitAck, _OpenReply, _OpenReq
from repro.registration import RegistrationCache
from repro.registration.ogr import plan_regions
from repro.simulator import SimulationError, Store

__all__ = ["IOClient"]

_CTRL_DEPTH = 1024


@dataclass
class StripedHandle:
    """Client handle on a file striped round-robin over the servers.

    Server ``k`` stores stripes ``k, k+n, k+2n, ...`` back-to-back in its
    local extent — the classic PVFS layout.
    """

    name: str
    size: int
    stripe_size: int
    #: server_id -> FileHandle for that server's local extent
    parts: dict

    @property
    def nservers(self) -> int:
        return len(self.parts)

    def locate(self, offset: int) -> tuple[int, int]:
        """(server_id, server-local byte offset) of a global offset."""
        stripe = offset // self.stripe_size
        server = stripe % self.nservers
        local = (stripe // self.nservers) * self.stripe_size + (
            offset % self.stripe_size
        )
        return server, local


class IOClient:
    """One client node's connections to the storage servers."""

    def __init__(self, node, client_id: int, reg_cache_bytes: int,
                 stripe_size: int = 64 * 1024):
        self.node = node
        self.sim = node.sim
        self.cm = node.cm
        self.client_id = client_id
        self.stripe_size = stripe_size
        self.reg_cache = RegistrationCache(node, reg_cache_bytes)
        self._req_seq = 0
        self._replies: Store = Store(self.sim)
        self._qps: dict[int, object] = {}
        self._bounce_addr = 0
        self._bounce_size = 0
        self._bounce_mr = None
        #: statistics
        self.bytes_written = 0
        self.bytes_read = 0

    def attach(self, qp, server_id: int = 0) -> None:
        self._qps[server_id] = qp
        for _ in range(_CTRL_DEPTH):
            qp.post_recv_nocost(RecvWR(wr_id=("cli-ctrl", self.client_id)))
        self.sim.process(self._pump(qp), name=f"fcli{self.client_id}s{server_id}")

    @property
    def _qp(self):
        """The first server's QP (single-server convenience)."""
        return self._qps[0]

    def _pump(self, qp):
        while True:
            cqe = yield qp.recv_cq.wait()
            qp.post_recv_nocost(RecvWR(wr_id=("cli-ctrl", self.client_id)))
            self._replies.put(cqe.payload)

    # -- public API -------------------------------------------------------

    def open(self, name: str, size: int):
        """Open (creating if needed) a striped file; generator returning
        a :class:`StripedHandle`.

        Each server allocates a local extent holding its round-robin
        share of the stripes.
        """
        nserv = len(self._qps)
        nstripes = max(1, -(-size // self.stripe_size))
        pending = {}
        for sid in sorted(self._qps):
            cnt = len(range(sid, nstripes, nserv))
            local_size = max(cnt * self.stripe_size, 1)
            self._req_seq += 1
            req_id = self._req_seq
            pending[req_id] = sid
            yield from self.node.cpu_work(self.cm.control_overhead, "fio")
            yield from self._qps[sid].post_send(
                SendWR(
                    Opcode.SEND,
                    payload=_OpenReq(self.client_id, name, local_size, req_id),
                    extra_bytes=64,
                    signaled=False,
                )
            )
        parts = {}
        while pending:
            reply = yield self._replies.get()
            assert isinstance(reply, _OpenReply)
            sid = pending.pop(reply.req_id)
            parts[sid] = FileHandle(name, reply.addr, reply.size, reply.rkey)
        return StripedHandle(name, size, self.stripe_size, parts)

    def write(
        self,
        fh: FileHandle,
        file_offset: int,
        addr: int,
        datatype: Datatype,
        count: int = 1,
        strategy: str = "rdma",
    ):
        """Write (datatype, count) at ``addr`` to the file (generator
        returning bytes written)."""
        cur = SegmentCursor(datatype, count)
        nbytes = cur.total
        self._check_extent(fh, file_offset, nbytes)
        if strategy == "rdma":
            yield from self._write_rdma(fh, file_offset, addr, cur)
        elif strategy == "pack":
            yield from self._write_pack(fh, file_offset, addr, cur)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        yield from self._commit(fh, nbytes)
        self.bytes_written += nbytes
        return nbytes

    def read(
        self,
        fh: FileHandle,
        file_offset: int,
        addr: int,
        datatype: Datatype,
        count: int = 1,
        strategy: str = "rdma",
    ):
        """Read from the file into (datatype, count) at ``addr``
        (generator returning bytes read)."""
        cur = SegmentCursor(datatype, count)
        nbytes = cur.total
        self._check_extent(fh, file_offset, nbytes)
        if strategy == "rdma":
            yield from self._read_rdma(fh, file_offset, addr, cur)
        elif strategy == "pack":
            yield from self._read_pack(fh, file_offset, addr, cur)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.bytes_read += nbytes
        return nbytes

    def write_view(
        self,
        fh: StripedHandle,
        file_offset: int,
        addr: int,
        datatype: Datatype,
        count: int = 1,
        *,
        file_dt: Datatype,
        strategy: str = "rdma",
    ):
        """Write through a noncontiguous *file view* (generator).

        The memory stream of (datatype, count) lands in the data blocks
        of ``file_dt``, tiled from ``file_offset`` — MPI_File_set_view
        semantics, the structured access of Ching et al. [6].  With
        ``"rdma"`` each refined (memory piece -> file piece) goes as one
        zero-copy RDMA write; with ``"pack"`` (list I/O) the client packs
        first and writes contiguous bounce slices per file block.
        """
        cur = SegmentCursor(datatype, count)
        nbytes = cur.total
        if strategy == "rdma":
            pieces = self._view_pieces(
                fh, file_offset, cur, nbytes, file_dt, packed=False
            )
            slices = cur.slices(0, nbytes)
            mrs = yield from self._register_blocks(addr, slices)
            yield from self._issue_view_ops(fh, pieces, Opcode.RDMA_WRITE,
                                            addr, mrs, bounce=None)
            yield from self._release_blocks(mrs)
        elif strategy == "pack":
            pieces = self._view_pieces(
                fh, file_offset, cur, nbytes, file_dt, packed=True
            )
            bounce = yield from self._bounce(nbytes)
            nblocks = pack_bytes(self.node.memory, addr, cur, 0, nbytes, bounce)
            yield from self.node.copy_work(nbytes, nblocks, "fio-pack")
            yield from self._issue_view_ops(fh, pieces, Opcode.RDMA_WRITE,
                                            addr, None, bounce=bounce)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        yield from self._commit(fh, nbytes)
        self.bytes_written += nbytes
        return nbytes

    def read_view(
        self,
        fh: StripedHandle,
        file_offset: int,
        addr: int,
        datatype: Datatype,
        count: int = 1,
        *,
        file_dt: Datatype,
        strategy: str = "rdma",
    ):
        """Read through a noncontiguous file view (generator); mirror of
        :meth:`write_view`."""
        cur = SegmentCursor(datatype, count)
        nbytes = cur.total
        if strategy == "rdma":
            pieces = self._view_pieces(
                fh, file_offset, cur, nbytes, file_dt, packed=False
            )
            slices = cur.slices(0, nbytes)
            mrs = yield from self._register_blocks(addr, slices)
            yield from self._issue_view_ops(fh, pieces, Opcode.RDMA_READ,
                                            addr, mrs, bounce=None)
            yield from self._release_blocks(mrs)
        elif strategy == "pack":
            pieces = self._view_pieces(
                fh, file_offset, cur, nbytes, file_dt, packed=True
            )
            bounce = yield from self._bounce(nbytes)
            yield from self._issue_view_ops(fh, pieces, Opcode.RDMA_READ,
                                            addr, None, bounce=bounce)
            nblocks = unpack_bytes(self.node.memory, addr, cur, 0, nbytes, bounce)
            yield from self.node.copy_work(nbytes, nblocks, "fio-unpack")
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        self.bytes_read += nbytes
        return nbytes

    def _view_pieces(self, fh, file_offset, cur, nbytes, file_dt, packed: bool):
        """Refine the memory side against the tiled file view:
        (mem_off, file_off, len) pieces.

        ``packed=True`` expresses the memory side in packed-stream
        offsets (for bounce-buffer I/O); otherwise in memory-layout
        offsets relative to the user buffer.
        """
        from repro.schemes.multiw import refine

        if file_dt.size <= 0:
            raise ValueError("file view datatype carries no data")
        tiles = -(-nbytes // file_dt.size)
        file_flat = file_dt.flatten(tiles)
        # clip the file block list to exactly nbytes of data
        blocks, used = [], 0
        for off, ln in file_flat.blocks():
            take = min(ln, nbytes - used)
            blocks.append((off, take))
            used += take
            if used >= nbytes:
                break
        from repro.datatypes.flatten import Flattened

        clipped = Flattened.from_blocks(blocks)
        end = file_offset + int(clipped.offsets[-1] + clipped.lengths[-1])
        if end > fh.size:
            raise SimulationError(
                f"file view extends to {end}, beyond file size {fh.size}"
            )
        if packed:
            mem_side = Flattened.from_blocks([(0, nbytes)])
        else:
            mem_side = cur.flat
        return refine(mem_side, 0, clipped, file_offset)

    def _issue_view_ops(self, fh, pieces, opcode, addr, mrs, bounce):
        """Issue one RDMA op per refined piece, split at stripe borders."""
        yield from self.node.cpu_work(
            self.cm.dt_startup + len(pieces) * self.cm.dt_per_block, "dtproc"
        )
        completions = []
        k = 0
        for mem_off, file_off, ln in pieces:
            pos = 0
            while pos < ln:
                goff = file_off + pos
                server, local = fh.locate(goff)
                stripe_left = fh.stripe_size - (goff % fh.stripe_size)
                take = min(ln - pos, stripe_left)
                part = fh.parts[server]
                qp = self._qps[server]
                if bounce is not None:
                    sge = SGE(bounce + mem_off + pos, take, self._bounce_mr.lkey)
                else:
                    local_addr = addr + mem_off + pos
                    sge = SGE(local_addr, take, self._lkey(mrs, local_addr, take))
                wr_id = (self.client_id, "view", k)
                k += 1
                ev = self.sim.event()
                self._track(qp, wr_id, ev)
                yield from qp.post_send(
                    SendWR(
                        opcode,
                        sges=[sge],
                        remote_addr=part.addr + local,
                        rkey=part.rkey,
                        wr_id=wr_id,
                    )
                )
                completions.append(ev)
                pos += take
        yield self.sim.all_of(completions)

    # -- strategies ----------------------------------------------------------

    def _stripe_chunks(self, fh: StripedHandle, file_offset: int, total: int):
        """Split the packed-byte range [0, total) into per-stripe chunks:
        (packed_lo, packed_hi, server_id, server_local_offset)."""
        chunks = []
        pos = 0
        while pos < total:
            goff = file_offset + pos
            stripe_end = (goff // fh.stripe_size + 1) * fh.stripe_size
            hi = min(total, pos + (stripe_end - goff))
            server, local = fh.locate(goff)
            chunks.append((pos, hi, server, local))
            pos = hi
        return chunks

    def _write_rdma(self, fh, file_offset, addr, cur):
        slices = cur.slices(0, cur.total)
        yield from self.node.cpu_work(
            self.cm.dt_startup + len(slices) * self.cm.dt_per_block, "dtproc"
        )
        mrs = yield from self._register_blocks(addr, slices)
        completions = []
        for lo, hi, server, local in self._stripe_chunks(fh, file_offset, cur.total):
            part = fh.parts[server]
            qp = self._qps[server]
            chunk_slices = cur.slices(lo, hi)
            dst = part.addr + local
            for k in range(0, len(chunk_slices), MAX_SGE):
                group = chunk_slices[k : k + MAX_SGE]
                sges = [
                    SGE(addr + off, ln, self._lkey(mrs, addr + off, ln))
                    for off, ln in group
                ]
                nbytes = sum(ln for _o, ln in group)
                wr_id = (self.client_id, "w", lo, k)
                ev = self.sim.event()
                self._track(qp, wr_id, ev)
                yield from qp.post_send(
                    SendWR(
                        Opcode.RDMA_WRITE,
                        sges=sges,
                        remote_addr=dst,
                        rkey=part.rkey,
                        wr_id=wr_id,
                    )
                )
                completions.append(ev)
                dst += nbytes
        yield self.sim.all_of(completions)
        yield from self._release_blocks(mrs)

    def _write_pack(self, fh, file_offset, addr, cur):
        bounce = yield from self._bounce(cur.total)
        nblocks = pack_bytes(self.node.memory, addr, cur, 0, cur.total, bounce)
        yield from self.node.copy_work(cur.total, nblocks, "fio-pack")
        completions = []
        for lo, hi, server, local in self._stripe_chunks(fh, file_offset, cur.total):
            part = fh.parts[server]
            qp = self._qps[server]
            wr_id = (self.client_id, "wp", lo)
            ev = self.sim.event()
            self._track(qp, wr_id, ev)
            yield from qp.post_send(
                SendWR(
                    Opcode.RDMA_WRITE,
                    sges=[SGE(bounce + lo, hi - lo, self._bounce_mr.lkey)],
                    remote_addr=part.addr + local,
                    rkey=part.rkey,
                    wr_id=wr_id,
                )
            )
            completions.append(ev)
        yield self.sim.all_of(completions)

    def _read_rdma(self, fh, file_offset, addr, cur):
        slices = cur.slices(0, cur.total)
        yield from self.node.cpu_work(
            self.cm.dt_startup + len(slices) * self.cm.dt_per_block, "dtproc"
        )
        mrs = yield from self._register_blocks(addr, slices)
        completions = []
        for lo, hi, server, local in self._stripe_chunks(fh, file_offset, cur.total):
            part = fh.parts[server]
            qp = self._qps[server]
            chunk_slices = cur.slices(lo, hi)
            src = part.addr + local
            for k in range(0, len(chunk_slices), MAX_SGE):
                group = chunk_slices[k : k + MAX_SGE]
                sges = [
                    SGE(addr + off, ln, self._lkey(mrs, addr + off, ln))
                    for off, ln in group
                ]
                nbytes = sum(ln for _o, ln in group)
                wr_id = (self.client_id, "r", lo, k)
                ev = self.sim.event()
                self._track(qp, wr_id, ev)
                yield from qp.post_send(
                    SendWR(
                        Opcode.RDMA_READ,
                        sges=sges,
                        remote_addr=src,
                        rkey=part.rkey,
                        wr_id=wr_id,
                    )
                )
                completions.append(ev)
                src += nbytes
        yield self.sim.all_of(completions)
        yield from self._release_blocks(mrs)

    def _read_pack(self, fh, file_offset, addr, cur):
        bounce = yield from self._bounce(cur.total)
        completions = []
        for lo, hi, server, local in self._stripe_chunks(fh, file_offset, cur.total):
            part = fh.parts[server]
            qp = self._qps[server]
            wr_id = (self.client_id, "rp", lo)
            ev = self.sim.event()
            self._track(qp, wr_id, ev)
            yield from qp.post_send(
                SendWR(
                    Opcode.RDMA_READ,
                    sges=[SGE(bounce + lo, hi - lo, self._bounce_mr.lkey)],
                    remote_addr=part.addr + local,
                    rkey=part.rkey,
                    wr_id=wr_id,
                )
            )
            completions.append(ev)
        yield self.sim.all_of(completions)
        nblocks = unpack_bytes(self.node.memory, addr, cur, 0, cur.total, bounce)
        yield from self.node.copy_work(cur.total, nblocks, "fio-unpack")

    # -- plumbing ---------------------------------------------------------

    def _commit(self, fh, nbytes):
        """Commit to every server holding a part of the file."""
        expected = set()
        for sid in sorted(fh.parts):
            self._req_seq += 1
            req_id = self._req_seq
            expected.add(req_id)
            yield from self.node.cpu_work(self.cm.control_overhead, "fio")
            yield from self._qps[sid].post_send(
                SendWR(
                    Opcode.SEND,
                    payload=_Commit(self.client_id, fh.name, nbytes, req_id),
                    extra_bytes=64,
                    signaled=False,
                )
            )
        while expected:
            ack = yield self._replies.get()
            assert isinstance(ack, _CommitAck)
            expected.discard(ack.req_id)

    def _track(self, qp, wr_id, ev):
        """Resolve ``ev`` when the send CQE for ``wr_id`` arrives on ``qp``."""

        def waiter():
            while True:
                cqe = yield qp.send_cq.wait()
                if cqe.wr_id == wr_id:
                    ev.succeed(cqe)
                    return
                # someone else's completion: re-queue it
                qp.send_cq.push(cqe)

        self.sim.process(waiter(), name=f"fio-cqe{self.client_id}")

    def _register_blocks(self, addr, slices):
        blocks = [(addr + off, ln) for off, ln in slices]
        mrs = []
        for raddr, rlen in plan_regions(blocks, self.cm):
            mr = yield from self.reg_cache.acquire(raddr, rlen)
            mrs.append(mr)
        return mrs

    def _release_blocks(self, mrs):
        for mr in mrs:
            yield from self.reg_cache.release(mr)

    @staticmethod
    def _lkey(mrs, addr, length):
        for mr in mrs:
            if mr.covers(addr, length):
                return mr.lkey
        raise KeyError(f"no region covers [{addr:#x}, +{length})")

    def _bounce(self, nbytes):
        """Persistent registered bounce buffer, grown on demand."""
        if self._bounce_size < nbytes:
            if self._bounce_mr is not None:
                yield from self.node.deregister(self._bounce_mr)
                yield from self.node.mfree(self._bounce_addr)
            self._bounce_addr = yield from self.node.malloc(nbytes)
            self._bounce_mr = yield from self.node.register(self._bounce_addr, nbytes)
            self._bounce_size = nbytes
        return self._bounce_addr

    @staticmethod
    def _check_extent(fh, offset, nbytes):
        if offset < 0 or offset + nbytes > fh.size:
            raise SimulationError(
                f"I/O beyond file {fh.name!r}: offset {offset} + {nbytes} "
                f"> size {fh.size}"
            )
