"""Storage cluster assembly: one file server + N client nodes."""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.ib.costmodel import MB, CostModel
from repro.ib.fabric import Fabric
from repro.io.client import IOClient
from repro.io.server import FileServer
from repro.simulator import SimulationError, Simulator, Tracer

__all__ = ["StorageCluster"]


class StorageCluster:
    """A PVFS-style storage setup on the simulated fabric.

    Node 0 is the server; nodes 1..N are clients.  Client programs are
    generators over an :class:`~repro.io.client.IOClient`::

        cluster = StorageCluster(nclients=2)

        def prog(io):
            fh = yield from io.open("data", 1 << 20)
            yield from io.write(fh, 0, addr, dt, strategy="rdma")

        cluster.run(prog)
    """

    def __init__(
        self,
        nclients: int = 1,
        nservers: int = 1,
        cost_model: Optional[CostModel] = None,
        store_capacity: int = 256 * MB,
        memory_per_client: int = 256 * MB,
        reg_cache_bytes: int = 256 * MB,
        stripe_size: int = 64 * 1024,
        trace: bool = False,
    ):
        if nclients < 1:
            raise ValueError("need at least one client")
        if nservers < 1:
            raise ValueError("need at least one server")
        self.cm = cost_model or CostModel.mellanox_2003()
        self.sim = Simulator()
        self.tracer = Tracer(enabled=trace)
        self.fabric = Fabric(self.sim, self.cm, tracer=self.tracer)
        self.servers: list[FileServer] = []
        for _ in range(nservers):
            server_node = self.fabric.add_node(store_capacity + 64 * MB)
            server_node.tracer = self.tracer
            self.servers.append(FileServer(server_node, store_capacity))
        self.clients: list[IOClient] = []
        for cid in range(1, nclients + 1):
            node = self.fabric.add_node(memory_per_client)
            node.tracer = self.tracer
            client = IOClient(node, cid, reg_cache_bytes, stripe_size=stripe_size)
            for sid, server in enumerate(self.servers):
                qp_c = node.hca.create_qp()
                qp_s = server.node.hca.create_qp()
                self.fabric.connect(qp_c, qp_s)
                client.attach(qp_c, server_id=sid)
                server.attach_client(cid, qp_s)
            self.clients.append(client)

        self.stripe_size = stripe_size

    @property
    def server(self) -> FileServer:
        """The first server (single-server convenience)."""
        return self.servers[0]

    def file_bytes(self, name: str, size: int):
        """Reassemble a file's logical bytes from its striped parts
        (test/tooling convenience)."""
        import numpy as np

        out = np.empty(size, np.uint8)
        n = len(self.servers)
        for start in range(0, size, self.stripe_size):
            sidx = start // self.stripe_size
            server = sidx % n
            local = (sidx // n) * self.stripe_size
            ln = min(self.stripe_size, size - start)
            out[start : start + ln] = self.servers[server].file_view(name)[
                local : local + ln
            ]
        return out

    def run(
        self, programs: Sequence[Callable] | Callable, until: Optional[float] = None
    ):
        """Run one program per client (or the same program on all).

        Returns the list of per-client return values; ``self.sim.now`` is
        the elapsed simulated time.
        """
        if callable(programs):
            programs = [programs] * len(self.clients)
        if len(programs) != len(self.clients):
            raise ValueError(
                f"got {len(programs)} programs for {len(self.clients)} clients"
            )
        procs = [
            self.sim.process(prog(client), name=f"client{client.client_id}")
            for prog, client in zip(programs, self.clients)
        ]
        self.sim.run(until=until)
        unfinished = [i for i, p in enumerate(procs) if not p.triggered]
        if unfinished:
            raise SimulationError(f"client programs {unfinished} did not finish")
        return [p.value for p in procs]
