"""Convenience namespace for datatype construction.

``repro.types`` mirrors the MPI type-constructor vocabulary::

    from repro import types
    dt = types.vector(128, 8, 4096, types.INT)
"""

from repro.datatypes import (
    BYTE,
    CHAR,
    DOUBLE,
    Datatype,
    FLOAT,
    Flattened,
    INT,
    LONG,
    Primitive,
    SHORT,
    SegmentCursor,
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)

__all__ = [
    "BYTE",
    "CHAR",
    "DOUBLE",
    "Datatype",
    "FLOAT",
    "Flattened",
    "INT",
    "LONG",
    "Primitive",
    "SHORT",
    "SegmentCursor",
    "contiguous",
    "hindexed",
    "hvector",
    "indexed",
    "indexed_block",
    "resized",
    "struct",
    "subarray",
    "vector",
]
