"""Memory registration strategies.

RDMA networks require buffers to be registered (pinned + translated)
before the HCA may touch them.  Registration is expensive — Section 3.2
shows "DT + reg" is far slower than "Datatype" — so all the paper's
Copy-Reduced schemes stand or fall on how registration is handled
(Section 5.4.1).  This subpackage provides:

* :class:`~repro.registration.cache.RegistrationCache` — a pin-down cache
  (Tezuka et al. [12]): completed registrations are kept and reused when a
  later operation touches the same buffer; LRU eviction bounds pinned
  memory.
* :mod:`~repro.registration.ogr` — Optimistic Group Registration (Wu et
  al. [33]): registering a *noncontiguous* block list as a few covering
  regions, trading per-operation base cost against pinning the gap pages.
"""

from repro.registration.cache import RegistrationCache
from repro.registration.ogr import GroupRegistration, plan_regions, region_cost

__all__ = [
    "GroupRegistration",
    "RegistrationCache",
    "plan_regions",
    "region_cost",
]
