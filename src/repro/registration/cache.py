"""Pin-down registration cache (Tezuka et al. [12]).

Applications tend to reuse a handful of buffers for all communication
(Section 6; Liu et al. [18]), so keeping registrations alive across
operations amortizes their cost.  The cache:

* serves a request from an existing region when one **covers** the
  requested range (hit: zero cost),
* otherwise registers the exact range (miss: full registration cost) and
  caches it,
* evicts least-recently-used, *unreferenced* entries when the pinned-byte
  budget is exceeded — entries currently in use by an in-flight operation
  are pinned by refcount.

The Figure 14 "worst case" benchmark runs with the cache disabled
(capacity 0), forcing on-the-fly registration/deregistration every
operation — the paper's scenario where an application never reuses a
buffer.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.ib.memory import MemoryRegion

__all__ = ["RegistrationCache"]


@dataclass
class _Entry:
    mr: MemoryRegion
    refcount: int = 0


class RegistrationCache:
    """Per-node pin-down cache keyed by (addr, length) with containment
    lookup."""

    def __init__(self, node, capacity_bytes: int, hint_fn=None):
        """``capacity_bytes = 0`` disables caching entirely (every acquire
        registers, every release deregisters).

        ``hint_fn(addr, length)`` may return False for buffers the
        application declared one-shot (the paper's MPI_Info suggestion,
        Section 6): their registrations are never retained.
        """
        self.node = node
        self.capacity_bytes = capacity_bytes
        self._hint_fn = hint_fn
        self._entries: "OrderedDict[tuple[int, int], _Entry]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        metrics = node.metrics
        self._hits_metric = metrics.counter("reg.cache.hits", node.node_id)
        self._misses_metric = metrics.counter("reg.cache.misses", node.node_id)
        self._evictions_metric = metrics.counter(
            "reg.cache.evictions", node.node_id
        )
        self._pinned_gauge = metrics.gauge("reg.cache.pinned_bytes", node.node_id)

    @property
    def pinned_bytes(self) -> int:
        return sum(e.mr.length for e in self._entries.values())

    def acquire(self, addr: int, length: int):
        """Get a registered region covering [addr, addr+length).

        Generator returning the :class:`MemoryRegion`.  Registration time
        is charged on a miss only.
        """
        for key, entry in self._entries.items():
            if entry.mr.covers(addr, length):
                self.hits += 1
                self._hits_metric.inc()
                entry.refcount += 1
                self._entries.move_to_end(key)
                return entry.mr
        self.misses += 1
        self._misses_metric.inc()
        mr = yield from self.node.register(addr, length)
        hinted_oneshot = (
            self._hint_fn is not None and self._hint_fn(addr, length) is False
        )
        if self.capacity_bytes > 0 and not hinted_oneshot:
            entry = _Entry(mr, refcount=1)
            self._entries[(mr.addr, mr.length)] = entry
            self._pinned_gauge.set(self.pinned_bytes)
            yield from self._evict()
        return mr

    def release(self, mr: MemoryRegion):
        """Declare an acquired region no longer in use (generator).

        Cached entries stay registered (subject to eviction); uncached
        regions (capacity 0) are deregistered immediately.
        """
        entry = self._entries.get((mr.addr, mr.length))
        if entry is None:
            yield from self.node.deregister(mr)
            return
        entry.refcount = max(0, entry.refcount - 1)
        yield from self._evict()

    def _evict(self):
        """Drop LRU unreferenced entries until within budget."""
        while self.pinned_bytes > self.capacity_bytes:
            victim_key = None
            for key, entry in self._entries.items():  # ordered LRU -> MRU
                if entry.refcount == 0:
                    victim_key = key
                    break
            if victim_key is None:
                return  # everything in use; over budget until releases
            entry = self._entries.pop(victim_key)
            self.evictions += 1
            self._evictions_metric.inc()
            self._pinned_gauge.set(self.pinned_bytes)
            yield from self.node.deregister(entry.mr)

    def flush(self):
        """Deregister every unreferenced entry (generator)."""
        keys = [k for k, e in self._entries.items() if e.refcount == 0]
        for key in keys:
            entry = self._entries.pop(key)
            self._pinned_gauge.set(self.pinned_bytes)
            yield from self.node.deregister(entry.mr)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
