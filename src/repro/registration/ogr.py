"""Optimistic Group Registration (OGR) — Wu, Wyckoff, Panda [33].

Registering a noncontiguous datatype buffer block-by-block pays the
registration **base cost** once per block; registering the whole spanning
range pays the **per-page cost** for every gap page.  OGR groups blocks
into covering regions so that a gap is swallowed exactly when pinning its
pages is cheaper than starting a new registration operation:

    merge across gap  <=>  pages(gap) * reg_per_page < reg_base

"Large gaps which nulls any benefit over individual registration are
filtered out" (Section 5.4.1).  Because the total cost is the sum of one
base cost per region plus the per-page cost of each region, and each gap's
merge decision changes the total by exactly ``pages(gap)*per_page -
base``, deciding each gap independently on sorted blocks is optimal for
this cost model (up to page-boundary rounding, which :func:`plan_regions`
handles by costing real page spans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.ib.costmodel import CostModel
from repro.ib.memory import MemoryRegion

__all__ = ["GroupRegistration", "plan_regions", "region_cost"]


def region_cost(cm: CostModel, addr: int, length: int) -> float:
    """Registration time of one covering region."""
    return cm.reg_time(length, addr)


def plan_regions(
    blocks: Iterable[tuple[int, int]], cm: CostModel
) -> list[tuple[int, int]]:
    """Group (addr, length) blocks into covering regions.

    Blocks must be disjoint; they are sorted internally.  Returns a list of
    (addr, length) regions, each to be registered with one operation.
    """
    blocks = sorted((int(a), int(l)) for a, l in blocks if l > 0)
    if not blocks:
        return []
    regions: list[list[int]] = [[blocks[0][0], blocks[0][1]]]
    for addr, length in blocks[1:]:
        cur = regions[-1]
        cur_end = cur[0] + cur[1]
        if addr < cur_end:
            raise ValueError(f"overlapping blocks at {addr:#x}")
        # Cost of extending the current region to cover this block vs
        # opening a fresh registration for it.  Compare real page spans so
        # page-boundary sharing is accounted for.
        merged = region_cost(cm, cur[0], addr + length - cur[0])
        separate = region_cost(cm, cur[0], cur[1]) + region_cost(cm, addr, length)
        if merged < separate:
            cur[1] = addr + length - cur[0]
        else:
            regions.append([addr, length])
    return [(a, l) for a, l in regions]


def plan_cost(cm: CostModel, regions: Sequence[tuple[int, int]]) -> float:
    """Total registration time of a region plan."""
    return sum(region_cost(cm, a, l) for a, l in regions)


@dataclass
class GroupRegistration:
    """The result of registering a block list as covering regions.

    Provides lkey/rkey lookup for any block inside a region — what the
    Copy-Reduced schemes need to build SGEs and RDMA descriptors.
    """

    regions: list[MemoryRegion] = field(default_factory=list)

    @classmethod
    def register(cls, node, blocks: Iterable[tuple[int, int]], *, charge: bool = True):
        """Plan and register covering regions on ``node`` (generator).

        ``node`` is a :class:`repro.ib.hca.Node`; registration time is
        charged on its CPU per region.
        """
        plan = plan_regions(blocks, node.cm)
        group = cls()
        for addr, length in plan:
            mr = yield from node.register(addr, length, charge=charge)
            group.regions.append(mr)
        return group

    def mr_for(self, addr: int, length: int) -> MemoryRegion:
        """The region covering [addr, addr+length)."""
        for mr in self.regions:
            if mr.covers(addr, length):
                return mr
        raise KeyError(f"no registered region covers [{addr:#x}, {addr + length:#x})")

    def lkey_for(self, addr: int, length: int) -> int:
        return self.mr_for(addr, length).lkey

    @property
    def registered_bytes(self) -> int:
        return sum(mr.length for mr in self.regions)

    @property
    def nregions(self) -> int:
        return len(self.regions)

    def deregister(self, node, *, charge: bool = True):
        """Deregister all regions (generator)."""
        for mr in self.regions:
            yield from node.deregister(mr, charge=charge)
        self.regions.clear()
