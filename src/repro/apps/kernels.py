"""Distributed kernels over the MPI layer (all generators)."""

from __future__ import annotations

import math

import numpy as np

from repro import types

__all__ = ["decompose_2d", "halo_exchange", "transpose"]

_HALO_TAGS = (-1201, -1202, -1203, -1204)
_TRANSPOSE_TAG = -1210


def decompose_2d(nranks: int) -> tuple[int, int]:
    """The most square (py, px) grid with py * px == nranks."""
    px = int(math.sqrt(nranks))
    while nranks % px:
        px -= 1
    return nranks // px, px


def halo_exchange(mpi, tile_addr: int, n: int, itemsize: int, grid: tuple[int, int],
                  comm=None):
    """One halo-exchange epoch on an ``n x n`` tile (including the 1-cell
    halo ring) of ``itemsize``-byte elements, on a periodic ``(py, px)``
    process grid (generator).

    North/south halos travel as contiguous rows; east/west halos as
    vector datatypes — no manual packing.
    """
    ctx = comm or mpi
    py, px = grid
    if py * px != ctx.nranks:
        raise ValueError(f"grid {grid} does not cover {ctx.nranks} ranks")
    row_i, col_i = divmod(ctx.rank, px)
    north = ((row_i - 1) % py) * px + col_i
    south = ((row_i + 1) % py) * px + col_i
    west = row_i * px + (col_i - 1) % px
    east = row_i * px + (col_i + 1) % px
    interior = n - 2
    elem = {1: types.BYTE, 2: types.SHORT, 4: types.INT, 8: types.DOUBLE}[itemsize]
    row = types.contiguous(interior, elem)
    col = types.vector(interior, 1, n, elem)

    def at(r, c):
        return tile_addr + (r * n + c) * itemsize

    t_n, t_s, t_w, t_e = _HALO_TAGS
    reqs = []
    for args in (
        (at(0, 1), row, 1, north, t_n),
        (at(n - 1, 1), row, 1, south, t_s),
        (at(1, 0), col, 1, west, t_w),
        (at(1, n - 1), col, 1, east, t_e),
    ):
        r = yield from ctx.irecv(*args)
        reqs.append(r)
    for args in (
        (at(1, 1), row, 1, north, t_s),
        (at(n - 2, 1), row, 1, south, t_n),
        (at(1, 1), col, 1, west, t_e),
        (at(1, n - 2), col, 1, east, t_w),
    ):
        r = yield from ctx.isend(*args)
        reqs.append(r)
    yield from ctx.waitall(reqs)


def transpose(mpi, panel_addr: int, out_addr: int, n: int, itemsize: int = 8,
              comm=None):
    """Distributed transpose of an ``n x n`` row-distributed matrix
    (generator).

    Each rank holds ``n / p`` consecutive rows at ``panel_addr``.  After
    the call, ``out_addr`` holds the rank's ``n / p`` consecutive rows of
    the *transposed* matrix.  One Alltoall of resized vector slabs plus a
    local block transpose — the classic FFT exchange.
    """
    ctx = comm or mpi
    p = ctx.nranks
    if n % p:
        raise ValueError(f"matrix size {n} not divisible by {p} ranks")
    rows = n // p
    cols_per = n // p
    elem = {4: types.INT, 8: types.DOUBLE}[itemsize]
    slab = types.vector(rows, cols_per, n, elem)
    send_chunk = types.resized(slab, lb=0, extent=cols_per * itemsize)
    recv_chunk = types.contiguous(rows * cols_per, elem)
    # exchange: chunk j of my panel (columns j*cols_per...) goes to rank j
    scratch = ctx.alloc(p * rows * cols_per * itemsize)
    yield from ctx.alltoall(panel_addr, send_chunk, 1, scratch, recv_chunk, 1)
    # local rearrangement: chunk i holds rank i's rows of my columns;
    # transpose each rows x cols_per block into out[:, i*rows ...]
    np_dtype = np.int32 if itemsize == 4 else np.float64
    out = ctx.node.memory.view(out_addr, rows * n * itemsize).view(np_dtype)
    out = out.reshape(cols_per, n)
    for i in range(p):
        blk = ctx.node.memory.view(
            scratch + i * rows * cols_per * itemsize, rows * cols_per * itemsize
        ).view(np_dtype).reshape(rows, cols_per)
        out[:, i * rows : (i + 1) * rows] = blk.T
    yield from ctx.node.copy_work(rows * n * itemsize, p, "transpose-local")
    ctx.node.memory.free(scratch)
