"""Reusable distributed application kernels.

The paper's introduction motivates derived datatypes with
"(de)composition of multi-dimensional data volumes, fast Fourier
transform, and finite-element codes".  This subpackage packages those
communication kernels as a library over the MPI layer, so applications
(and the examples) call one function instead of hand-rolling datatypes:

* :func:`halo_exchange` — one halo-exchange epoch on a 2-D tile
  (contiguous rows, vector-datatype columns).
* :func:`transpose` — distributed matrix transpose via one Alltoall of
  resized vector slabs (the FFT communication core).
* :func:`decompose_2d` — balanced 2-D process-grid factorization.
"""

from repro.apps.kernels import decompose_2d, halo_exchange, transpose

__all__ = ["decompose_2d", "halo_exchange", "transpose"]
