"""The switch fabric connecting HCAs.

The paper's testbed is eight nodes on a single InfiniScale 8-port 4x
switch: full bisection bandwidth, so the sender-side HCA engine is the
injection bottleneck and the switch adds a fixed latency.  The model
follows that: :class:`Fabric` wires queue pairs together and owns the
per-hop latency (already accounted in :class:`~repro.ib.costmodel.CostModel`
via ``wire_latency``), plus convenience helpers to build fully-connected
clusters of nodes.
"""

from __future__ import annotations

from typing import Optional

from repro.ib.costmodel import CostModel
from repro.ib.hca import Node
from repro.ib.verbs import QPState, QueuePair
from repro.obs.metrics import MetricsRegistry
from repro.simulator import SimulationError, Simulator, Tracer

__all__ = ["Fabric"]


class Fabric:
    """A full-bisection switch; builds nodes and connects queue pairs."""

    def __init__(
        self,
        sim: Simulator,
        cm: CostModel,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.cm = cm
        self.tracer = tracer or Tracer()
        self.metrics = metrics or MetricsRegistry()
        self.nodes: list[Node] = []

    def add_node(self, memory_capacity: int) -> Node:
        """Create a node attached to this fabric."""
        node = Node(
            self.sim,
            node_id=len(self.nodes),
            cm=self.cm,
            memory_capacity=memory_capacity,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.nodes.append(node)
        return node

    @staticmethod
    def connect(qp_a: QueuePair, qp_b: QueuePair) -> None:
        """Bring two queue pairs to the connected (RTS) state."""
        if qp_a.peer is not None or qp_b.peer is not None:
            raise SimulationError("queue pair already connected")
        if qp_a is qp_b:
            raise SimulationError("cannot connect a queue pair to itself")
        qp_a.peer = qp_b
        qp_b.peer = qp_a
        qp_a.state = QPState.RTS
        qp_b.state = QPState.RTS

    def connect_all(self, memory_capacity: int, n: int) -> list[Node]:
        """Create ``n`` nodes and a fully-connected QP mesh.

        Each node gets one QP per remote node, exposed as
        ``node.hca.qps[remote_id]`` — the topology MVAPICH sets up over RC
        connections at MPI_Init.
        """
        nodes = [self.add_node(memory_capacity) for _ in range(n)]
        for node in nodes:
            node.hca.qps = {}
        for i in range(n):
            for j in range(i + 1, n):
                qp_i = nodes[i].hca.create_qp()
                qp_j = nodes[j].hca.create_qp()
                self.connect(qp_i, qp_j)
                nodes[i].hca.qps[j] = qp_i
                nodes[j].hca.qps[i] = qp_j
        return nodes
