"""Verbs-level objects: work requests, queue pairs, completion queues.

The model follows the InfiniBand Verbs abstraction the paper describes in
Section 2:

* **Channel semantics** — ``SEND`` descriptors are matched one-to-one with
  pre-posted ``RECV`` descriptors on the remote side; received data is
  scattered into the receive descriptor's SGEs and a completion entry is
  generated in the receiver's CQ.
* **Memory semantics** — ``RDMA_WRITE``/``RDMA_READ`` are one-sided.
  Write-gather collects multiple local SGEs into one contiguous remote
  range; read-scatter reads one contiguous remote range into multiple
  local SGEs.  ``RDMA_WRITE_IMM`` additionally consumes a remote receive
  descriptor and generates a remote completion carrying the immediate
  value — the segment-arrival notification mechanism of Sections 4.3.2
  and 7.3.
* **List descriptor post** — ``post_send_list`` models the Mellanox
  extended interface (Section 7.4) that posts a chain of descriptors in
  one call; the CPU cost difference is what Figure 13 measures.

Posting functions are generators: they charge the CPU cost of the post on
the owning node's CPU resource, then hand the descriptor(s) to the HCA send
engine.  Everything after that is asynchronous HCA work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.simulator import Event, SimulationError, Store

if TYPE_CHECKING:  # pragma: no cover
    from repro.ib.hca import HCA

__all__ = [
    "MAX_SGE",
    "Completion",
    "CompletionQueue",
    "Opcode",
    "QPState",
    "QueuePair",
    "RecvWR",
    "SGE",
    "SendWR",
]

#: Mellanox SDK scatter/gather limit the paper cites in Section 5.1.
MAX_SGE = 64


class QPState(enum.Enum):
    """The (reduced) IB queue-pair state machine.

    Real QPs walk RESET→INIT→RTR→RTS; the simulation collapses the setup
    ladder into RESET→RTS at :meth:`repro.ib.fabric.Fabric.connect` time.
    Under fault injection a QP whose send queue errors beyond its retry
    budget drops to SQE (send-queue error; receive side still live) and —
    if recovery itself keeps failing — to ERR.  The HCA send engine cycles
    SQE/ERR QPs back to RTS at ``CostModel.qp_recovery_us`` apiece.
    """

    RESET = "reset"
    RTS = "rts"
    SQE = "sqe"
    ERR = "err"


class Opcode(enum.Enum):
    SEND = "send"
    RDMA_WRITE = "rdma_write"
    RDMA_WRITE_IMM = "rdma_write_imm"
    #: an RDMA write whose arrival the receiver detects by *polling* a
    #: flag at the end of the written buffer (no receive descriptor, no
    #: CQE machinery) — the RDMA-eager mechanism of Liu et al. [19].
    #: Modelled as a write that surfaces a completion in the remote recv
    #: CQ after ``eager_rdma_poll`` without consuming a descriptor.
    RDMA_WRITE_POLLED = "rdma_write_polled"
    RDMA_READ = "rdma_read"


@dataclass(frozen=True)
class SGE:
    """A scatter/gather entry: one contiguous local range."""

    addr: int
    length: int
    lkey: int


@dataclass
class SendWR:
    """A send-queue work request.

    ``sges`` is the local gather list (for SEND / RDMA_WRITE*) or the local
    scatter list (for RDMA_READ).  ``remote_addr``/``rkey`` address the
    remote contiguous range for RDMA opcodes.  ``payload`` lets channel
    semantics carry a control-message object alongside (or instead of)
    bytes, like a real MPI implementation lays a header struct into the
    send buffer.
    """

    opcode: Opcode
    sges: Sequence[SGE] = field(default_factory=tuple)
    remote_addr: int = 0
    rkey: int = 0
    imm: Optional[int] = None
    wr_id: int = 0
    signaled: bool = True
    payload: object = None
    #: extra wire bytes carried by the descriptor that are not gathered
    #: from memory — models protocol headers and inline control data
    #: (e.g. the flattened-datatype representation message of Multi-W),
    #: which occupy the wire but do not land in remote data buffers.
    extra_bytes: int = 0

    @property
    def byte_len(self) -> int:
        return sum(sge.length for sge in self.sges) + self.extra_bytes

    def validate(self) -> None:
        if len(self.sges) > MAX_SGE:
            raise SimulationError(
                f"{len(self.sges)} SGEs exceeds the {MAX_SGE}-entry limit"
            )
        if self.opcode is Opcode.RDMA_WRITE_IMM and self.imm is None:
            raise SimulationError("RDMA_WRITE_IMM requires immediate data")
        if self.opcode is Opcode.SEND and (self.remote_addr or self.rkey):
            raise SimulationError("SEND does not take a remote address")


@dataclass
class RecvWR:
    """A receive-queue work request: where inbound SEND data lands."""

    sges: Sequence[SGE] = field(default_factory=tuple)
    wr_id: int = 0

    @property
    def byte_len(self) -> int:
        return sum(sge.length for sge in self.sges)


@dataclass(frozen=True)
class Completion:
    """A completion-queue entry."""

    wr_id: int
    opcode: Opcode
    byte_len: int
    imm: Optional[int] = None
    src_qp: int = 0
    payload: object = None
    is_recv: bool = False
    #: "ok" for a successful completion; fault injection surfaces
    #: transport-level failures that exhausted their retry budget as
    #: error CQEs ("transport_retry_exceeded", "rnr_retry_exceeded", ...)
    status: str = "ok"

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class CompletionQueue:
    """A CQ: a FIFO of :class:`Completion` entries.

    ``wait()`` returns an event for the next entry (charging the poll cost
    is up to the caller; the MPI progress engine accounts for it).
    """

    def __init__(self, hca: "HCA", name: str = ""):
        self.hca = hca
        self.name = name
        self._store = Store(hca.sim, name=name, node=hca.node_id)
        self._completions = hca.node.metrics.counter(
            "ib.cq_completions", hca.node_id
        )

    def push(self, completion: Completion) -> None:
        self._completions.inc()
        self._store.put(completion)

    def wait(self) -> Event:
        """Event for the next CQE (FIFO)."""
        return self._store.get()

    def poll(self) -> Optional[Completion]:
        """Non-blocking poll; None when empty."""
        return self._store.try_get()

    def __len__(self) -> int:
        return len(self._store)


class QueuePair:
    """A reliable-connection queue pair.

    Created via :meth:`repro.ib.hca.HCA.create_qp` and wired to its peer by
    :meth:`repro.ib.fabric.Fabric.connect`.  Send descriptors are processed
    in FIFO order by the owning HCA's send engine; receive descriptors are
    consumed in FIFO order by inbound SEND / RDMA_WRITE_IMM traffic.
    """

    _qp_seq = 0

    def __init__(self, hca: "HCA", send_cq: CompletionQueue, recv_cq: CompletionQueue):
        QueuePair._qp_seq += 1
        self.qp_num = QueuePair._qp_seq
        self.hca = hca
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        self.peer: Optional["QueuePair"] = None
        self._recv_queue: Store = Store(
            hca.sim, name=f"qp{self.qp_num}.rq", node=hca.node_id
        )
        #: state machine (RESET until Fabric.connect promotes to RTS)
        self.state = QPState.RESET
        #: transport retries performed for this QP's descriptors
        self.retries = 0
        #: RNR NAKs absorbed (each costs an rnr_timer wait)
        self.rnr_naks = 0
        #: times the QP fell to SQE/ERR and needed a full recovery
        self.hard_failures = 0
        #: simulated time of the most recent hard failure (scheme fallback
        #: cooldown is measured from here)
        self.last_hard_failure_us = float("-inf")
        #: counters for tests / stats
        self.posted_sends = 0
        self.posted_recvs = 0
        metrics = hca.node.metrics
        self._sends_metric = metrics.counter("ib.sends_posted", hca.node_id)
        self._recvs_metric = metrics.counter("ib.recvs_posted", hca.node_id)
        self._list_posts_metric = metrics.counter("ib.list_posts", hca.node_id)

    # -- receive side ---------------------------------------------------

    def post_recv(self, wr: RecvWR):
        """Post a receive descriptor (CPU cost charged on the node).

        Generator; yield from it inside a simulated process.
        """
        for sge in wr.sges:
            self.hca.memory.check_local(sge.addr, sge.length, sge.lkey)
        yield from self.hca.node.cpu_work(self.hca.cm.post_descriptor, "post_recv")
        self._recv_queue.put(wr)
        self.posted_recvs += 1
        self._recvs_metric.inc()

    def post_recv_nocost(self, wr: RecvWR) -> None:
        """Post a receive descriptor without charging CPU time.

        Used for pre-posted receive pools set up during MPI_Init, whose
        cost is outside all measured intervals.
        """
        for sge in wr.sges:
            self.hca.memory.check_local(sge.addr, sge.length, sge.lkey)
        self._recv_queue.put(wr)
        self.posted_recvs += 1
        self._recvs_metric.inc()

    def _consume_recv(self) -> RecvWR:
        wr = self._recv_queue.try_get()
        if wr is None:
            raise SimulationError(
                f"qp{self.qp_num}: inbound message found no posted receive "
                "descriptor (receiver-not-ready)"
            )
        return wr

    # -- send side ---------------------------------------------------------

    def post_send(self, wr: SendWR):
        """Post one send descriptor (standard interface).

        Generator: charges the single-post CPU cost, validates local SGEs,
        then enqueues the descriptor to the HCA send engine.
        """
        self._validate_send(wr)
        yield from self.hca.node.cpu_work(self.hca.cm.post_time(1), "post_send")
        self.hca.enqueue_send(self, wr)
        self.posted_sends += 1
        self._sends_metric.inc()

    def post_send_list(self, wrs: Sequence[SendWR]):
        """Post a chain of descriptors in one call (extended interface).

        Charges the amortized list-post CPU cost; descriptors enter the
        send queue in order.
        """
        wrs = list(wrs)
        for wr in wrs:
            self._validate_send(wr)
        yield from self.hca.node.cpu_work(
            self.hca.cm.post_time(len(wrs), list_post=True), "post_send_list"
        )
        self._list_posts_metric.inc()
        for wr in wrs:
            self.hca.enqueue_send(self, wr)
            self.posted_sends += 1
            self._sends_metric.inc()

    def _validate_send(self, wr: SendWR) -> None:
        wr.validate()
        if self.peer is None:
            raise SimulationError(f"qp{self.qp_num} is not connected")
        for sge in wr.sges:
            self.hca.memory.check_local(sge.addr, sge.length, sge.lkey)

    # -- error handling ---------------------------------------------------

    def set_error(self, state: QPState = QPState.SQE) -> None:
        """Drop the QP to an error state (send side).

        Records the hard failure for the scheme selector's fallback
        heuristic; the HCA send engine performs the actual recovery
        (SQE/ERR → RTS) before touching the queue again.
        """
        self.state = state
        self.hard_failures += 1
        self.last_hard_failure_us = self.hca.sim.now
        metrics = self.hca.node.metrics
        metrics.counter("qp.hard_failures", self.hca.node_id).inc()

    def __repr__(self) -> str:  # pragma: no cover
        peer = self.peer.qp_num if self.peer else None
        return f"<QP {self.qp_num} node={self.hca.node_id} peer={peer}>"
