"""Simulated InfiniBand verbs substrate.

This subpackage stands in for the Mellanox InfiniHost HCA + VAPI verbs stack
the paper runs on.  It provides:

* :mod:`repro.ib.costmodel` — every timing parameter of the simulated
  machine (wire, HCA, CPU copy, registration, allocation), with a preset
  calibrated to the paper's 2003 testbed.
* :mod:`repro.ib.memory` — per-node flat byte address spaces backed by
  numpy, an allocator, and memory regions with protection keys.
* :mod:`repro.ib.verbs` — work requests, scatter/gather entries, queue
  pairs and completion queues (channel + memory semantics, RDMA write
  gather / read scatter, immediate data, list descriptor post).
* :mod:`repro.ib.hca` — the HCA model: a send engine that serializes wire
  injection, receive handling, RDMA read responder, CQE generation.
* :mod:`repro.ib.fabric` — the switch connecting HCAs.

Data movement is real — bytes move between the numpy address spaces — so
every transfer is checkable for integrity, while the discrete-event engine
accounts for time.
"""

from repro.ib.costmodel import CostModel
from repro.ib.fabric import Fabric
from repro.ib.hca import HCA, Node
from repro.ib.memory import MemoryRegion, NodeMemory, ProtectionError
from repro.ib.verbs import (
    MAX_SGE,
    Completion,
    CompletionQueue,
    Opcode,
    QueuePair,
    RecvWR,
    SendWR,
    SGE,
)

__all__ = [
    "CostModel",
    "Completion",
    "CompletionQueue",
    "Fabric",
    "HCA",
    "MAX_SGE",
    "MemoryRegion",
    "Node",
    "NodeMemory",
    "Opcode",
    "ProtectionError",
    "QueuePair",
    "RecvWR",
    "SGE",
    "SendWR",
]
