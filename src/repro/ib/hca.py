"""The HCA and node model.

A :class:`Node` bundles what one cluster machine contributes to the
simulation: an address space, a CPU, and an HCA.  The cost structure
mirrors the real platform:

* The **CPU** is a capacity-1 FIFO resource.  Packing/unpacking, datatype
  processing, descriptor posting, registration, allocation and protocol
  handling all serialize on it.  This is what makes overlap (Figure 3)
  matter: CPU work that the HCA hides behind wire time is free.
* The **HCA send engine** is a capacity-1 pipeline that drains posted send
  descriptors in FIFO order.  Each descriptor occupies the engine for
  ``hca_startup + per_sge + bytes/wire_bandwidth`` — so many small
  descriptors underutilize the wire (the Multi-W failure mode for small
  blocks), while one gather descriptor amortizes the startup (the RWG-UP
  win).
* Inbound data lands ``wire_latency`` after injection completes.  Target
  memory writes are performed by the remote HCA's DMA engine and cost no
  remote CPU — the essence of RDMA.

Data is snapshotted at injection time, moved for real between numpy
address spaces, and validated against the registration tables, so every
scheme's output is byte-checkable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ib.costmodel import CostModel
from repro.ib.memory import MemoryRegion, NodeMemory
from repro.ib.verbs import (
    Completion,
    CompletionQueue,
    Opcode,
    QPState,
    QueuePair,
    SendWR,
)
from repro.obs.metrics import MetricsRegistry
from repro.simulator import Resource, SimulationError, Simulator, Store, Tracer

__all__ = ["HCA", "Node"]


class Node:
    """One cluster machine: memory + CPU + HCA."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        cm: CostModel,
        memory_capacity: int,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.node_id = node_id
        self.cm = cm
        self.tracer = tracer or Tracer()
        self.metrics = metrics or MetricsRegistry()
        self.memory = NodeMemory(node_id, memory_capacity, cm.page_size)
        self.cpu = Resource(sim, capacity=1, name=f"cpu{node_id}", node=node_id)
        #: number of HCA DMA streams currently reading/writing this node's
        #: memory; CPU copies slow down while it is non-zero (memory-bus
        #: contention, see CostModel.membus_contention)
        self.dma_active = 0
        #: fault-injection hook (repro.faults); None or a disabled injector
        #: leaves every path byte-identical to the fault-free build
        self.fault_injector = None
        self.hca = HCA(self)

    # -- CPU accounting ------------------------------------------------

    def cpu_work(self, cost: float, tag: str = "cpu"):
        """Occupy the CPU for ``cost`` microseconds (generator)."""
        if cost <= 0:
            return
        grant = yield self.cpu.acquire()
        start = self.sim.now
        try:
            yield self.sim.timeout(cost, tag=tag)
        finally:
            self.cpu.release(grant)
        self.tracer.record(start, self.sim.now, self.node_id, "cpu", tag)

    def copy_work(
        self, nbytes: int, nblocks: int = 0, tag: str = "copy",
        penalty: float = 1.0,
    ):
        """Occupy the CPU for a copy of ``nbytes`` over ``nblocks``
        datatype blocks, under current memory-bus contention (generator).

        The datatype-processing portion runs at full speed; the byte-copy
        portion slows by ``1 + membus_contention * dma_active``, sampled
        when the CPU is granted (copies are short relative to DMA phases,
        so start-sampling is a good approximation).  ``penalty`` scales
        the byte cost further (cache-locality effects, e.g. the deferred
        whole-message unpack of Figure 12).
        """
        grant = yield self.cpu.acquire()
        start = self.sim.now
        factor = (1.0 + self.cm.membus_contention * self.dma_active) * penalty
        if nblocks > 0:
            overhead = self.cm.pack_time(nbytes, nblocks) - (
                nbytes / self.cm.copy_bandwidth
            )
        else:  # a plain memcpy, no datatype engine involved
            overhead = self.cm.copy_startup
        cost = overhead + nbytes * factor / self.cm.copy_bandwidth
        try:
            yield self.sim.timeout(cost, tag=tag)
        finally:
            self.cpu.release(grant)
        self.tracer.record(start, self.sim.now, self.node_id, "cpu", tag)

    # -- timed memory management ----------------------------------------

    def malloc(self, nbytes: int, align: int = 64, *, charge: bool = True):
        """Allocate a dynamic buffer, charging malloc + first-touch faults.

        Generator returning the address.
        """
        addr = self.memory.alloc(nbytes, align)
        if charge:
            yield from self.cpu_work(self.cm.malloc_time(nbytes), "malloc")
        return addr

    def mfree(self, addr: int, *, charge: bool = True):
        """Free a dynamic buffer (generator)."""
        nbytes = self.memory.alloc_size(addr)
        self.memory.free(addr)
        if charge:
            yield from self.cpu_work(self.cm.free_time(nbytes), "free")

    def register(self, addr: int, length: int, *, charge: bool = True):
        """Register (pin) a region, charging registration time.

        Generator returning the :class:`MemoryRegion`.  Under fault
        injection a registration attempt may fail transiently (driver
        resource exhaustion); each failed attempt still pays the pin walk
        and is simply retried.
        """
        inj = self.fault_injector
        if inj is not None and inj.enabled:
            attempts = 0
            while inj.fail_registration(self.node_id, length):
                attempts += 1
                if attempts >= self.cm.reg_retry_limit:
                    raise SimulationError(
                        f"node {self.node_id}: registration of {length} bytes "
                        f"still failing after {attempts} attempts"
                    )
                self.metrics.counter("reg.retries", self.node_id).inc()
                if charge:
                    yield from self.cpu_work(
                        self.cm.reg_time(length, addr), "register_retry"
                    )
        if charge:
            start = self.sim.now
            yield from self.cpu_work(self.cm.reg_time(length, addr), "register")
            self.tracer.record(start, self.sim.now, self.node_id, "reg", "reg")
        self.metrics.counter("reg.registrations", self.node_id).inc()
        self.metrics.counter("reg.registered_bytes", self.node_id).inc(length)
        return self.memory.register(addr, length)

    def deregister(self, mr: MemoryRegion, *, charge: bool = True):
        """Deregister (unpin) a region, charging deregistration time."""
        self.memory.deregister(mr)
        self.metrics.counter("reg.deregistrations", self.node_id).inc()
        if charge:
            start = self.sim.now
            yield from self.cpu_work(
                self.cm.dereg_time(mr.length, mr.addr), "deregister"
            )
            self.tracer.record(start, self.sim.now, self.node_id, "reg", "dereg")


class _ReadResponse:
    """Internal send-engine item: a responder streaming RDMA read data."""

    __slots__ = ("req_qp", "wr", "data")

    def __init__(self, req_qp: QueuePair, wr: SendWR, data: np.ndarray):
        self.req_qp = req_qp  # requester's QP (destination of the response)
        self.wr = wr  # the original RDMA_READ work request
        self.data = data


class HCA:
    """The host channel adapter of one node."""

    def __init__(self, node: Node):
        self.node = node
        self.sim = node.sim
        self.cm = node.cm
        self.memory = node.memory
        self.node_id = node.node_id
        self._send_queue: Store = Store(
            self.sim, name=f"hca{self.node_id}.sq", node=self.node_id
        )
        self.sim.process(self._send_engine(), name=f"hca{self.node_id}")
        #: wire bytes injected, for utilization stats
        self.bytes_injected = 0
        self.descriptors_processed = 0
        self.metrics = node.metrics
        #: WQE backlog in the send engine (posted but not yet drained)
        self._sq_depth = self.metrics.gauge("ib.sq_depth", self.node_id)

    def create_qp(
        self,
        send_cq: Optional[CompletionQueue] = None,
        recv_cq: Optional[CompletionQueue] = None,
    ) -> QueuePair:
        # explicit None checks: an empty CompletionQueue is falsy (__len__)
        if send_cq is None:
            send_cq = CompletionQueue(self, f"scq{self.node_id}")
        if recv_cq is None:
            recv_cq = CompletionQueue(self, f"rcq{self.node_id}")
        return QueuePair(self, send_cq, recv_cq)

    def create_cq(self, name: str = "") -> CompletionQueue:
        return CompletionQueue(self, name or f"cq{self.node_id}")

    # -- send engine -------------------------------------------------------

    def enqueue_send(self, qp: QueuePair, wr: SendWR) -> None:
        self._send_queue.put((qp, wr))
        # outstanding = queued + the one the engine is processing
        self._sq_depth.inc()

    def _send_engine(self):
        """Drain posted descriptors in FIFO order, one at a time."""
        while True:
            item = yield self._send_queue.get()
            if isinstance(item, _ReadResponse):
                yield from self._stream_read_response(item)
                continue
            qp, wr = item
            if wr.opcode is Opcode.RDMA_READ:
                yield from self._issue_read_request(qp, wr)
            else:
                yield from self._inject(qp, wr)
            self._sq_depth.dec()

    def _dma_bracket(self, node: Node, start_delay: float, duration: float) -> None:
        """Mark ``node``'s memory as having one more DMA stream during
        [now+start_delay, now+start_delay+duration).

        The increment is synchronous when ``start_delay`` is zero so that
        CPU copies granted at the same timestamp observe the contention —
        otherwise event ordering would let a pack sample a stale count.
        """
        if duration <= 0:
            return
        if start_delay <= 0:
            node.dma_active += 1
        else:
            up = self.sim.event()
            up.callbacks.append(
                lambda _e: setattr(node, "dma_active", node.dma_active + 1)
            )
            up.succeed(delay=start_delay)
        down = self.sim.event()
        down.callbacks.append(
            lambda _e: setattr(node, "dma_active", node.dma_active - 1)
        )
        down.succeed(delay=start_delay + duration)

    # -- fault injection / recovery ---------------------------------------

    def _recover_qp(self, qp: QueuePair, recoveries: int):
        """Cycle an errored QP back to RTS (modify-QP drain + re-arm)."""
        if recoveries > self.cm.qp_max_recoveries:
            raise SimulationError(
                f"qp{qp.qp_num}: descriptor still failing after "
                f"{recoveries - 1} QP recoveries"
            )
        start = self.sim.now
        self.metrics.counter("qp.recoveries", self.node_id).inc()
        yield self.sim.timeout(self.cm.qp_recovery_us, tag="qp_recovery")
        qp.state = QPState.RTS
        self.node.tracer.record(
            start, self.sim.now, self.node_id, "fault", "qp_recovery"
        )

    def _transport_faults(self, qp: QueuePair, wr: SendWR):
        """Model the reliable transport's error behavior for one
        descriptor (generator; only called with an enabled injector).

        Mirrors the IB RC transport: failed attempts retry with
        exponential backoff up to ``retry_cnt``; receiver-not-ready NAKs
        (opcodes that consume a remote receive WQE) retry after the RNR
        timer up to ``rnr_retry_cnt``; budget exhaustion — or an injected
        hard error — drops the QP to SQE and costs a full recovery before
        the descriptor proceeds.  The descriptor itself is never lost:
        re-posting after recovery is idempotent because the WR carries its
        own gather list and destination.
        """
        inj = self.node.fault_injector
        cm = self.cm
        retries = self.metrics.counter("qp.retries", self.node_id)
        recoveries = 0
        while True:
            if inj.hard_fail(self.node_id, qp.qp_num):
                qp.set_error(QPState.SQE)
                recoveries += 1
                yield from self._recover_qp(qp, recoveries)
                continue
            if wr.opcode in (Opcode.SEND, Opcode.RDMA_WRITE_IMM):
                rnr = 0
                while inj.rnr(self.node_id, qp.qp_num):
                    rnr += 1
                    qp.rnr_naks += 1
                    self.metrics.counter("qp.rnr_naks", self.node_id).inc()
                    if rnr > cm.rnr_retry_cnt:
                        break
                    yield self.sim.timeout(cm.rnr_timer_us, tag="rnr")
                if rnr > cm.rnr_retry_cnt:
                    qp.set_error(QPState.SQE)
                    recoveries += 1
                    yield from self._recover_qp(qp, recoveries)
                    continue
            attempt = 0
            while inj.fail_send(self.node_id, qp.qp_num):
                attempt += 1
                qp.retries += 1
                retries.inc()
                if attempt > cm.retry_cnt:
                    break
                yield self.sim.timeout(cm.retry_backoff(attempt - 1), tag="retry")
            if attempt > cm.retry_cnt:
                qp.set_error(QPState.SQE)
                recoveries += 1
                yield from self._recover_qp(qp, recoveries)
                continue
            return

    def _inject(self, qp: QueuePair, wr: SendWR):
        """Process a SEND / RDMA_WRITE(_IMM) descriptor."""
        nbytes = wr.byte_len
        inj = self.node.fault_injector
        dropped = False
        link = 1.0
        if inj is not None and inj.enabled:
            yield from self._transport_faults(qp, wr)
            inj.maybe_degrade(self.node_id)
            link = inj.link_factor(self.node_id)
            dropped = inj.drop_ctrl(self.node_id, wr.payload)
        start = self.sim.now
        nsge = max(1, len(wr.sges))
        occupancy = self.cm.descriptor_time(nbytes, nsge)
        if link > 1.0:
            occupancy += (link - 1.0) * self.cm.wire_time(nbytes)
        if wr.sges:
            # the HCA's gather DMA reads local memory during injection, and
            # the remote HCA's DMA writes remote memory one latency later
            self._dma_bracket(self.node, 0.0, occupancy)
            self._dma_bracket(qp.peer.hca.node, self.cm.wire_latency, occupancy)
        # one timeout (splitting would perturb event ordering); the leading
        # WQE-processing portion attributes as descriptor, the rest as wire
        desc_us = occupancy - self.cm.wire_time(nbytes) * link
        yield self.sim.timeout(
            occupancy, tag=("split", (("descriptor", desc_us), ("wire", None)))
        )
        self.node.tracer.record(
            start, self.sim.now, self.node_id, "wire", wr.opcode.value
        )
        self.bytes_injected += nbytes
        self.descriptors_processed += 1
        self.metrics.counter("ib.bytes_injected", self.node_id).inc(nbytes)
        self.metrics.counter("ib.descriptors", self.node_id).inc()
        # DMA snapshot of the gather list at injection time.
        data = self._gather(wr)
        peer = qp.peer
        # Local completion: the descriptor has left the send queue.
        if wr.signaled:
            self._complete_local(qp, wr, nbytes, delay=self.cm.cqe_delay)
        # An injected control-message loss: the descriptor completed
        # locally, but nothing arrives at the responder.  Only messages
        # with an end-to-end retransmission path are ever dropped.
        if dropped:
            return
        # Remote delivery after the wire latency; channel semantics pay
        # the responder's receive-WQE fetch on top (one-sided RDMA does
        # not — the gap the RDMA eager channel exploits, [19]).
        delay = self.cm.wire_latency
        if wr.opcode is Opcode.SEND:
            delay += self.cm.channel_recv_overhead
        ev = self.sim.event()
        ev.callbacks.append(
            lambda _e: peer.hca._deliver(peer, qp, wr, data)
        )
        # wire propagation; any channel receive-WQE overhead on top is
        # protocol cost, not wire time
        ev.succeed(
            delay=delay,
            tag=("split", (("wire", self.cm.wire_latency), ("protocol-wait", None))),
        )

    def _issue_read_request(self, qp: QueuePair, wr: SendWR):
        """RDMA read: ship the request to the responder's HCA."""
        start = self.sim.now
        yield self.sim.timeout(self.cm.hca_startup, tag="descriptor")
        self.node.tracer.record(start, self.sim.now, self.node_id, "wire", "read_req")
        self.descriptors_processed += 1
        self.metrics.counter("ib.descriptors", self.node_id).inc()
        peer = qp.peer
        length = wr.byte_len

        def handle_request(_e, peer=peer, qp=qp, wr=wr, length=length):
            peer.hca.memory.check_remote(wr.remote_addr, length, wr.rkey)
            data = peer.hca.memory.view(wr.remote_addr, length).copy()
            peer.hca._send_queue.put(_ReadResponse(qp, wr, data))

        ev = self.sim.event()
        ev.callbacks.append(handle_request)
        ev.succeed(delay=self.cm.wire_latency + self.cm.rdma_read_extra, tag="wire")

    def _stream_read_response(self, resp: _ReadResponse):
        """Responder side of an RDMA read: stream data back on the wire."""
        nbytes = len(resp.data)
        inj = self.node.fault_injector
        link = 1.0
        if inj is not None and inj.enabled:
            inj.maybe_degrade(self.node_id)
            link = inj.link_factor(self.node_id)
        start = self.sim.now
        # read responses stream at the (lower) RDMA read bandwidth
        occupancy = self.cm.hca_startup + nbytes * link / self.cm.rdma_read_bandwidth
        self._dma_bracket(self.node, 0.0, occupancy)
        self._dma_bracket(resp.req_qp.hca.node, self.cm.wire_latency, occupancy)
        yield self.sim.timeout(
            occupancy,
            tag=("split", (("descriptor", self.cm.hca_startup), ("wire", None))),
        )
        self.node.tracer.record(start, self.sim.now, self.node_id, "wire", "read_resp")
        self.bytes_injected += nbytes
        self.metrics.counter("ib.bytes_injected", self.node_id).inc(nbytes)
        req_qp = resp.req_qp

        def land(_e):
            req_hca = req_qp.hca
            req_hca._scatter(resp.wr.sges, resp.data)
            req_qp.send_cq.push(
                Completion(
                    wr_id=resp.wr.wr_id,
                    opcode=Opcode.RDMA_READ,
                    byte_len=nbytes,
                    src_qp=req_qp.peer.qp_num,
                )
            )

        ev = self.sim.event()
        ev.callbacks.append(land)
        ev.succeed(
            delay=self.cm.wire_latency + self.cm.cqe_delay,
            tag=("split", (("wire", self.cm.wire_latency), ("protocol-wait", None))),
        )

    # -- data movement -------------------------------------------------------

    def _gather(self, wr: SendWR) -> np.ndarray:
        if not wr.sges:
            return np.empty(0, dtype=np.uint8)
        if len(wr.sges) == 1:
            sge = wr.sges[0]
            return self.memory.view(sge.addr, sge.length).copy()
        return np.concatenate(
            [self.memory.view(s.addr, s.length) for s in wr.sges]
        )

    def _scatter(self, sges, data: np.ndarray) -> None:
        off = 0
        for sge in sges:
            take = min(sge.length, len(data) - off)
            if take <= 0:
                break
            self.memory.view(sge.addr, take)[:] = data[off : off + take]
            off += take
        if off != len(data):
            raise SimulationError(
                f"node {self.node_id}: scatter list too small for "
                f"{len(data)} inbound bytes"
            )

    # -- remote delivery ----------------------------------------------------

    def _deliver(
        self, qp: QueuePair, src_qp: QueuePair, wr: SendWR, data: np.ndarray
    ) -> None:
        """Handle inbound traffic on the receiving HCA (no CPU cost)."""
        if wr.opcode is Opcode.SEND:
            recv_wr = qp._consume_recv()
            if len(data) > recv_wr.byte_len:
                raise SimulationError(
                    f"node {self.node_id}: {len(data)}-byte SEND overruns "
                    f"{recv_wr.byte_len}-byte receive descriptor"
                )
            self._scatter(recv_wr.sges, data)
            self._complete_recv(qp, recv_wr.wr_id, wr, len(data))
        elif wr.opcode in (
            Opcode.RDMA_WRITE, Opcode.RDMA_WRITE_IMM, Opcode.RDMA_WRITE_POLLED
        ):
            nbytes = len(data)
            if nbytes:
                self.memory.check_remote(wr.remote_addr, nbytes, wr.rkey)
                self.memory.view(wr.remote_addr, nbytes)[:] = data
            if wr.opcode is Opcode.RDMA_WRITE_IMM:
                recv_wr = qp._consume_recv()
                self._complete_recv(qp, recv_wr.wr_id, wr, nbytes)
            elif wr.opcode is Opcode.RDMA_WRITE_POLLED:
                # no descriptor consumed; the receiver's poll loop spots
                # the tail flag after the poll interval
                ev = self.sim.event()
                cqe = Completion(
                    wr_id=("poll", wr.remote_addr),
                    opcode=wr.opcode,
                    byte_len=nbytes,
                    src_qp=qp.peer.qp_num if qp.peer else 0,
                    payload=wr.payload,
                    is_recv=True,
                )
                ev.callbacks.append(lambda _e: qp.recv_cq.push(cqe))
                ev.succeed(delay=self.cm.eager_rdma_poll, tag="poll-detect")
        else:  # pragma: no cover - reads handled separately
            raise SimulationError(f"unexpected inbound opcode {wr.opcode}")

    def _complete_recv(
        self, qp: QueuePair, recv_wr_id: int, wr: SendWR, nbytes: int
    ) -> None:
        ev = self.sim.event()
        cqe = Completion(
            wr_id=recv_wr_id,
            opcode=wr.opcode,
            byte_len=nbytes,
            imm=wr.imm,
            src_qp=qp.peer.qp_num if qp.peer else 0,
            payload=wr.payload,
            is_recv=True,
        )
        ev.callbacks.append(lambda _e: qp.recv_cq.push(cqe))
        ev.succeed(delay=self.cm.cqe_delay, tag="cqe")

    def _complete_local(
        self, qp: QueuePair, wr: SendWR, nbytes: int, delay: float
    ) -> None:
        ev = self.sim.event()
        cqe = Completion(
            wr_id=wr.wr_id,
            opcode=wr.opcode,
            byte_len=nbytes,
            imm=wr.imm,
            src_qp=qp.qp_num,
        )
        ev.callbacks.append(lambda _e: qp.send_cq.push(cqe))
        ev.succeed(delay=delay, tag="cqe")
