"""Timing parameters of the simulated machine.

All times are **microseconds**, all sizes **bytes**, all bandwidths
**bytes per microsecond** (1 MB/s = 1.048576 B/us; we quote MB/s in the
constructors for readability).

The default preset, :meth:`CostModel.mellanox_2003`, is calibrated to the
paper's testbed (Section 8.1): dual 2.4 GHz Xeons with a 400 MHz FSB,
Mellanox InfiniHost MT23108 4x HCAs on 133 MHz PCI-X, an InfiniScale
switch, thca-x86-0.2.0 SDK.  Calibration targets:

* large-message contiguous MPI bandwidth ~= 840-870 MB/s,
* small-message contiguous MPI latency ~= 6-7 us,
* host memcpy bandwidth ~= 1.2 GB/s ("comparable to the wire", the
  premise of the paper's Section 1),
* registration ~= tens of us base plus a per-page pinning cost,
* dynamic allocation of MB-scale buffers pays first-touch page faults
  (Ezolt [7], cited in Section 4.2),
* descriptor posting is expensive (~3 us); the Mellanox extended
  "list post" interface amortizes it (Section 7.4, Figure 13),
* at most 64 scatter/gather entries per descriptor (Section 5.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict

__all__ = [
    "CostModel",
    "MB",
    "PRESETS",
    "get_preset",
    "preset_names",
    "preset_provenance",
    "register_preset",
]

#: bytes in the paper's megabyte (2**20, Section 8 footnote)
MB = 1024 * 1024


def _mbps(x: float) -> float:
    """Convert MB/s (2**20 bytes) to bytes/us."""
    return x * MB / 1e6


@dataclass(frozen=True)
class CostModel:
    """Every tunable of the simulated platform.

    Instances are immutable; derive variants with :meth:`with_overrides`.
    """

    # -- wire / HCA ------------------------------------------------------
    #: sustained wire bandwidth out of one HCA port (bytes/us)
    wire_bandwidth: float = _mbps(870.0)
    #: one-way propagation + switch latency (us)
    wire_latency: float = 1.3
    #: HCA work-request processing overhead per descriptor (us); paid on
    #: the send engine before injection
    hca_startup: float = 1.6
    #: extra HCA cost per scatter/gather entry beyond the first (us)
    hca_per_sge: float = 0.15
    #: one-way extra latency of an RDMA read (request traversal + responder
    #: scheduling); reads are slower than writes (Section 5.2, [31])
    rdma_read_extra: float = 6.0
    #: sustained RDMA read bandwidth (bytes/us).  On the InfiniHost
    #: MT23108, read throughput trailed write throughput badly (limited
    #: outstanding reads, responder scheduling) — the second reason the
    #: paper gives for preferring RWG-UP over P-RRS (Section 5.2).
    rdma_read_bandwidth: float = _mbps(500.0)
    #: delay between last byte delivered and CQE visibility (us)
    cqe_delay: float = 0.4
    #: extra responder-side delay of channel semantics: the receiving HCA
    #: must fetch and consume a receive WQE for a SEND, which one-sided
    #: RDMA avoids — the latency gap exploited by the RDMA-based eager
    #: channel of Liu et al. [19]
    channel_recv_overhead: float = 1.2
    #: detection delay of a polled RDMA-eager arrival (the receiver's
    #: progress engine polls the slot's tail flag)
    eager_rdma_poll: float = 0.4

    # -- CPU -------------------------------------------------------------
    #: host memory copy bandwidth with an idle memory bus (bytes/us).
    #: Effective memcpy on the dual-Xeon/PC2100 testbed, not STREAM peak.
    copy_bandwidth: float = _mbps(700.0)
    #: memory-bus contention: while ``n`` HCA DMA streams touch a node's
    #: memory, CPU copies on that node slow by a factor
    #: ``1 + membus_contention * n``.  This is why segment pipelining
    #: cannot fully hide copies (BC-SPUP/RWG-UP land at 1.5-1.8x, Figures
    #: 8-9) while zero-copy Multi-W rides the full wire rate.
    membus_contention: float = 0.85
    #: per-byte slowdown of a *deferred* whole-message unpack relative to
    #: per-segment unpack (Figure 12).  Physical origin on the testbed:
    #: segment unpack cycles a small set of 128 KB staging buffers whose
    #: working set fits the Xeon's 512 KB L2, while whole-message unpack
    #: streams the entire multi-megabyte staging + user extent through the
    #: cache with no reuse.  Calibrated to the paper's measured ~1.3x
    #: bandwidth effect; this is the one number in the model injected from
    #: the paper's measurement rather than emerging from simulation
    #: structure (documented in EXPERIMENTS.md).
    deferred_unpack_penalty: float = 1.3
    #: fixed overhead per copy call (us)
    copy_startup: float = 0.25
    #: datatype-engine cost per contiguous block visited (us)
    dt_per_block: float = 0.06
    #: fixed cost of one datatype pack/unpack invocation (us)
    dt_startup: float = 0.3
    #: CPU cost to post one descriptor with the standard interface (us)
    post_descriptor: float = 3.0
    #: CPU cost of the first descriptor in a list post (us)
    post_list_first: float = 3.0
    #: CPU cost per additional descriptor in a list post (us)
    post_list_extra: float = 0.45
    #: CPU cost to reap one completion from a CQ (us)
    poll_cq: float = 0.5
    #: CPU cost to build/parse one protocol control message (us)
    control_overhead: float = 0.6

    # -- memory management -------------------------------------------------
    page_size: int = 4096
    #: malloc/free fixed costs (us)
    malloc_base: float = 6.0
    free_base: float = 4.0
    #: first-touch page-fault cost per page of a *fresh* allocation (us);
    #: paid when a dynamically allocated pack/unpack buffer is first used
    page_fault: float = 1.0
    #: registration: base + per-page pin cost (us)
    reg_base: float = 22.0
    reg_per_page: float = 0.55
    #: deregistration: base + per-page unpin cost (us)
    dereg_base: float = 15.0
    dereg_per_page: float = 0.25

    # -- reliability / recovery ------------------------------------------
    #: transport retry budget for a send descriptor that completes in
    #: error (IB ``retry_cnt``); exhaustion drops the QP to SQE
    retry_cnt: int = 7
    #: retry budget for receiver-not-ready NAKs (IB ``rnr_retry_cnt``)
    rnr_retry_cnt: int = 7
    #: responder-requested delay before an RNR retry (IB ``rnr_timer``)
    rnr_timer_us: float = 12.0
    #: base delay of the exponential backoff between transport retries
    retry_backoff_us: float = 8.0
    #: cap on the exponential transport-retry backoff
    retry_backoff_max_us: float = 256.0
    #: time to cycle a QP out of SQE/ERR back to RTS (modify-QP sequence,
    #: drain + re-arm)
    qp_recovery_us: float = 400.0
    #: QP recoveries tolerated per descriptor before the simulation gives
    #: up (guards against unlucky infinite loops at extreme fault rates)
    qp_max_recoveries: int = 8
    #: rendezvous handshake timeout before the sender retransmits the
    #: start (or the receiver-side reply is re-requested)
    rndv_timeout_us: float = 4000.0
    #: retransmission budget of the rendezvous handshake
    rndv_retry_limit: int = 8
    #: attempts tolerated for one memory registration before giving up
    reg_retry_limit: int = 64
    #: hard QP failures against one peer before the scheme selector falls
    #: back to the copy-based Generic path for that peer
    fallback_hard_failures: int = 2
    #: how long the fallback to Generic persists after the last hard
    #: failure (us)
    fallback_cooldown_us: float = 50_000.0

    # -- limits / protocol knobs -----------------------------------------
    #: max scatter/gather entries per descriptor (Mellanox SDK limit)
    max_sge: int = 64
    #: eager/rendezvous switchover for contiguous payload size (bytes)
    eager_threshold: int = 8 * 1024
    #: segment size used by the segmenting schemes (bytes, Section 7.2)
    segment_size: int = 128 * 1024
    #: message size above which a message is split into >= 2 segments
    min_segmented: int = 16 * 1024
    #: pre-registered pack/unpack pool per process (bytes, Section 7.2)
    pool_size: int = 20 * MB

    # -- factory presets ---------------------------------------------------

    @classmethod
    def mellanox_2003(cls) -> "CostModel":
        """The paper's testbed (defaults)."""
        return cls()

    @classmethod
    def fast_network(cls) -> "CostModel":
        """A what-if preset: wire much faster than memcpy (copies dominate
        even more).  Used by ablation benchmarks."""
        return cls(wire_bandwidth=_mbps(3000.0), wire_latency=0.8)

    @classmethod
    def slow_network(cls) -> "CostModel":
        """A what-if preset: wire much slower than memcpy (copies nearly
        free relative to the wire; pack/unpack schemes look better)."""
        return cls(wire_bandwidth=_mbps(120.0), wire_latency=8.0)

    @classmethod
    def hdr_ib_2020(cls) -> "CostModel":
        """HDR InfiniBand, circa 2020 (ConnectX-6 on PCIe 4.0 x16).

        Provenance: 200 Gb/s HDR sustains ~24 GB/s of payload after
        encoding/headers; end-to-end MPI latency ~1 us with ~0.6 us of
        that in switch+prop; one CPU core streams ~11 GB/s out of
        six-channel DDR4 — so the wire is now ~2x *faster* than a single
        packing core, inverting the paper's "memcpy comparable to wire"
        premise.  Doorbell-based descriptor posting is sub-microsecond;
        mlx5 caps gather lists at 30 SGEs; MVAPICH2/UCX-era rendezvous
        thresholds sit at 16 KB.  Registration still costs microseconds
        (MTT update) plus a per-page pin term — the pin-down-cache story
        survives the hardware generation.
        """
        return cls(
            wire_bandwidth=_mbps(23500.0),
            wire_latency=0.6,
            hca_startup=0.35,
            hca_per_sge=0.05,
            rdma_read_extra=1.2,
            rdma_read_bandwidth=_mbps(22000.0),
            cqe_delay=0.15,
            channel_recv_overhead=0.35,
            eager_rdma_poll=0.15,
            copy_bandwidth=_mbps(11000.0),
            membus_contention=0.18,
            deferred_unpack_penalty=1.12,
            copy_startup=0.08,
            dt_per_block=0.02,
            dt_startup=0.12,
            post_descriptor=0.25,
            post_list_first=0.25,
            post_list_extra=0.08,
            poll_cq=0.12,
            control_overhead=0.2,
            malloc_base=1.5,
            free_base=1.0,
            page_fault=0.4,
            reg_base=3.5,
            reg_per_page=0.22,
            dereg_base=2.5,
            dereg_per_page=0.1,
            max_sge=30,
            eager_threshold=16 * 1024,
            segment_size=512 * 1024,
            min_segmented=64 * 1024,
            pool_size=64 * MB,
        )

    @classmethod
    def ndr_ib_2023(cls) -> "CostModel":
        """NDR InfiniBand, circa 2023 (ConnectX-7 on PCIe 5.0 x16).

        Provenance: 400 Gb/s NDR delivers ~46 GB/s payload; switch hops
        are ~0.13 us (Quantum-2) for ~0.5 us one-way; DDR5 lifts a
        single core's streaming copy to ~13 GB/s, widening the
        wire-vs-memcpy gap to ~3.5x — copy-based schemes fall further
        behind zero-copy than on any earlier substrate.  Descriptor and
        completion costs shrink again.  The eager threshold stays at
        16 KB: an earlier 32 KB draft of this preset was flagged by the
        guidelines checker (rendezvous beat eager at 64 KB — a latency
        inversion across the protocol switch), mirroring how production
        UCX tunings pushed thresholds *down* as wire rates outgrew
        memcpy rates.
        """
        return cls(
            wire_bandwidth=_mbps(46000.0),
            wire_latency=0.5,
            hca_startup=0.3,
            hca_per_sge=0.04,
            rdma_read_extra=1.0,
            rdma_read_bandwidth=_mbps(44000.0),
            cqe_delay=0.12,
            channel_recv_overhead=0.3,
            eager_rdma_poll=0.12,
            copy_bandwidth=_mbps(13000.0),
            membus_contention=0.12,
            deferred_unpack_penalty=1.1,
            copy_startup=0.07,
            dt_per_block=0.018,
            dt_startup=0.1,
            post_descriptor=0.2,
            post_list_first=0.2,
            post_list_extra=0.06,
            poll_cq=0.1,
            control_overhead=0.18,
            malloc_base=1.2,
            free_base=0.8,
            page_fault=0.35,
            reg_base=3.0,
            reg_per_page=0.2,
            dereg_base=2.0,
            dereg_per_page=0.09,
            max_sge=30,
            eager_threshold=16 * 1024,
            segment_size=512 * 1024,
            min_segmented=64 * 1024,
            pool_size=128 * MB,
        )

    @classmethod
    def shared_memory_node(cls) -> "CostModel":
        """Intra-node transport over shared memory (CMA/XPMEM style).

        Provenance: Adefemi Adeyemo's 2024 study re-asks the paper's
        question inside one node, where the "wire" *is* a memory copy:
        a single-copy cross-process transfer (process_vm_readv / XPMEM
        attach) moves ~8.5 GB/s with ~0.15 us handoff latency, reads
        and writes are symmetric, and "registration" is a cheap page
        mapping, not an HCA pin.  What survives is memory-bus
        contention: sender copy, receiver copy and the transfer itself
        all share one socket's bandwidth, so pipelined copy schemes
        stall on the same resource they try to hide.
        """
        return cls(
            wire_bandwidth=_mbps(8500.0),
            wire_latency=0.15,
            hca_startup=0.08,
            hca_per_sge=0.01,
            rdma_read_extra=0.1,
            rdma_read_bandwidth=_mbps(8500.0),
            cqe_delay=0.02,
            channel_recv_overhead=0.1,
            eager_rdma_poll=0.05,
            copy_bandwidth=_mbps(9500.0),
            membus_contention=0.6,
            deferred_unpack_penalty=1.2,
            copy_startup=0.05,
            dt_per_block=0.015,
            dt_startup=0.08,
            post_descriptor=0.12,
            post_list_first=0.12,
            post_list_extra=0.04,
            poll_cq=0.05,
            control_overhead=0.08,
            malloc_base=1.0,
            free_base=0.7,
            page_fault=0.3,
            reg_base=0.9,
            reg_per_page=0.04,
            dereg_base=0.6,
            dereg_per_page=0.02,
            eager_threshold=4 * 1024,
            segment_size=64 * 1024,
            min_segmented=16 * 1024,
            pool_size=32 * MB,
        )

    @classmethod
    def gpu_kernel_pack(cls) -> "CostModel":
        """GPU-resident datatypes packed by device kernels (TEMPI style).

        Provenance: TEMPI (Pearson et al., ICPP'21) canonicalizes MPI
        derived datatypes and packs them with CUDA kernels before
        GPUDirect transfers.  The regime is inverted twice: HBM pack
        throughput (~500 GB/s) makes per-byte copy costs nearly free
        and bus contention negligible, but every pack *invocation*
        pays a ~10 us kernel-launch + argument-marshalling latency.
        The launch cost lives in ``dt_startup`` (charged once per
        pack/unpack call, however many blocks it covers — TEMPI's
        one-kernel-packs-all design), NOT in the per-block
        ``copy_startup``, which models the near-free per-block work of
        a device thread block.  Small or fragmented messages are
        therefore launch-bound, not byte-bound.  Registration means
        pinning GPU BAR space for the NIC (nv_peer_mem) — the most
        expensive registration of any preset — and the wire is HDR
        with a GPUDirect PCIe detour.
        """
        return cls(
            wire_bandwidth=_mbps(23500.0),
            wire_latency=0.9,
            hca_startup=0.4,
            hca_per_sge=0.05,
            rdma_read_extra=1.5,
            rdma_read_bandwidth=_mbps(20000.0),
            cqe_delay=0.2,
            channel_recv_overhead=0.5,
            eager_rdma_poll=0.2,
            copy_bandwidth=_mbps(500000.0),
            membus_contention=0.05,
            deferred_unpack_penalty=1.02,
            copy_startup=0.05,
            dt_per_block=0.0008,
            dt_startup=10.0,
            post_descriptor=0.3,
            post_list_first=0.3,
            post_list_extra=0.1,
            poll_cq=0.15,
            control_overhead=0.3,
            malloc_base=25.0,
            free_base=15.0,
            page_fault=0.2,
            reg_base=90.0,
            reg_per_page=0.3,
            dereg_base=40.0,
            dereg_per_page=0.15,
            max_sge=30,
            eager_threshold=8 * 1024,
            segment_size=MB,
            min_segmented=128 * 1024,
            pool_size=128 * MB,
        )

    def with_overrides(self, **kwargs: Any) -> "CostModel":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    # -- derived helpers ---------------------------------------------------

    def pages(self, nbytes: int, addr: int = 0) -> int:
        """Number of pages spanned by [addr, addr+nbytes)."""
        if nbytes <= 0:
            return 0
        first = addr // self.page_size
        last = (addr + nbytes - 1) // self.page_size
        return last - first + 1

    def copy_time(self, nbytes: int) -> float:
        """CPU time to memcpy ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return self.copy_startup + nbytes / self.copy_bandwidth

    def pack_time(self, nbytes: int, nblocks: int) -> float:
        """CPU time to pack/unpack ``nbytes`` spread over ``nblocks``
        contiguous blocks (datatype engine + copies)."""
        if nbytes <= 0 and nblocks <= 0:
            return 0.0
        return (
            self.dt_startup
            + nblocks * (self.dt_per_block + self.copy_startup)
            + nbytes / self.copy_bandwidth
        )

    def wire_time(self, nbytes: int) -> float:
        """HCA injection time for the payload of one descriptor."""
        return nbytes / self.wire_bandwidth

    def descriptor_time(self, nbytes: int, nsge: int = 1) -> float:
        """HCA send-engine occupancy for one descriptor."""
        return (
            self.hca_startup
            + max(0, nsge - 1) * self.hca_per_sge
            + self.wire_time(nbytes)
        )

    def post_time(self, ndesc: int, list_post: bool = False) -> float:
        """CPU time to post ``ndesc`` descriptors."""
        if ndesc <= 0:
            return 0.0
        if list_post:
            return self.post_list_first + (ndesc - 1) * self.post_list_extra
        return ndesc * self.post_descriptor

    def malloc_time(self, nbytes: int) -> float:
        """Dynamic allocation including first-touch page faults."""
        return self.malloc_base + self.pages(nbytes) * self.page_fault

    def free_time(self, nbytes: int) -> float:
        return self.free_base

    def reg_time(self, nbytes: int, addr: int = 0) -> float:
        """Memory registration (pinning) time for one region."""
        return self.reg_base + self.pages(nbytes, addr) * self.reg_per_page

    def dereg_time(self, nbytes: int, addr: int = 0) -> float:
        return self.dereg_base + self.pages(nbytes, addr) * self.dereg_per_page

    def retry_backoff(self, attempt: int) -> float:
        """Exponential-backoff delay before transport retry ``attempt``
        (0-based), capped at :attr:`retry_backoff_max_us`."""
        return min(self.retry_backoff_us * (2.0**attempt), self.retry_backoff_max_us)

    def segment_size_for(self, message_size: int) -> int:
        """The paper's static segment-size rule (Section 7.2).

        >= 1 MB messages use the maximum 128 KB segment; messages of at
        least ``min_segmented`` are split into at least two segments;
        smaller messages go as one segment.
        """
        if message_size >= MB:
            return self.segment_size
        if message_size >= self.min_segmented:
            # at least two segments, rounded up to a whole number of
            # segments, capped at the maximum supported segment size
            nseg = max(2, math.ceil(message_size / self.segment_size))
            return math.ceil(message_size / nseg)
        return message_size


# ----------------------------------------------------------------------
# preset registry
# ----------------------------------------------------------------------

#: name -> zero-argument factory; the cross-hardware observatory
#: (``repro.guidelines``) sweeps these by name, and worker processes
#: resolve the same names independently, so entries must be buildable
#: from the bare module (no captured state)
PRESETS: Dict[str, Callable[[], "CostModel"]] = {
    "mellanox_2003": CostModel.mellanox_2003,
    "fast_network": CostModel.fast_network,
    "slow_network": CostModel.slow_network,
    "hdr_ib_2020": CostModel.hdr_ib_2020,
    "ndr_ib_2023": CostModel.ndr_ib_2023,
    "shared_memory_node": CostModel.shared_memory_node,
    "gpu_kernel_pack": CostModel.gpu_kernel_pack,
}


def preset_names() -> tuple:
    """Registered preset names, registration order."""
    return tuple(PRESETS)


def get_preset(name: str) -> "CostModel":
    """Instantiate a preset by name.

    Raises :class:`KeyError` naming the available presets, so CLI users
    get an actionable message instead of a bare miss.
    """
    try:
        factory = PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown cost-model preset {name!r}; "
            f"choose from {', '.join(PRESETS)}"
        ) from None
    return factory()


def register_preset(name: str, factory: Callable[[], "CostModel"]) -> None:
    """Register (or replace) a preset under ``name``.

    Used by tests to inject engineered platforms; note that *worker
    processes* of a parallel sweep cannot see runtime registrations, so
    sweeps over registered presets must run with ``jobs=1``.
    """
    PRESETS[name] = factory


def preset_provenance(name: str) -> str:
    """First line of the preset's docstring (its provenance summary)."""
    factory = PRESETS[name]
    doc = (factory.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""
