"""Per-node address spaces, allocator, and memory registration.

Each simulated node owns a :class:`NodeMemory`: a flat byte-addressable
space backed by a numpy ``uint8`` array.  Buffers are plain ``(addr, size)``
ranges; :meth:`NodeMemory.view` exposes a numpy view for zero-copy access
from the datatype engine.

Memory registration mirrors the verbs model: :meth:`NodeMemory.register`
creates a :class:`MemoryRegion` with local/remote keys; RDMA operations
validate that every byte they touch lies inside a registered region with a
matching key, raising :class:`ProtectionError` otherwise — so tests can
assert that the schemes register exactly what they use.

Registration here is *bookkeeping only*; the **time** cost is charged by
the caller through the node CPU (see :class:`repro.ib.hca.Node`), because
who pays, and when, is precisely what the paper's schemes differ on.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["MemoryRegion", "NodeMemory", "ProtectionError"]


class ProtectionError(RuntimeError):
    """An RDMA/SGE access touched unregistered memory or used a bad key."""


@dataclass(frozen=True)
class MemoryRegion:
    """A registered (pinned) range of a node's address space."""

    addr: int
    length: int
    lkey: int
    rkey: int
    node: int

    @property
    def end(self) -> int:
        return self.addr + self.length

    def covers(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.end


@dataclass
class _FreeBlock:
    addr: int
    size: int


class NodeMemory:
    """Flat byte address space with a first-fit allocator and an MR table.

    The allocator is deliberately simple (sorted free list, first fit,
    coalescing on free) — allocation *time* is simulated via the cost
    model, not via the real allocator's behaviour.
    """

    def __init__(self, node: int, capacity: int, page_size: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.node = node
        self.capacity = capacity
        self.page_size = page_size
        self.data = np.zeros(capacity, dtype=np.uint8)
        #: flat memoryview of the address space — per-block copies through
        #: memoryview slices skip numpy's per-slice ndarray construction,
        #: which dominates gather/scatter of many small datatype blocks
        self._mv = memoryview(self.data)
        self._free: list[_FreeBlock] = [_FreeBlock(0, capacity)]
        self._allocated: dict[int, int] = {}  # addr -> size
        self._regions: dict[int, MemoryRegion] = {}  # lkey -> MR
        self._key_seq = 0
        #: peak bytes allocated, for scalability reporting
        self.peak_allocated = 0
        self._cur_allocated = 0

    # -- allocation -----------------------------------------------------

    def alloc(self, size: int, align: int = 64) -> int:
        """Allocate ``size`` bytes aligned to ``align``; returns the address.

        Raises :class:`MemoryError` when the space is exhausted.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if align < 1 or align & (align - 1):
            raise ValueError("align must be a positive power of two")
        for i, blk in enumerate(self._free):
            start = -(-blk.addr // align) * align  # round up
            pad = start - blk.addr
            if blk.size >= pad + size:
                # carve [start, start+size) out of blk
                tail_addr = start + size
                tail_size = blk.addr + blk.size - tail_addr
                new_blocks = []
                if pad:
                    new_blocks.append(_FreeBlock(blk.addr, pad))
                if tail_size:
                    new_blocks.append(_FreeBlock(tail_addr, tail_size))
                self._free[i : i + 1] = new_blocks
                self._allocated[start] = size
                self._cur_allocated += size
                self.peak_allocated = max(self.peak_allocated, self._cur_allocated)
                return start
        raise MemoryError(
            f"node {self.node}: out of simulated memory "
            f"(capacity {self.capacity}, requested {size})"
        )

    def free(self, addr: int) -> None:
        """Release an allocation made by :meth:`alloc`."""
        size = self._allocated.pop(addr, None)
        if size is None:
            raise ValueError(f"free of unallocated address {addr:#x}")
        self._cur_allocated -= size
        idx = bisect.bisect_left([b.addr for b in self._free], addr)
        self._free.insert(idx, _FreeBlock(addr, size))
        # coalesce with neighbours
        if idx + 1 < len(self._free):
            nxt = self._free[idx + 1]
            if addr + size == nxt.addr:
                self._free[idx].size += nxt.size
                del self._free[idx + 1]
        if idx > 0:
            prv = self._free[idx - 1]
            if prv.addr + prv.size == addr:
                prv.size += self._free[idx].size
                del self._free[idx]

    def alloc_size(self, addr: int) -> int:
        """Size of the allocation starting at ``addr``."""
        return self._allocated[addr]

    # -- access ----------------------------------------------------------

    def view(self, addr: int, size: int) -> np.ndarray:
        """A numpy uint8 view of [addr, addr+size)."""
        if addr < 0 or addr + size > self.capacity:
            raise ValueError(
                f"view [{addr:#x}, {addr + size:#x}) outside address space"
            )
        return self.data[addr : addr + size]

    def view_as(self, addr: int, shape: tuple, dtype) -> np.ndarray:
        """A typed numpy view starting at ``addr`` with ``shape``/``dtype``."""
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize
        return self.view(addr, nbytes).view(dtype).reshape(shape)

    def gather_blocks(
        self, base_addr: int, blocks: Iterable[tuple[int, int]], dest_addr: int
    ) -> int:
        """Copy ``(offset, length)`` blocks rooted at ``base_addr`` into the
        contiguous range at ``dest_addr``; returns total bytes copied.

        Block offsets are relative to ``base_addr``.  The destination must
        not overlap any source block (pack staging buffers never alias the
        user buffer); copies go through the cached memoryview.
        """
        mv = self._mv
        pos = dest_addr
        for off, length in blocks:
            src = base_addr + off
            if src < 0 or pos < 0:
                raise ValueError(
                    f"block copy outside address space (src {src:#x})"
                )
            mv[pos : pos + length] = mv[src : src + length]
            pos += length
        return pos - dest_addr

    def scatter_blocks(
        self, base_addr: int, blocks: Iterable[tuple[int, int]], src_addr: int
    ) -> int:
        """Copy the contiguous range at ``src_addr`` out to ``(offset,
        length)`` blocks rooted at ``base_addr``; returns bytes copied.

        The inverse of :meth:`gather_blocks`, same non-aliasing contract.
        """
        mv = self._mv
        pos = src_addr
        for off, length in blocks:
            dst = base_addr + off
            if dst < 0 or pos < 0:
                raise ValueError(
                    f"block copy outside address space (dst {dst:#x})"
                )
            mv[dst : dst + length] = mv[pos : pos + length]
            pos += length
        return pos - src_addr

    # -- registration -----------------------------------------------------

    def register(self, addr: int, length: int) -> MemoryRegion:
        """Create a memory region covering [addr, addr+length).

        Bookkeeping only; the caller charges registration time.
        """
        if length <= 0:
            raise ValueError("region length must be positive")
        if addr < 0 or addr + length > self.capacity:
            raise ValueError("region outside address space")
        self._key_seq += 1
        mr = MemoryRegion(
            addr=addr,
            length=length,
            lkey=self._key_seq,
            rkey=self._key_seq | 0x80000000,
            node=self.node,
        )
        self._regions[mr.lkey] = mr
        return mr

    def deregister(self, mr: MemoryRegion) -> None:
        if self._regions.pop(mr.lkey, None) is None:
            raise ValueError(f"deregister of unknown region lkey={mr.lkey}")

    @property
    def registered_regions(self) -> list[MemoryRegion]:
        return list(self._regions.values())

    @property
    def registered_bytes(self) -> int:
        return sum(mr.length for mr in self._regions.values())

    def check_local(self, addr: int, length: int, lkey: int) -> None:
        """Validate a local SGE access against the MR table."""
        mr = self._regions.get(lkey)
        if mr is None:
            raise ProtectionError(
                f"node {self.node}: unknown lkey {lkey} for "
                f"[{addr:#x}, {addr + length:#x})"
            )
        if not mr.covers(addr, length):
            raise ProtectionError(
                f"node {self.node}: lkey {lkey} region "
                f"[{mr.addr:#x}, {mr.end:#x}) does not cover "
                f"[{addr:#x}, {addr + length:#x})"
            )

    def check_remote(self, addr: int, length: int, rkey: int) -> None:
        """Validate a remote RDMA access against the MR table."""
        for mr in self._regions.values():
            if mr.rkey == rkey:
                if not mr.covers(addr, length):
                    raise ProtectionError(
                        f"node {self.node}: rkey {rkey} region "
                        f"[{mr.addr:#x}, {mr.end:#x}) does not cover "
                        f"[{addr:#x}, {addr + length:#x})"
                    )
                return
        raise ProtectionError(f"node {self.node}: unknown rkey {rkey}")
