"""Ablation sweeps beyond the paper's figures.

Each quantifies a design choice the paper discusses qualitatively:

* :func:`segment_size` — BC-SPUP's segment-size tuning ("Tuning on the
  segment size is quite important", Section 7.2).
* :func:`registration_strategies` — OGR vs the two "simple schemes" of
  Section 5.4.1 (per-block and whole-buffer registration), measured
  end-to-end through RWG-UP in the worst-case (no-cache) configuration.
* :func:`datatype_cache` — Multi-W with and without the Section 5.4.2
  receiver-datatype cache.
* :func:`adaptive_vs_fixed` — the Section 6 selector against every fixed
  scheme in each block-size regime.
* :func:`prrs_vs_rwgup` — the comparison the paper argues qualitatively
  in Section 5.2 but never measures (P-RRS was not implemented there).
* :func:`network_presets` — how the scheme ranking shifts when the wire
  is much faster or much slower than memcpy (the Section 1 premise).
"""

from __future__ import annotations

import functools

from repro.bench.report import Series, print_table, write_csv
from repro.bench.runner import measure_bandwidth, measure_pingpong
from repro.bench.workloads import column_vector
from repro.ib.costmodel import CostModel

__all__ = [
    "adaptive_vs_fixed",
    "datatype_cache",
    "hybrid_bimodal",
    "network_presets",
    "prrs_vs_rwgup",
    "registration_strategies",
    "eager_threshold",
    "segment_size",
    "window_sweep",
]


def _cached(fn):
    return functools.lru_cache(maxsize=None)(fn)


@_cached
def segment_size(cols: int = 1024):
    """BC-SPUP latency and bandwidth across segment sizes (one message
    size; the paper's static rule picks 128 KB)."""
    sizes = [8 * 1024, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
    w = column_vector(cols)
    lat = Series("latency")
    bw = Series("bandwidth")
    for size in sizes:
        opts = {"segment_size": size}
        lat.y.append(measure_pingpong("bc-spup", w.datatype, scheme_options=opts))
        bw.y.append(measure_bandwidth("bc-spup", w.datatype, scheme_options=opts))
    print_table(
        f"Ablation: BC-SPUP segment size ({w.nbytes >> 10} KB message)",
        "segment (B)", sizes, [lat], unit="us",
    )
    print_table(
        "  ... and streaming bandwidth",
        "segment (B)", sizes, [bw], unit="MB/s",
    )
    write_csv("results/ablation_segment_size.csv", "segment_bytes", sizes, [lat, bw])
    return sizes, {"latency": lat, "bandwidth": bw}


@_cached
def registration_strategies(columns: tuple = (64, 256, 1024, 2048)):
    """RWG-UP latency under the three registration strategies, with the
    pin-down cache disabled so every operation pays registration."""
    cols = list(columns)
    out = {m: Series(m) for m in ("ogr", "per-block", "whole")}
    for c in cols:
        w = column_vector(c)
        for mode in out:
            out[mode].y.append(
                measure_pingpong(
                    "rwg-up",
                    w.datatype,
                    cluster_kwargs={"reg_cache_bytes": 0},
                    scheme_options={"registration_mode": mode},
                )
            )
    series = list(out.values())
    print_table(
        "Ablation: user-buffer registration strategy (RWG-UP, no pin-down "
        "cache; Section 5.4.1)",
        "cols", cols, series, unit="us", baseline="per-block",
    )
    write_csv("results/ablation_registration.csv", "cols", cols, series)
    return cols, out


@_cached
def datatype_cache(columns: tuple = (128, 512, 2048)):
    """Multi-W latency with/without the receiver-datatype cache.

    Without the cache the receiver re-ships the full flattened layout
    (16 B per block) in every rendezvous reply.
    """
    cols = list(columns)
    out = {
        "cached": Series("with datatype cache"),
        "uncached": Series("without datatype cache"),
    }
    for c in cols:
        w = column_vector(c)
        out["cached"].y.append(measure_pingpong("multi-w", w.datatype))
        out["uncached"].y.append(
            measure_pingpong(
                "multi-w", w.datatype, scheme_options={"use_dtype_cache": False}
            )
        )
    series = list(out.values())
    print_table(
        "Ablation: Multi-W receiver-datatype cache (Section 5.4.2)",
        "cols", cols, series, unit="us", baseline="without datatype cache",
    )
    write_csv("results/ablation_dtcache.csv", "cols", cols, series)
    return cols, out


@_cached
def adaptive_vs_fixed(columns: tuple = (16, 64, 256, 1024, 2048)):
    """The Section 6 selector against every fixed scheme."""
    cols = list(columns)
    schemes = ("generic", "bc-spup", "rwg-up", "multi-w", "adaptive")
    out = {s: Series(s) for s in schemes}
    for c in cols:
        w = column_vector(c)
        for s in schemes:
            out[s].y.append(measure_pingpong(s, w.datatype))
    series = list(out.values())
    print_table(
        "Ablation: adaptive scheme selection vs fixed schemes (Section 6)",
        "cols", cols, series, unit="us", baseline="generic",
    )
    write_csv("results/ablation_adaptive.csv", "cols", cols, series)
    return cols, out


@_cached
def prrs_vs_rwgup(columns: tuple = (64, 256, 1024, 2048)):
    """P-RRS vs RWG-UP — the paper's Section 5.2 prediction, measured."""
    cols = list(columns)
    out = {"rwg-up": Series("RWG-UP"), "p-rrs": Series("P-RRS")}
    for c in cols:
        w = column_vector(c)
        for s in out:
            out[s].y.append(measure_pingpong(s, w.datatype))
    series = list(out.values())
    print_table(
        "Ablation: Pack + RDMA Read Scatter vs RDMA Write Gather + Unpack "
        "(Section 5.2)",
        "cols", cols, series, unit="us", baseline="RWG-UP",
    )
    write_csv("results/ablation_prrs.csv", "cols", cols, series)
    return cols, out


@_cached
def eager_threshold(
    thresholds: tuple = (2048, 8192, 32768),
    columns: tuple = (2, 8, 16, 32, 64, 128),
):
    """Latency across the eager/rendezvous switchover.

    The classic MPI tuning knob: eager buys one staging copy per side
    but no handshake; rendezvous pays the handshake but pipelines.  The
    sweep shows where each threshold places the seam for the paper's
    vector workload (BC-SPUP rendezvous path).
    """
    cols = list(columns)
    out = {t: Series(f"thr={t >> 10}KB") for t in thresholds}
    for c in cols:
        w = column_vector(c)
        for t in thresholds:
            cm = CostModel.mellanox_2003().with_overrides(eager_threshold=t)
            out[t].y.append(
                measure_pingpong(
                    "bc-spup", w.datatype, cluster_kwargs={"cost_model": cm}
                )
            )
    series = list(out.values())
    print_table(
        "Ablation: eager/rendezvous threshold (vector ping-pong, us)",
        "cols", cols, series, unit="us",
    )
    write_csv("results/ablation_eager_threshold.csv", "cols", cols, series)
    return cols, {t: out[t] for t in thresholds}


@_cached
def window_sweep(cols: int = 512, windows: tuple = (1, 2, 4, 8, 16, 32, 100)):
    """Bandwidth vs. the number of messages in flight.

    The paper's bandwidth test fixes a 100-message window; this sweep
    shows how much of that number is pipeline depth (latency hiding) vs
    steady-state throughput — and where the pre-registered pools start
    falling back to dynamic buffers.
    """
    w = column_vector(cols)
    out = {
        "bc-spup": Series("bc-spup"),
        "multi-w": Series("multi-w"),
    }
    for win in windows:
        for s in out:
            out[s].y.append(
                measure_bandwidth(s, w.datatype, window=win, warmup_windows=1)
            )
    series = list(out.values())
    print_table(
        f"Ablation: bandwidth vs window depth ({w.nbytes >> 10} KB messages)",
        "window", list(windows), series, unit="MB/s",
    )
    write_csv("results/ablation_window.csv", "window", list(windows), series)
    return list(windows), out


def _bimodal(tiny: int, huge: int):
    """``tiny`` 64-byte blocks plus ``huge`` 128 KB blocks — the workload
    where per-piece selection pays."""
    from repro.datatypes import INT, hindexed

    lengths, disps, pos = [], [], 0
    for _ in range(tiny):
        lengths.append(16)
        disps.append(pos)
        pos += 16 * 4 + 16
    pos = (pos + 4095) // 4096 * 4096
    for _ in range(huge):
        lengths.append(32768)
        disps.append(pos)
        pos += 32768 * 4 + 4096
    return hindexed(lengths, disps, INT)


@_cached
def hybrid_bimodal(tiny_counts: tuple = (128, 512, 2048), huge: int = 6):
    """The Section 10 future-work extension measured: per-piece scheme
    selection on bimodal datatypes, against every fixed scheme."""
    xs = list(tiny_counts)
    schemes = ("generic", "bc-spup", "rwg-up", "multi-w", "hybrid")
    out = {s: Series(s) for s in schemes}
    for tiny in xs:
        dt = _bimodal(tiny, huge)
        for s in schemes:
            out[s].y.append(measure_pingpong(s, dt, iters=3))
    series = [out[s] for s in schemes]
    print_table(
        f"Extension: per-piece hybrid on bimodal datatypes "
        f"({huge} x 128 KB blocks + N x 64 B blocks)",
        "tiny blocks", xs, series, unit="us", baseline="generic",
    )
    write_csv("results/ablation_hybrid.csv", "tiny_blocks", xs, series)
    return xs, out


@_cached
def network_presets(cols: int = 1024):
    """Scheme ranking under different wire/memcpy ratios."""
    presets = {
        "testbed": CostModel.mellanox_2003(),
        "fast-wire": CostModel.fast_network(),
        "slow-wire": CostModel.slow_network(),
    }
    schemes = ("generic", "bc-spup", "rwg-up", "multi-w")
    w = column_vector(cols)
    out = {s: Series(s) for s in schemes}
    names = list(presets)
    for name in names:
        cm = presets[name]
        for s in schemes:
            out[s].y.append(
                measure_pingpong(s, w.datatype, cluster_kwargs={"cost_model": cm})
            )
    series = [out[s] for s in schemes]
    print_table(
        f"Ablation: network presets ({w.nbytes >> 10} KB vector message)",
        "preset", names, series, unit="us", baseline="generic",
    )
    write_csv("results/ablation_network.csv", "preset", names, series)
    return names, out
