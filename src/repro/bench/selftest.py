"""Wall-clock selftest: simulated-events/sec and per-figure sweep timing.

``python -m repro.bench selftest`` answers "how fast does the
reproduction itself run?" — the *wall-clock* speed of the simulator, as
opposed to the simulated microseconds every other benchmark reports:

* **engine microbenchmarks** — a representative ping-pong and a
  100-message streaming window, reporting dispatched simulator events,
  wall seconds, and events/sec;
* **per-figure sweeps** — each figure on a small fixed grid, run twice
  against a private result cache: the cold pass measures measurement
  throughput, the warm pass measures cache-hit speedup and verifies that
  every cell was served from cache.

The CI bench gate embeds this report in its BENCH output
(``--selftest``), so events/sec regressions are visible next to the
simulated-performance numbers.
"""

from __future__ import annotations

import contextlib
import io
import os
import tempfile
import time
from typing import Optional

from repro.bench import parallel

__all__ = ["SELFTEST_GRIDS", "engine_microbench", "format_selftest", "run_selftest"]

#: small fixed grid per figure — big enough to exercise every scheme and
#: both latency- and bandwidth-style cells, small enough for CI
SELFTEST_GRIDS = {
    "fig02": (8,),
    "fig08": (8, 64),
    "fig09": (8, 64),
    "fig11": (2048,),
    "fig12": (16,),
    "fig13": (4,),
    "fig14": (8, 64),
}


def engine_microbench(repeats: int = 1) -> dict:
    """Events/sec of the discrete-event engine on two reference runs.

    ``repeats > 1`` runs each benchmark that many times and keeps the
    fastest (highest events/sec) — the bench gate uses best-of-3 so a
    scheduling hiccup on a shared CI machine doesn't read as an engine
    regression.
    """
    from repro.bench.workloads import column_vector
    from repro.ib.costmodel import MB
    from repro.mpi.world import Cluster

    w = column_vector(64)
    dt = w.datatype
    span = dt.flatten(1).span + abs(dt.lb) + 64
    out = {}

    def timed(name, programs):
        best = None
        for _ in range(max(1, repeats)):
            cluster = Cluster(2, scheme="bc-spup", memory_per_rank=512 * MB)
            t0 = time.perf_counter()
            cluster.run(programs)
            wall = time.perf_counter() - t0
            events = cluster.sim.events_processed
            run = {
                "events": events,
                "wall_s": wall,
                "events_per_sec": events / wall if wall > 0 else 0.0,
            }
            if best is None or run["events_per_sec"] > best["events_per_sec"]:
                best = run
        out[name] = best

    def pp0(mpi):
        buf = mpi.alloc(span)
        for i in range(10):
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)
            yield from mpi.recv(buf, dt, 1, source=1, tag=1)

    def pp1(mpi):
        buf = mpi.alloc(span)
        for i in range(10):
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            yield from mpi.send(buf, dt, 1, dest=0, tag=1)

    timed("pingpong", [pp0, pp1])

    def bw0(mpi):
        buf = mpi.alloc(span)
        reqs = []
        for k in range(100):
            r = yield from mpi.isend(buf, dt, 1, dest=1, tag=k)
            reqs.append(r)
        yield from mpi.waitall(reqs)

    def bw1(mpi):
        buf = mpi.alloc(span)
        reqs = []
        for k in range(100):
            r = yield from mpi.irecv(buf, dt, 1, source=0, tag=k)
            reqs.append(r)
        yield from mpi.waitall(reqs)

    timed("bandwidth", [bw0, bw1])
    return out


def run_selftest(jobs: Optional[int] = None) -> dict:
    """Run the full selftest; returns the report dict.

    Figure sweeps run against a private temporary cache and results
    directory — the selftest never touches ``.repro-cache/`` or the
    checked-in ``results/`` CSVs.
    """
    from repro.bench import figures

    jobs_resolved = parallel.resolve_jobs(jobs)
    report: dict = {
        "jobs": jobs_resolved,
        "engine": engine_microbench(),
        "figures": {},
    }

    saved_env = {
        k: os.environ.get(k) for k in ("REPRO_CACHE_DIR", "REPRO_RESULTS_DIR")
    }
    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = os.path.join(tmp, "cache")
        os.environ["REPRO_RESULTS_DIR"] = os.path.join(tmp, "results")
        try:
            for figure, grid in SELFTEST_GRIDS.items():
                # bypass the per-sweep lru memo: the warm pass must hit the
                # on-disk cell cache, not the in-process result object
                fn = getattr(figures, figure).__wrapped__
                sink = io.StringIO()
                parallel.STATS.reset()
                with contextlib.redirect_stdout(sink):
                    t0 = time.perf_counter()
                    fn(grid)
                    cold = time.perf_counter() - t0
                    cells = parallel.STATS.cells
                    executed = parallel.STATS.executed
                    t0 = time.perf_counter()
                    fn(grid)
                    warm = time.perf_counter() - t0
                hits = parallel.STATS.cache_hits
                report["figures"][figure] = {
                    "cells": cells,
                    "executed": executed,
                    "cold_wall_s": cold,
                    "warm_wall_s": warm,
                    "warm_cache_hits": hits,
                    "cells_per_sec": cells / cold if cold > 0 else 0.0,
                }
        finally:
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            parallel.STATS.reset()
    return report


def format_selftest(report: dict) -> str:
    """Render the selftest report as an aligned text table."""
    lines = [f"bench selftest (jobs={report['jobs']})", ""]
    lines.append("engine (simulated events dispatched per wall-clock second):")
    for name, m in report["engine"].items():
        lines.append(
            f"  {name:<10} {m['events']:>8d} events  {m['wall_s'] * 1e3:>8.1f} ms"
            f"  {m['events_per_sec'] / 1e3:>8.1f} kev/s"
        )
    lines.append("")
    header = (
        f"  {'figure':<7} {'cells':>5} {'cold_ms':>9} {'warm_ms':>9} "
        f"{'hits':>5} {'cells/s':>8}"
    )
    lines.append("figure sweeps (small grids, private cold/warm cell cache):")
    lines.append(header)
    for figure, m in report["figures"].items():
        lines.append(
            f"  {figure:<7} {m['cells']:>5d} {m['cold_wall_s'] * 1e3:>9.1f} "
            f"{m['warm_wall_s'] * 1e3:>9.1f} {m['warm_cache_hits']:>5d} "
            f"{m['cells_per_sec']:>8.2f}"
        )
    return "\n".join(lines)
