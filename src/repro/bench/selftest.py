"""Wall-clock selftest: simulated-events/sec and per-figure sweep timing.

``python -m repro.bench selftest`` answers "how fast does the
reproduction itself run?" — the *wall-clock* speed of the simulator, as
opposed to the simulated microseconds every other benchmark reports:

* **engine microbenchmarks** — a representative ping-pong and a
  100-message streaming window, reporting dispatched simulator events,
  wall seconds, events/sec and ns/event — plus a host-profiled pass
  (:mod:`repro.obs.hostprof`) attributing those nanoseconds to host
  categories and asserting the profiler's own overhead stays within
  budget;
* **per-figure sweeps** — each figure on a small fixed grid, run twice
  against a private result cache: the cold pass measures measurement
  throughput, the warm pass measures cache-hit speedup and verifies that
  every cell was served from cache.

The CI bench gate embeds this report in its BENCH output
(``--selftest``), so events/sec regressions are visible next to the
simulated-performance numbers.
"""

from __future__ import annotations

import contextlib
import io
import os
import tempfile
import time
from typing import Optional

from repro.bench import parallel

__all__ = [
    "DEFAULT_OVERHEAD_BUDGET",
    "SELFTEST_GRIDS",
    "engine_microbench",
    "format_selftest",
    "run_selftest",
]

#: allowed relative wall-clock cost of host profiling vs a plain run —
#: asserted by :func:`run_selftest`; override with
#: ``$REPRO_HOSTPROF_OVERHEAD_BUDGET``
DEFAULT_OVERHEAD_BUDGET = 0.15

#: small fixed grid per figure — big enough to exercise every scheme and
#: both latency- and bandwidth-style cells, small enough for CI
SELFTEST_GRIDS = {
    "fig02": (8,),
    "fig08": (8, 64),
    "fig09": (8, 64),
    "fig11": (2048,),
    "fig12": (16,),
    "fig13": (4,),
    "fig14": (8, 64),
}


def engine_microbench(repeats: int = 1, host_profile: bool = False) -> dict:
    """Events/sec of the discrete-event engine on two reference runs.

    ``repeats > 1`` runs each benchmark that many times and keeps the
    fastest (highest events/sec) — the bench gate uses best-of-3 so a
    scheduling hiccup on a shared CI machine doesn't read as an engine
    regression.  Event counts are deltas of ``sim.events_processed``
    across the measured ``run()`` only, so events dispatched outside the
    timed window (cluster construction, a reused simulator) never
    inflate the throughput.

    ``host_profile=True`` additionally runs each benchmark best-of-N
    under the host-time profiler (:mod:`repro.obs.hostprof`) and attaches
    a ``"host"`` section to its entry: per-category ns/event, closure,
    and the measured overhead of instrumenting vs the plain run.
    """
    from repro.bench.workloads import column_vector
    from repro.ib.costmodel import MB
    from repro.mpi.world import Cluster

    w = column_vector(64)
    dt = w.datatype
    span = dt.flatten(1).span + abs(dt.lb) + 64
    out = {}

    def measure(programs, profiled):
        cluster = Cluster(
            2, scheme="bc-spup", memory_per_rank=512 * MB,
            host_profile=profiled,
        )
        events_before = cluster.sim.events_processed
        t0 = time.perf_counter()
        cluster.run(programs)
        wall = time.perf_counter() - t0
        events = cluster.sim.events_processed - events_before
        run = {
            "events": events,
            "wall_s": wall,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "ns_per_event": wall * 1e9 / events if events else 0.0,
        }
        if profiled:
            run["snapshot"] = cluster.host_profiler.snapshot()
        return run

    def timed(name, programs):
        # plain and profiled runs interleave so both best-of-N minima see
        # the same noise conditions — sequential blocks on a shared
        # machine can attribute a scheduler hiccup entirely to one side
        best = prof = None
        for _ in range(max(1, repeats)):
            run = measure(programs, profiled=False)
            if best is None or run["events_per_sec"] > best["events_per_sec"]:
                best = run
            if host_profile:
                run = measure(programs, profiled=True)
                if (
                    prof is None
                    or run["events_per_sec"] > prof["events_per_sec"]
                ):
                    prof = run
        if prof is not None:
            snap = prof.pop("snapshot")
            plain_ns = best["ns_per_event"]
            best["host"] = {
                "events": snap["events"],
                "closure": snap["closure"],
                "ns_per_event": snap["ns_per_event"],
                # instrumented vs plain wall cost, both best-of-N and
                # both measured around the same outer run() call
                "overhead": (
                    prof["ns_per_event"] / plain_ns - 1.0 if plain_ns else 0.0
                ),
            }
        out[name] = best

    def pp0(mpi):
        buf = mpi.alloc(span)
        for i in range(10):
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)
            yield from mpi.recv(buf, dt, 1, source=1, tag=1)

    def pp1(mpi):
        buf = mpi.alloc(span)
        for i in range(10):
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            yield from mpi.send(buf, dt, 1, dest=0, tag=1)

    timed("pingpong", [pp0, pp1])

    def bw0(mpi):
        buf = mpi.alloc(span)
        reqs = []
        for k in range(100):
            r = yield from mpi.isend(buf, dt, 1, dest=1, tag=k)
            reqs.append(r)
        yield from mpi.waitall(reqs)

    def bw1(mpi):
        buf = mpi.alloc(span)
        reqs = []
        for k in range(100):
            r = yield from mpi.irecv(buf, dt, 1, source=0, tag=k)
            reqs.append(r)
        yield from mpi.waitall(reqs)

    timed("bandwidth", [bw0, bw1])
    return out


def _over_budget(engine: dict, budget: float) -> dict:
    """``{bench: overhead}`` for benches whose host-profiling overhead
    exceeds ``budget``."""
    return {
        name: m["host"]["overhead"]
        for name, m in engine.items()
        if "host" in m and m["host"]["overhead"] > budget
    }


def _check_overhead(report: dict, budget: float, repeats: int) -> None:
    """Assert the host profiler's measured overhead stays within budget.

    Wall-clock ratios on shared machines are noisy even best-of-N, so a
    breach is confirmed with one slower, higher-repeat re-measurement
    before failing — a genuinely regressed profiler hot path stays slow;
    a scheduler hiccup doesn't.
    """
    over = _over_budget(report["engine"], budget)
    if not over:
        return
    retry = engine_microbench(
        repeats=max(5, repeats + 2), host_profile=True
    )
    for name in over:
        if name in retry:
            report["engine"][name] = retry[name]
    over = _over_budget(report["engine"], budget)
    if not over:
        return
    name, overhead = next(iter(over.items()))
    m = report["engine"][name]
    raise AssertionError(
        f"host-profiler overhead on {name!r} is {overhead * 100:.1f}% "
        f"(budget {budget * 100:.0f}%): {m['ns_per_event']:.0f} ns/event "
        f"plain vs {m['host']['ns_per_event']['total']:.0f} instrumented "
        f"— see docs/PROFILING.md (duty cycle) or raise "
        f"$REPRO_HOSTPROF_OVERHEAD_BUDGET"
    )


def run_selftest(
    jobs: Optional[int] = None,
    repeats: int = 3,
    host_profile: bool = True,
) -> dict:
    """Run the full selftest; returns the report dict.

    Figure sweeps run against a private temporary cache and results
    directory — the selftest never touches ``.repro-cache/`` or the
    checked-in ``results/`` CSVs.

    The engine microbenchmarks run best-of-``repeats`` and (unless
    ``host_profile=False``) once more under the host-time profiler,
    reporting per-category ns/event and **asserting** the profiler's
    wall-clock overhead stays within :data:`DEFAULT_OVERHEAD_BUDGET`
    (override: ``$REPRO_HOSTPROF_OVERHEAD_BUDGET``) — the selftest is
    where a profiler-hot-path regression fails loudly.
    """
    from repro.bench import figures

    jobs_resolved = parallel.resolve_jobs(jobs)
    report: dict = {
        "jobs": jobs_resolved,
        "engine_repeats": max(1, repeats),
        "engine": engine_microbench(repeats=repeats, host_profile=host_profile),
        "figures": {},
    }
    if host_profile:
        budget = float(
            os.environ.get("REPRO_HOSTPROF_OVERHEAD_BUDGET", "")
            or DEFAULT_OVERHEAD_BUDGET
        )
        _check_overhead(report, budget, repeats)
        report["host_profile"] = {
            "overhead_budget": budget,
            "benches": {
                name: m["host"]
                for name, m in report["engine"].items()
                if "host" in m
            },
        }

    saved_env = {
        k: os.environ.get(k) for k in ("REPRO_CACHE_DIR", "REPRO_RESULTS_DIR")
    }
    with tempfile.TemporaryDirectory(prefix="repro-selftest-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = os.path.join(tmp, "cache")
        os.environ["REPRO_RESULTS_DIR"] = os.path.join(tmp, "results")
        try:
            for figure, grid in SELFTEST_GRIDS.items():
                # bypass the per-sweep lru memo: the warm pass must hit the
                # on-disk cell cache, not the in-process result object
                fn = getattr(figures, figure).__wrapped__
                sink = io.StringIO()
                parallel.STATS.reset()
                with contextlib.redirect_stdout(sink):
                    t0 = time.perf_counter()
                    fn(grid)
                    cold = time.perf_counter() - t0
                    cells = parallel.STATS.cells
                    executed = parallel.STATS.executed
                    t0 = time.perf_counter()
                    fn(grid)
                    warm = time.perf_counter() - t0
                hits = parallel.STATS.cache_hits
                report["figures"][figure] = {
                    "cells": cells,
                    "executed": executed,
                    "cold_wall_s": cold,
                    "warm_wall_s": warm,
                    "warm_cache_hits": hits,
                    "cells_per_sec": cells / cold if cold > 0 else 0.0,
                }
        finally:
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
            parallel.STATS.reset()
    return report


def format_selftest(report: dict) -> str:
    """Render the selftest report as an aligned text table."""
    lines = [f"bench selftest (jobs={report['jobs']})", ""]
    lines.append("engine (simulated events dispatched per wall-clock second):")
    for name, m in report["engine"].items():
        lines.append(
            f"  {name:<10} {m['events']:>8d} events  {m['wall_s'] * 1e3:>8.1f} ms"
            f"  {m['events_per_sec'] / 1e3:>8.1f} kev/s"
            f"  {m.get('ns_per_event', 0.0):>7.0f} ns/ev"
        )
        host = m.get("host")
        if host:
            nspe = host["ns_per_event"]
            tops = sorted(
                (
                    (cat, ns)
                    for cat, ns in nspe.items()
                    if cat != "total"
                ),
                key=lambda kv: -kv[1],
            )[:3]
            top_txt = ", ".join(f"{cat} {ns:.0f}" for cat, ns in tops)
            lines.append(
                f"  {'':<10} host-profiled {nspe['total']:>6.0f} ns/ev "
                f"({host['overhead'] * 100:+.1f}% overhead, closure "
                f"{host['closure'] * 100:.1f}%)  top: {top_txt}"
            )
    lines.append("")
    header = (
        f"  {'figure':<7} {'cells':>5} {'cold_ms':>9} {'warm_ms':>9} "
        f"{'hits':>5} {'cells/s':>8}"
    )
    lines.append("figure sweeps (small grids, private cold/warm cell cache):")
    lines.append(header)
    for figure, m in report["figures"].items():
        lines.append(
            f"  {figure:<7} {m['cells']:>5d} {m['cold_wall_s'] * 1e3:>9.1f} "
            f"{m['warm_wall_s'] * 1e3:>9.1f} {m['warm_cache_hits']:>5d} "
            f"{m['cells_per_sec']:>8.2f}"
        )
    return "\n".join(lines)
