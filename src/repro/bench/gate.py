"""Benchmark regression gate for CI.

Measures per-scheme simulated performance at a few fig08 (ping-pong
latency) and fig09 (streaming bandwidth) workload points plus the
engine-throughput microbenchmark, writes the numbers to a JSON report
(``--out`` with no argument auto-numbers ``BENCH_<n>.json``), and
compares them against the checked-in ``benchmarks/baseline.json``: any
metric more than its tolerance *worse* than baseline fails the run.
Simulated metrics use ``--tolerance`` (default 10%); the wall-clock
``engine/*`` metrics carry their own looser per-entry tolerance (25%)
in the baseline.

The simulated metrics are deterministic, so in the absence of cost-model
or protocol changes the measured numbers equal the baseline exactly; the
tolerance only absorbs intentional small re-calibrations.  Fault
injection is force-disabled for the measurement — faulty timings are a
different experiment (see ``docs/FAULTS.md``).

Every gate run appends one record to the append-only run ledger
(``results/ledger/ledger.jsonl``; see docs/OBSERVABILITY.md) carrying
the metric values, engine events/sec, the host-time profiler's
per-category ns/event for the engine benchmarks, and the critical-path
profiler's per-category attribution for every cell.  On failure the
**regression explainer** (:mod:`repro.obs.regress`) diffs the fresh
attribution against the ledger's last-good record and names which
category moved (copy / wire / descriptor / registration /
resource-wait / protocol-wait for simulated cells; heap / dispatch /
callback / pack-unpack host categories for the wall-clock ``engine/*``
metrics) and by how much.

Usage::

    python -m repro.bench.gate --out                  # measure + gate,
                                                      # next free BENCH_<n>.json
    python -m repro.bench.gate --out BENCH_9.json     # explicit report path
    python -m repro.bench.gate --write-baseline       # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import time
from pathlib import Path
from typing import Optional

from repro.bench import parallel
from repro.bench.parallel import Cell, run_cells

__all__ = [
    "collect",
    "compare",
    "load_baseline",
    "main",
    "next_bench_path",
    "write_profile_artifacts",
]

#: schemes gated in CI (the paper's four implemented schemes)
SCHEMES = ("generic", "bc-spup", "rwg-up", "multi-w")
#: column-vector sizes: one small (latency-dominated, fig08's left edge)
#: and one large (bandwidth-dominated, fig09's right half)
COLUMNS = (64, 512)

DEFAULT_BASELINE = Path("benchmarks/baseline.json")

#: the representative profile CI attaches as an artifact (fig09, 64 KB)
PROFILE_WORKLOAD = ("fig09", 65536)

#: allowed relative regression of the wall-clock engine/* metrics —
#: looser than the simulated 10% because host timing is noisy
ENGINE_TOLERANCE = 0.25
#: best-of-N engine microbench runs, damping scheduler noise further
ENGINE_REPEATS = 3


def collect(jobs: int | None = None, engine: bool = True) -> dict:
    """Measure every gated metric; returns the report dict.

    Keys are ``fig08/<scheme>/cols=<n>`` (one-way latency, us, lower is
    better), ``fig09/<scheme>/cols=<n>`` (streaming bandwidth, MB/s,
    higher is better) and — unless ``engine=False`` — ``engine/<bench>/
    events_per_sec`` (wall-clock simulator throughput, higher is better,
    with its own looser tolerance).  Cells fan out over ``jobs`` worker
    processes; the result cache is bypassed — a regression gate always
    measures fresh, whatever ``.repro-cache/`` holds.
    """
    # the gate measures the fault-free cost model regardless of env
    for var in ("REPRO_FAULT_PROFILE", "REPRO_FAULT_SEED"):
        os.environ.pop(var, None)
    cells = [
        Cell(fig, scheme, cols)
        for cols in COLUMNS
        for scheme in SCHEMES
        for fig in ("fig08", "fig09")
    ]
    values = run_cells(cells, jobs=jobs, use_cache=False)
    metrics: dict[str, dict] = {}
    for cols in COLUMNS:
        for scheme in SCHEMES:
            metrics[f"fig08/{scheme}/cols={cols}"] = {
                "value": values[Cell("fig08", scheme, cols)],
                "unit": "us", "better": "lower",
            }
            metrics[f"fig09/{scheme}/cols={cols}"] = {
                "value": values[Cell("fig09", scheme, cols)],
                "unit": "MB/s", "better": "higher",
            }
    report = {
        "schemes": list(SCHEMES),
        "columns": list(COLUMNS),
        "metrics": metrics,
    }
    if engine:
        from repro.bench.selftest import engine_microbench

        eng = engine_microbench(repeats=ENGINE_REPEATS, host_profile=True)
        report["engine"] = eng
        for name, m in eng.items():
            metrics[f"engine/{name}/events_per_sec"] = {
                "value": m["events_per_sec"],
                "unit": "ev/s", "better": "higher",
                "tolerance": ENGINE_TOLERANCE,
            }
        # host-time attribution of the same runs: recorded in the ledger
        # so an engine/* failure can name the host category that moved
        host = {name: m["host"] for name, m in eng.items() if "host" in m}
        if host:
            report["host_profile"] = host
    return report


def load_baseline(path: Path) -> dict:
    """Read and validate the baseline file.

    Raises :class:`SystemExit` with an actionable message — never a bare
    traceback — when the file is missing, unparsable, or has no metrics.
    """
    if not path.exists():
        raise SystemExit(
            f"benchmark gate: no baseline at {path}.\n"
            f"Run `python -m repro.bench.gate --write-baseline` (on a known-"
            f"good tree) and commit the result."
        )
    try:
        baseline = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(
            f"benchmark gate: cannot read baseline {path}: {exc}.\n"
            f"Regenerate it with `python -m repro.bench.gate --write-baseline`."
        )
    if not isinstance(baseline, dict) or not isinstance(
        baseline.get("metrics"), dict
    ):
        raise SystemExit(
            f"benchmark gate: baseline {path} has no 'metrics' section.\n"
            f"Regenerate it with `python -m repro.bench.gate --write-baseline`."
        )
    return baseline


def missing_entries(report: dict, baseline: dict) -> list[str]:
    """Requested metric keys the baseline has no (usable) entry for."""
    base_metrics = baseline.get("metrics", {})
    return [
        key
        for key in report["metrics"]
        if not isinstance(base_metrics.get(key), dict)
        or "value" not in base_metrics[key]
    ]


def compare(report: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty when the gate passes).

    ``tolerance`` is the default; a baseline entry carrying its own
    ``"tolerance"`` (the engine throughput metrics) overrides it.
    """
    failures = []
    base_metrics = baseline.get("metrics", {})
    for key, entry in report["metrics"].items():
        base = base_metrics.get(key)
        if not isinstance(base, dict) or "value" not in base:
            continue  # reported separately by missing_entries()
        value, ref = entry["value"], base["value"]
        if ref == 0:
            continue
        tol = base.get("tolerance", tolerance)
        if entry["better"] == "lower":
            change = (value - ref) / ref
        else:
            change = (ref - value) / ref
        if change > tol:
            failures.append(
                f"{key}: {value:.2f} {entry['unit']} vs baseline "
                f"{ref:.2f} ({change * 100:.1f}% worse, "
                f"tolerance {tol * 100:.0f}%)"
            )
    return failures


def regressed_keys(failures: list[str]) -> list[str]:
    """Metric keys named in :func:`compare` failure messages."""
    return [msg.split(":", 1)[0] for msg in failures]


_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def next_bench_path(directory: Path = Path(".")) -> Path:
    """Next free ``BENCH_<n>.json`` in ``directory``.

    Numbering starts at 2 (BENCH_0/1 were the seed's empty trajectory
    slots) and continues past the highest existing report, so repeated
    gate runs accumulate a trajectory instead of overwriting one file.
    """
    taken = [
        int(m.group(1))
        for m in (_BENCH_RE.match(p.name) for p in directory.glob("BENCH_*.json"))
        if m
    ]
    return directory / f"BENCH_{max(taken, default=1) + 1}.json"


def write_profile_artifacts(outdir: Path) -> Path:
    """Run the representative critical-path profile; write CI artifacts.

    Profiles :data:`PROFILE_WORKLOAD` under every scheme, writing the
    ranked bottleneck tables + cost-model explanations to
    ``<outdir>/bottlenecks.txt`` and one annotated Chrome trace (spans +
    resource counter tracks) per scheme to ``<outdir>/trace.<scheme>.<size>.json``.
    Returns the report path.
    """
    from repro.obs.profile import run_profile
    from repro.schemes import SCHEME_NAMES

    outdir.mkdir(parents=True, exist_ok=True)
    lines: list[str] = []
    workload, nbytes = PROFILE_WORKLOAD
    run_profile(
        workload=workload,
        nbytes=nbytes,
        schemes=SCHEME_NAMES,
        chrome_out=str(outdir / "trace"),
        print_fn=lambda *parts: lines.append(" ".join(str(p) for p in parts)),
    )
    report = outdir / "bottlenecks.txt"
    report.write_text("\n".join(lines) + "\n")
    return report


def _append_ledger_record(
    report: dict,
    status: str,
    ledger_file: Optional[Path],
    out_path: Optional[Path],
) -> tuple[Optional[dict], dict]:
    """Append this run's record; returns (last_good_record, attribution).

    The last-good record is captured *before* appending so a failing run
    never compares against itself; the attribution (critical-path
    categories per cell) is computed fresh and stored in the record for
    future explanations.
    """
    from repro.obs import ledger as ledger_mod
    from repro.obs.regress import collect_attributions

    records = ledger_mod.read_ledger(ledger_file)
    prev_good = ledger_mod.last_good(records, require=("attribution",))
    attribution = collect_attributions(report["metrics"])
    events = {
        name: m["events_per_sec"] for name, m in report.get("engine", {}).items()
    }
    record = ledger_mod.make_record(
        "gate",
        timestamp=time.time(),
        sha=ledger_mod.git_sha(),
        status=status,
        metrics=report["metrics"],
        attribution=attribution,
        events_per_sec=events or None,
        host_profile=report.get("host_profile"),
        extra={"out": str(out_path)} if out_path else None,
    )
    path = ledger_mod.append_record(record, ledger_file)
    print(f"appended {status!r} record to ledger {path}")
    return prev_good, attribution


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    ap.add_argument("--out", nargs="?", const="auto", default=None,
                    metavar="PATH",
                    help="write the measured report to this JSON file; "
                         "with no PATH, pick the next free BENCH_<n>.json "
                         "so trajectories accumulate")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative regression (default 0.10; "
                         "engine/* metrics use their baseline entry's own "
                         "looser tolerance)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="overwrite the baseline with fresh measurements")
    ap.add_argument("--profile-dir", type=Path, default=None,
                    help="also run the representative critical-path profile "
                         "(fig09, 64 KB, every scheme) and write the "
                         "bottleneck report + annotated Chrome traces here")
    ap.add_argument("-j", "--jobs", type=int, default=None,
                    help="worker processes for the measurement cells "
                         "(0 = all cores; default $REPRO_BENCH_JOBS or 1)")
    ap.add_argument("--selftest", type=Path, default=None, metavar="PATH",
                    help="also run the wall-clock selftest (events/sec, "
                         "per-figure sweep timing), write its report to "
                         "PATH, and embed it in the gate's JSON output")
    ap.add_argument("--no-engine", action="store_true",
                    help="skip the engine events/sec metrics (simulated "
                         "cells only)")
    ap.add_argument("--ledger", type=Path, default=None, metavar="PATH",
                    help="ledger file to append this run's record to "
                         "(default results/ledger/ledger.jsonl)")
    ap.add_argument("--no-ledger", action="store_true",
                    help="do not append a run record to the ledger")
    ap.add_argument("--explain-out", type=Path, default=None, metavar="PATH",
                    help="write the regression explanation (markdown/text) "
                         "here; on a pass the file records that no metric "
                         "regressed")
    ap.add_argument("--live", action="store_true",
                    help="stream per-cell sweep telemetry to stderr")
    ap.add_argument("--live-log", type=Path, default=None, metavar="FILE",
                    help="stream per-cell sweep telemetry (JSONL) to FILE")
    args = ap.parse_args(argv)

    if args.live_log is not None:
        parallel.set_live_log(str(args.live_log))
    elif args.live:
        parallel.set_live_log("-")

    report = collect(jobs=args.jobs, engine=not args.no_engine)
    if args.selftest is not None:
        from repro.bench.selftest import format_selftest, run_selftest

        selftest = run_selftest(jobs=args.jobs)
        report["selftest"] = selftest
        args.selftest.write_text(
            json.dumps(selftest, indent=2, sort_keys=True) + "\n"
        )
        print(format_selftest(selftest))
        print(f"\nwrote selftest report {args.selftest}")
    out_path: Optional[Path] = None
    if args.out is not None:
        out_path = next_bench_path() if args.out == "auto" else Path(args.out)
        out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out_path}")
    if args.profile_dir is not None:
        path = write_profile_artifacts(args.profile_dir)
        print(f"wrote profile artifacts under {path.parent}")
    if args.write_baseline:
        args.baseline.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote baseline {args.baseline}")
        if not args.no_ledger:
            _append_ledger_record(report, "baseline", args.ledger, out_path)
        return 0
    try:
        baseline = load_baseline(args.baseline)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    missing = missing_entries(report, baseline)
    failures = compare(report, baseline, args.tolerance)
    base_metrics = baseline.get("metrics", {})
    for key, entry in sorted(report["metrics"].items()):
        base = base_metrics.get(key)
        ref = (
            f"{base['value']:.2f}"
            if isinstance(base, dict) and "value" in base
            else "n/a"
        )
        print(f"  {key:<32} {entry['value']:10.2f} {entry['unit']:<5} "
              f"(baseline {ref})")
    if missing:
        print(
            f"\nbenchmark gate: baseline {args.baseline} has no entry for "
            f"{len(missing)} requested metric(s):",
            file=sys.stderr,
        )
        for key in missing:
            print(f"  {key}", file=sys.stderr)
        print(
            "If these metrics are newly added, refresh the baseline with "
            "`python -m repro.bench.gate --write-baseline` and commit it.",
            file=sys.stderr,
        )
        return 2

    prev_good: Optional[dict] = None
    attribution: dict = {}
    if not args.no_ledger:
        prev_good, attribution = _append_ledger_record(
            report, "fail" if failures else "pass", args.ledger, out_path
        )

    if failures:
        print("\nbenchmark regressions:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        explanation = None
        if not args.no_ledger:
            from repro.obs.regress import (
                explain_regressions,
                format_regressions,
            )

            explanations = explain_regressions(
                regressed_keys(failures),
                attribution,
                prev_good,
                host_now=report.get("host_profile"),
            )
            explanation = format_regressions(explanations, prev_good)
            print("", file=sys.stderr)
            print(explanation, file=sys.stderr)
        if args.explain_out is not None:
            body = ["# benchmark regressions", ""]
            body += [f"- {msg}" for msg in failures]
            if explanation:
                body += ["", "```", explanation, "```"]
            args.explain_out.write_text("\n".join(body) + "\n")
        return 1
    if args.explain_out is not None:
        args.explain_out.write_text(
            "# benchmark gate passed\n\nNo metric regressed beyond "
            "tolerance.\n"
        )
    print("\nbenchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
