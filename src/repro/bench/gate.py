"""Benchmark regression gate for CI.

Measures per-scheme simulated performance at a few fig08 (ping-pong
latency) and fig09 (streaming bandwidth) workload points, writes the
numbers to a JSON report (``BENCH_2.json`` in CI), and compares them
against the checked-in ``benchmarks/baseline.json``: any metric more
than ``--tolerance`` (default 10%) *worse* than baseline fails the run.

The simulation is deterministic, so in the absence of cost-model or
protocol changes the measured numbers equal the baseline exactly; the
tolerance only absorbs intentional small re-calibrations.  Fault
injection is force-disabled for the measurement — faulty timings are a
different experiment (see ``docs/FAULTS.md``).

Usage::

    python -m repro.bench.gate --out BENCH_2.json          # measure + gate
    python -m repro.bench.gate --write-baseline            # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro.bench.parallel import Cell, run_cells

__all__ = ["collect", "compare", "load_baseline", "main", "write_profile_artifacts"]

#: schemes gated in CI (the paper's four implemented schemes)
SCHEMES = ("generic", "bc-spup", "rwg-up", "multi-w")
#: column-vector sizes: one small (latency-dominated, fig08's left edge)
#: and one large (bandwidth-dominated, fig09's right half)
COLUMNS = (64, 512)

DEFAULT_BASELINE = Path("benchmarks/baseline.json")

#: the representative profile CI attaches as an artifact (fig09, 64 KB)
PROFILE_WORKLOAD = ("fig09", 65536)


def collect(jobs: int | None = None) -> dict:
    """Measure every gated metric; returns the report dict.

    Keys are ``fig08/<scheme>/cols=<n>`` (one-way latency, us, lower is
    better) and ``fig09/<scheme>/cols=<n>`` (streaming bandwidth, MB/s,
    higher is better).  Cells fan out over ``jobs`` worker processes;
    the result cache is bypassed — a regression gate always measures
    fresh, whatever ``.repro-cache/`` holds.
    """
    # the gate measures the fault-free cost model regardless of env
    for var in ("REPRO_FAULT_PROFILE", "REPRO_FAULT_SEED"):
        os.environ.pop(var, None)
    cells = [
        Cell(fig, scheme, cols)
        for cols in COLUMNS
        for scheme in SCHEMES
        for fig in ("fig08", "fig09")
    ]
    values = run_cells(cells, jobs=jobs, use_cache=False)
    metrics: dict[str, dict] = {}
    for cols in COLUMNS:
        for scheme in SCHEMES:
            metrics[f"fig08/{scheme}/cols={cols}"] = {
                "value": values[Cell("fig08", scheme, cols)],
                "unit": "us", "better": "lower",
            }
            metrics[f"fig09/{scheme}/cols={cols}"] = {
                "value": values[Cell("fig09", scheme, cols)],
                "unit": "MB/s", "better": "higher",
            }
    return {"schemes": list(SCHEMES), "columns": list(COLUMNS), "metrics": metrics}


def load_baseline(path: Path) -> dict:
    """Read and validate the baseline file.

    Raises :class:`SystemExit` with an actionable message — never a bare
    traceback — when the file is missing, unparsable, or has no metrics.
    """
    if not path.exists():
        raise SystemExit(
            f"benchmark gate: no baseline at {path}.\n"
            f"Run `python -m repro.bench.gate --write-baseline` (on a known-"
            f"good tree) and commit the result."
        )
    try:
        baseline = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(
            f"benchmark gate: cannot read baseline {path}: {exc}.\n"
            f"Regenerate it with `python -m repro.bench.gate --write-baseline`."
        )
    if not isinstance(baseline, dict) or not isinstance(
        baseline.get("metrics"), dict
    ):
        raise SystemExit(
            f"benchmark gate: baseline {path} has no 'metrics' section.\n"
            f"Regenerate it with `python -m repro.bench.gate --write-baseline`."
        )
    return baseline


def missing_entries(report: dict, baseline: dict) -> list[str]:
    """Requested metric keys the baseline has no (usable) entry for."""
    base_metrics = baseline.get("metrics", {})
    return [
        key
        for key in report["metrics"]
        if not isinstance(base_metrics.get(key), dict)
        or "value" not in base_metrics[key]
    ]


def compare(report: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages (empty when the gate passes)."""
    failures = []
    base_metrics = baseline.get("metrics", {})
    for key, entry in report["metrics"].items():
        base = base_metrics.get(key)
        if not isinstance(base, dict) or "value" not in base:
            continue  # reported separately by missing_entries()
        value, ref = entry["value"], base["value"]
        if ref == 0:
            continue
        if entry["better"] == "lower":
            change = (value - ref) / ref
        else:
            change = (ref - value) / ref
        if change > tolerance:
            failures.append(
                f"{key}: {value:.2f} {entry['unit']} vs baseline "
                f"{ref:.2f} ({change * 100:.1f}% worse, "
                f"tolerance {tolerance * 100:.0f}%)"
            )
    return failures


def write_profile_artifacts(outdir: Path) -> Path:
    """Run the representative critical-path profile; write CI artifacts.

    Profiles :data:`PROFILE_WORKLOAD` under every scheme, writing the
    ranked bottleneck tables + cost-model explanations to
    ``<outdir>/bottlenecks.txt`` and one annotated Chrome trace (spans +
    resource counter tracks) per scheme to ``<outdir>/trace.<scheme>.<size>.json``.
    Returns the report path.
    """
    from repro.obs.profile import run_profile
    from repro.schemes import SCHEME_NAMES

    outdir.mkdir(parents=True, exist_ok=True)
    lines: list[str] = []
    workload, nbytes = PROFILE_WORKLOAD
    run_profile(
        workload=workload,
        nbytes=nbytes,
        schemes=SCHEME_NAMES,
        chrome_out=str(outdir / "trace"),
        print_fn=lambda *parts: lines.append(" ".join(str(p) for p in parts)),
    )
    report = outdir / "bottlenecks.txt"
    report.write_text("\n".join(lines) + "\n")
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    ap.add_argument("--out", type=Path, default=None,
                    help="write the measured report to this JSON file")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative regression (default 0.10)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="overwrite the baseline with fresh measurements")
    ap.add_argument("--profile-dir", type=Path, default=None,
                    help="also run the representative critical-path profile "
                         "(fig09, 64 KB, every scheme) and write the "
                         "bottleneck report + annotated Chrome traces here")
    ap.add_argument("-j", "--jobs", type=int, default=None,
                    help="worker processes for the measurement cells "
                         "(0 = all cores; default $REPRO_BENCH_JOBS or 1)")
    ap.add_argument("--selftest", type=Path, default=None, metavar="PATH",
                    help="also run the wall-clock selftest (events/sec, "
                         "per-figure sweep timing), write its report to "
                         "PATH, and embed it in the gate's JSON output")
    args = ap.parse_args(argv)

    report = collect(jobs=args.jobs)
    if args.selftest is not None:
        from repro.bench.selftest import format_selftest, run_selftest

        selftest = run_selftest(jobs=args.jobs)
        report["selftest"] = selftest
        args.selftest.write_text(
            json.dumps(selftest, indent=2, sort_keys=True) + "\n"
        )
        print(format_selftest(selftest))
        print(f"\nwrote selftest report {args.selftest}")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")
    if args.profile_dir is not None:
        path = write_profile_artifacts(args.profile_dir)
        print(f"wrote profile artifacts under {path.parent}")
    if args.write_baseline:
        args.baseline.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote baseline {args.baseline}")
        return 0
    try:
        baseline = load_baseline(args.baseline)
    except SystemExit as exc:
        print(exc, file=sys.stderr)
        return 2
    missing = missing_entries(report, baseline)
    failures = compare(report, baseline, args.tolerance)
    base_metrics = baseline.get("metrics", {})
    for key, entry in sorted(report["metrics"].items()):
        base = base_metrics.get(key)
        ref = (
            f"{base['value']:.2f}"
            if isinstance(base, dict) and "value" in base
            else "n/a"
        )
        print(f"  {key:<32} {entry['value']:10.2f} {entry['unit']:<5} "
              f"(baseline {ref})")
    if missing:
        print(
            f"\nbenchmark gate: baseline {args.baseline} has no entry for "
            f"{len(missing)} requested metric(s):",
            file=sys.stderr,
        )
        for key in missing:
            print(f"  {key}", file=sys.stderr)
        print(
            "If these metrics are newly added, refresh the baseline with "
            "`python -m repro.bench.gate --write-baseline` and commit it.",
            file=sys.stderr,
        )
        return 2
    if failures:
        print("\nbenchmark regressions:", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print("\nbenchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
