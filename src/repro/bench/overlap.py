"""Overlap analysis: quantify how much copy time a scheme hides.

Figure 3 of the paper argues BC-SPUP's win comes from overlapping
packing, network communication and unpacking.  This module runs a single
transfer with interval tracing enabled and reports, per side, how much of
the pack/unpack CPU time coincided with wire activity — turning the
figure's qualitative picture into a measured number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datatypes import Datatype
from repro.ib.costmodel import MB
from repro.mpi.world import Cluster
from repro.obs.spans import overlap_us

__all__ = ["OverlapReport", "measure_overlap"]


@dataclass(frozen=True)
class OverlapReport:
    """Overlap statistics for one transfer."""

    scheme: str
    total_us: float
    #: sender-side pack CPU time and how much of it coincided with wire
    pack_us: float
    pack_overlapped_us: float
    #: receiver-side unpack CPU time and its wire-coincident share
    unpack_us: float
    unpack_overlapped_us: float
    #: total wire (injection) time on the sender
    wire_us: float

    @property
    def pack_hidden_fraction(self) -> float:
        return self.pack_overlapped_us / self.pack_us if self.pack_us else 0.0

    @property
    def unpack_hidden_fraction(self) -> float:
        return self.unpack_overlapped_us / self.unpack_us if self.unpack_us else 0.0

    def describe(self) -> str:
        return (
            f"{self.scheme}: total={self.total_us:.0f}us wire={self.wire_us:.0f}us "
            f"pack={self.pack_us:.0f}us ({self.pack_hidden_fraction:.0%} hidden) "
            f"unpack={self.unpack_us:.0f}us ({self.unpack_hidden_fraction:.0%} hidden)"
        )


def measure_overlap(
    scheme: str,
    dt: Datatype,
    *,
    count: int = 1,
    cluster_kwargs: Optional[dict] = None,
    scheme_options: Optional[dict] = None,
) -> OverlapReport:
    """Run one send/recv of (dt, count) with tracing and analyse overlap."""
    kwargs = dict(memory_per_rank=512 * MB, trace=True)
    kwargs.update(cluster_kwargs or {})
    cluster = Cluster(
        2, scheme=scheme, scheme_options=scheme_options or {}, **kwargs
    )
    span = dt.flatten(count).span + abs(dt.lb) + 64

    def rank0(mpi):
        buf = mpi.alloc(span)
        yield from mpi.send(buf, dt, count, dest=1, tag=0)
        return mpi.now

    def rank1(mpi):
        buf = mpi.alloc(span)
        yield from mpi.recv(buf, dt, count, source=0, tag=0)
        return mpi.now

    result = cluster.run([rank0, rank1])
    tracer = cluster.tracer
    # wire activity seen from either side of the link: sender injections
    # plus inbound DMA (same intervals shifted by the latency), so a
    # single category per node suffices
    # wire intervals are recorded on the sender (node 0); the receiver's
    # inbound DMA mirrors them one switch latency later, which is
    # negligible at the granularity of this analysis
    return OverlapReport(
        scheme=scheme,
        total_us=result.time_us,
        pack_us=tracer.total_time("pack", node=0)
        + tracer.total_time("user-pack", node=0),
        pack_overlapped_us=overlap_us(tracer, ("pack", 0), ("wire", 0)),
        unpack_us=tracer.total_time("unpack", node=1),
        unpack_overlapped_us=overlap_us(tracer, ("unpack", 1), ("wire", 0)),
        wire_us=tracer.total_time("wire", node=0),
    )
