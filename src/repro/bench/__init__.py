"""Benchmark harness: workloads, measurement runners, reporting.

One function per data figure of the paper lives in
:mod:`repro.bench.figures`; the ``benchmarks/`` directory wraps them in
pytest-benchmark targets and asserts the reproduced shapes.
"""

from repro.bench.workloads import column_vector, fig10_struct
from repro.bench.runner import (
    measure_alltoall,
    measure_bandwidth,
    measure_contig_pingpong,
    measure_manual_pingpong,
    measure_multiple_pingpong,
    measure_pingpong,
)
from repro.bench.report import Series, improvement, print_table, write_csv

__all__ = [
    "Series",
    "column_vector",
    "fig10_struct",
    "improvement",
    "measure_alltoall",
    "measure_bandwidth",
    "measure_contig_pingpong",
    "measure_manual_pingpong",
    "measure_multiple_pingpong",
    "measure_pingpong",
    "print_table",
    "write_csv",
]
