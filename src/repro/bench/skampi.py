"""SKaMPI-style synthetic datatype patterns (Reussner et al. [25]).

The paper notes "SKaMPI provides benchmark[s] for MPI derived datatypes.
The test datatypes are synthetic and most parameters are defined by
users."  This module provides that style of pattern generator — a fixed
total payload laid out in structurally different ways — so the schemes
can be compared across datatype *shapes* rather than just sizes:

* ``contig``          one block (the baseline shape),
* ``vector-small``    many tiny blocks,
* ``vector-large``    few big blocks,
* ``nested``          a vector of vectors (tests recursive flattening),
* ``struct-mixed``    alternating int/double runs with gaps,
* ``indexed-random``  irregular blocks from a seeded RNG,
* ``sparse-resized``  a resized type tiling data thinly over a big extent.
"""

from __future__ import annotations

import functools

from repro.bench.report import Series, print_table, write_csv
from repro.bench.runner import measure_pingpong
from repro.datatypes import (
    DOUBLE,
    INT,
    Datatype,
    contiguous,
    hindexed,
    resized,
    struct,
    vector,
)

__all__ = ["PATTERNS", "make_pattern", "skampi_sweep"]

#: total payload of every pattern, in bytes
TOTAL_BYTES = 256 * 1024


def make_pattern(name: str, total_bytes: int = TOTAL_BYTES) -> Datatype:
    """Build the named pattern carrying ``total_bytes`` of data."""
    ints = total_bytes // 4
    if name == "contig":
        return contiguous(ints, INT)
    if name == "vector-small":
        # 32-byte blocks, half-dense
        return vector(ints // 8, 8, 16, INT)
    if name == "vector-large":
        # 16 KB blocks, half-dense
        return vector(total_bytes // 16384, 4096, 8192, INT)
    if name == "nested":
        # rows of 64 ints picked every other 64-int run, grouped in
        # super-rows: a vector whose base is itself a vector
        inner = vector(4, 64, 128, INT)  # 1 KB data over 2 KB span
        return vector(total_bytes // 1024, 1, 2, inner)
    if name == "struct-mixed":
        # alternating int and double runs with pagey gaps
        nrep = total_bytes // 2048
        blocklens = [128, 128]  # 512 B of ints + 1 KB of doubles... per rep
        one = struct([128, 192], [0, 768], [INT, DOUBLE])
        assert one.size == 128 * 4 + 192 * 8
        reps = total_bytes // one.size
        return contiguous(reps, resized(one, 0, one.extent + 256))
    if name == "indexed-random":
        import numpy as np

        rng = np.random.default_rng(20040101)
        lengths, disps, pos, left = [], [], 0, ints
        while left > 0:
            ln = int(rng.integers(1, min(512, left) + 1))
            pos += int(rng.integers(0, 256))
            lengths.append(ln)
            disps.append(pos)
            pos += ln * 4
            left -= ln
        return hindexed(lengths, disps, INT)
    if name == "sparse-resized":
        # 256-byte runs spread out 4 KB apart
        one = resized(contiguous(64, INT), 0, 4096)
        return contiguous(total_bytes // 256, one)
    raise ValueError(f"unknown pattern {name!r}")


PATTERNS = (
    "contig",
    "vector-small",
    "vector-large",
    "nested",
    "struct-mixed",
    "indexed-random",
    "sparse-resized",
)

_SCHEMES = ("generic", "bc-spup", "rwg-up", "multi-w", "adaptive")


@functools.lru_cache(maxsize=None)
def skampi_sweep(total_bytes: int = TOTAL_BYTES):
    """Latency of every scheme on every pattern; returns (patterns, series)."""
    out = {s: Series(s) for s in _SCHEMES}
    shapes = []
    for name in PATTERNS:
        dt = make_pattern(name, total_bytes)
        flat = dt.flatten(1)
        shapes.append(f"{name} ({flat.nblocks} blk, ~{int(flat.mean_block)} B)")
        for s in _SCHEMES:
            out[s].y.append(measure_pingpong(s, dt, iters=3))
    series = [out[s] for s in _SCHEMES]
    print_table(
        f"SKaMPI-style pattern sweep, {total_bytes >> 10} KB payload (us)",
        "pattern", shapes, series, unit="us", baseline="generic",
    )
    write_csv("results/skampi.csv", "pattern", list(PATTERNS), series)
    return list(PATTERNS), out
