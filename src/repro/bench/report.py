"""Reporting helpers: aligned tables, improvement factors, CSV output."""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

__all__ = ["Series", "improvement", "print_table", "write_csv"]


@dataclass
class Series:
    """One labelled curve: y values over shared x values."""

    name: str
    y: list[float] = field(default_factory=list)


def improvement(baseline: Sequence[float], other: Sequence[float]) -> list[float]:
    """Element-wise improvement factor of ``other`` over ``baseline``.

    For latency series pass (generic, scheme) -> generic/scheme;
    for bandwidth series pass (scheme, generic) inverted by the caller.
    """
    return [b / o if o else float("inf") for b, o in zip(baseline, other)]


def print_table(
    title: str,
    x_label: str,
    x_values: Sequence,
    series: Iterable[Series],
    unit: str = "us",
    baseline: Optional[str] = None,
) -> str:
    """Render (and return) an aligned text table; one row per x value.

    When ``baseline`` names one of the series, improvement-factor columns
    (baseline / series) are appended for every other series.
    """
    series = list(series)
    base = next((s for s in series if s.name == baseline), None)
    header = [x_label] + [f"{s.name} ({unit})" for s in series]
    if base is not None:
        header += [f"{s.name} vs {base.name}" for s in series if s is not base]
    rows = []
    for i, x in enumerate(x_values):
        row = [str(x)] + [f"{s.y[i]:.1f}" for s in series]
        if base is not None:
            for s in series:
                if s is base:
                    continue
                if unit.lower().startswith("mb"):  # higher is better
                    row.append(f"{s.y[i] / base.y[i]:.2f}x")
                else:  # lower is better
                    row.append(f"{base.y[i] / s.y[i]:.2f}x")
        rows.append(row)
    widths = [
        max(len(header[c]), *(len(r[c]) for r in rows)) for c in range(len(header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
    text = "\n".join(lines)
    print("\n" + text)
    return text


def write_csv(
    path: str, x_label: str, x_values: Sequence, series: Iterable[Series]
) -> None:
    """Write the series to a CSV file (directories created as needed).

    Relative paths are resolved against ``$REPRO_RESULTS_DIR`` when it is
    set, so test sweeps can be redirected away from the checked-in
    ``results/`` files instead of silently overwriting them.
    """
    series = list(series)
    base = os.environ.get("REPRO_RESULTS_DIR")
    if base and not os.path.isabs(path):
        path = os.path.join(base, path)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([x_label] + [s.name for s in series])
        for i, x in enumerate(x_values):
            writer.writerow([x] + [s.y[i] for s in series])
