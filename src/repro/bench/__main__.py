"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro.bench fig08 fig09          # specific figures
    python -m repro.bench all                  # everything (several minutes)
    python -m repro.bench all -j 0             # ... fanned out over all cores
    python -m repro.bench fig08 --cols 64 2048 # restricted sweep
    python -m repro.bench overlap              # Figure-3 overlap analysis
    python -m repro.bench selftest             # events/sec + wall-clock report
    python -m repro.bench selftest --repeats 5 --json report.json

Tables print to stdout; CSVs land in ``results/``.  Figure sweeps run
through the parallel executor (``-j``/``$REPRO_BENCH_JOBS`` workers) and
the content-addressed result cache under ``.repro-cache/`` — pass
``--fresh`` to ignore cached cells.  ``--live`` (stderr) or
``--live-log FILE`` streams per-cell progress telemetry while a sweep
runs; every figure sweep and selftest appends a record to the run
ledger (``results/ledger/``, disable with ``--no-ledger``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import ablations, figures, parallel
from repro.bench.overlap import measure_overlap
from repro.bench.workloads import column_vector

FIGURES = {
    "fig02": figures.fig02,
    "fig08": figures.fig08,
    "fig09": figures.fig09,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures.fig13,
    "fig14": figures.fig14,
}

ABLATIONS = {
    "segment-size": ablations.segment_size,
    "registration": ablations.registration_strategies,
    "dtcache": ablations.datatype_cache,
    "adaptive": ablations.adaptive_vs_fixed,
    "prrs": ablations.prrs_vs_rwgup,
    "hybrid": ablations.hybrid_bimodal,
    "network": ablations.network_presets,
    "window": ablations.window_sweep,
    "eager-threshold": ablations.eager_threshold,
}


def _append_sweep_record(target: str, result) -> None:
    """Ledger one figure sweep: the full series grid as metric values."""
    from repro.obs import ledger

    try:
        xs, series_map = result
    except (TypeError, ValueError):
        return
    metrics = {}
    for key, series in series_map.items():
        for x, y in zip(xs, series.y):
            metrics[f"{target}/{key}/x={x}"] = {"value": y}
    record = ledger.make_record(
        "sweep",
        timestamp=time.time(),
        sha=ledger.git_sha(),
        metrics=metrics,
        extra={"figure": target},
    )
    ledger.append_record(record)


def _append_selftest_record(report: dict) -> None:
    """Ledger one selftest run: engine events/sec + host-time ns/event
    per category + sweep throughput."""
    from repro.obs import ledger

    metrics = {
        f"selftest/{fig}/cells_per_sec": {
            "value": m["cells_per_sec"], "unit": "cells/s", "better": "higher",
        }
        for fig, m in report.get("figures", {}).items()
    }
    host = {
        name: m["host"]
        for name, m in report.get("engine", {}).items()
        if "host" in m
    }
    record = ledger.make_record(
        "selftest",
        timestamp=time.time(),
        sha=ledger.git_sha(),
        metrics=metrics,
        events_per_sec={
            name: m["events_per_sec"]
            for name, m in report.get("engine", {}).items()
        },
        host_profile=host or None,
        extra={"jobs": report.get("jobs")},
    )
    ledger.append_record(record)


def _run_overlap(cols: int = 1024) -> None:
    w = column_vector(cols)
    print(
        f"\nOverlap analysis (Figure 3), single {w.nbytes >> 10} KB vector "
        f"message, {cols} columns:"
    )
    for scheme in ("generic", "bc-spup", "rwg-up", "multi-w"):
        print(" ", measure_overlap(scheme, w.datatype).describe())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation figures on the "
        "simulated InfiniBand cluster.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=sorted(FIGURES)
        + sorted(ABLATIONS)
        + ["all", "ablations", "overlap", "selftest"],
        help="figures, ablations, or 'selftest' (performance microbenchmark)",
    )
    parser.add_argument(
        "--cols",
        type=int,
        nargs="+",
        default=None,
        help="restrict the column sweep (figures 2, 8, 9, 12, 13, 14)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        help="worker processes for figure sweeps (0 = all cores; default "
        "$REPRO_BENCH_JOBS or 1)",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="ignore the .repro-cache result cache and re-measure every cell",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="stream per-cell sweep telemetry (JSONL) to stderr",
    )
    parser.add_argument(
        "--live-log",
        metavar="FILE",
        default=None,
        help="stream per-cell sweep telemetry (JSONL) to FILE",
    )
    parser.add_argument(
        "--no-ledger",
        action="store_true",
        help="do not append run records to results/ledger/",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="selftest only: best-of-N engine microbenchmark runs "
        "(default 3)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="selftest only: also write the full report as JSON to PATH",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None:
        parallel.set_jobs(args.jobs)
    if args.fresh:
        parallel.set_cache_enabled(False)
    if args.live_log is not None:
        parallel.set_live_log(args.live_log)
    elif args.live:
        parallel.set_live_log("-")
    targets = list(args.targets)
    if "all" in targets:
        targets = sorted(FIGURES) + sorted(ABLATIONS) + ["overlap"]
    elif "ablations" in targets:
        targets = [t for t in targets if t != "ablations"] + sorted(ABLATIONS)
    for target in targets:
        if target == "overlap":
            _run_overlap()
            continue
        if target == "selftest":
            import json

            from repro.bench.selftest import format_selftest, run_selftest

            selftest = run_selftest(jobs=args.jobs, repeats=args.repeats)
            print(format_selftest(selftest))
            if args.json is not None:
                from pathlib import Path

                out = Path(args.json)
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(
                    json.dumps(selftest, indent=2, sort_keys=True) + "\n"
                )
                print(f"\nwrote selftest report {out}")
            if not args.no_ledger:
                _append_selftest_record(selftest)
            continue
        if target in ABLATIONS:
            ABLATIONS[target]()
            continue
        fn = FIGURES[target]
        if args.cols and target != "fig11":
            result = fn(tuple(args.cols))
        else:
            result = fn()
        if not args.no_ledger:
            _append_sweep_record(target, result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
