"""Deterministic multi-process sweep executor with a result cache.

The figure sweeps (``repro.bench.figures``) and the CI gate
(``repro.bench.gate``) are grids of independent **cells** — one
``(figure, series, x)`` measurement each, every cell building its own
fresh :class:`~repro.mpi.world.Cluster`.  The simulation is
deterministic and cells share no mutable state, so cells can be fanned
out over a :class:`~concurrent.futures.ProcessPoolExecutor` and merged
back in canonical cell order: the resulting CSV/JSON output is
byte-identical to the serial path, whatever the worker count or
completion order.

On top of the executor sits a content-addressed result cache under
``.repro-cache/`` (override with ``$REPRO_CACHE_DIR``).  The key hashes
everything a cell's value depends on:

* the cell coordinates (figure, series, x, extra kwargs),
* the workload spec the figure derives from ``x``,
* every parameter of the default cost model,
* the package version,
* the fault-injection environment (profile + seed).

Unchanged cells are skipped on re-runs; a cost-model recalibration, a
version bump, or a different fault profile changes the key and forces
re-measurement.  The CI regression gate always measures fresh
(``use_cache=False``) — a gate that trusts yesterday's numbers gates
nothing.

Worker count resolution order: explicit ``jobs=`` argument, then
:func:`set_jobs` (the CLI's ``-j``), then ``$REPRO_BENCH_JOBS``, then 1
(serial).  ``jobs <= 0`` means "all cores".

Long sweeps can stream **live telemetry** (``--live`` / ``--live-log
FILE`` on the CLIs, or ``$REPRO_LIVE_LOG``): one JSON line per completed
cell — value, cache hit/miss, progress, ETA, worker utilization — plus
start/end records whose final counters reconcile with :data:`STATS`.
See :mod:`repro.obs.live`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

__all__ = [
    "Cell",
    "SweepStats",
    "STATS",
    "cache_dir",
    "cell_key",
    "evaluate_cell",
    "resolve_jobs",
    "run_cells",
    "set_cache_enabled",
    "set_jobs",
    "set_live_log",
]

JOBS_ENV = "REPRO_BENCH_JOBS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
CACHE_ENV = "REPRO_BENCH_CACHE"
LIVE_ENV = "REPRO_LIVE_LOG"
DEFAULT_CACHE_DIR = ".repro-cache"

#: process-wide defaults installed by the CLIs (None = consult the env)
_default_jobs: Optional[int] = None
_cache_enabled: Optional[bool] = None
_live_spec: Optional[str] = None


@dataclass(frozen=True)
class Cell:
    """One sweep cell: a single measurement of ``series`` at ``x``.

    ``extra`` carries figure-specific kwargs as a sorted tuple of
    ``(name, value)`` pairs (e.g. ``(("nranks", 8),)`` for fig11) so the
    cell stays hashable and picklable.
    """

    figure: str
    series: str
    x: int
    extra: tuple = ()


@dataclass
class SweepStats:
    """Cumulative counters across :func:`run_cells` calls."""

    cells: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: per-figure executed-cell counts (diagnostics for the selftest)
    by_figure: dict = field(default_factory=dict)

    def reset(self) -> None:
        self.cells = 0
        self.cache_hits = 0
        self.executed = 0
        self.by_figure.clear()

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.cells if self.cells else 0.0


#: module-wide counters — tests and the selftest read (and reset) these
STATS = SweepStats()


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------

def set_jobs(jobs: Optional[int]) -> None:
    """Install a process-wide default worker count (the CLI ``-j``)."""
    global _default_jobs
    _default_jobs = jobs


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Effective worker count: argument, CLI default, env, then 1."""
    if jobs is None:
        jobs = _default_jobs
    if jobs is None:
        env = os.environ.get(JOBS_ENV, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(f"${JOBS_ENV}={env!r} is not an integer")
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def set_cache_enabled(enabled: Optional[bool]) -> None:
    """Force the result cache on/off process-wide (None = consult env)."""
    global _cache_enabled
    _cache_enabled = enabled


def cache_enabled() -> bool:
    if _cache_enabled is not None:
        return _cache_enabled
    return os.environ.get(CACHE_ENV, "1").strip().lower() not in ("0", "false", "no")


def cache_dir() -> Path:
    """Root of the content-addressed result cache."""
    return Path(os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR)


def set_live_log(spec: Optional[str]) -> None:
    """Install a process-wide live-telemetry destination.

    ``"-"``/``"stderr"`` streams to stderr, any other string is a file
    path (appended), ``None`` reverts to ``$REPRO_LIVE_LOG``.
    """
    global _live_spec
    _live_spec = spec


def live_spec() -> Optional[str]:
    if _live_spec is not None:
        return _live_spec
    return os.environ.get(LIVE_ENV) or None


def _open_live(jobs: int):
    """LiveLog for the configured destination, or None when disabled."""
    spec = live_spec()
    if not spec:
        return None
    from repro.obs.live import open_live_log

    return open_live_log(spec, clock=time.perf_counter, jobs=jobs)


# ----------------------------------------------------------------------
# cache keying
# ----------------------------------------------------------------------

def _cost_model_params(preset: Optional[str] = None) -> dict:
    from dataclasses import asdict

    from repro.ib.costmodel import CostModel, get_preset

    cm = get_preset(preset) if preset else CostModel.mellanox_2003()
    return asdict(cm)


def cell_key(cell: Cell) -> str:
    """Content hash of everything the cell's value depends on.

    A cell carrying a cost-model preset in ``extra`` is keyed on the
    preset's *resolved parameter set*, not just its name — recalibrating
    a preset invalidates exactly that preset's cached cells.
    """
    from repro import __version__
    from repro.bench.figures import cell_workload_spec

    preset = dict(cell.extra).get("preset")
    material = {
        "figure": cell.figure,
        "series": cell.series,
        "x": cell.x,
        "extra": list(cell.extra),
        "workload": cell_workload_spec(cell.figure, cell.x),
        "cost_model": _cost_model_params(preset),
        "version": __version__,
        "fault_profile": os.environ.get("REPRO_FAULT_PROFILE", ""),
        "fault_seed": os.environ.get("REPRO_FAULT_SEED", ""),
    }
    blob = json.dumps(material, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def _cache_path(key: str) -> Path:
    return cache_dir() / key[:2] / f"{key}.json"


def _cache_load(key: str) -> Optional[float]:
    path = _cache_path(key)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    value = payload.get("value")
    return float(value) if isinstance(value, (int, float)) else None


def _cache_store(key: str, cell: Cell, value: float) -> None:
    path = _cache_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "figure": cell.figure,
        "series": cell.series,
        "x": cell.x,
        "extra": list(cell.extra),
        "value": value,
    }
    # atomic publish: concurrent sweeps may race on the same key, and a
    # torn write must never be readable as a (corrupt) cached value
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------

def evaluate_cell(cell: Cell) -> float:
    """Measure one cell in the current process (the worker entry point)."""
    if cell.figure.startswith("workload:"):
        from repro.workloads.suite import evaluate_workload_cell

        return evaluate_workload_cell(
            cell.figure, cell.series, dict(cell.extra)
        )
    from repro.bench.figures import CELL_EVALUATORS

    fn = CELL_EVALUATORS.get(cell.figure)
    if fn is None:
        raise KeyError(f"no cell evaluator registered for {cell.figure!r}")
    return fn(cell.series, cell.x, dict(cell.extra))


def run_cells(
    cells: Sequence[Cell],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
) -> dict:
    """Evaluate every cell; returns ``{cell: value}``.

    Cached cells are skipped; misses run serially (``jobs == 1``) or on a
    process pool.  The returned mapping is complete regardless of worker
    count or completion order, so callers assembling output in canonical
    cell order produce byte-identical files either way.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    caching = cache_enabled() if use_cache is None else use_cache

    results: dict = {}
    misses: list[Cell] = []
    keys: dict = {}
    for cell in cells:
        if caching:
            key = cell_key(cell)
            keys[cell] = key
            value = _cache_load(key)
            if value is not None:
                results[cell] = value
                continue
        misses.append(cell)

    STATS.cells += len(cells)
    STATS.cache_hits += len(cells) - len(misses)

    live = _open_live(jobs)
    try:
        if live:
            live.sweep_start(len(cells), len(cells) - len(misses), len(misses))
            for cell in cells:
                if cell in results:
                    live.cell_done(cell, results[cell], cached=True)

        def record(cell: Cell, value: float, in_flight: int = 0) -> None:
            results[cell] = value
            if caching:
                _cache_store(keys[cell], cell, value)
            STATS.by_figure[cell.figure] = (
                STATS.by_figure.get(cell.figure, 0) + 1
            )
            STATS.executed += 1
            if live:
                live.cell_done(cell, value, cached=False, in_flight=in_flight)

        if misses:
            if jobs > 1 and len(misses) > 1:
                workers = min(jobs, len(misses))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        pool.submit(evaluate_cell, cell): cell
                        for cell in misses
                    }
                    pending = len(futures)
                    for fut in as_completed(futures):
                        pending -= 1
                        record(
                            futures[fut],
                            fut.result(),
                            in_flight=min(workers, pending),
                        )
            else:
                for i, cell in enumerate(misses):
                    record(cell, evaluate_cell(cell),
                           in_flight=min(1, len(misses) - i - 1))

        if live:
            live.sweep_end(STATS)
    finally:
        if live:
            live.close()

    return results
