"""The paper's benchmark workloads.

* :func:`column_vector` — the Section 3.2 motivating example: ``x``
  columns of a 128 x 4096 integer array,
  ``MPI_Type_vector(128, x, 4096, MPI_INT)``.
* :func:`fig10_struct` — the Figure 10 struct datatype used in the
  MPI_Alltoall test (Section 8.3): block sizes grow exponentially from
  one integer up to ``last_block_ints`` integers, and "the gap between
  two blocks equals the size of the first [of the two] block[s]".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes import INT, Datatype, struct, vector

__all__ = ["Workload", "column_vector", "fig10_struct"]

#: the paper's array shape (Section 3.2)
ROWS = 128
ROW_LEN = 4096


@dataclass(frozen=True)
class Workload:
    """A datatype plus the descriptive numbers the reports print."""

    name: str
    datatype: Datatype
    #: bytes of real data per element
    nbytes: int
    #: number of contiguous blocks per element
    nblocks: int
    #: size of a typical block in bytes
    block_bytes: float


def column_vector(cols: int, rows: int = ROWS, row_len: int = ROW_LEN) -> Workload:
    """``cols`` columns of a ``rows x row_len`` int array."""
    if not 1 <= cols <= row_len:
        raise ValueError(f"cols must be in [1, {row_len}]")
    dt = vector(rows, cols, row_len, INT)
    flat = dt.flatten(1)
    return Workload(
        name=f"vector[{rows}x{cols} of {row_len}]",
        datatype=dt,
        nbytes=dt.size,
        nblocks=flat.nblocks,
        block_bytes=flat.mean_block,
    )


def fig10_struct(last_block_ints: int) -> Workload:
    """The Figure 10 struct: blocks of 1, 2, 4, ..., ``last_block_ints``
    integers, each followed by a gap of its own size."""
    if last_block_ints < 1 or last_block_ints & (last_block_ints - 1):
        raise ValueError("last_block_ints must be a power of two")
    lengths, disps, pos = [], [], 0
    n = 1
    while n <= last_block_ints:
        lengths.append(n)
        disps.append(pos * 4)
        pos += 2 * n  # block plus an equal-sized gap
        n *= 2
    dt = struct(lengths, disps, [INT] * len(lengths))
    flat = dt.flatten(1)
    return Workload(
        name=f"struct[1..{last_block_ints} ints]",
        datatype=dt,
        nbytes=dt.size,
        nblocks=flat.nblocks,
        block_bytes=flat.mean_block,
    )
