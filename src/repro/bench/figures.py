"""One sweep function per data figure of the paper.

Each function runs the figure's full parameter sweep, prints the table,
writes ``results/figNN.csv``, and returns ``(x_values, {name: Series})``
so benchmark assertions can check the reproduced shape.  Figures 1, 3-7
and 10 in the paper are diagrams and have no data to regenerate.
"""

from __future__ import annotations

import functools
from typing import Optional, Sequence

from repro.bench.report import Series, print_table, write_csv
from repro.bench.runner import (
    measure_alltoall,
    measure_bandwidth,
    measure_contig_pingpong,
    measure_manual_pingpong,
    measure_multiple_pingpong,
    measure_pingpong,
)
from repro.bench.workloads import column_vector, fig10_struct

__all__ = ["fig02", "fig08", "fig09", "fig11", "fig12", "fig13", "fig14"]

#: the paper's column sweep (Figures 2, 8, 9: 1 to 2048 columns)
COLUMNS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
#: Figure 11's last-block sweep (2048 to 131072 integers)
LAST_BLOCKS = [2048, 4096, 8192, 16384, 32768, 65536, 131072]

#: the worst-case configuration of Figure 14 and Section 8.6
WORST_CASE = {"reg_cache_bytes": 0, "staging_pools": False}


def _cached(fn):
    return functools.lru_cache(maxsize=None)(fn)


@_cached
def fig02(columns: Optional[tuple] = None):
    """Figure 2: the motivating example — Datatype vs Manual vs Multiple
    vs DT+reg vs Contig ping-pong latency."""
    cols = list(columns or COLUMNS)
    out = {
        "Contig": Series("Contig"),
        "Datatype": Series("Datatype"),
        "DT+reg": Series("DT+reg"),
        "Manual": Series("Manual"),
        "Multiple": Series("Multiple"),
    }
    for c in cols:
        w = column_vector(c)
        out["Contig"].y.append(measure_contig_pingpong(w.nbytes, scheme="generic"))
        out["Datatype"].y.append(measure_pingpong("generic", w.datatype))
        out["DT+reg"].y.append(
            measure_pingpong(
                "generic", w.datatype, scheme_options={"fresh_buffers": True}
            )
        )
        out["Manual"].y.append(measure_manual_pingpong(w.datatype))
        out["Multiple"].y.append(measure_multiple_pingpong(w.datatype))
    series = list(out.values())
    print_table(
        "Figure 2: vector datatype transfer latency (us), 128x[cols] of a "
        "128x4096 int array",
        "cols", cols, series, unit="us", baseline="Contig",
    )
    write_csv("results/fig02.csv", "cols", cols, series)
    return cols, out


_SCHEMES = ("generic", "bc-spup", "rwg-up", "multi-w")
_LABEL = {
    "generic": "Generic",
    "bc-spup": "BC-SPUP",
    "rwg-up": "RWG-UP",
    "multi-w": "Multi-W",
}


@_cached
def fig08(columns: Optional[tuple] = None):
    """Figure 8: ping-pong latency of the four schemes."""
    cols = list(columns or COLUMNS)
    out = {s: Series(_LABEL[s]) for s in _SCHEMES}
    for c in cols:
        w = column_vector(c)
        for s in _SCHEMES:
            out[s].y.append(measure_pingpong(s, w.datatype))
    series = [out[s] for s in _SCHEMES]
    print_table(
        "Figure 8: datatype ping-pong latency (us)",
        "cols", cols, series, unit="us", baseline="Generic",
    )
    write_csv("results/fig08.csv", "cols", cols, series)
    return cols, out


@_cached
def fig09(columns: Optional[tuple] = None):
    """Figure 9: streaming bandwidth (100-message window) in MB/s."""
    cols = list(columns or COLUMNS)
    out = {s: Series(_LABEL[s]) for s in _SCHEMES}
    for c in cols:
        w = column_vector(c)
        for s in _SCHEMES:
            out[s].y.append(measure_bandwidth(s, w.datatype))
    series = [out[s] for s in _SCHEMES]
    print_table(
        "Figure 9: datatype streaming bandwidth (MB/s)",
        "cols", cols, series, unit="MB/s", baseline="Generic",
    )
    write_csv("results/fig09.csv", "cols", cols, series)
    return cols, out


@_cached
def fig11(last_blocks: Optional[tuple] = None, nranks: int = 8):
    """Figure 11: MPI_Alltoall with the Figure 10 struct datatype on 8
    processes."""
    xs = list(last_blocks or LAST_BLOCKS)
    out = {s: Series(_LABEL[s]) for s in _SCHEMES}
    for last in xs:
        w = fig10_struct(last)
        for s in _SCHEMES:
            out[s].y.append(measure_alltoall(s, w.datatype, nranks=nranks))
    series = [out[s] for s in _SCHEMES]
    print_table(
        f"Figure 11: MPI_Alltoall time (us), {nranks} processes, struct "
        "datatype of Figure 10",
        "last block (ints)", xs, series, unit="us", baseline="Generic",
    )
    write_csv("results/fig11.csv", "last_block_ints", xs, series)
    return xs, out


@_cached
def fig12(columns: Optional[tuple] = None):
    """Figure 12: effect of segment unpack on RWG-UP bandwidth."""
    cols = list(columns or tuple(c for c in COLUMNS if c >= 16))
    out = {
        "seg-unpack": Series("RWG-UP w/ segment unpack"),
        "whole-unpack": Series("RWG-UP w/o segment unpack"),
    }
    for c in cols:
        w = column_vector(c)
        out["seg-unpack"].y.append(
            measure_bandwidth(
                "rwg-up", w.datatype, scheme_options={"segment_unpack": True}
            )
        )
        out["whole-unpack"].y.append(
            measure_bandwidth(
                "rwg-up", w.datatype, scheme_options={"segment_unpack": False}
            )
        )
    series = list(out.values())
    print_table(
        "Figure 12: RWG-UP bandwidth (MB/s), segment unpack vs whole-message "
        "unpack",
        "cols", cols, series, unit="MB/s", baseline="RWG-UP w/o segment unpack",
    )
    write_csv("results/fig12.csv", "cols", cols, series)
    return cols, out


@_cached
def fig13(columns: Optional[tuple] = None):
    """Figure 13: effect of list descriptor post on Multi-W bandwidth."""
    cols = list(columns or tuple(c for c in COLUMNS if c >= 4))
    out = {
        "list": Series("Multi-W list post"),
        "single": Series("Multi-W single post"),
    }
    for c in cols:
        w = column_vector(c)
        out["list"].y.append(
            measure_bandwidth(
                "multi-w", w.datatype, scheme_options={"list_post": True}
            )
        )
        out["single"].y.append(
            measure_bandwidth(
                "multi-w", w.datatype, scheme_options={"list_post": False}
            )
        )
    series = list(out.values())
    print_table(
        "Figure 13: Multi-W bandwidth (MB/s), list descriptor post vs "
        "single post",
        "cols", cols, series, unit="MB/s", baseline="Multi-W single post",
    )
    write_csv("results/fig13.csv", "cols", cols, series)
    return cols, out


@_cached
def fig14(columns: Optional[tuple] = None):
    """Figure 14: worst-case buffer usage — every operation allocates,
    registers and deregisters on the fly (no pin-down cache, no
    pre-registered pools)."""
    cols = list(columns or COLUMNS)
    out = {s: Series(_LABEL[s]) for s in _SCHEMES}
    for c in cols:
        w = column_vector(c)
        for s in _SCHEMES:
            opts = {"fresh_buffers": True} if s == "generic" else None
            out[s].y.append(
                measure_pingpong(
                    s, w.datatype, cluster_kwargs=WORST_CASE, scheme_options=opts
                )
            )
    series = [out[s] for s in _SCHEMES]
    print_table(
        "Figure 14: ping-pong latency (us) in the worst case of buffer usage "
        "(on-the-fly registration everywhere)",
        "cols", cols, series, unit="us", baseline="Generic",
    )
    write_csv("results/fig14.csv", "cols", cols, series)
    return cols, out
