"""One sweep function per data figure of the paper.

Each function runs the figure's full parameter sweep, prints the table,
writes ``results/figNN.csv``, and returns ``(x_values, {name: Series})``
so benchmark assertions can check the reproduced shape.  Figures 1, 3-7
and 10 in the paper are diagrams and have no data to regenerate.

Every sweep is a grid of independent cells evaluated through
:mod:`repro.bench.parallel`: the per-cell measurement functions below
(``CELL_EVALUATORS``) are module-level and picklable, so the executor
can fan them out over worker processes, and results are merged back in
canonical (series x column) order — output is byte-identical whether the
sweep ran serially, on N workers, or straight from the result cache.
"""

from __future__ import annotations

import functools
from typing import Optional

from repro.bench.parallel import Cell, run_cells
from repro.bench.report import Series, print_table, write_csv
from repro.bench.runner import (
    measure_alltoall,
    measure_bandwidth,
    measure_contig_pingpong,
    measure_manual_pingpong,
    measure_multiple_pingpong,
    measure_pingpong,
)
from repro.bench.workloads import column_vector, fig10_struct

__all__ = ["fig02", "fig08", "fig09", "fig11", "fig12", "fig13", "fig14"]

#: the paper's column sweep (Figures 2, 8, 9: 1 to 2048 columns)
COLUMNS = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
#: Figure 11's last-block sweep (2048 to 131072 integers)
LAST_BLOCKS = [2048, 4096, 8192, 16384, 32768, 65536, 131072]

#: the worst-case configuration of Figure 14 and Section 8.6
WORST_CASE = {"reg_cache_bytes": 0, "staging_pools": False}


def _cached(fn):
    return functools.lru_cache(maxsize=None)(fn)


_SCHEMES = ("generic", "bc-spup", "rwg-up", "multi-w")
_LABEL = {
    "generic": "Generic",
    "bc-spup": "BC-SPUP",
    "rwg-up": "RWG-UP",
    "multi-w": "Multi-W",
}


# ----------------------------------------------------------------------
# per-cell measurement functions (module-level: picklable for workers)
# ----------------------------------------------------------------------

def _preset_kwargs(extra: dict, base: Optional[dict] = None) -> Optional[dict]:
    """Cluster kwargs for a cell, honouring an optional cost-model preset.

    Cells carry the preset *by name* in ``extra`` (``("preset", name)``)
    so they stay picklable; the worker resolves the name against the
    preset registry at evaluation time.  Without a preset the base
    kwargs pass through untouched (None stays None — byte-identical to
    the pre-preset call paths).
    """
    name = extra.get("preset")
    if not name:
        return dict(base) if base else base
    from repro.ib.costmodel import get_preset

    kwargs = dict(base or {})
    kwargs["cost_model"] = get_preset(name)
    return kwargs


def _eval_fig02(series: str, x: int, extra: dict) -> float:
    w = column_vector(x)
    ck = _preset_kwargs(extra)
    if series == "Contig":
        return measure_contig_pingpong(w.nbytes, scheme="generic",
                                       cluster_kwargs=ck)
    if series == "Datatype":
        return measure_pingpong("generic", w.datatype, cluster_kwargs=ck)
    if series == "DT+reg":
        return measure_pingpong(
            "generic", w.datatype, cluster_kwargs=ck,
            scheme_options={"fresh_buffers": True},
        )
    if series == "Manual":
        return measure_manual_pingpong(w.datatype, cluster_kwargs=ck)
    if series == "Multiple":
        return measure_multiple_pingpong(w.datatype, cluster_kwargs=ck)
    raise KeyError(f"fig02: unknown series {series!r}")


def _eval_fig08(series: str, x: int, extra: dict) -> float:
    return measure_pingpong(series, column_vector(x).datatype,
                            cluster_kwargs=_preset_kwargs(extra))


def _eval_fig09(series: str, x: int, extra: dict) -> float:
    return measure_bandwidth(series, column_vector(x).datatype,
                             cluster_kwargs=_preset_kwargs(extra))


def _eval_fig11(series: str, x: int, extra: dict) -> float:
    return measure_alltoall(
        series, fig10_struct(x).datatype, nranks=extra.get("nranks", 8),
        cluster_kwargs=_preset_kwargs(extra),
    )


def _eval_fig12(series: str, x: int, extra: dict) -> float:
    return measure_bandwidth(
        "rwg-up",
        column_vector(x).datatype,
        cluster_kwargs=_preset_kwargs(extra),
        scheme_options={"segment_unpack": series == "seg-unpack"},
    )


def _eval_fig13(series: str, x: int, extra: dict) -> float:
    return measure_bandwidth(
        "multi-w",
        column_vector(x).datatype,
        cluster_kwargs=_preset_kwargs(extra),
        scheme_options={"list_post": series == "list"},
    )


def _eval_fig14(series: str, x: int, extra: dict) -> float:
    opts = {"fresh_buffers": True} if series == "generic" else None
    return measure_pingpong(
        series,
        column_vector(x).datatype,
        cluster_kwargs=_preset_kwargs(extra, WORST_CASE),
        scheme_options=opts,
    )


def _eval_contig(series: str, x: int, extra: dict) -> float:
    """Contiguous ping-pong of ``x`` bytes (series names the scheme).

    Used by the guidelines harness to probe the eager/rendezvous
    crossover of a preset, where the interesting sizes depend on the
    preset's own ``eager_threshold`` rather than the paper's column
    grid.
    """
    return measure_contig_pingpong(
        x, scheme=series, cluster_kwargs=_preset_kwargs(extra)
    )


#: figure name -> cell measurement function, the worker-side dispatch
#: table of :func:`repro.bench.parallel.evaluate_cell`
CELL_EVALUATORS = {
    "fig02": _eval_fig02,
    "fig08": _eval_fig08,
    "fig09": _eval_fig09,
    "fig11": _eval_fig11,
    "fig12": _eval_fig12,
    "fig13": _eval_fig13,
    "fig14": _eval_fig14,
    "contig": _eval_contig,
}


def cell_workload_spec(figure: str, x: int) -> str:
    """Human-readable workload identity of a cell — part of its cache key."""
    if figure.startswith("workload:"):
        from repro.workloads.library import workload_spec

        return workload_spec(figure.split(":", 1)[1])
    if figure == "fig11":
        return fig10_struct(x).name
    if figure == "contig":
        return f"contig:{x}B"
    return column_vector(x).name


def _sweep(figure: str, series_keys, xs, extra: tuple = ()) -> dict:
    """Evaluate the full grid; returns ``{series: [y per x]}`` in order."""
    cells = [Cell(figure, s, x, extra) for x in xs for s in series_keys]
    results = run_cells(cells)
    return {
        s: [results[Cell(figure, s, x, extra)] for x in xs] for s in series_keys
    }


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------

@_cached
def fig02(columns: Optional[tuple] = None):
    """Figure 2: the motivating example — Datatype vs Manual vs Multiple
    vs DT+reg vs Contig ping-pong latency."""
    cols = list(columns or COLUMNS)
    names = ("Contig", "Datatype", "DT+reg", "Manual", "Multiple")
    ys = _sweep("fig02", names, cols)
    out = {n: Series(n, ys[n]) for n in names}
    series = list(out.values())
    print_table(
        "Figure 2: vector datatype transfer latency (us), 128x[cols] of a "
        "128x4096 int array",
        "cols", cols, series, unit="us", baseline="Contig",
    )
    write_csv("results/fig02.csv", "cols", cols, series)
    return cols, out


@_cached
def fig08(columns: Optional[tuple] = None):
    """Figure 8: ping-pong latency of the four schemes."""
    cols = list(columns or COLUMNS)
    ys = _sweep("fig08", _SCHEMES, cols)
    out = {s: Series(_LABEL[s], ys[s]) for s in _SCHEMES}
    series = [out[s] for s in _SCHEMES]
    print_table(
        "Figure 8: datatype ping-pong latency (us)",
        "cols", cols, series, unit="us", baseline="Generic",
    )
    write_csv("results/fig08.csv", "cols", cols, series)
    return cols, out


@_cached
def fig09(columns: Optional[tuple] = None):
    """Figure 9: streaming bandwidth (100-message window) in MB/s."""
    cols = list(columns or COLUMNS)
    ys = _sweep("fig09", _SCHEMES, cols)
    out = {s: Series(_LABEL[s], ys[s]) for s in _SCHEMES}
    series = [out[s] for s in _SCHEMES]
    print_table(
        "Figure 9: datatype streaming bandwidth (MB/s)",
        "cols", cols, series, unit="MB/s", baseline="Generic",
    )
    write_csv("results/fig09.csv", "cols", cols, series)
    return cols, out


@_cached
def fig11(last_blocks: Optional[tuple] = None, nranks: int = 8):
    """Figure 11: MPI_Alltoall with the Figure 10 struct datatype on 8
    processes."""
    xs = list(last_blocks or LAST_BLOCKS)
    ys = _sweep("fig11", _SCHEMES, xs, extra=(("nranks", nranks),))
    out = {s: Series(_LABEL[s], ys[s]) for s in _SCHEMES}
    series = [out[s] for s in _SCHEMES]
    print_table(
        f"Figure 11: MPI_Alltoall time (us), {nranks} processes, struct "
        "datatype of Figure 10",
        "last block (ints)", xs, series, unit="us", baseline="Generic",
    )
    write_csv("results/fig11.csv", "last_block_ints", xs, series)
    return xs, out


@_cached
def fig12(columns: Optional[tuple] = None):
    """Figure 12: effect of segment unpack on RWG-UP bandwidth."""
    cols = list(columns or tuple(c for c in COLUMNS if c >= 16))
    labels = {
        "seg-unpack": "RWG-UP w/ segment unpack",
        "whole-unpack": "RWG-UP w/o segment unpack",
    }
    ys = _sweep("fig12", tuple(labels), cols)
    out = {k: Series(labels[k], ys[k]) for k in labels}
    series = list(out.values())
    print_table(
        "Figure 12: RWG-UP bandwidth (MB/s), segment unpack vs whole-message "
        "unpack",
        "cols", cols, series, unit="MB/s", baseline="RWG-UP w/o segment unpack",
    )
    write_csv("results/fig12.csv", "cols", cols, series)
    return cols, out


@_cached
def fig13(columns: Optional[tuple] = None):
    """Figure 13: effect of list descriptor post on Multi-W bandwidth."""
    cols = list(columns or tuple(c for c in COLUMNS if c >= 4))
    labels = {
        "list": "Multi-W list post",
        "single": "Multi-W single post",
    }
    ys = _sweep("fig13", tuple(labels), cols)
    out = {k: Series(labels[k], ys[k]) for k in labels}
    series = list(out.values())
    print_table(
        "Figure 13: Multi-W bandwidth (MB/s), list descriptor post vs "
        "single post",
        "cols", cols, series, unit="MB/s", baseline="Multi-W single post",
    )
    write_csv("results/fig13.csv", "cols", cols, series)
    return cols, out


@_cached
def fig14(columns: Optional[tuple] = None):
    """Figure 14: worst-case buffer usage — every operation allocates,
    registers and deregisters on the fly (no pin-down cache, no
    pre-registered pools)."""
    cols = list(columns or COLUMNS)
    ys = _sweep("fig14", _SCHEMES, cols)
    out = {s: Series(_LABEL[s], ys[s]) for s in _SCHEMES}
    series = [out[s] for s in _SCHEMES]
    print_table(
        "Figure 14: ping-pong latency (us) in the worst case of buffer usage "
        "(on-the-fly registration everywhere)",
        "cols", cols, series, unit="us", baseline="Generic",
    )
    write_csv("results/fig14.csv", "cols", cols, series)
    return cols, out
