"""Measurement runners: ping-pong latency, streaming bandwidth, alltoall.

All functions build a fresh :class:`~repro.mpi.world.Cluster`, run the
benchmark's rank programs, and return **simulated** microseconds (or MB/s
derived from them).  Warmup iterations absorb one-time costs (first-touch
registration, pool growth, datatype-cache fill), exactly as a real
benchmark's warmup loop amortizes them on hardware.
"""

from __future__ import annotations

from typing import Optional

from repro.datatypes import Datatype, contiguous, INT, BYTE
from repro.ib.costmodel import MB
from repro.mpi.world import Cluster

__all__ = [
    "measure_alltoall",
    "measure_bandwidth",
    "measure_contig_pingpong",
    "measure_manual_pingpong",
    "measure_multiple_pingpong",
    "measure_pingpong",
]

_BENCH_MEMORY = 512 * MB


def _make_cluster(scheme, cluster_kwargs, scheme_options, nranks=2) -> Cluster:
    kwargs = dict(memory_per_rank=_BENCH_MEMORY)
    kwargs.update(cluster_kwargs or {})
    return Cluster(
        nranks, scheme=scheme, scheme_options=scheme_options or {}, **kwargs
    )


def _span(dt: Datatype, count: int = 1) -> int:
    return dt.flatten(count).span + abs(dt.lb) + 64


# ----------------------------------------------------------------------
# ping-pong latency
# ----------------------------------------------------------------------

def measure_pingpong(
    scheme: str,
    dt: Datatype,
    *,
    count: int = 1,
    iters: int = 5,
    warmup: int = 1,
    cluster_kwargs: Optional[dict] = None,
    scheme_options: Optional[dict] = None,
) -> float:
    """One-way datatype ping-pong latency in simulated microseconds."""

    def rank0(mpi):
        buf = mpi.alloc(_span(dt, count))
        t0 = None
        for i in range(warmup + iters):
            if i == warmup:
                t0 = mpi.now
            yield from mpi.send(buf, dt, count, dest=1, tag=0)
            yield from mpi.recv(buf, dt, count, source=1, tag=1)
        return (mpi.now - t0) / iters / 2

    def rank1(mpi):
        buf = mpi.alloc(_span(dt, count))
        for _ in range(warmup + iters):
            yield from mpi.recv(buf, dt, count, source=0, tag=0)
            yield from mpi.send(buf, dt, count, dest=0, tag=1)

    cluster = _make_cluster(scheme, cluster_kwargs, scheme_options)
    return cluster.run([rank0, rank1]).values[0]


def measure_contig_pingpong(
    nbytes: int,
    *,
    scheme: str = "bc-spup",
    iters: int = 5,
    warmup: int = 1,
    cluster_kwargs: Optional[dict] = None,
) -> float:
    """Contiguous-transfer ping-pong of the same byte count ("Contig")."""
    dt = contiguous(nbytes, BYTE)
    return measure_pingpong(
        scheme, dt, iters=iters, warmup=warmup, cluster_kwargs=cluster_kwargs
    )


def measure_manual_pingpong(
    dt: Datatype,
    *,
    scheme: str = "generic",
    iters: int = 5,
    warmup: int = 1,
    cluster_kwargs: Optional[dict] = None,
) -> float:
    """The paper's "Manual" strategy: the application packs into its own
    contiguous buffer, sends contiguously, and unpacks by hand."""
    contig = contiguous(dt.size, BYTE)

    def rank0(mpi):
        buf = mpi.alloc(_span(dt))
        stage = mpi.alloc(max(dt.size, 1))
        t0 = None
        for i in range(warmup + iters):
            if i == warmup:
                t0 = mpi.now
            yield from mpi.user_pack(buf, dt, 1, stage)
            yield from mpi.send(stage, contig, 1, dest=1, tag=0)
            yield from mpi.recv(stage, contig, 1, source=1, tag=1)
            yield from mpi.user_unpack(buf, dt, 1, stage)
        return (mpi.now - t0) / iters / 2

    def rank1(mpi):
        buf = mpi.alloc(_span(dt))
        stage = mpi.alloc(max(dt.size, 1))
        for _ in range(warmup + iters):
            yield from mpi.recv(stage, contig, 1, source=0, tag=0)
            yield from mpi.user_unpack(buf, dt, 1, stage)
            yield from mpi.user_pack(buf, dt, 1, stage)
            yield from mpi.send(stage, contig, 1, dest=0, tag=1)

    cluster = _make_cluster(scheme, cluster_kwargs, None)
    return cluster.run([rank0, rank1]).values[0]


def measure_multiple_pingpong(
    dt: Datatype,
    *,
    scheme: str = "generic",
    iters: int = 3,
    warmup: int = 1,
    cluster_kwargs: Optional[dict] = None,
) -> float:
    """The paper's "Multiple" strategy: one MPI call per contiguous block
    ("transfers each contiguous block one by one using individual MPI
    calls")."""
    flat = dt.flatten(1)
    blocks = list(flat.blocks())

    def rank0(mpi):
        buf = mpi.alloc(_span(dt))
        t0 = None
        for i in range(warmup + iters):
            if i == warmup:
                t0 = mpi.now
            reqs = []
            for k, (off, ln) in enumerate(blocks):
                r = yield from mpi.isend(
                    buf + off, contiguous(ln, BYTE), 1, dest=1, tag=k
                )
                reqs.append(r)
            yield from mpi.waitall(reqs)
            # wait for the pong (a single small ack models the reverse
            # direction of the ping-pong at equal cost per block)
            reqs = []
            for k, (off, ln) in enumerate(blocks):
                r = yield from mpi.irecv(
                    buf + off, contiguous(ln, BYTE), 1, source=1, tag=k
                )
                reqs.append(r)
            yield from mpi.waitall(reqs)
        return (mpi.now - t0) / iters / 2

    def rank1(mpi):
        buf = mpi.alloc(_span(dt))
        for _ in range(warmup + iters):
            reqs = []
            for k, (off, ln) in enumerate(blocks):
                r = yield from mpi.irecv(
                    buf + off, contiguous(ln, BYTE), 1, source=0, tag=k
                )
                reqs.append(r)
            yield from mpi.waitall(reqs)
            reqs = []
            for k, (off, ln) in enumerate(blocks):
                r = yield from mpi.isend(
                    buf + off, contiguous(ln, BYTE), 1, dest=0, tag=k
                )
                reqs.append(r)
            yield from mpi.waitall(reqs)

    cluster = _make_cluster(scheme, cluster_kwargs, None)
    return cluster.run([rank0, rank1]).values[0]


# ----------------------------------------------------------------------
# streaming bandwidth
# ----------------------------------------------------------------------

def measure_bandwidth(
    scheme: str,
    dt: Datatype,
    *,
    count: int = 1,
    window: int = 100,
    warmup_windows: int = 1,
    cluster_kwargs: Optional[dict] = None,
    scheme_options: Optional[dict] = None,
) -> float:
    """Streaming bandwidth in MB/s (MB = 2**20 bytes, per the paper).

    The paper's test: "The sender pushes 100 consecutive datatype
    messages and then waits for a reply from the receiver when all
    messages have been received."
    """
    nbytes = dt.size * count
    ackdt = contiguous(1, INT)

    def rank0(mpi):
        buf = mpi.alloc(_span(dt, count))
        ack = mpi.alloc(8)
        t0 = None
        for w in range(warmup_windows + 1):
            if w == warmup_windows:
                t0 = mpi.now
            reqs = []
            for k in range(window):
                r = yield from mpi.isend(buf, dt, count, dest=1, tag=k)
                reqs.append(r)
            yield from mpi.waitall(reqs)
            yield from mpi.recv(ack, ackdt, 1, source=1, tag=99999)
        return mpi.now - t0

    def rank1(mpi):
        buf = mpi.alloc(_span(dt, count))
        ack = mpi.alloc(8)
        for _w in range(warmup_windows + 1):
            reqs = []
            for k in range(window):
                r = yield from mpi.irecv(buf, dt, count, source=0, tag=k)
                reqs.append(r)
            yield from mpi.waitall(reqs)
            yield from mpi.send(ack, ackdt, 1, dest=0, tag=99999)

    cluster = _make_cluster(scheme, cluster_kwargs, scheme_options)
    elapsed_us = cluster.run([rank0, rank1]).values[0]
    total_bytes = nbytes * window
    return (total_bytes / MB) / (elapsed_us / 1e6)


# ----------------------------------------------------------------------
# MPI_Alltoall
# ----------------------------------------------------------------------

def measure_alltoall(
    scheme: str,
    dt: Datatype,
    *,
    nranks: int = 8,
    iters: int = 3,
    warmup: int = 1,
    cluster_kwargs: Optional[dict] = None,
    scheme_options: Optional[dict] = None,
) -> float:
    """Average MPI_Alltoall completion time (simulated us)."""

    def program(mpi):
        send = mpi.alloc(nranks * dt.extent + 64)
        recv = mpi.alloc(nranks * dt.extent + 64)
        t0 = None
        for i in range(warmup + iters):
            if i == warmup:
                t0 = mpi.now
            yield from mpi.alltoall(send, dt, 1, recv, dt, 1)
        return (mpi.now - t0) / iters

    cluster = _make_cluster(scheme, cluster_kwargs, scheme_options, nranks=nranks)
    return max(cluster.run(program).values)
