"""The runtime fault injector consulted by the verbs/HCA layer.

One :class:`FaultInjector` is shared by every node of a cluster.  All
decisions are Bernoulli draws from a single ``random.Random`` seeded by
the plan: because the discrete-event simulation itself is deterministic,
the sequence of hook calls — and therefore the whole injection schedule —
is reproducible for a fixed seed, while distinct seeds diverge after the
first draw.

Every positive decision is recorded three ways:

* appended to :attr:`FaultInjector.events` (the schedule, for tests),
* counted in the metrics registry (``faults.injected`` plus a per-kind
  ``faults.<kind>`` counter),
* emitted as a zero-length ``fault`` trace record, so injections show up
  in Chrome traces next to the recovery work they trigger.

A disabled injector (inert plan) returns from every hook before touching
the RNG, the metrics registry or the tracer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.simulator import Simulator, Tracer

__all__ = ["FaultEvent", "FaultInjector"]

#: payload type names with an end-to-end retransmission path; only these
#: may be dropped from the wire (anything else would violate the
#: reliable-connection service the schemes are built on)
DROPPABLE_CTRL = frozenset({"RndvStart", "RndvReply"})


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as it appears in the schedule log."""

    time_us: float
    kind: str
    node: int
    detail: str = ""


class FaultInjector:
    """Per-cluster fault decision engine (see module docstring)."""

    def __init__(
        self,
        sim: "Simulator",
        plan: FaultPlan,
        metrics: "MetricsRegistry",
        tracer: Optional["Tracer"] = None,
    ):
        self.sim = sim
        self.plan = plan
        self.metrics = metrics
        self.tracer = tracer
        #: False for an inert plan: every hook is a cheap early return
        self.enabled = plan.active
        self._rng = random.Random(plan.seed)
        #: the injection schedule, in simulated-time order
        self.events: list[FaultEvent] = []
        # per-node link-degradation windows: node -> (until_us, factor)
        self._degraded: dict[int, tuple[float, float]] = {}

    # -- bookkeeping -----------------------------------------------------

    def _record(self, kind: str, node: int, detail: str = "") -> None:
        now = self.sim.now
        self.events.append(FaultEvent(now, kind, node, detail))
        self.metrics.counter("faults.injected", node).inc()
        self.metrics.counter(f"faults.{kind}", node).inc()
        if self.tracer is not None:
            self.tracer.record(now, now, node, "fault", kind, meta=detail)

    def schedule(self) -> tuple[FaultEvent, ...]:
        """The injection schedule so far (for determinism tests)."""
        return tuple(self.events)

    def injected(self, kind: Optional[str] = None) -> int:
        """Number of injections (optionally of one kind)."""
        if kind is None:
            return len(self.events)
        return sum(1 for ev in self.events if ev.kind == kind)

    # -- decision hooks --------------------------------------------------

    def fail_send(self, node: int, qp_num: int) -> bool:
        """Does this transmission attempt complete in error (CQE error)?"""
        if not self.enabled or self.plan.cqe_error_rate <= 0.0:
            return False
        if self._rng.random() >= self.plan.cqe_error_rate:
            return False
        self._record("cqe_error", node, f"qp{qp_num}")
        return True

    def rnr(self, node: int, qp_num: int) -> bool:
        """Does the responder NAK this attempt with receiver-not-ready?"""
        if not self.enabled or self.plan.rnr_rate <= 0.0:
            return False
        if self._rng.random() >= self.plan.rnr_rate:
            return False
        self._record("rnr_nak", node, f"qp{qp_num}")
        return True

    def hard_fail(self, node: int, qp_num: int) -> bool:
        """Does the send queue take an unrecoverable (at transport level)
        error, forcing a full QP recovery?"""
        if not self.enabled or self.plan.hard_fail_rate <= 0.0:
            return False
        if self._rng.random() >= self.plan.hard_fail_rate:
            return False
        self._record("hard_fail", node, f"qp{qp_num}")
        return True

    def drop_ctrl(self, node: int, payload: object) -> bool:
        """Does this control message vanish on the wire?

        Only payload types with a retransmission path (``RndvStart``,
        ``RndvReply``) are eligible; data and credit traffic rides the
        reliable service and is never dropped.
        """
        if not self.enabled or self.plan.ctrl_drop_rate <= 0.0:
            return False
        name = type(payload).__name__
        if name not in DROPPABLE_CTRL:
            return False
        if self._rng.random() >= self.plan.ctrl_drop_rate:
            return False
        self._record("ctrl_drop", node, name)
        return True

    def fail_registration(self, node: int, nbytes: int) -> bool:
        """Does this memory-registration attempt fail transiently?"""
        if not self.enabled or self.plan.reg_fail_rate <= 0.0:
            return False
        if self._rng.random() >= self.plan.reg_fail_rate:
            return False
        self._record("reg_fail", node, f"{nbytes}B")
        return True

    # -- link degradation ------------------------------------------------

    def maybe_degrade(self, node: int) -> None:
        """Possibly open a link-degradation window on ``node``.

        Called once per processed descriptor; while a window is open no
        new draw is made (the window runs its course).
        """
        if not self.enabled or self.plan.link_degrade_rate <= 0.0:
            return
        current = self._degraded.get(node)
        if current is not None and self.sim.now < current[0]:
            return
        if self._rng.random() >= self.plan.link_degrade_rate:
            return
        until = self.sim.now + self.plan.degrade_duration_us
        self._degraded[node] = (until, self.plan.degrade_factor)
        self._record("link_degrade", node, f"x{self.plan.degrade_factor:g}")
        self.metrics.gauge("ib.link_factor", node).set(self.plan.degrade_factor)

    def link_factor(self, node: int) -> float:
        """Current wire-bandwidth divisor for ``node`` (1.0 = healthy)."""
        if not self.enabled:
            return 1.0
        current = self._degraded.get(node)
        if current is None:
            return 1.0
        until, factor = current
        if self.sim.now >= until:
            del self._degraded[node]
            self.metrics.gauge("ib.link_factor", node).set(1.0)
            return 1.0
        return factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return (
            f"<FaultInjector {state} {self.plan.describe()} "
            f"events={len(self.events)}>"
        )
