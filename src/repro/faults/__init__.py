"""Deterministic fault injection and recovery for the simulated stack.

The paper evaluates its schemes on a fault-free fabric; this package
supplies the reliability machinery a production datatype-communication
stack needs underneath the verbs the paper orchestrates:

* :class:`~repro.faults.plan.FaultPlan` — a seeded, immutable description
  of *what* to inject (per-event rates, degradation parameters) with
  named profiles (``none``, ``lossy``, ``flaky-hca``) selectable through
  the ``REPRO_FAULT_PROFILE`` / ``REPRO_FAULT_SEED`` environment
  variables;
* :class:`~repro.faults.injector.FaultInjector` — the runtime that the
  verbs/HCA layer consults per descriptor, per registration and per
  control message.  All draws come from one seeded RNG, so a fixed seed
  yields a byte-reproducible injection schedule, and a plan with no
  active rates never draws at all (byte-identical to running without the
  injector).

Recovery lives where it does on real InfiniBand: transport-level retries
and RNR backoff in the HCA send engine (:mod:`repro.ib.hca`), the QP
error-state machine in :mod:`repro.ib.verbs`, rendezvous timeout and
retransmission in :mod:`repro.mpi.context`, and scheme fallback in
:mod:`repro.schemes.selector`.  See ``docs/FAULTS.md``.
"""

from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import FAULT_PROFILES, FaultPlan

__all__ = ["FAULT_PROFILES", "FaultEvent", "FaultInjector", "FaultPlan"]
