"""Seeded fault plans and named fault profiles.

A :class:`FaultPlan` is an immutable value object: per-event-class
injection probabilities plus the parameters of transient link
degradation.  It carries the RNG seed that makes a whole run's injection
schedule reproducible — the same seed over the same (deterministic)
simulation produces the same faults at the same simulated times.

Profiles map CI matrix names to plans:

* ``none`` — every rate zero; installing this plan is guaranteed to be
  byte-identical to running with no plan at all (the injector never
  draws from its RNG and never schedules an event);
* ``lossy`` — a congested/erroring fabric: completion errors, RNR-NAKs,
  lost rendezvous control messages, occasional link degradation;
* ``flaky-hca`` — a misbehaving adapter: frequent completion errors,
  registration failures, and hard send-queue errors that force full QP
  recoveries (and, upstream, scheme fallback to the copy-based Generic
  path).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields, replace
from typing import Any, Mapping, Optional

__all__ = ["FAULT_PROFILES", "FaultPlan"]

#: environment variables read by :meth:`FaultPlan.from_env`
ENV_PROFILE = "REPRO_FAULT_PROFILE"
ENV_SEED = "REPRO_FAULT_SEED"


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, at which rates, driven by which seed."""

    #: RNG seed for the whole run's injection schedule
    seed: int = 0
    #: name of the profile this plan came from (informational)
    profile: str = "none"
    #: probability that one send-engine transmission attempt completes in
    #: error (retried by the transport up to ``CostModel.retry_cnt``)
    cqe_error_rate: float = 0.0
    #: probability that a receiver-side descriptor fetch NAKs with
    #: receiver-not-ready (SEND / RDMA_WRITE_IMM only; retried after
    #: ``CostModel.rnr_timer_us``)
    rnr_rate: float = 0.0
    #: probability that a rendezvous control message (RndvStart or
    #: RndvReply — the two with retransmission paths) vanishes on the wire
    ctrl_drop_rate: float = 0.0
    #: probability that one memory-registration attempt fails transiently
    reg_fail_rate: float = 0.0
    #: probability (per processed descriptor) that the node's link enters
    #: a degradation window
    link_degrade_rate: float = 0.0
    #: probability of an immediate hard send-queue error (QP drops to SQE
    #: and undergoes a full recovery before the descriptor proceeds)
    hard_fail_rate: float = 0.0
    #: wire-bandwidth divisor while a degradation window is active
    degrade_factor: float = 4.0
    #: length of one link-degradation window (simulated us)
    degrade_duration_us: float = 2000.0

    _RATE_FIELDS = (
        "cqe_error_rate",
        "rnr_rate",
        "ctrl_drop_rate",
        "reg_fail_rate",
        "link_degrade_rate",
        "hard_fail_rate",
    )

    def __post_init__(self) -> None:
        for name in self._RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.degrade_factor < 1.0:
            raise ValueError("degrade_factor must be >= 1.0")

    @property
    def active(self) -> bool:
        """True when any event class can fire."""
        return any(getattr(self, name) > 0.0 for name in self._RATE_FIELDS)

    def with_overrides(self, **kwargs: Any) -> "FaultPlan":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def from_profile(cls, name: str, seed: int = 0) -> "FaultPlan":
        """Build the named profile (see :data:`FAULT_PROFILES`)."""
        key = name.strip().lower()
        if key not in FAULT_PROFILES:
            raise ValueError(
                f"unknown fault profile {name!r}; "
                f"choose from {sorted(FAULT_PROFILES)}"
            )
        return cls(seed=seed, profile=key, **FAULT_PROFILES[key])

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None) -> "FaultPlan":
        """Plan selected by ``REPRO_FAULT_PROFILE`` / ``REPRO_FAULT_SEED``.

        Unset (or ``none``) yields the inert plan, so code paths gated on
        :attr:`active` behave exactly as if no injector were installed.
        """
        env = os.environ if environ is None else environ
        profile = env.get(ENV_PROFILE, "none") or "none"
        seed = int(env.get(ENV_SEED, "0") or "0")
        return cls.from_profile(profile, seed=seed)

    def describe(self) -> str:
        """One-line summary for logs and reports."""
        rates = ", ".join(
            f"{name}={getattr(self, name):g}"
            for name in self._RATE_FIELDS
            if getattr(self, name) > 0.0
        )
        return (
            f"FaultPlan(profile={self.profile}, seed={self.seed}, "
            f"{rates or 'inert'})"
        )


#: named profiles for the CI fault matrix
FAULT_PROFILES: dict[str, dict[str, float]] = {
    "none": {},
    "lossy": {
        "cqe_error_rate": 0.03,
        "rnr_rate": 0.02,
        "ctrl_drop_rate": 0.08,
        "link_degrade_rate": 0.002,
        "degrade_factor": 4.0,
        "degrade_duration_us": 2000.0,
    },
    "flaky-hca": {
        "cqe_error_rate": 0.05,
        "rnr_rate": 0.02,
        "ctrl_drop_rate": 0.02,
        "reg_fail_rate": 0.05,
        "hard_fail_rate": 0.01,
        "link_degrade_rate": 0.005,
        "degrade_factor": 6.0,
        "degrade_duration_us": 4000.0,
    },
}

# keep dataclass field names and profile keys in sync
_KNOWN = {f.name for f in fields(FaultPlan)}
for _name, _cfg in FAULT_PROFILES.items():
    _bad = set(_cfg) - _KNOWN
    if _bad:  # pragma: no cover - guards future edits
        raise RuntimeError(f"profile {_name!r} has unknown fields {_bad}")
