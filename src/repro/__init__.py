"""repro — reproduction of *High Performance Implementation of MPI
Derived Datatype Communication over InfiniBand* (Wu, Wyckoff, Panda,
OSU-CISRC-10/03-TR58 / IPDPS 2004).

The package layers:

* :mod:`repro.simulator` — deterministic discrete-event engine.
* :mod:`repro.ib` — simulated InfiniBand verbs (QPs, CQs, RDMA
  write-gather / read-scatter, immediate data, memory registration) with
  a cost model calibrated to the paper's Mellanox/Xeon testbed.
* :mod:`repro.datatypes` — MPI derived datatype engine with partial
  (segment) processing.
* :mod:`repro.registration` — pin-down cache and Optimistic Group
  Registration.
* :mod:`repro.mpi` — eager/rendezvous protocols, matching, collectives.
* :mod:`repro.schemes` — the paper's contribution: Generic baseline,
  BC-SPUP, RWG-UP, P-RRS, Multi-W, and the adaptive selector.
* :mod:`repro.bench` — workloads and harnesses regenerating every
  data figure of the paper (see EXPERIMENTS.md).

Quickstart::

    import numpy as np
    from repro import Cluster, types

    COLS = 64

    def sender(mpi):
        a = mpi.alloc_array((128, 4096), np.int32)
        a.array[:] = np.arange(128 * 4096).reshape(128, 4096)
        dt = types.vector(128, COLS, 4096, types.INT)
        yield from mpi.send(a.addr, dt, 1, dest=1, tag=7)

    def receiver(mpi):
        b = mpi.alloc_array((128, 4096), np.int32)
        dt = types.vector(128, COLS, 4096, types.INT)
        yield from mpi.recv(b.addr, dt, 1, source=0, tag=7)
        return b.array[:, :COLS].sum()

    result = Cluster(2, scheme="multi-w").run([sender, receiver])
    print(result.time_us, result.values[1])
"""

from repro import types
from repro.ib.costmodel import CostModel, MB
from repro.mpi.context import ANY_TAG
from repro.mpi.world import Cluster, RunResult

__version__ = "1.0.0"

__all__ = [
    "ANY_TAG",
    "Cluster",
    "CostModel",
    "MB",
    "RunResult",
    "types",
    "__version__",
]
