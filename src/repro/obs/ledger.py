"""Append-only JSONL run ledger: the repo's performance memory.

Every bench-gate, selftest, and figure-sweep run appends one structured
record to ``results/ledger/ledger.jsonl`` (see :func:`ledger_path` for
the override environment).  A record captures everything needed to
interpret the numbers later — git sha, wall-clock timestamp, package
version, the full :class:`~repro.ib.costmodel.CostModel` parameter set,
the fault-injection environment, the per-cell metric values, engine
events/sec, the host-time profiler's per-category ns/event
(``host_profile``), and (for gate runs) the critical-path profiler's
per-category attribution — so the trends CLI (:mod:`repro.obs.trends`)
and the regression explainer (:mod:`repro.obs.regress`) can compare any
two points in the repo's history without re-running them.

Durability contract:

* **atomic append** — a record is serialized to a single line and written
  with one ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
  writers (parallel CI jobs, a sweep racing a gate) interleave whole
  lines, never bytes;
* **corrupt tail tolerated** — a torn final line (power loss, a killed
  writer) reads back as truncation: :func:`read_ledger` drops
  unparsable lines instead of failing, so the ledger never wedges its
  own tooling;
* **append-only** — nothing in this module rewrites or truncates the
  file; history is only ever extended.

Timestamps are *parameters*: this package never consults the wall clock
itself (``tests/obs/test_no_wallclock.py``) — callers in ``repro.bench``
pass the current epoch seconds in.
"""

from __future__ import annotations

import json
import os
import subprocess
from pathlib import Path
from typing import Any, Iterable, Optional, Sequence, Union

__all__ = [
    "SCHEMA_VERSION",
    "append_record",
    "encode_record",
    "fault_env",
    "git_sha",
    "last_good",
    "ledger_dir",
    "ledger_path",
    "make_record",
    "read_ledger",
]

#: bump when a record's shape changes incompatibly
SCHEMA_VERSION = 1

LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"
RESULTS_DIR_ENV = "REPRO_RESULTS_DIR"
LEDGER_FILENAME = "ledger.jsonl"

#: record kinds the bench, guidelines, and workload-suite layers write
KINDS = ("gate", "selftest", "sweep", "guidelines", "scenario")

#: statuses that count as "good" for regression comparison
GOOD_STATUSES = ("pass", "baseline")


def ledger_dir() -> Path:
    """Directory holding the ledger.

    ``$REPRO_LEDGER_DIR`` wins outright; otherwise the ledger lives in
    ``<results>/ledger`` where ``<results>`` honours the same
    ``$REPRO_RESULTS_DIR`` redirection the sweep CSVs use (so test runs
    never touch the checked-in ledger).
    """
    env = os.environ.get(LEDGER_DIR_ENV)
    if env:
        return Path(env)
    results = os.environ.get(RESULTS_DIR_ENV)
    if results:
        return Path(results) / "ledger"
    return Path("results") / "ledger"


def ledger_path() -> Path:
    """Default ledger file: ``<ledger_dir>/ledger.jsonl``."""
    return ledger_dir() / LEDGER_FILENAME


def git_sha() -> Optional[str]:
    """Current commit sha, or None outside a git checkout.

    ``$REPRO_GIT_SHA`` (tests) and ``$GITHUB_SHA`` (CI) short-circuit the
    subprocess so records stay deterministic where that matters.
    """
    for var in ("REPRO_GIT_SHA", "GITHUB_SHA"):
        value = os.environ.get(var)
        if value:
            return value
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def fault_env() -> dict:
    """The fault-injection environment the run executed under."""
    return {
        "profile": os.environ.get("REPRO_FAULT_PROFILE", ""),
        "seed": os.environ.get("REPRO_FAULT_SEED", ""),
    }


def _cost_model_params() -> dict:
    from dataclasses import asdict

    from repro.ib.costmodel import CostModel

    return asdict(CostModel.mellanox_2003())


def make_record(
    kind: str,
    *,
    timestamp: float,
    sha: Optional[str] = None,
    status: Optional[str] = None,
    metrics: Optional[dict] = None,
    attribution: Optional[dict] = None,
    events_per_sec: Optional[dict] = None,
    host_profile: Optional[dict] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Build one ledger record (a plain JSON-serializable dict).

    Everything except ``timestamp``/``sha`` is derived from the
    arguments and the process environment, so two calls with identical
    inputs produce byte-identical encoded records
    (:func:`encode_record`).
    """
    from repro import __version__

    record: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "sha": sha,
        "timestamp": timestamp,
        "version": __version__,
        "cost_model": _cost_model_params(),
        "fault_env": fault_env(),
    }
    if status is not None:
        record["status"] = status
    if metrics is not None:
        record["metrics"] = metrics
    if attribution is not None:
        record["attribution"] = attribution
    if events_per_sec is not None:
        record["events_per_sec"] = events_per_sec
    if host_profile is not None:
        record["host_profile"] = host_profile
    if extra:
        record.update(extra)
    return record


def encode_record(record: dict) -> bytes:
    """Serialize a record to its canonical single-line wire form."""
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
        + "\n"
    ).encode()


def append_record(
    record: dict, path: Optional[Union[str, Path]] = None
) -> Path:
    """Atomically append one record; returns the ledger path written.

    The record is serialized to one line and written with a single
    ``os.write`` on an ``O_APPEND`` descriptor — concurrent appenders
    cannot interleave partial lines (POSIX appends are atomic per
    write), and a crashed writer leaves at worst a torn *tail* line,
    which :func:`read_ledger` treats as truncation.
    """
    out = Path(path) if path is not None else ledger_path()
    out.parent.mkdir(parents=True, exist_ok=True)
    data = encode_record(record)
    fd = os.open(out, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
    return out


def read_ledger(
    path: Optional[Union[str, Path]] = None,
    *,
    kind: Optional[str] = None,
) -> list[dict]:
    """Read every parseable record, oldest first.

    A missing file reads as an empty ledger.  Unparsable lines are
    skipped: a torn tail line is indistinguishable from truncation and
    is silently dropped; corrupt interior lines are likewise skipped so
    one bad write can never wedge the trends/regression tooling.
    """
    src = Path(path) if path is not None else ledger_path()
    try:
        raw = src.read_bytes()
    except OSError:
        return []
    records: list[dict] = []
    for line in raw.split(b"\n"):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue  # torn/corrupt line == truncation at that point
        if not isinstance(rec, dict):
            continue
        if kind is not None and rec.get("kind") != kind:
            continue
        records.append(rec)
    return records


def last_good(
    records: Iterable[dict],
    *,
    kind: str = "gate",
    require: Sequence[str] = (),
) -> Optional[dict]:
    """Newest record of ``kind`` whose status is good and which carries
    every key in ``require`` — the regression explainer's comparison
    point.  None when the ledger has no such record yet.
    """
    for rec in reversed(list(records)):
        if rec.get("kind") != kind:
            continue
        if rec.get("status") not in GOOD_STATUSES:
            continue
        if any(key not in rec for key in require):
            continue
        return rec
    return None
