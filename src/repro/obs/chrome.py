"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

One track (``pid``) per simulated node; within a node, one lane (``tid``)
per trace category, so the pack / wire / unpack / registration pipeline of
a transfer reads directly as the paper's Figure 3 Gantt chart.  Timestamps
are simulated microseconds, which is exactly the unit the trace-event
format expects.
"""

from __future__ import annotations

import json
import os
from typing import Optional

__all__ = ["chrome_trace_events", "export_chrome_trace"]


def chrome_trace_events(tracer) -> list[dict]:
    """Convert a tracer's records to a JSON-serializable trace-event list.

    Emits ``M`` (metadata) events naming each node's process and each
    category's lane, then one complete (``"ph": "X"``) event per record.
    """
    events: list[dict] = []
    nodes = sorted({r.node for r in tracer.records})
    # lane assignment: categories sorted per node for a stable layout
    lanes: dict = {}
    for node in nodes:
        cats = sorted({r.category for r in tracer.records if r.node == node})
        events.append(
            {
                "name": "process_name", "ph": "M", "pid": node, "tid": 0,
                "args": {"name": f"node{node}"},
            }
        )
        for tid, cat in enumerate(cats, start=1):
            lanes[(node, cat)] = tid
            events.append(
                {
                    "name": "thread_name", "ph": "M", "pid": node, "tid": tid,
                    "args": {"name": cat},
                }
            )
    for rec in tracer.records:
        args = {"span_id": rec.span_id, "parent_id": rec.parent_id}
        if rec.meta is not None:
            args["meta"] = str(rec.meta)
        events.append(
            {
                "name": rec.detail or rec.category,
                "cat": rec.category,
                "ph": "X",
                "ts": rec.start,
                "dur": rec.duration,
                "pid": rec.node,
                "tid": lanes[(rec.node, rec.category)],
                "args": args,
            }
        )
    return events


def export_chrome_trace(tracer, path: Optional[str] = None) -> str:
    """Serialize the tracer as Chrome trace JSON; optionally write it.

    Returns the JSON text (guaranteed to round-trip through
    ``json.loads``)."""
    text = json.dumps(
        {"traceEvents": chrome_trace_events(tracer), "displayTimeUnit": "ms"}
    )
    if path is not None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            fh.write(text)
    return text
