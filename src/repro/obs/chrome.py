"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

One track (``pid``) per simulated node; within a node, one lane (``tid``)
per trace category, so the pack / wire / unpack / registration pipeline of
a transfer reads directly as the paper's Figure 3 Gantt chart.  Timestamps
are simulated microseconds, which is exactly the unit the trace-event
format expects.

Profiled runs additionally carry *counter* tracks (``"ph": "C"``):
resource occupancy and queue-depth time series sampled by the
:class:`~repro.obs.profile.Profiler` render as per-node area charts under
the span lanes, so a send-queue backlog lines up visually with the wire
spans it delays.
"""

from __future__ import annotations

import json
import os
from typing import Optional, Sequence

__all__ = ["chrome_trace_events", "counter_track_events", "export_chrome_trace"]


def counter_track_events(series: dict) -> list[dict]:
    """Convert profiler time series to Chrome counter events.

    ``series`` maps ``(name, node)`` to a list of ``(t_us, value)``
    samples (see :attr:`repro.obs.profile.Profiler.series`).  Counters on
    ``node=None`` render under a synthetic cluster-wide pid.
    """
    events: list[dict] = []
    for (name, node), points in sorted(
        series.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
    ):
        pid = -1 if node is None else node
        for t, value in points:
            events.append(
                {
                    "name": name, "ph": "C", "ts": t, "pid": pid,
                    "args": {"value": value},
                }
            )
    return events


def chrome_trace_events(tracer) -> list[dict]:
    """Convert a tracer's records to a JSON-serializable trace-event list.

    Emits ``M`` (metadata) events naming each node's process and each
    category's lane, then one complete (``"ph": "X"``) event per record.
    """
    events: list[dict] = []
    nodes = sorted({r.node for r in tracer.records})
    # lane assignment: categories sorted per node for a stable layout
    lanes: dict = {}
    for node in nodes:
        cats = sorted({r.category for r in tracer.records if r.node == node})
        events.append(
            {
                "name": "process_name", "ph": "M", "pid": node, "tid": 0,
                "args": {"name": f"node{node}"},
            }
        )
        for tid, cat in enumerate(cats, start=1):
            lanes[(node, cat)] = tid
            events.append(
                {
                    "name": "thread_name", "ph": "M", "pid": node, "tid": tid,
                    "args": {"name": cat},
                }
            )
    for rec in tracer.records:
        args = {"span_id": rec.span_id, "parent_id": rec.parent_id}
        if rec.meta is not None:
            args["meta"] = str(rec.meta)
        events.append(
            {
                "name": rec.detail or rec.category,
                "cat": rec.category,
                "ph": "X",
                "ts": rec.start,
                "dur": rec.duration,
                "pid": rec.node,
                "tid": lanes[(rec.node, rec.category)],
                "args": args,
            }
        )
    return events


def export_chrome_trace(
    tracer, path: Optional[str] = None, counters: Optional[Sequence[dict]] = None
) -> str:
    """Serialize the tracer as Chrome trace JSON; optionally write it.

    ``counters`` appends pre-built counter events (see
    :func:`counter_track_events`) after the span events.  Returns the
    JSON text (guaranteed to round-trip through ``json.loads``)."""
    events = chrome_trace_events(tracer)
    if counters:
        events.extend(counters)
    text = json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
    if path is not None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as fh:
            fh.write(text)
    return text
