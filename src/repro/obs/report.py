"""Per-scheme observability report: where did the time go?

Runs one traced transfer per (scheme, size) and breaks the operation down
into the quantities the paper's Figures 2/3 discuss qualitatively:

* **copy us** — CPU copy time (sender pack + receiver unpack),
* **wire us** — HCA injection time on the sender,
* **overlap %** — the fraction of copy time hidden behind wire activity
  (the pipelining win of BC-SPUP / RWG-UP),
* **reg us** — registration/deregistration time on either side,
* **descr** — descriptors processed by both HCAs.

Driven by the ``python -m repro.obs report`` CLI; also usable as a
library (:func:`measure_breakdown`, :func:`run_report`).  Imports the MPI
stack lazily so ``repro.obs`` itself stays import-cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.obs.spans import overlap_us

__all__ = [
    "SchemeBreakdown",
    "format_health",
    "health_counters",
    "measure_breakdown",
    "report_json",
    "run_report",
    "workload_for",
]

#: schemes the report covers by default (the figures' line-up)
DEFAULT_SCHEMES = ("generic", "bc-spup", "rwg-up", "multi-w")

#: bytes per column of the paper's 128 x 4096 int array
_COLUMN_BYTES = 128 * 4


@dataclass(frozen=True)
class SchemeBreakdown:
    """One row of the report table."""

    scheme: str
    nbytes: int
    total_us: float
    copy_us: float
    wire_us: float
    overlap_us: float
    reg_us: float
    descriptors: int

    @property
    def overlap_pct(self) -> float:
        """Share of copy time hidden behind wire activity."""
        return 100.0 * self.overlap_us / self.copy_us if self.copy_us else 0.0


def workload_for(workload: str, nbytes: int):
    """Map a figure name + target message size to a Workload.

    ``fig02``/``fig08``/``fig09`` use the column-vector datatype (the
    message is ``512 * cols`` bytes); ``fig11`` uses the Figure 10 struct
    (smallest power-of-two last block reaching ``nbytes``).
    """
    from repro.bench.workloads import column_vector, fig10_struct

    if workload in ("fig02", "fig08", "fig09"):
        return column_vector(max(1, nbytes // _COLUMN_BYTES))
    if workload == "fig11":
        last = 1
        while fig10_struct(last).nbytes < nbytes and last < 1 << 20:
            last *= 2
        return fig10_struct(last)
    raise ValueError(
        f"unknown workload {workload!r}; choose fig02, fig08, fig09 or fig11"
    )


def measure_breakdown(
    scheme: str,
    dt,
    *,
    count: int = 1,
    scheme_options: Optional[dict] = None,
) -> tuple[SchemeBreakdown, object]:
    """Run one traced 2-rank transfer of (dt, count) under ``scheme``.

    Returns ``(breakdown, cluster)`` — the cluster gives callers access to
    the tracer and metrics registry for export.
    """
    from repro.ib.costmodel import MB
    from repro.mpi.world import Cluster

    cluster = Cluster(
        2,
        scheme=scheme,
        scheme_options=scheme_options or {},
        memory_per_rank=512 * MB,
        trace=True,
    )
    span = dt.flatten(count).span + abs(dt.lb) + 64

    def rank0(mpi):
        buf = mpi.alloc(span)
        yield from mpi.send(buf, dt, count, dest=1, tag=0)
        return mpi.now

    def rank1(mpi):
        buf = mpi.alloc(span)
        yield from mpi.recv(buf, dt, count, source=0, tag=0)
        return mpi.now

    result = cluster.run([rank0, rank1])
    tracer = cluster.tracer
    metrics = cluster.metrics
    copy_us = (
        tracer.total_time("pack", node=0)
        + tracer.total_time("user-pack", node=0)
        + tracer.total_time("unpack", node=1)
    )
    # wire intervals are recorded on the sender; the receiver's inbound
    # DMA mirrors them one switch latency later
    hidden = overlap_us(tracer, ("pack", 0), ("wire", 0)) + overlap_us(
        tracer, ("unpack", 1), ("wire", 0)
    )
    breakdown = SchemeBreakdown(
        scheme=scheme,
        nbytes=dt.size * count,
        total_us=result.time_us,
        copy_us=copy_us,
        wire_us=tracer.total_time("wire", node=0),
        overlap_us=hidden,
        reg_us=tracer.total_time("reg"),
        descriptors=int(metrics.value("ib.descriptors")),
    )
    return breakdown, cluster


#: counters surfaced in the report's health section (fault injection,
#: PR "repro.faults"): only shown when at least one fired
_HEALTH_EXACT = (
    "rndv.timeouts",
    "rndv.retransmits",
    "reg.retries",
    "scheme.fallbacks",
)


def health_counters(metrics) -> dict:
    """Nonzero fault/retry counters: {name: cluster-wide total}.

    Empty in fault-free runs (the counters are never created), so the
    report's health section only appears under an active fault profile
    (e.g. ``REPRO_FAULT_PROFILE=lossy``).
    """
    totals: dict = {}
    for name in metrics.names():
        if name.startswith(("faults.", "qp.")) or name in _HEALTH_EXACT:
            value = metrics.value(name)
            if value:
                totals[name] = totals.get(name, 0.0) + value
    return totals


def format_health(totals: dict) -> str:
    """Render accumulated health counters as an aligned table."""
    header = f"{'fault/retry counter':<24} {'total':>10}"
    lines = ["health (fault injection active)", header, "-" * len(header)]
    for name in sorted(totals):
        lines.append(f"{name:<24} {totals[name]:>10g}")
    return "\n".join(lines)


def format_table(rows: Sequence[SchemeBreakdown]) -> str:
    """Render breakdown rows as an aligned plain-text table."""
    header = (
        f"{'scheme':<10} {'bytes':>9} {'total_us':>10} {'copy_us':>9} "
        f"{'wire_us':>9} {'overlap%':>8} {'reg_us':>8} {'descr':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.scheme:<10} {r.nbytes:>9} {r.total_us:>10.1f} "
            f"{r.copy_us:>9.1f} {r.wire_us:>9.1f} {r.overlap_pct:>7.1f}% "
            f"{r.reg_us:>8.1f} {r.descriptors:>7}"
        )
    return "\n".join(lines)


def report_json(
    workload: str,
    sizes: Sequence[int],
    rows: Sequence[SchemeBreakdown],
    health: dict,
) -> dict:
    """The machine-readable report: same data as the text tables.

    This is the one schema external tooling (and the run ledger) reads;
    see docs/OBSERVABILITY.md for the field list.
    """
    from dataclasses import asdict

    return {
        "schema": 1,
        "workload": workload,
        "sizes": list(sizes),
        "rows": [
            {**asdict(r), "overlap_pct": r.overlap_pct} for r in rows
        ],
        "health": dict(health),
    }


def run_report(
    workload: str = "fig09",
    sizes: Sequence[int] = (65536,),
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    chrome_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    fmt: str = "text",
    print_fn=print,
) -> list[SchemeBreakdown]:
    """Run the breakdown for every (size, scheme) and print the table.

    ``chrome_out`` writes one Chrome trace JSON per scheme/size
    (``<prefix>.<scheme>.<size>.json``); ``metrics_out`` writes the last
    run's metric snapshot as CSV.  ``fmt="json"`` prints one JSON
    document (:func:`report_json`) instead of the text tables.
    """
    import json as _json

    from repro.obs.chrome import export_chrome_trace

    if fmt not in ("text", "json"):
        raise ValueError(f"unknown report format {fmt!r}; use text or json")
    rows: list[SchemeBreakdown] = []
    last_cluster = None
    health: dict = {}
    for nbytes in sizes:
        wl = workload_for(workload, nbytes)
        size_rows = []
        for scheme in schemes:
            breakdown, cluster = measure_breakdown(scheme, wl.datatype)
            size_rows.append(breakdown)
            last_cluster = cluster
            for name, value in health_counters(cluster.metrics).items():
                health[name] = health.get(name, 0.0) + value
            if chrome_out:
                prefix = chrome_out[:-5] if chrome_out.endswith(".json") else chrome_out
                export_chrome_trace(
                    cluster.tracer, f"{prefix}.{scheme}.{nbytes}.json"
                )
        if fmt == "text":
            print_fn(
                f"workload {workload}: {wl.name} ({wl.nbytes} bytes/element)"
            )
            print_fn(format_table(size_rows))
            print_fn("")
        rows.extend(size_rows)
    if fmt == "json":
        print_fn(_json.dumps(
            report_json(workload, sizes, rows, health),
            indent=2,
            sort_keys=True,
        ))
    elif health:
        print_fn(format_health(health))
        print_fn("")
    if metrics_out and last_cluster is not None:
        last_cluster.metrics.to_csv(metrics_out)
    return rows
