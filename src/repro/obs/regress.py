"""Regression explainer: *which category moved*, not just "it got slower".

When the bench gate (:mod:`repro.bench.gate`) finds a metric worse than
baseline, detection alone says nothing actionable.  This module re-runs
the critical-path profiler (:func:`repro.obs.profile.critical_path`, via
:func:`~repro.obs.profile.profile_transfer`) on each regressed cell and
diffs the per-category attribution — copy / wire / descriptor /
registration / resource-wait / protocol-wait — against the ledger's
last-good record (:func:`repro.obs.ledger.last_good`).  The output names
the moved category and its magnitude in simulated microseconds, e.g.::

    fig08/bc-spup/cols=64 (191.5 us vs last-good 166.2 us)
      moved: copy +25.1 us (+52.3%)  [34.1 -> 59.2 us on the critical path]

Gate metric keys look like ``fig08/<scheme>/cols=<n>``;
:func:`parse_metric_key` recovers the cell coordinates.  The wall-clock
``engine/<bench>/events_per_sec`` metrics have no simulated critical
path, but when both the current run and the last-good ledger record
carry a ``host_profile`` section (per-category host ns/event from
:mod:`repro.obs.hostprof`) the explainer diffs *that* instead and names
the host category that moved::

    engine/bandwidth/events_per_sec: host time 7282.00 -> 9150.00 ns/ev
      moved: pack-unpack +1790.10 ns/ev (+612.3%)

Keys that can be explained neither way are reported as unexplainable
rather than silently dropped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.obs.profile import CATEGORIES

__all__ = [
    "CategoryMove",
    "RegressionExplanation",
    "cell_attribution",
    "collect_attributions",
    "explain_regressions",
    "format_regressions",
    "parse_metric_key",
]

#: bytes per column of the paper's 128 x 4096 int array (the gate's
#: fig08/fig09 cells sweep column counts of this vector datatype)
_COLUMN_BYTES = 128 * 4

_KEY_RE = re.compile(r"^(fig\d+)/([^/]+)/cols=(\d+)$")

#: wall-clock engine-throughput gate keys — explainable via the host-time
#: profile instead of the (nonexistent) simulated critical path
_ENGINE_KEY_RE = re.compile(r"^engine/([^/]+)/events_per_sec$")


def parse_metric_key(key: str) -> Optional[tuple[str, str, int]]:
    """``"fig08/bc-spup/cols=64"`` -> ``("fig08", "bc-spup", 64)``.

    Returns None for keys that do not name a profilable sweep cell
    (engine throughput, future metric families).
    """
    m = _KEY_RE.match(key)
    if m is None:
        return None
    return m.group(1), m.group(2), int(m.group(3))


def cell_attribution(figure: str, scheme: str, cols: int) -> dict:
    """Critical-path attribution of one profiled transfer of the cell's
    datatype: ``{"total_us": ..., "copy": ..., "wire": ..., ...}``.

    The gate metrics are multi-iteration medians while this profiles a
    single transfer, so absolute numbers differ; the *per-category
    deltas* between two attributions of the same cell isolate what a
    cost-model or protocol change moved.
    """
    from repro.obs.profile import profile_transfer
    from repro.obs.report import workload_for

    wl = workload_for(figure, cols * _COLUMN_BYTES)
    attr, _cluster = profile_transfer(scheme, wl.datatype)
    out = {"total_us": attr.total_us}
    for cat in CATEGORIES:
        out[cat] = attr.categories.get(cat, 0.0)
    return out


def collect_attributions(keys: Iterable[str]) -> dict:
    """Attribution for every parseable metric key: ``{key: attribution}``."""
    out: dict = {}
    for key in keys:
        parsed = parse_metric_key(key)
        if parsed is None:
            continue
        out[key] = cell_attribution(*parsed)
    return out


@dataclass(frozen=True)
class CategoryMove:
    """One category's attributed time, before vs after."""

    category: str
    before_us: float
    after_us: float

    @property
    def delta_us(self) -> float:
        return self.after_us - self.before_us

    @property
    def pct(self) -> float:
        """Relative change vs the before value (0 when unmeasurable)."""
        return 100.0 * self.delta_us / self.before_us if self.before_us else 0.0


@dataclass
class RegressionExplanation:
    """Per-cell attribution diff for one regressed gate metric."""

    key: str
    moves: list = field(default_factory=list)  #: CategoryMove, |delta| desc
    total_before_us: float = 0.0
    total_after_us: float = 0.0
    #: set when the cell could not be attributed (non-cell metric, or no
    #: last-good attribution in the ledger)
    reason: Optional[str] = None
    #: measurement unit of the totals/moves: simulated critical-path
    #: diffs are in ``us``; engine-key host-time diffs are in ``ns/ev``
    #: (the CategoryMove ``*_us`` field names are historical)
    unit: str = "us"

    @property
    def moved(self) -> Optional[CategoryMove]:
        """The single category that moved the most (None if unexplained)."""
        return self.moves[0] if self.moves else None


def _explain_engine_key(
    key: str,
    bench: str,
    host_now: Optional[dict],
    last_good_record: Optional[dict],
) -> RegressionExplanation:
    """Host-time diff for one ``engine/<bench>/events_per_sec`` key.

    Falls back to an unexplained entry (keeping the historical "no
    critical path" wording) when either side lacks host-profile data.
    """
    from repro.obs.hostprof import HOST_CATEGORIES

    now = (host_now or {}).get(bench)
    now_ns = now.get("ns_per_event") if isinstance(now, dict) else None
    if not isinstance(now_ns, dict):
        return RegressionExplanation(
            key=key,
            reason="not a sweep cell (no critical path to attribute; "
            "no host profile in this run either)",
        )
    ref = (last_good_record or {}).get("host_profile", {})
    before = ref.get(bench) if isinstance(ref, dict) else None
    before_ns = before.get("ns_per_event") if isinstance(before, dict) else None
    if not isinstance(before_ns, dict):
        return RegressionExplanation(
            key=key,
            total_after_us=float(now_ns.get("total", 0.0)),
            reason="not a sweep cell (no critical path to attribute), "
            "and no last-good host profile in the ledger yet",
            unit="ns/ev",
        )
    moves = [
        CategoryMove(
            category=cat,
            before_us=float(before_ns.get(cat, 0.0)),
            after_us=float(now_ns.get(cat, 0.0)),
        )
        for cat in HOST_CATEGORIES
    ]
    moves.sort(key=lambda m: -abs(m.delta_us))
    return RegressionExplanation(
        key=key,
        moves=moves,
        total_before_us=float(before_ns.get("total", 0.0)),
        total_after_us=float(now_ns.get("total", 0.0)),
        unit="ns/ev",
    )


def explain_regressions(
    regressed_keys: Sequence[str],
    now_attribution: dict,
    last_good_record: Optional[dict],
    host_now: Optional[dict] = None,
) -> list[RegressionExplanation]:
    """Diff each regressed cell's fresh attribution against the ledger.

    ``now_attribution`` is the current run's ``{key: attribution}`` (the
    gate computes it for every cell while appending its own ledger
    record); ``last_good_record`` is the newest passing ledger record
    carrying an ``attribution`` section.  ``host_now`` is the current
    run's host-profile section (``{bench: {"ns_per_event": ...}}``) —
    with it, regressed ``engine/*`` throughput keys are explained by
    diffing per-category host ns/event against the last-good record's
    ``host_profile`` instead of being reported unexplainable.
    """
    ref = (last_good_record or {}).get("attribution", {})
    out: list[RegressionExplanation] = []
    for key in regressed_keys:
        if parse_metric_key(key) is None:
            eng = _ENGINE_KEY_RE.match(key)
            if eng is not None:
                out.append(_explain_engine_key(
                    key, eng.group(1), host_now, last_good_record
                ))
                continue
            out.append(RegressionExplanation(
                key=key,
                reason="not a sweep cell (no critical path to attribute)",
            ))
            continue
        now = now_attribution.get(key) or cell_attribution(
            *parse_metric_key(key)  # type: ignore[misc]
        )
        before = ref.get(key)
        if not isinstance(before, dict):
            out.append(RegressionExplanation(
                key=key,
                total_after_us=now.get("total_us", 0.0),
                reason="no last-good attribution in the ledger yet",
            ))
            continue
        moves = [
            CategoryMove(
                category=cat,
                before_us=float(before.get(cat, 0.0)),
                after_us=float(now.get(cat, 0.0)),
            )
            for cat in CATEGORIES
        ]
        moves.sort(key=lambda m: -abs(m.delta_us))
        out.append(RegressionExplanation(
            key=key,
            moves=moves,
            total_before_us=float(before.get("total_us", 0.0)),
            total_after_us=float(now.get("total_us", 0.0)),
        ))
    return out


def format_regressions(
    explanations: Sequence[RegressionExplanation],
    last_good_record: Optional[dict] = None,
) -> str:
    """Render explanations as plain text (also readable as markdown)."""
    lines = []
    if last_good_record is not None:
        sha = (last_good_record.get("sha") or "unknown")[:12]
        lines.append(
            f"regression explanation (vs last-good ledger record "
            f"sha={sha}, version={last_good_record.get('version')}):"
        )
    else:
        lines.append("regression explanation:")
    for exp in explanations:
        if exp.reason is not None:
            lines.append(f"  {exp.key}: unexplained — {exp.reason}")
            continue
        unit = exp.unit
        label = "critical path" if unit == "us" else "host time"
        total_delta = exp.total_after_us - exp.total_before_us
        lines.append(
            f"  {exp.key}: {label} {exp.total_before_us:.2f} -> "
            f"{exp.total_after_us:.2f} {unit} ({total_delta:+.2f} {unit})"
        )
        top = exp.moved
        if top is not None:
            lines.append(
                f"    moved: {top.category} {top.delta_us:+.2f} {unit} "
                f"({top.pct:+.1f}%)  "
                f"[{top.before_us:.2f} -> {top.after_us:.2f} {unit}]"
            )
        for mv in exp.moves[1:]:
            if abs(mv.delta_us) < 1e-9:
                continue
            lines.append(
                f"           {mv.category} {mv.delta_us:+.2f} {unit} "
                f"({mv.pct:+.1f}%)"
            )
    return "\n".join(lines)
