"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Every layer of the stack (verbs, HCA, registration, schemes, MPI
protocol) records what it *did* into a shared :class:`MetricsRegistry`
owned by the :class:`~repro.mpi.world.Cluster`.  Instruments are keyed by
``(name, node)``; ``node=None`` is a cluster-wide instrument.

All values are either event counts, byte counts, or **simulated**
microseconds passed in by the caller — this module never consults the
wall clock (enforced by ``tests/obs/test_no_wallclock.py``).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_US_BUCKETS",
    "DEFAULT_BYTE_BUCKETS",
]

#: fixed histogram buckets for simulated-microsecond durations
DEFAULT_US_BUCKETS = (1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
                      10000.0, 50000.0)
#: fixed histogram buckets for byte sizes (powers of four up to 16 MB)
DEFAULT_BYTE_BUCKETS = (64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0,
                        262144.0, 1048576.0, 4194304.0, 16777216.0)


@dataclass
class Counter:
    """Monotonically increasing event/byte count."""

    name: str
    node: Optional[int] = None
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Instantaneous level (queue depth, pinned bytes); tracks its peak."""

    name: str
    node: Optional[int] = None
    value: float = 0.0
    max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


@dataclass
class Histogram:
    """Fixed-bucket histogram of simulated durations or sizes.

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    counts overflow observations.
    """

    name: str
    buckets: Sequence[float]
    node: Optional[int] = None
    counts: list = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self):
        self.buckets = tuple(sorted(self.buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name}: needs at least one bucket")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile (0-100) from the buckets.

        Linear interpolation within the bucket containing the rank, with
        the bucket's lower bound at its cumulative start.  Observations in
        the overflow slot report the last finite bound (the histogram
        cannot see beyond it).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile {p!r} out of range [0, 100]")
        if self.count == 0:
            return 0.0
        rank = p / 100.0 * self.count
        cumulative = 0.0
        lower = 0.0
        for i, bound in enumerate(self.buckets):
            if self.counts[i]:
                if cumulative + self.counts[i] >= rank:
                    frac = max(0.0, rank - cumulative) / self.counts[i]
                    return lower + frac * (bound - lower)
                cumulative += self.counts[i]
            lower = bound
        return self.buckets[-1]  # overflow observations clamp here


class MetricsRegistry:
    """Factory and store for all instruments, keyed by (name, node)."""

    def __init__(self):
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- instrument factories (get-or-create) ---------------------------

    def counter(self, name: str, node: Optional[int] = None) -> Counter:
        key = (name, node)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter(name, node)
        return inst

    def gauge(self, name: str, node: Optional[int] = None) -> Gauge:
        key = (name, node)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge(name, node)
        return inst

    def histogram(
        self,
        name: str,
        node: Optional[int] = None,
        buckets: Sequence[float] = DEFAULT_US_BUCKETS,
    ) -> Histogram:
        key = (name, node)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram(name, buckets, node)
        return inst

    # -- aggregation -----------------------------------------------------

    def value(self, name: str) -> float:
        """Sum of a counter across all nodes (0.0 if never touched)."""
        return sum(c.value for (n, _node), c in self._counters.items() if n == name)

    def counter_values(self, name: str) -> dict:
        """Per-node counter values: {node: value}."""
        return {
            node: c.value
            for (n, node), c in self._counters.items()
            if n == name
        }

    def names(self) -> list[str]:
        keys = (
            set(n for n, _ in self._counters)
            | set(n for n, _ in self._gauges)
            | set(n for n, _ in self._histograms)
        )
        return sorted(keys)

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Every instrument as one flat row (stable ordering)."""
        rows = []
        for (name, node), c in sorted(
            self._counters.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
        ):
            rows.append(
                {"type": "counter", "name": name, "node": node, "value": c.value}
            )
        for (name, node), g in sorted(
            self._gauges.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
        ):
            rows.append(
                {
                    "type": "gauge", "name": name, "node": node,
                    "value": g.value, "max": g.max_value,
                }
            )
        for (name, node), h in sorted(
            self._histograms.items(), key=lambda kv: (kv[0][0], repr(kv[0][1]))
        ):
            rows.append(
                {
                    "type": "histogram", "name": name, "node": node,
                    "value": h.total, "count": h.count, "mean": h.mean,
                    "p50": h.percentile(50), "p95": h.percentile(95),
                    "p99": h.percentile(99),
                    "buckets": list(zip(list(h.buckets) + ["+inf"], h.counts)),
                }
            )
        return rows

    def render_text(self) -> str:
        """Plain-text snapshot, one instrument per line."""
        lines = []
        for row in self.snapshot():
            where = "cluster" if row["node"] is None else f"node{row['node']}"
            if row["type"] == "counter":
                lines.append(f"{row['name']}{{{where}}} {row['value']:g}")
            elif row["type"] == "gauge":
                lines.append(
                    f"{row['name']}{{{where}}} {row['value']:g} (max {row['max']:g})"
                )
            else:
                lines.append(
                    f"{row['name']}{{{where}}} count={row['count']} "
                    f"sum={row['value']:g} mean={row['mean']:g} "
                    f"p50={row['p50']:g} p95={row['p95']:g} p99={row['p99']:g}"
                )
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        """Write the snapshot as CSV: type,name,node,value,extra."""
        import csv
        import os

        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["type", "name", "node", "value", "extra"])
            for row in self.snapshot():
                if row["type"] == "gauge":
                    extra = f"max={row['max']:g}"
                elif row["type"] == "histogram":
                    extra = (
                        f"count={row['count']} p50={row['p50']:g} "
                        f"p95={row['p95']:g} p99={row['p99']:g}"
                    )
                else:
                    extra = ""
                writer.writerow(
                    [
                        row["type"], row["name"],
                        "" if row["node"] is None else row["node"],
                        row["value"], extra,
                    ]
                )
