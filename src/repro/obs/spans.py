"""Interval and span-tree queries over a :class:`~repro.simulator.trace.Tracer`.

The sweep-line interval arithmetic that used to be duplicated across
``bench/overlap.py`` lives here, generalized so any two (category, node)
activity sets can be intersected — e.g. receiver unpack time against
sender wire time.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

__all__ = ["category_intervals", "merge_intervals", "overlap_us", "span_tree"]

#: (category, node) selector; node None selects all nodes
Selector = Tuple[str, Optional[int]]


def merge_intervals(intervals: Sequence[tuple]) -> list[tuple]:
    """Merge overlapping/touching (start, end) intervals into a sorted
    disjoint list."""
    merged: list[tuple] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            if end > merged[-1][1]:
                merged[-1] = (merged[-1][0], end)
        else:
            merged.append((start, end))
    return merged


def category_intervals(
    tracer, category: str, node: Optional[int] = None
) -> list[tuple]:
    """Merged activity intervals of one category on one node (or all)."""
    return merge_intervals(
        [(r.start, r.end) for r in tracer.iter_category(category, node)]
    )


def overlap_us(tracer, a: Selector, b: Selector) -> float:
    """Simulated time during which both selectors were active.

    Each selector is ``(category, node)``; pass ``node=None`` to pool all
    nodes.  Intervals within each selector are merged first, so the result
    is a true intersection length.
    """
    ia = category_intervals(tracer, *a)
    ib = category_intervals(tracer, *b)
    i = j = 0
    total = 0.0
    while i < len(ia) and j < len(ib):
        lo = max(ia[i][0], ib[j][0])
        hi = min(ia[i][1], ib[j][1])
        if lo < hi:
            total += hi - lo
        if ia[i][1] <= ib[j][1]:
            i += 1
        else:
            j += 1
    return total


def span_tree(tracer) -> dict:
    """Parent-to-children index of the tracer's span hierarchy.

    Returns ``{parent_id: [TraceRecord, ...]}``; key 0 holds root spans.
    """
    tree: dict = {}
    for rec in tracer.records:
        tree.setdefault(rec.parent_id, []).append(rec)
    return tree
