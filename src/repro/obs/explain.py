"""Cost-model explainer: predicted vs simulated critical-path costs.

Every scheme exposes ``predict_profile(cm, flat, nbytes)`` — a closed-form
:class:`~repro.ib.costmodel.CostModel` prediction of how its critical path
splits across the attribution categories.  This module replays a measured
:class:`~repro.obs.profile.Attribution` against that prediction and
reports, per category, predicted microseconds, simulated microseconds,
and the delta — flagging any category whose divergence exceeds
:data:`DIVERGENCE_THRESHOLD` of the simulated end-to-end latency.

A flag is a *finding*, not a failure: it marks where the analytical model
and the discrete-event simulation disagree (pipeline fill effects,
contention the closed form cannot see, cache hits the prediction assumed
cold, ...), which is exactly the information a performance model needs to
improve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.obs.profile import CATEGORIES, Attribution

__all__ = [
    "CategoryDelta",
    "DIVERGENCE_THRESHOLD",
    "explain",
    "format_explanation",
    "predict",
]

#: |predicted - simulated| above this fraction of the simulated
#: end-to-end latency flags the category as divergent
DIVERGENCE_THRESHOLD = 0.10


@dataclass(frozen=True)
class CategoryDelta:
    """Predicted-vs-simulated comparison for one category."""

    category: str
    predicted_us: float
    simulated_us: float
    #: divergence normalized by the simulated end-to-end latency
    divergence: float

    @property
    def delta_us(self) -> float:
        return self.predicted_us - self.simulated_us

    @property
    def flagged(self) -> bool:
        return self.divergence > DIVERGENCE_THRESHOLD


def predict(scheme: str, cm, flat, nbytes: int) -> dict:
    """The scheme's closed-form prediction, normalized over CATEGORIES."""
    from repro.schemes import _FACTORIES

    raw = _FACTORIES[scheme].predict_profile(cm, flat, nbytes)
    return {c: float(raw.get(c, 0.0)) for c in CATEGORIES}


def explain(
    scheme: str, cm, flat, nbytes: int, attribution: Attribution
) -> list[CategoryDelta]:
    """Compare a measured attribution against the scheme's prediction."""
    predicted = predict(scheme, cm, flat, nbytes)
    total = max(attribution.total_us, 1e-12)
    deltas = []
    for category in CATEGORIES:
        pred = predicted[category]
        sim = attribution.categories.get(category, 0.0)
        deltas.append(
            CategoryDelta(
                category=category,
                predicted_us=pred,
                simulated_us=sim,
                divergence=abs(pred - sim) / total,
            )
        )
    return deltas


def format_explanation(deltas: Sequence[CategoryDelta]) -> str:
    """Render the per-category comparison as an aligned text table."""
    header = (
        f"{'category':<15} {'predicted':>10} {'simulated':>10} "
        f"{'delta_us':>9} {'diverg':>7}"
    )
    lines = ["cost-model explanation (flag: >10% of end-to-end)", header,
             "-" * len(header)]
    for d in deltas:
        flag = " !" if d.flagged else ""
        lines.append(
            f"{d.category:<15} {d.predicted_us:>10.2f} {d.simulated_us:>10.2f} "
            f"{d.delta_us:>+9.2f} {100.0 * d.divergence:>6.1f}%{flag}"
        )
    pred_total = sum(d.predicted_us for d in deltas)
    sim_total = sum(d.simulated_us for d in deltas)
    lines.append(
        f"{'total':<15} {pred_total:>10.2f} {sim_total:>10.2f} "
        f"{pred_total - sim_total:>+9.2f}"
    )
    return "\n".join(lines)
