"""CLI: ``python -m repro.obs {report,profile,hostprof,trends}``.

``report`` prints the per-scheme time breakdown table (``--format json``
for the machine-readable document) and optionally exports Chrome trace
JSON and a metrics CSV snapshot.  ``profile`` runs the critical-path
profiler: a ranked bottleneck table per scheme, the cost-model
explanation (predicted vs simulated per category), and an annotated
Chrome trace with resource counter tracks.  ``hostprof`` runs the
host-time profiler: ranked ns/event hotspot tables per scheme,
collapsed stacks for flamegraphs, host-time counter tracks in the
Chrome trace, and an optional cProfile deep mode.  ``trends`` renders
the append-only run ledger as per-metric trajectory tables with
sparklines and can emit a self-contained offline HTML dashboard.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.report import DEFAULT_SCHEMES, run_report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Observability reports for the simulated MPI/IB stack",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    rep = sub.add_parser(
        "report", help="per-scheme copy/wire/overlap/registration breakdown"
    )
    rep.add_argument(
        "--workload",
        default="fig09",
        choices=("fig02", "fig08", "fig09", "fig11"),
        help="figure workload supplying the datatype (default: fig09)",
    )
    rep.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=[65536],
        help="target message sizes in bytes (default: 65536)",
    )
    rep.add_argument(
        "--schemes",
        nargs="+",
        default=list(DEFAULT_SCHEMES),
        help=f"schemes to compare (default: {' '.join(DEFAULT_SCHEMES)})",
    )
    rep.add_argument(
        "--chrome-trace",
        metavar="PREFIX",
        default=None,
        help="write Chrome trace JSON per scheme/size to PREFIX.<scheme>.<size>.json",
    )
    rep.add_argument(
        "--metrics-csv",
        metavar="PATH",
        default=None,
        help="write the final run's metric snapshot as CSV",
    )
    rep.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format: aligned text tables (default) or one JSON "
        "document with the same data",
    )
    prof = sub.add_parser(
        "profile",
        help="critical-path bottleneck attribution + cost-model explanation",
    )
    prof.add_argument(
        "workload",
        choices=("fig02", "fig08", "fig09", "fig11"),
        help="figure workload supplying the datatype",
    )
    prof.add_argument(
        "schemes",
        nargs="*",
        default=[],
        help=f"schemes to profile (default: {' '.join(DEFAULT_SCHEMES)})",
    )
    prof.add_argument(
        "--size",
        type=int,
        default=65536,
        help="target message size in bytes (default: 65536)",
    )
    prof.add_argument(
        "--chrome-trace",
        metavar="PREFIX",
        default=None,
        help=(
            "write an annotated Chrome trace (spans + resource counter "
            "tracks) per scheme to PREFIX.<scheme>.<size>.json"
        ),
    )
    host = sub.add_parser(
        "hostprof",
        help="host-time attribution: where engine wall-clock ns/event go",
    )
    host.add_argument(
        "workload",
        choices=("fig02", "fig08", "fig09", "fig11"),
        help="figure workload supplying the datatype",
    )
    host.add_argument(
        "schemes",
        nargs="*",
        default=[],
        help="schemes to host-profile (default: all)",
    )
    host.add_argument(
        "--size",
        type=int,
        default=65536,
        help="target message size in bytes (default: 65536)",
    )
    host.add_argument(
        "--iters",
        type=int,
        default=4,
        help="transfers per scheme (amortizes cold caches; default: 4)",
    )
    host.add_argument(
        "--deep",
        action="store_true",
        help="also print a function-level cProfile listing per scheme",
    )
    host.add_argument(
        "--chrome-trace",
        metavar="PREFIX",
        default=None,
        help=(
            "write a Chrome trace with host-time counter tracks per "
            "scheme to PREFIX.<scheme>.<size>.json"
        ),
    )
    host.add_argument(
        "--collapsed",
        metavar="PREFIX",
        default=None,
        help=(
            "write collapsed stacks for flamegraph.pl / speedscope to "
            "PREFIX.<scheme>.collapsed"
        ),
    )
    host.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write all snapshots as one JSON document",
    )
    host.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="write a markdown top-3 summary (the CI step-summary table)",
    )
    host.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help=(
            "write the full CI bundle (hotspots.txt, stacks, traces, "
            "hostprof.json, summary.md) under DIR; overrides the other "
            "output options"
        ),
    )
    trd = sub.add_parser(
        "trends",
        help="per-metric trajectories over the run ledger (+ dashboard)",
    )
    trd.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="ledger file to read (default: results/ledger/ledger.jsonl, "
        "honouring $REPRO_LEDGER_DIR / $REPRO_RESULTS_DIR)",
    )
    trd.add_argument(
        "--html",
        metavar="PATH",
        default=None,
        help="also write a self-contained offline HTML dashboard here",
    )
    trd.add_argument(
        "--metric",
        metavar="GLOB",
        action="append",
        default=None,
        help="only metrics matching this glob (repeatable), "
        "e.g. --metric 'fig08/*'",
    )
    trd.add_argument(
        "--last",
        type=int,
        default=20,
        help="show at most the last N records per metric (default 20)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "report":
        run_report(
            workload=args.workload,
            sizes=args.sizes,
            schemes=args.schemes,
            chrome_out=args.chrome_trace,
            metrics_out=args.metrics_csv,
            fmt=args.format,
        )
        return 0
    if args.command == "trends":
        from repro.obs.trends import run_trends

        return run_trends(
            ledger=args.ledger,
            html=args.html,
            patterns=args.metric,
            last=args.last,
        )
    if args.command == "profile":
        from repro.obs.profile import run_profile

        run_profile(
            workload=args.workload,
            nbytes=args.size,
            schemes=args.schemes or None,
            chrome_out=args.chrome_trace,
        )
        return 0
    if args.command == "hostprof":
        from repro.obs.hostprof import run_hostprof, write_artifacts

        if args.artifacts:
            write_artifacts(
                args.artifacts,
                workload=args.workload,
                nbytes=args.size,
                schemes=args.schemes or None,
                iters=args.iters,
            )
        else:
            run_hostprof(
                workload=args.workload,
                nbytes=args.size,
                schemes=args.schemes or None,
                iters=args.iters,
                chrome_out=args.chrome_trace,
                collapsed_out=args.collapsed,
                json_out=args.json,
                markdown_out=args.markdown,
                deep=args.deep,
            )
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
