"""Observability: spans, metrics, and exporters for the whole stack.

Three pieces (see docs/OBSERVABILITY.md):

* **spans** — hierarchical trace intervals collected by
  :class:`~repro.simulator.trace.Tracer` (span/parent ids; the scheme
  layer opens one enclosing span per rendezvous operation), plus interval
  queries in :mod:`repro.obs.spans`;
* **metrics** — the :class:`~repro.obs.metrics.MetricsRegistry` of
  counters/gauges/histograms that the IB, registration, scheme and MPI
  layers record into (all values simulated-time or counts, never wall
  clock);
* **exporters** — Chrome trace-event JSON (:mod:`repro.obs.chrome`) and
  plain-text/CSV metric snapshots, driven from the ``python -m repro.obs``
  CLI (:mod:`repro.obs.report`);
* **critical-path profiler** — causal bottleneck attribution over the
  engine's provenance records (:mod:`repro.obs.profile`) and the
  predicted-vs-simulated cost explainer (:mod:`repro.obs.explain`); see
  docs/PROFILING.md.

This package deliberately avoids importing the simulator/MPI stack at
module level (only :mod:`repro.obs.report` and the profiled-run helpers
do, lazily via the CLI), so the instrumented layers can import it without
cycles.
"""

from repro.obs.chrome import (
    chrome_trace_events,
    counter_track_events,
    export_chrome_trace,
)
from repro.obs.explain import CategoryDelta, explain, format_explanation
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_US_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    CATEGORIES,
    Attribution,
    PathStep,
    Profiler,
    categorize,
    critical_path,
    format_bottlenecks,
)
from repro.obs.spans import (
    category_intervals,
    merge_intervals,
    overlap_us,
    span_tree,
)

__all__ = [
    "Attribution",
    "CATEGORIES",
    "CategoryDelta",
    "Counter",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_US_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PathStep",
    "Profiler",
    "categorize",
    "category_intervals",
    "chrome_trace_events",
    "counter_track_events",
    "critical_path",
    "explain",
    "export_chrome_trace",
    "format_bottlenecks",
    "format_explanation",
    "merge_intervals",
    "overlap_us",
    "span_tree",
]
