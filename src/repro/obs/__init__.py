"""Observability: spans, metrics, and exporters for the whole stack.

Three pieces (see docs/OBSERVABILITY.md):

* **spans** — hierarchical trace intervals collected by
  :class:`~repro.simulator.trace.Tracer` (span/parent ids; the scheme
  layer opens one enclosing span per rendezvous operation), plus interval
  queries in :mod:`repro.obs.spans`;
* **metrics** — the :class:`~repro.obs.metrics.MetricsRegistry` of
  counters/gauges/histograms that the IB, registration, scheme and MPI
  layers record into (all values simulated-time or counts, never wall
  clock);
* **exporters** — Chrome trace-event JSON (:mod:`repro.obs.chrome`) and
  plain-text/CSV metric snapshots, driven from the ``python -m repro.obs``
  CLI (:mod:`repro.obs.report`);
* **critical-path profiler** — causal bottleneck attribution over the
  engine's provenance records (:mod:`repro.obs.profile`) and the
  predicted-vs-simulated cost explainer (:mod:`repro.obs.explain`); see
  docs/PROFILING.md.
* **perf observatory** — the append-only run ledger
  (:mod:`repro.obs.ledger`), trajectory tables + offline HTML dashboard
  (:mod:`repro.obs.trends`), the gate-failure regression explainer
  (:mod:`repro.obs.regress`), and the live sweep telemetry stream
  (:mod:`repro.obs.live`).

This package deliberately avoids importing the simulator/MPI stack at
module level (only :mod:`repro.obs.report` and the profiled-run helpers
do, lazily via the CLI), so the instrumented layers can import it without
cycles.
"""

from repro.obs.chrome import (
    chrome_trace_events,
    counter_track_events,
    export_chrome_trace,
)
from repro.obs.explain import CategoryDelta, explain, format_explanation
from repro.obs.ledger import (
    append_record,
    last_good,
    ledger_path,
    make_record,
    read_ledger,
)
from repro.obs.live import LiveLog, open_live_log
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_US_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import (
    CATEGORIES,
    Attribution,
    PathStep,
    Profiler,
    categorize,
    critical_path,
    format_bottlenecks,
)
from repro.obs.regress import (
    CategoryMove,
    RegressionExplanation,
    explain_regressions,
    format_regressions,
)
from repro.obs.spans import (
    category_intervals,
    merge_intervals,
    overlap_us,
    span_tree,
)
from repro.obs.trends import (
    dashboard_html,
    format_trends,
    run_trends,
    sparkline,
    write_dashboard,
)

__all__ = [
    "Attribution",
    "CATEGORIES",
    "CategoryDelta",
    "CategoryMove",
    "Counter",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_US_BUCKETS",
    "Gauge",
    "Histogram",
    "LiveLog",
    "MetricsRegistry",
    "PathStep",
    "Profiler",
    "RegressionExplanation",
    "append_record",
    "categorize",
    "category_intervals",
    "chrome_trace_events",
    "counter_track_events",
    "critical_path",
    "dashboard_html",
    "explain",
    "explain_regressions",
    "export_chrome_trace",
    "format_bottlenecks",
    "format_explanation",
    "format_regressions",
    "format_trends",
    "last_good",
    "ledger_path",
    "make_record",
    "merge_intervals",
    "open_live_log",
    "overlap_us",
    "read_ledger",
    "run_trends",
    "span_tree",
    "sparkline",
    "write_dashboard",
]
