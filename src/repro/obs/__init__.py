"""Observability: spans, metrics, and exporters for the whole stack.

Three pieces (see docs/OBSERVABILITY.md):

* **spans** — hierarchical trace intervals collected by
  :class:`~repro.simulator.trace.Tracer` (span/parent ids; the scheme
  layer opens one enclosing span per rendezvous operation), plus interval
  queries in :mod:`repro.obs.spans`;
* **metrics** — the :class:`~repro.obs.metrics.MetricsRegistry` of
  counters/gauges/histograms that the IB, registration, scheme and MPI
  layers record into (all values simulated-time or counts, never wall
  clock);
* **exporters** — Chrome trace-event JSON (:mod:`repro.obs.chrome`) and
  plain-text/CSV metric snapshots, driven from the ``python -m repro.obs``
  CLI (:mod:`repro.obs.report`).

This package deliberately avoids importing the simulator/MPI stack at
module level (only :mod:`repro.obs.report` does, lazily via the CLI), so
the instrumented layers can import it without cycles.
"""

from repro.obs.chrome import chrome_trace_events, export_chrome_trace
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_US_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.spans import (
    category_intervals,
    merge_intervals,
    overlap_us,
    span_tree,
)

__all__ = [
    "Counter",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_US_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "category_intervals",
    "chrome_trace_events",
    "export_chrome_trace",
    "merge_intervals",
    "overlap_us",
    "span_tree",
]
