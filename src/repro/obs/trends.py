"""Performance trends over the run ledger: tables, sparklines, dashboard.

Reads the append-only ledger (:mod:`repro.obs.ledger`) and renders, per
metric key, the trajectory of values across recorded runs — newest last,
one row per record with its git sha, value, and delta vs the previous
record — plus a unicode sparkline of the whole series.  The same data
can be written as a fully self-contained offline HTML dashboard (inline
CSS + SVG only, no external resources, no JavaScript required to read
it).

Driven by ``python -m repro.obs trends``::

    python -m repro.obs trends                     # text tables
    python -m repro.obs trends --html dash.html    # + offline dashboard
    python -m repro.obs trends --metric 'fig08/*'  # filter keys
"""

from __future__ import annotations

import fnmatch
import html as _html
from datetime import datetime, timezone
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.obs.ledger import read_ledger

__all__ = [
    "dashboard_html",
    "format_trends",
    "metric_keys",
    "metric_trajectory",
    "record_metrics",
    "run_trends",
    "sparkline",
    "write_dashboard",
]

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """Unicode block sparkline of a numeric series (empty-safe)."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if hi - lo < 1e-12:
        return _BLOCKS[3] * len(vals)  # flat series: mid-height bar
    span = hi - lo
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, int((v - lo) / span * len(_BLOCKS)))]
        for v in vals
    )


def record_metrics(record: dict) -> dict:
    """Flatten one ledger record to ``{key: {value, unit, better}}``.

    Gate records carry a ``metrics`` section verbatim; selftest records
    expose their engine throughput under the same ``engine/<bench>/
    events_per_sec`` keys the gate uses, so one key space spans both.
    Records carrying a ``host_profile`` section (gate and selftest runs
    with host profiling on) additionally expose each host category's
    per-event cost as ``host/<bench>/<category>`` in ns/event — the
    trajectories that show *which* part of the host loop drifted.
    """
    out: dict = {}
    metrics = record.get("metrics")
    if isinstance(metrics, dict):
        for key, entry in metrics.items():
            if isinstance(entry, dict) and "value" in entry:
                out[key] = entry
    eps = record.get("events_per_sec")
    if isinstance(eps, dict):
        for name, value in eps.items():
            key = f"engine/{name}/events_per_sec"
            out.setdefault(
                key, {"value": value, "unit": "ev/s", "better": "higher"}
            )
    host = record.get("host_profile")
    if isinstance(host, dict):
        for bench, data in host.items():
            nspe = data.get("ns_per_event") if isinstance(data, dict) else None
            if not isinstance(nspe, dict):
                continue
            for cat, value in nspe.items():
                out.setdefault(
                    f"host/{bench}/{cat}",
                    {"value": value, "unit": "ns/ev", "better": "lower"},
                )
    return out


def metric_keys(records: Sequence[dict]) -> list[str]:
    """Every metric key appearing anywhere in the ledger, sorted."""
    keys: set = set()
    for rec in records:
        keys.update(record_metrics(rec))
    return sorted(keys)


def metric_trajectory(
    records: Sequence[dict], key: str
) -> list[tuple[dict, dict]]:
    """``[(record, metric_entry)]`` for records carrying ``key``, oldest
    first — the per-metric time series the tables and sparklines render."""
    out = []
    for rec in records:
        entry = record_metrics(rec).get(key)
        if entry is not None:
            out.append((rec, entry))
    return out


def _short_sha(record: dict) -> str:
    sha = record.get("sha")
    return sha[:7] if isinstance(sha, str) and sha else "-------"


def _stamp(record: dict) -> str:
    ts = record.get("timestamp")
    if not isinstance(ts, (int, float)):
        return "?"
    return datetime.fromtimestamp(ts, tz=timezone.utc).strftime(
        "%Y-%m-%d %H:%M"
    )


def _deltas(values: Sequence[float]) -> list[Optional[float]]:
    """Per-step relative change (fraction) vs the previous value."""
    out: list[Optional[float]] = [None]
    for prev, cur in zip(values, values[1:]):
        out.append((cur - prev) / prev if prev else None)
    return out


def format_trends(
    records: Sequence[dict],
    keys: Optional[Sequence[str]] = None,
    last: int = 20,
) -> str:
    """Render per-metric trajectory tables with sparklines as text."""
    if keys is None:
        keys = metric_keys(records)
    lines: list[str] = []
    first, latest = records[0], records[-1]
    lines.append(
        f"perf trends — {len(records)} ledger record(s), "
        f"{_stamp(first)} .. {_stamp(latest)} UTC"
    )
    for key in keys:
        traj = metric_trajectory(records, key)
        if not traj:
            continue
        traj = traj[-last:]
        values = [float(e["value"]) for _r, e in traj]
        unit = traj[-1][1].get("unit", "")
        better = traj[-1][1].get("better", "")
        lines.append("")
        lines.append(
            f"{key}  ({unit}, {better} is better)  {sparkline(values)}"
        )
        header = f"  {'sha':<9} {'when (UTC)':<17} {'value':>14} {'delta':>8}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for (rec, _e), value, delta in zip(traj, values, _deltas(values)):
            d = "" if delta is None else f"{delta * 100:+.1f}%"
            lines.append(
                f"  {_short_sha(rec):<9} {_stamp(rec):<17} "
                f"{value:>14.2f} {d:>8}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# offline HTML dashboard
# ----------------------------------------------------------------------

#: chart palette (see docs: validated default palette; light / dark pairs)
_CSS = """\
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  background: #fcfcfb; color: #0b0b0b;
  --surface-2: #f1f0ee; --ink-2: #52514e; --series-1: #2a78d6;
  --good: #008300; --bad: #e34948; --grid: #e4e3e0;
}
@media (prefers-color-scheme: dark) {
  body {
    background: #1a1a19; color: #ffffff;
    --surface-2: #242423; --ink-2: #c3c2b7; --series-1: #3987e5;
    --good: #33a033; --bad: #e66767; --grid: #3a3a38;
  }
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 10px; color: var(--ink-2);
     text-transform: uppercase; letter-spacing: .04em; }
.sub { color: var(--ink-2); margin: 0 0 18px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0 8px; }
.tile { background: var(--surface-2); border-radius: 8px;
        padding: 10px 16px; min-width: 120px; }
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: var(--ink-2); font-size: 12px; }
.badge { display: inline-block; border-radius: 99px; padding: 1px 10px;
         font-size: 12px; font-weight: 600; color: #fff; }
.badge.pass { background: var(--good); }
.badge.fail { background: var(--bad); }
.grid { display: grid; gap: 12px;
        grid-template-columns: repeat(auto-fill, minmax(300px, 1fr)); }
.card { background: var(--surface-2); border-radius: 8px; padding: 12px 14px; }
.card .name { font-size: 13px; font-weight: 600; word-break: break-all; }
.card .dir { color: var(--ink-2); font-size: 11px; }
.card .latest { font-size: 20px; font-weight: 600; margin: 4px 0 0; }
.card .latest small { font-size: 12px; font-weight: 400;
                      color: var(--ink-2); }
.card .delta { font-size: 12px; color: var(--ink-2); }
svg.spark { display: block; margin: 8px 0 2px; width: 100%; height: 48px; }
details { margin-top: 6px; }
summary { cursor: pointer; color: var(--ink-2); font-size: 12px; }
table { border-collapse: collapse; width: 100%; margin-top: 6px;
        font-size: 12px; font-variant-numeric: tabular-nums; }
th, td { text-align: right; padding: 2px 6px;
         border-bottom: 1px solid var(--grid); }
th:first-child, td:first-child { text-align: left; font-family: ui-monospace,
  SFMono-Regular, Menlo, monospace; }
th { color: var(--ink-2); font-weight: 500; }
"""


def _spark_svg(values: Sequence[float], width: int = 280, height: int = 48) -> str:
    """Inline SVG sparkline: 2px line, end-point marker, no axes."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    pad = 6
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    n = len(vals)
    xs = [
        pad + (width - 2 * pad) * (i / (n - 1) if n > 1 else 0.5)
        for i in range(n)
    ]
    ys = [height - pad - (height - 2 * pad) * ((v - lo) / span) for v in vals]
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    return (
        f'<svg class="spark" viewBox="0 0 {width} {height}" '
        f'preserveAspectRatio="none" role="img" '
        f'aria-label="trend of {n} runs">'
        f'<polyline points="{points}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{xs[-1]:.1f}" cy="{ys[-1]:.1f}" r="3.5" '
        f'fill="var(--series-1)"/></svg>'
    )


def _family(key: str) -> str:
    return key.split("/", 1)[0]


def dashboard_html(
    records: Sequence[dict],
    keys: Optional[Sequence[str]] = None,
    title: str = "repro perf observatory",
) -> str:
    """Build the self-contained dashboard (inline CSS/SVG, offline-safe)."""
    if keys is None:
        keys = metric_keys(records)
    latest = records[-1]
    status = str(latest.get("status", ""))
    esc = _html.escape
    parts: list[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        f'<p class="sub">append-only run ledger · {len(records)} record(s) '
        f"· {esc(_stamp(records[0]))} — {esc(_stamp(latest))} UTC</p>",
        '<div class="tiles">',
        f'<div class="tile"><div class="v">{len(records)}</div>'
        f'<div class="k">ledger records</div></div>',
        f'<div class="tile"><div class="v">{esc(_short_sha(latest))}</div>'
        f'<div class="k">latest sha</div></div>',
        f'<div class="tile"><div class="v">'
        f'{esc(str(latest.get("version", "?")))}</div>'
        f'<div class="k">package version</div></div>',
    ]
    if status:
        cls = "pass" if status in ("pass", "baseline") else "fail"
        parts.append(
            f'<div class="tile"><div class="v">'
            f'<span class="badge {cls}">{esc(status)}</span></div>'
            f'<div class="k">latest gate</div></div>'
        )
    parts.append("</div>")

    families: dict[str, list[str]] = {}
    for key in keys:
        families.setdefault(_family(key), []).append(key)
    for family in sorted(families):
        parts.append(f"<h2>{esc(family)}</h2>")
        parts.append('<div class="grid">')
        for key in families[family]:
            traj = metric_trajectory(records, key)
            if not traj:
                continue
            values = [float(e["value"]) for _r, e in traj]
            entry = traj[-1][1]
            unit = str(entry.get("unit", ""))
            better = str(entry.get("better", ""))
            deltas = _deltas(values)
            last_delta = deltas[-1] if len(deltas) > 1 else None
            delta_txt = (
                "first record"
                if last_delta is None
                else f"{last_delta * 100:+.1f}% vs previous run"
            )
            rows = "".join(
                f"<tr><td>{esc(_short_sha(rec))}</td>"
                f"<td>{esc(_stamp(rec))}</td>"
                f"<td>{value:.2f}</td>"
                f"<td>{'' if d is None else f'{d * 100:+.1f}%'}</td></tr>"
                for (rec, _e), value, d in zip(traj, values, deltas)
            )
            parts.append(
                f'<div class="card"><div class="name">{esc(key)}</div>'
                f'<div class="dir">{esc(unit)} · {esc(better)} is better · '
                f"{len(values)} run(s)</div>"
                f"{_spark_svg(values)}"
                f'<div class="latest">{values[-1]:.2f} '
                f"<small>{esc(unit)}</small></div>"
                f'<div class="delta">{esc(delta_txt)}</div>'
                f"<details><summary>all runs</summary><table>"
                f"<tr><th>sha</th><th>when (UTC)</th><th>value</th>"
                f"<th>delta</th></tr>{rows}</table></details></div>"
            )
        parts.append("</div>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_dashboard(
    records: Sequence[dict],
    path: Union[str, Path],
    keys: Optional[Sequence[str]] = None,
) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(dashboard_html(records, keys), encoding="utf-8")
    return out


# ----------------------------------------------------------------------
# CLI driver
# ----------------------------------------------------------------------

def run_trends(
    ledger: Optional[Union[str, Path]] = None,
    html: Optional[Union[str, Path]] = None,
    patterns: Optional[Sequence[str]] = None,
    last: int = 20,
    print_fn=print,
) -> int:
    """``python -m repro.obs trends`` entry point; returns the exit code.

    An empty (or absent) ledger is not an error — the tool explains how
    to populate it and exits 0 so fresh checkouts can run it blind.
    """
    records = read_ledger(ledger)
    if not records:
        print_fn(
            "ledger is empty — no runs recorded yet.\n"
            "Run `python -m repro.bench.gate` or `python -m repro.bench "
            "selftest` to append the first record."
        )
        return 0
    keys = metric_keys(records)
    if patterns:
        keys = [
            k for k in keys if any(fnmatch.fnmatch(k, p) for p in patterns)
        ]
        if not keys:
            print_fn(f"no ledger metrics match {list(patterns)!r}")
            return 0
    print_fn(format_trends(records, keys, last=last))
    if html is not None:
        out = write_dashboard(records, html, keys)
        print_fn(f"\nwrote dashboard {out}")
    return 0
