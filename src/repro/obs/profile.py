"""Critical-path profiler: causal bottleneck attribution.

When a :class:`~repro.mpi.world.Cluster` is built with ``profile=True``,
the simulator records, for every scheduled event, the event that caused it
(``_cause``), its scheduling and fire times, and an attribution tag
(``_ptag``).  Because every trigger happens while some event is being
processed, an event's scheduling time equals its cause's fire time — so
the backward cause chain from any completion partitions the run into
time-contiguous intervals.  :func:`critical_path` walks that chain and
attributes every microsecond of an operation to one of six categories:

``copy``
    CPU pack/unpack/memcpy work (the datatype engine and byte copies).
``wire``
    HCA injection and link traversal of payload bytes.
``descriptor``
    descriptor handling: CPU posts, HCA per-descriptor startup and
    per-SGE gather overhead, datatype processing that builds descriptors.
``registration``
    memory registration/deregistration, dynamic allocation, page faults.
``resource-wait``
    time queued behind a busy counted resource (CPU core, staging pool).
``protocol-wait``
    rendezvous control traffic, CQ polling, completion delays — protocol
    machinery that is neither payload movement nor contention.

The attribution is *exact by construction*: the walker keeps a
monotonically decreasing cursor and clips every interval against it, so
the per-category times tile ``[t0, end]`` and sum to the measured
operation latency (tests assert to within 0.1%).

The :class:`Profiler` object additionally samples resource utilization
and queue depths into time series (exported as Chrome/Perfetto *counter*
tracks) and wait-time histograms in the metrics registry.  Every
instrument it creates is prefixed ``profile.`` so unprofiled runs are
trivially shown to carry none of them.

This module imports nothing from the simulator/MPI stack at module level
(only :func:`profile_transfer` does, lazily), keeping ``repro.obs``
import-cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

__all__ = [
    "Attribution",
    "CATEGORIES",
    "PathStep",
    "Profiler",
    "categorize",
    "critical_path",
    "format_bottlenecks",
    "profile_transfer",
    "run_profile",
]

#: the attribution categories, in report order
CATEGORIES = (
    "copy",
    "wire",
    "descriptor",
    "registration",
    "resource-wait",
    "protocol-wait",
)

#: timeout/succeed tags -> category (tags not listed fall to the
#: suffix heuristics in :func:`categorize`, then to protocol-wait)
_TAG_CATEGORY = {
    # copy: datatype engine + byte movement on a CPU
    "pack": "copy",
    "unpack": "copy",
    "copy": "copy",
    "user-pack": "copy",
    "user-unpack": "copy",
    # wire: HCA injection / link traversal of payload
    "wire": "wire",
    "wire-latency": "wire",
    # descriptor: building, posting and starting descriptors
    "descriptor": "descriptor",
    "post_send": "descriptor",
    "post_send_list": "descriptor",
    "post_recv": "descriptor",
    "dtproc": "descriptor",
    # registration: pinning, unpinning, allocation, page faults
    "register": "registration",
    "register_retry": "registration",
    "deregister": "registration",
    "malloc": "registration",
    "free": "registration",
    # explicit protocol machinery
    "ctrl": "protocol-wait",
    "poll": "protocol-wait",
    "poll-detect": "protocol-wait",
    "cqe": "protocol-wait",
    "complete": "protocol-wait",
    "rnr": "protocol-wait",
    "retry": "protocol-wait",
    "qp_recovery": "protocol-wait",
    "rndv-timeout": "protocol-wait",
}


def categorize(tag: Any) -> str:
    """Map an attribution tag to one of :data:`CATEGORIES`."""
    if tag is None:
        return "protocol-wait"
    if not isinstance(tag, str):
        return "protocol-wait"
    cat = _TAG_CATEGORY.get(tag)
    if cat is not None:
        return cat
    # application-level copy tags ("fio-pack", "reduce-sum", "bruck", ...)
    if tag.endswith(("-pack", "-unpack", "-local", "-copyout")) or tag.startswith(
        ("reduce-", "bruck")
    ):
        return "copy"
    return "protocol-wait"


class Profiler:
    """Recording sink for causal provenance and utilization sampling.

    Attach by constructing the cluster with ``profile=True`` (which sets
    ``sim.profiler``).  The engine and the synchronization primitives call
    back into this object; everything recorded lands either in
    :attr:`series` (utilization time series for counter tracks) or in the
    shared metrics registry under a ``profile.`` prefix.
    """

    def __init__(self, metrics):
        self.metrics = metrics
        #: (series name, node) -> [(t_us, value)] — queue depths and
        #: resource occupancy over simulated time, for counter tracks
        self.series: dict[tuple, list] = {}

    # -- time-series sampling -------------------------------------------

    def sample(self, name: str, node: Optional[int], t: float, value: float) -> None:
        """Append one (t, value) point, collapsing same-time updates."""
        pts = self.series.setdefault((name, node), [])
        if pts and pts[-1][0] == t:
            pts[-1] = (t, value)
        else:
            pts.append((t, value))

    def sample_resource(self, res) -> None:
        """Snapshot a Resource's occupancy and queue length (called on
        every acquire/release)."""
        name = res.name or "resource"
        t = res.sim.now
        self.sample(f"{name}.in_use", res.node, t, float(res.in_use))
        self.sample(f"{name}.queue", res.node, t, float(res.queue_length))
        self.metrics.gauge(f"profile.queue.{name}", res.node).set(
            float(res.queue_length)
        )

    def sample_store(self, store) -> None:
        """Snapshot a named Store's depth (called on every put/get)."""
        t = store.sim.now
        depth = float(len(store))
        self.sample(f"{store.name}.depth", store.node, t, depth)
        self.metrics.gauge(f"profile.depth.{store.name}", store.node).set(depth)

    # -- wait-time histograms -------------------------------------------

    def observe_wait(self, name: str, node: Optional[int], wait_us: float) -> None:
        """Record one completed wait (resource grant, store get, signal)."""
        self.metrics.histogram(f"profile.{name}", node).observe(wait_us)


# -- critical-path extraction ------------------------------------------


@dataclass(frozen=True)
class PathStep:
    """One attributed interval on the critical path."""

    start: float
    end: float
    category: str
    tag: Any

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Attribution:
    """The critical-path breakdown of one operation.

    ``categories`` maps every entry of :data:`CATEGORIES` to attributed
    microseconds; together with ``unattributed_us`` they tile
    ``[start_us, end_us]`` exactly (the walker clips intervals against a
    monotone cursor), so their sum equals ``total_us``.
    """

    total_us: float
    start_us: float
    end_us: float
    categories: dict = field(default_factory=dict)
    steps: list = field(default_factory=list)
    unattributed_us: float = 0.0

    @property
    def attributed_us(self) -> float:
        return sum(self.categories.values())

    def share(self, category: str) -> float:
        """Fraction of the total attributed to ``category``."""
        if self.total_us <= 0:
            return 0.0
        return self.categories.get(category, 0.0) / self.total_us

    def dominant(self) -> str:
        """The category with the largest attribution."""
        return max(self.categories, key=lambda c: self.categories[c])

    def closure_error(self) -> float:
        """|sum of parts - total| — zero up to float rounding."""
        return abs(self.attributed_us + self.unattributed_us - self.total_us)


def critical_path(done, t0: float = 0.0) -> "Attribution":
    """Walk the causal chain backward from a completion event.

    ``done`` is any processed event recorded under an active profiler
    (e.g. ``request.done``); ``t0`` is the operation's start time.
    Returns an :class:`Attribution` whose category times sum to
    ``done`` fire time minus ``t0``.
    """
    end = done._fire_at
    if end < 0:
        raise ValueError(
            "event carries no provenance — run the cluster with profile=True"
        )
    cats = {c: 0.0 for c in CATEGORIES}
    steps: list[PathStep] = []

    def attribute(lo: float, hi: float, category: str, tag: Any) -> None:
        if hi > lo:
            cats[category] += hi - lo
            steps.append(PathStep(lo, hi, category, tag))

    cursor = end
    ev = done
    while ev is not None and cursor > t0:
        s = ev._sched_at
        if s < 0:  # scheduled before profiling started (or a root)
            break
        e = ev._fire_at
        tag = ev._ptag
        lo = max(s, t0)
        hi = min(e, cursor)
        if isinstance(tag, tuple):
            kind = tag[0]
            if kind == "resource-wait":
                # the grant fired at ``e``; the wait started at the
                # recorded request time — the whole span is contention
                lo = max(tag[1], t0)
                attribute(lo, hi, "resource-wait", tag[2])
                cursor = min(cursor, lo)
            elif kind in ("store-wait", "signal-wait"):
                # communication dependency: zero-width here, the time
                # belongs to whatever produced the item (the cause chain)
                cursor = min(cursor, lo)
            elif kind == "split":
                # one timeout covering several phases: leading parts have
                # fixed durations, the one None part absorbs the rest
                parts = tag[1]
                fixed = sum(d for _c, d in parts if d is not None)
                rem = max(0.0, (e - s) - fixed)
                t = s
                bounds = []
                for cat, dur in parts:
                    dur = rem if dur is None else dur
                    bounds.append((max(t, lo), min(t + dur, hi), cat))
                    t += dur
                # appended newest-first like the walk itself, so the final
                # reversal restores forward order within the event too
                for blo, bhi, cat in reversed(bounds):
                    attribute(blo, bhi, cat, tag)
                cursor = min(cursor, lo)
            else:  # unknown tuple tag: treat as unlabeled
                attribute(lo, hi, "protocol-wait", tag)
                cursor = min(cursor, lo)
        else:
            attribute(lo, hi, categorize(tag), tag)
            cursor = min(cursor, lo)
        ev = ev._cause

    steps.reverse()
    return Attribution(
        total_us=end - t0,
        start_us=t0,
        end_us=end,
        categories=cats,
        steps=steps,
        unattributed_us=max(0.0, cursor - t0),
    )


def format_bottlenecks(attr: Attribution, title: str = "") -> str:
    """Render an attribution as a ranked plain-text bottleneck table."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'category':<15} {'time_us':>10} {'share':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    ranked = sorted(attr.categories.items(), key=lambda kv: -kv[1])
    for cat, us in ranked:
        lines.append(f"{cat:<15} {us:>10.2f} {100.0 * attr.share(cat):>6.1f}%")
    if attr.unattributed_us > 1e-9:
        lines.append(
            f"{'unattributed':<15} {attr.unattributed_us:>10.2f} "
            f"{100.0 * attr.unattributed_us / max(attr.total_us, 1e-12):>6.1f}%"
        )
    lines.append(f"{'total':<15} {attr.total_us:>10.2f} {100.0:>6.1f}%")
    return "\n".join(lines)


# -- profiled transfers ----------------------------------------------------


def profile_transfer(
    scheme: str,
    dt,
    *,
    count: int = 1,
    scheme_options: Optional[dict] = None,
    cost_model=None,
):
    """Run one profiled 2-rank transfer of ``(dt, count)`` under ``scheme``.

    Returns ``(attribution, cluster)``.  The attribution walks the
    receiver's completion — end-to-end operation latency as MPI sees it.
    ``cost_model`` selects the simulated platform (default: the paper's
    testbed) — the guidelines checker profiles violations under the
    preset that produced them.
    """
    from repro.ib.costmodel import MB
    from repro.mpi.world import Cluster

    cluster = Cluster(
        2,
        cost_model=cost_model,
        scheme=scheme,
        scheme_options=scheme_options or {},
        memory_per_rank=512 * MB,
        trace=True,
        profile=True,
    )
    span = dt.flatten(count).span + abs(dt.lb) + 64
    holder: dict = {}

    def rank0(mpi):
        buf = mpi.alloc(span)
        yield from mpi.send(buf, dt, count, dest=1, tag=0)
        return mpi.now

    def rank1(mpi):
        buf = mpi.alloc(span)
        req = yield from mpi.recv(buf, dt, count, source=0, tag=0)
        holder["req"] = req
        return mpi.now

    cluster.run([rank0, rank1])
    attr = critical_path(holder["req"].done)
    return attr, cluster


def run_profile(
    workload: str = "fig09",
    nbytes: int = 65536,
    schemes: Optional[Sequence[str]] = None,
    chrome_out: Optional[str] = None,
    print_fn=print,
) -> dict:
    """CLI driver: profile every scheme, print ranked bottleneck tables
    plus the cost-model explanation, optionally write annotated traces.

    Returns ``{scheme: (attribution, deltas)}``.
    """
    from repro.obs.chrome import counter_track_events, export_chrome_trace
    from repro.obs.explain import explain, format_explanation
    from repro.obs.report import workload_for

    if schemes is None:
        from repro.obs.report import DEFAULT_SCHEMES

        schemes = DEFAULT_SCHEMES
    results: dict = {}
    for scheme in schemes:
        wl = workload_for(workload, nbytes)
        attr, cluster = profile_transfer(scheme, wl.datatype)
        deltas = explain(
            scheme, cluster.cm, wl.datatype.flatten(1), wl.datatype.size, attr
        )
        results[scheme] = (attr, deltas)
        print_fn(
            format_bottlenecks(
                attr,
                title=(
                    f"critical path: {scheme} / {workload} "
                    f"({wl.datatype.size} bytes), dominant={attr.dominant()}"
                ),
            )
        )
        print_fn("")
        print_fn(format_explanation(deltas))
        print_fn("")
        if chrome_out:
            prefix = chrome_out[:-5] if chrome_out.endswith(".json") else chrome_out
            export_chrome_trace(
                cluster.tracer,
                f"{prefix}.{scheme}.{nbytes}.json",
                counters=counter_track_events(cluster.profiler.series),
            )
    return results
