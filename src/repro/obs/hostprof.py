"""Host-time profiler: explain every nanosecond of engine wall-clock.

The critical-path profiler (:mod:`repro.obs.profile`) explains where
*simulated* microseconds go; this module explains where *host*
nanoseconds go while the engine produces them — the number the selftest
otherwise reduces to one opaque events/sec figure.  The engine's
host-profiled run loop (:meth:`repro.simulator.engine.Simulator.run`
with :attr:`~repro.simulator.engine.Simulator.host_profiler` attached)
chains ns-clock timestamps through instrumented dispatches and feeds
them here, attributing wall-clock to a fixed host-category taxonomy
(:data:`HOST_CATEGORIES`):

``heap``
    event-heap operations: every pop in the run loop and every push in
    ``Simulator._schedule``.
``dispatch``
    per-event engine bookkeeping between the pop and the callback body
    (cancelled-skip, clock/provenance updates, category lookup).
``callback.<cat>``
    the event-callback body — scheme generators, protocol handlers,
    HCA/fabric machinery — split by the dispatched event's attribution
    tag using the *same* copy / wire / descriptor / registration /
    resource-wait / protocol-wait categories the critical-path profiler
    uses for simulated time, minus any nested time accounted below.
``pack-unpack``
    byte movement through the datatype engine
    (:func:`repro.datatypes.pack.pack_bytes` /
    :func:`~repro.datatypes.pack.unpack_bytes`), probed at the source.
``observability``
    metrics-registry lookups (via :class:`TimedMetrics`) and tracer
    record/span bookkeeping (via
    :class:`repro.simulator.trace.TimedTracer`).
``profiler-self``
    the profiler's own accounting: the inter-dispatch gaps where the
    run loop updates its accumulators and samples counter series.

Because consecutive timestamps share their boundary, the categories tile
the run-loop wall time; :meth:`HostProfiler.closure` is the measured
fraction actually attributed (tests assert >= 95% on all seven schemes).
Clock reads are costly enough to distort the number being measured, so
the loop *duty-cycles* (:data:`DEFAULT_DUTY`): bursts of fully
instrumented dispatches alternate with stretches run through the plain
dispatch body whose wall time — one clock read each — lands in an
``unsampled`` pool, apportioned pro-rata over the measured categories at
reporting time.  Closure stays exact; overhead scales with the duty
fraction (<= 15% is asserted by the bench selftest).
Everything here is pure aggregation over an *injected* ns clock — this
package never reads the host clock itself (``tests/obs/test_no_wallclock
.py``); the clock calls live in the engine, ``repro.mpi.world`` and the
bench layer.

Outputs: a ranked ns/event hotspot table (:func:`format_hotspots`),
collapsed-stack text for flamegraph.pl / speedscope
(:meth:`HostProfiler.collapsed`), cumulative host-time counter tracks
for the Chrome trace (:attr:`HostProfiler.series`), and an optional
cProfile deep mode (:func:`run_hostprof` ``deep=True``).  The ``python
-m repro.obs hostprof`` CLI drives all of them; the selftest and bench
gate record :meth:`HostProfiler.ns_per_event` into the run ledger so
``obs trends`` charts host-category trajectories and ``obs regress``
can name the host category that moved when engine throughput regresses.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.obs.profile import categorize

__all__ = [
    "HOST_CATEGORIES",
    "CALLBACK_CATEGORIES",
    "HostProfiler",
    "TimedMetrics",
    "format_hotspots",
    "host_category",
    "hostprof_markdown",
    "hostprof_transfer",
    "run_hostprof",
    "write_artifacts",
]

#: the simulated-time categories a callback body can be tagged with
#: (mirrors :data:`repro.obs.profile.CATEGORIES`)
CALLBACK_CATEGORIES = (
    "copy",
    "wire",
    "descriptor",
    "registration",
    "resource-wait",
    "protocol-wait",
)

#: the host-time taxonomy, in report order
HOST_CATEGORIES = (
    "heap",
    "dispatch",
    *(f"callback.{c}" for c in CALLBACK_CATEGORIES),
    "pack-unpack",
    "observability",
    "profiler-self",
)

#: events between counter-series samples in the profiled run loop
DEFAULT_SAMPLE_EVERY = 32

#: default duty cycle (instrumented dispatches, plain dispatches) of the
#: profiled run loop.  Reading the ns clock is not free (hundreds of ns
#: on virtualized hosts), so the loop alternates fully-instrumented
#: bursts with stretches run through the plain dispatch body; each
#: stretch's wall time is measured with a single clock read and
#: apportioned pro-rata over the measured categories at reporting time
#: (closure stays exact by construction).  ``(n, 0)`` instruments every
#: dispatch — what the attribution tests use.  The default 1-in-8 duty
#: keeps instrumented-mode overhead well under the 15% budget.
DEFAULT_DUTY = (8, 56)

#: currently running profiler (set by the engine's profiled run loop);
#: the pack/unpack probes in ``repro.datatypes.pack`` check this and do
#: no timing work at all while it is None
ACTIVE: Optional["HostProfiler"] = None


def host_category(tag: Any) -> str:
    """Map an event's attribution tag to a callback category.

    String tags reuse :func:`repro.obs.profile.categorize`; the tuple
    tags the synchronization primitives schedule with (resource grants,
    store/signal waits, split timeouts) are resolved to the category
    their host-side callback work belongs to.
    """
    if isinstance(tag, tuple) and tag:
        kind = tag[0]
        if kind == "resource-wait":
            return "resource-wait"
        if kind in ("store-wait", "signal-wait"):
            return "protocol-wait"
        if kind == "split":
            # one timeout covering several simulated phases: host-wise
            # the callback is one body; bill it to the absorbing part
            parts = tag[1]
            for cat, dur in parts:
                if dur is None and cat in CALLBACK_CATEGORIES:
                    return cat
            if parts and parts[0][0] in CALLBACK_CATEGORIES:
                return parts[0][0]
        return "protocol-wait"
    return categorize(tag)


class HostProfiler:
    """Accumulates host-nanosecond attribution for one simulator.

    Constructed by :class:`repro.mpi.world.Cluster` when built with
    ``host_profile=True`` (or ``$REPRO_HOST_PROFILE`` set); the engine's
    run loop drives the hot-path attributes directly, everything else
    goes through the small methods below.  ``clock`` is an injected
    nanosecond-resolution callable (the engine passes the stdlib's
    ns-precision performance clock).
    """

    def __init__(
        self,
        clock: Callable[[], int],
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        duty: tuple = DEFAULT_DUTY,
    ):
        self.clock = clock
        self.sample_every = max(1, int(sample_every))
        #: instrumented / plain dispatches per duty window (see
        #: :data:`DEFAULT_DUTY`; ``duty_off == 0`` instruments everything)
        self.duty_on = max(1, int(duty[0]))
        self.duty_off = max(0, int(duty[1]))
        #: hot-path scalar accumulators (the engine adds to these
        #: directly; attribute access is cheaper than a method call)
        self.heap_ns = 0
        self.dispatch_ns = 0
        self.self_ns = 0
        #: heap pushes seen while profiling (their ns ride inside the
        #: enclosing callback body — see docs/PROFILING.md)
        self.heap_pushes = 0
        #: callback-body exclusive ns and event counts per category
        self.callback_ns: dict[str, int] = {c: 0 for c in CALLBACK_CATEGORIES}
        self.callback_events: dict[str, int] = {
            c: 0 for c in CALLBACK_CATEGORIES
        }
        #: nested probe ns keyed (probe name, enclosing callback category)
        self.nested: dict[tuple, int] = {}
        #: events dispatched / cancelled heap entries skipped inside
        #: *instrumented* bursts of the profiled loop
        self.events = 0
        self.cancelled = 0
        #: wall ns and dispatch count of the plain (off-duty) stretches;
        #: apportioned pro-rata over the measured categories in
        #: :meth:`totals`
        self.unsampled_ns = 0
        self.unsampled_events = 0
        #: wall ns spent inside profiled ``run()`` calls, and their count
        self.run_wall_ns = 0
        self.runs = 0
        #: cumulative host-time counter series for the Chrome trace:
        #: ``(f"host.{category}.us", None) -> [(sim_t_us, host_us)]``
        self.series: dict[tuple, list] = {}
        # per-category point lists, precomputed so sample() never
        # formats keys on the (amortized) hot path
        self._series_pts: dict[str, list] = {
            cat: self.series.setdefault((f"host.{cat}.us", None), [])
            for cat in HOST_CATEGORIES
        }
        # run-loop state
        self._in_run = False
        self._nested_ns = 0
        self._current_cat: Optional[str] = None
        #: tag -> callback category memo (the run loop reads this dict
        #: directly; unhashable tags fall back to :func:`host_category`)
        self._cat_cache: dict = {}

    # -- engine hooks ----------------------------------------------------

    def category_of(self, tag: Any) -> str:
        """Callback category of the event about to be dispatched
        (memoized; the run loop inlines the cache hit)."""
        try:
            return self._cat_cache[tag]
        except KeyError:
            cat = self._cat_cache[tag] = host_category(tag)
            return cat
        except TypeError:  # unhashable tag (e.g. split parts hold lists)
            return host_category(tag)

    def run_begin(self) -> None:
        """Enter the profiled run loop (activates the nested probes)."""
        global ACTIVE
        self._in_run = True
        self.runs += 1
        ACTIVE = self

    def run_end(self, wall_ns: int, sim_now: float) -> None:
        """Leave the profiled run loop; ``wall_ns`` covers the loop."""
        global ACTIVE
        self.run_wall_ns += wall_ns
        self._in_run = False
        self._current_cat = None
        if ACTIVE is self:
            ACTIVE = None
        self.sample(sim_now)

    def add_callback(self, category: str, ns: int, nested_ns: int) -> None:
        """Account one dispatched callback body (exclusive of ``nested_ns``,
        which the nested probes already attributed elsewhere)."""
        self.events += 1
        self.callback_events[category] += 1
        self.callback_ns[category] += max(0, ns - nested_ns)

    def add_nested(self, name: str, ns: int) -> None:
        """Attribute ``ns`` to a nested probe (pack/unpack, observability)
        and exclude it from the enclosing callback body."""
        if not self._in_run:
            return
        self._nested_ns += ns
        key = (name, self._current_cat)
        nested = self.nested
        if key in nested:
            nested[key] += ns
        else:
            nested[key] = ns

    def sample(self, sim_now: float) -> None:
        """Append one cumulative host-us point per category at ``sim_now``
        (simulated us) — the Chrome host-time counter track."""
        pts_of = self._series_pts
        for cat, ns in self.totals().items():
            pts = pts_of[cat]
            value = ns / 1e3
            if pts and pts[-1][0] == sim_now:
                pts[-1] = (sim_now, value)
            else:
                pts.append((sim_now, value))

    # -- aggregation -----------------------------------------------------

    def nested_totals(self) -> dict[str, int]:
        """Total ns per nested probe name, summed over enclosing
        categories."""
        out: dict[str, int] = {}
        for (name, _cat), ns in self.nested.items():
            out[name] = out.get(name, 0) + ns
        return out

    def measured(self) -> dict[str, int]:
        """Directly measured ns per entry of :data:`HOST_CATEGORIES`
        (instrumented dispatches only — excludes the off-duty pool)."""
        nested = self.nested_totals()
        out = {
            "heap": self.heap_ns,
            "dispatch": self.dispatch_ns,
            "profiler-self": self.self_ns,
        }
        for cat in CALLBACK_CATEGORIES:
            out[f"callback.{cat}"] = self.callback_ns[cat]
        out["pack-unpack"] = nested.get("pack-unpack", 0)
        out["observability"] = nested.get("observability", 0)
        return {c: out.get(c, 0) for c in HOST_CATEGORIES}

    def totals(self) -> dict[str, int]:
        """Attributed ns per entry of :data:`HOST_CATEGORIES`.

        The off-duty pool (:attr:`unsampled_ns`) is apportioned pro-rata
        over the measured non-``profiler-self`` categories — those
        stretches run the same event mix through the plain dispatch body,
        just unobserved (``profiler-self`` is excluded because profiler
        work does not happen off-duty).  Sums to :attr:`attributed_ns`.
        """
        out = self.measured()
        pool = self.unsampled_ns
        if pool <= 0:
            return out
        weights = {c: ns for c, ns in out.items() if c != "profiler-self"}
        denom = sum(weights.values())
        if denom <= 0:
            out["dispatch"] += pool
            return out
        spread = 0
        largest = max(weights, key=weights.get)
        for c, w in weights.items():
            share = pool * w // denom
            out[c] += share
            spread += share
        out[largest] += pool - spread  # rounding remainder
        return out

    @property
    def total_events(self) -> int:
        """All dispatches seen by the profiled loop (instrumented +
        off-duty); matches ``Simulator.events_processed`` deltas."""
        return self.events + self.unsampled_events

    @property
    def attributed_ns(self) -> int:
        return sum(self.measured().values()) + max(0, self.unsampled_ns)

    def closure(self) -> float:
        """Attributed fraction of the profiled run-loop wall time."""
        if self.run_wall_ns <= 0:
            return 0.0
        return self.attributed_ns / self.run_wall_ns

    def ns_per_event(self) -> dict[str, float]:
        """Per-category ns/event plus ``total`` — the ledger payload."""
        n = max(1, self.total_events)
        out = {cat: ns / n for cat, ns in self.totals().items()}
        out["total"] = self.run_wall_ns / n
        return out

    def snapshot(self) -> dict:
        """Everything, JSON-serializable (the CLI ``--json`` document)."""
        return {
            "events": self.total_events,
            "events_instrumented": self.events,
            "cancelled": self.cancelled,
            "heap_pushes": self.heap_pushes,
            "duty": [self.duty_on, self.duty_off],
            "unsampled_ns": self.unsampled_ns,
            "runs": self.runs,
            "run_wall_ns": self.run_wall_ns,
            "closure": self.closure(),
            "totals_ns": self.totals(),
            "measured_ns": self.measured(),
            "ns_per_event": self.ns_per_event(),
            "callback_events": dict(self.callback_events),
            "nested_ns": {
                f"{name}@{cat or 'root'}": ns
                for (name, cat), ns in sorted(self.nested.items())
            },
        }

    # -- exports ---------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text (``frame;frame value`` lines, value in
        ns) for flamegraph.pl / speedscope.  Frames carry *measured*
        ns; the off-duty pool appears as its own ``engine;unsampled``
        root frame rather than being apportioned."""
        lines = []
        totals = self.measured()
        nested_by_cat: dict[Optional[str], dict[str, int]] = {}
        for (name, cat), ns in self.nested.items():
            nested_by_cat.setdefault(cat, {})[name] = ns
        for top in ("heap", "dispatch", "profiler-self"):
            if totals[top]:
                lines.append(f"engine;{top} {totals[top]}")
        if self.unsampled_ns:
            lines.append(f"engine;unsampled {self.unsampled_ns}")
        for cat in CALLBACK_CATEGORIES:
            ns = self.callback_ns[cat]
            if ns:
                lines.append(f"engine;callback;{cat} {ns}")
            for name, nns in sorted(nested_by_cat.get(cat, {}).items()):
                if nns:
                    lines.append(f"engine;callback;{cat};{name} {nns}")
        for name, nns in sorted(nested_by_cat.get(None, {}).items()):
            if nns:
                lines.append(f"engine;{name} {nns}")
        return "\n".join(lines) + "\n"


class TimedMetrics:
    """Metrics-registry proxy that bills instrument lookups to the
    ``observability`` host category.

    Installed by :class:`~repro.mpi.world.Cluster` only when host
    profiling is on; every other method/attribute delegates untouched,
    so the wrapped registry stays the single source of metric truth.
    Instrument *mutation* (``inc``/``observe`` on the returned objects)
    is not intercepted — it stays inside the enclosing callback category
    (see docs/PROFILING.md for the approximation note).
    """

    __slots__ = ("_inner", "_sink", "_clock")

    def __init__(self, inner, sink: HostProfiler, clock: Callable[[], int]):
        self._inner = inner
        self._sink = sink
        self._clock = clock

    def counter(self, name, node=None):
        sink = self._sink
        if not sink._in_run:  # off-duty / outside run: no clock reads
            return self._inner.counter(name, node)
        c = self._clock
        t0 = c()
        inst = self._inner.counter(name, node)
        sink.add_nested("observability", c() - t0)
        return inst

    def gauge(self, name, node=None):
        sink = self._sink
        if not sink._in_run:
            return self._inner.gauge(name, node)
        c = self._clock
        t0 = c()
        inst = self._inner.gauge(name, node)
        sink.add_nested("observability", c() - t0)
        return inst

    def histogram(self, name, node=None, *args, **kwargs):
        sink = self._sink
        if not sink._in_run:
            return self._inner.histogram(name, node, *args, **kwargs)
        c = self._clock
        t0 = c()
        inst = self._inner.histogram(name, node, *args, **kwargs)
        sink.add_nested("observability", c() - t0)
        return inst

    def __getattr__(self, name):
        return getattr(self._inner, name)


# -- report rendering ------------------------------------------------------


def format_hotspots(snapshot: dict, title: str = "") -> str:
    """Render one profiler snapshot as a ranked ns/event hotspot table."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'host category':<26} {'ns/event':>10} {'total_ms':>9} {'share':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    totals = snapshot["totals_ns"]
    per_event = snapshot["ns_per_event"]
    wall = max(1, snapshot["run_wall_ns"])
    for cat, ns in sorted(totals.items(), key=lambda kv: -kv[1]):
        lines.append(
            f"{cat:<26} {per_event[cat]:>10.0f} {ns / 1e6:>9.2f} "
            f"{100.0 * ns / wall:>6.1f}%"
        )
    lines.append(
        f"{'total (run-loop wall)':<26} {per_event['total']:>10.0f} "
        f"{wall / 1e6:>9.2f} {100.0:>6.1f}%"
    )
    lines.append(
        f"closure: {100.0 * snapshot['closure']:.1f}% of wall attributed "
        f"({snapshot['events']} events, {snapshot['runs']} run(s))"
    )
    return "\n".join(lines)


def top_categories(snapshot: dict, n: int = 3) -> list[tuple[str, float]]:
    """The ``n`` largest host categories as ``(category, ns_per_event)``."""
    totals = snapshot["totals_ns"]
    per_event = snapshot["ns_per_event"]
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])
    return [(cat, per_event[cat]) for cat, _ns in ranked[:n]]


def hostprof_markdown(results: dict, workload: str, nbytes: int) -> str:
    """Markdown summary (top-3 host categories per scheme) for the CI
    job step summary."""
    lines = [
        f"## host-time profile — {workload}, {nbytes} bytes",
        "",
        "| scheme | ns/event | top host categories (ns/event) | closure |",
        "|---|---|---|---|",
    ]
    for scheme, snap in results.items():
        tops = ", ".join(
            f"{cat} ({ns:.0f})" for cat, ns in top_categories(snap, 3)
        )
        lines.append(
            f"| {scheme} | {snap['ns_per_event']['total']:.0f} | {tops} "
            f"| {100.0 * snap['closure']:.1f}% |"
        )
    return "\n".join(lines) + "\n"


# -- profiled transfers ----------------------------------------------------


def hostprof_transfer(
    scheme: str,
    dt,
    *,
    count: int = 1,
    iters: int = 4,
    scheme_options: Optional[dict] = None,
    cost_model=None,
    trace: bool = False,
    duty: Optional[tuple] = None,
):
    """Run ``iters`` host-profiled 2-rank transfers of ``(dt, count)``
    under ``scheme``; returns ``(host_profiler, cluster)``.

    Mirrors :func:`repro.obs.profile.profile_transfer` but measures host
    nanoseconds instead of simulated microseconds; several iterations
    amortize the first transfer's cold caches (layout memoization,
    registration) into a representative ns/event figure.  ``duty``
    overrides the profiler's duty cycle (``(n, 0)`` = instrument every
    dispatch, what the attribution tests use).
    """
    from repro.ib.costmodel import MB
    from repro.mpi.world import Cluster

    cluster = Cluster(
        2,
        cost_model=cost_model,
        scheme=scheme,
        scheme_options=scheme_options or {},
        memory_per_rank=512 * MB,
        trace=trace,
        host_profile=True,
    )
    if duty is not None:
        cluster.host_profiler.duty_on = max(1, int(duty[0]))
        cluster.host_profiler.duty_off = max(0, int(duty[1]))
    span = dt.flatten(count).span + abs(dt.lb) + 64

    def rank0(mpi):
        buf = mpi.alloc(span)
        for i in range(iters):
            yield from mpi.send(buf, dt, count, dest=1, tag=i)
        return mpi.now

    def rank1(mpi):
        buf = mpi.alloc(span)
        for i in range(iters):
            yield from mpi.recv(buf, dt, count, source=0, tag=i)
        return mpi.now

    cluster.run([rank0, rank1])
    return cluster.host_profiler, cluster


def _deep_profile(scheme: str, dt, *, iters: int, scheme_options=None) -> str:
    """cProfile/pstats deep mode: the same transfer, function-level."""
    import cProfile
    import io
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    try:
        hostprof_transfer(
            scheme, dt, iters=iters, scheme_options=scheme_options
        )
    finally:
        prof.disable()
    sink = io.StringIO()
    stats = pstats.Stats(prof, stream=sink)
    stats.sort_stats("tottime").print_stats(25)
    return sink.getvalue()


def run_hostprof(
    workload: str = "fig09",
    nbytes: int = 65536,
    schemes: Optional[Sequence[str]] = None,
    iters: int = 4,
    chrome_out: Optional[str] = None,
    collapsed_out: Optional[str] = None,
    json_out: Optional[str] = None,
    markdown_out: Optional[str] = None,
    deep: bool = False,
    print_fn=print,
) -> dict:
    """CLI driver: host-profile every scheme on one workload.

    Prints a ranked ns/event hotspot table per scheme; optionally writes
    collapsed stacks (``<prefix>.<scheme>.collapsed``), Chrome traces
    with host-time counter tracks (``<prefix>.<scheme>.json``), the full
    JSON document, a markdown top-3 summary, and a cProfile deep-mode
    listing.  Returns ``{scheme: snapshot}``.
    """
    import json as _json
    import os

    from repro.obs.chrome import counter_track_events, export_chrome_trace
    from repro.obs.report import workload_for

    if schemes is None:
        from repro.schemes import SCHEME_NAMES

        schemes = SCHEME_NAMES
    results: dict = {}
    for scheme in schemes:
        wl = workload_for(workload, nbytes)
        hp, cluster = hostprof_transfer(
            scheme, wl.datatype, iters=iters, trace=bool(chrome_out)
        )
        snap = hp.snapshot()
        results[scheme] = snap
        print_fn(
            format_hotspots(
                snap,
                title=(
                    f"host time: {scheme} / {workload} "
                    f"({wl.datatype.size} bytes x {iters} iters)"
                ),
            )
        )
        print_fn("")
        if collapsed_out:
            path = f"{collapsed_out}.{scheme}.collapsed"
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            with open(path, "w") as fh:
                fh.write(hp.collapsed())
            print_fn(f"wrote collapsed stacks {path}")
        if chrome_out:
            prefix = (
                chrome_out[:-5] if chrome_out.endswith(".json") else chrome_out
            )
            path = f"{prefix}.{scheme}.{nbytes}.json"
            export_chrome_trace(
                cluster.tracer,
                path,
                counters=counter_track_events(hp.series),
            )
            print_fn(f"wrote annotated trace {path}")
        if deep:
            print_fn(
                _deep_profile(scheme, wl.datatype, iters=iters).rstrip()
            )
            print_fn("")
    if json_out:
        import os as _os

        _os.makedirs(_os.path.dirname(json_out) or ".", exist_ok=True)
        with open(json_out, "w") as fh:
            _json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print_fn(f"wrote {json_out}")
    if markdown_out:
        import os as _os

        _os.makedirs(_os.path.dirname(markdown_out) or ".", exist_ok=True)
        with open(markdown_out, "w") as fh:
            fh.write(hostprof_markdown(results, workload, nbytes))
        print_fn(f"wrote {markdown_out}")
    return results


def write_artifacts(
    outdir,
    workload: str = "fig09",
    nbytes: int = 65536,
    schemes: Optional[Sequence[str]] = None,
    iters: int = 4,
    print_fn=print,
) -> dict:
    """One-call CI artifact bundle under ``outdir``: ``hotspots.txt``,
    per-scheme collapsed stacks + annotated Chrome traces,
    ``hostprof.json`` and ``summary.md`` (top-3 table)."""
    import os

    os.makedirs(str(outdir), exist_ok=True)
    lines: list[str] = []
    results = run_hostprof(
        workload=workload,
        nbytes=nbytes,
        schemes=schemes,
        iters=iters,
        chrome_out=os.path.join(str(outdir), "trace"),
        collapsed_out=os.path.join(str(outdir), "stacks"),
        json_out=os.path.join(str(outdir), "hostprof.json"),
        markdown_out=os.path.join(str(outdir), "summary.md"),
        print_fn=lambda *parts: lines.append(" ".join(str(p) for p in parts)),
    )
    with open(os.path.join(str(outdir), "hotspots.txt"), "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print_fn(f"wrote host-profile artifacts under {outdir}")
    return results
