"""Live sweep telemetry: a JSONL progress stream for long sweeps.

``repro.bench.parallel.run_cells`` drives a :class:`LiveLog` while a
sweep is in flight (enable with ``--live`` / ``--live-log FILE`` on the
bench CLIs or ``$REPRO_LIVE_LOG``).  Three record shapes, one JSON
object per line, flushed as they happen so a tail/CI log viewer sees
progress immediately:

``sweep-start``
    ``total`` cells, how many were served from the result cache
    (``cached``) vs queued for execution (``to_run``), and the worker
    count.
``cell``
    one completed cell — its coordinates and value, whether it was a
    cache hit, running totals (``done``/``total``), wall-clock
    ``elapsed_s``, the projected ``eta_s`` to sweep completion, cells
    still in flight on the pool, and ``utilization`` (in-flight workers
    / pool size).
``sweep-end``
    final wall-clock time plus the cumulative
    :data:`repro.bench.parallel.STATS` counters (``cells``,
    ``cache_hits``, ``executed``) so the stream's last line reconciles
    exactly with the in-process stats object.

This module never reads the wall clock itself (the obs package is
clock-free by contract); the caller injects a monotonic ``clock``
callable and the sink.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Callable, Optional, TextIO

__all__ = ["LiveLog", "open_live_log"]


class LiveLog:
    """Serializer for the sweep progress stream.

    Parameters
    ----------
    sink:
        writable text stream (one JSON object per line, flushed).
    clock:
        zero-arg callable returning seconds (monotonic); injected by the
        bench layer (the obs package itself stays clock-free).
    jobs:
        worker-pool size, for the utilization field.
    close_sink:
        close ``sink`` on :meth:`close` (True for files the opener
        created, False for stderr).
    """

    def __init__(
        self,
        sink: TextIO,
        *,
        clock: Callable[[], float],
        jobs: int = 1,
        close_sink: bool = False,
    ):
        self._sink = sink
        self._clock = clock
        self._close_sink = close_sink
        self.jobs = max(1, int(jobs))
        self._t0 = clock()
        self._total = 0
        self._done = 0
        self._executed = 0

    # -- low-level ------------------------------------------------------

    def emit(self, record: dict) -> None:
        """Write one record as a flushed JSON line (never raises into the
        sweep: a dead sink only loses telemetry, not results)."""
        try:
            self._sink.write(json.dumps(record, sort_keys=True) + "\n")
            self._sink.flush()
        except (OSError, ValueError):
            pass

    def close(self) -> None:
        if self._close_sink:
            try:
                self._sink.close()
            except OSError:
                pass

    def _elapsed(self) -> float:
        return self._clock() - self._t0

    # -- record shapes --------------------------------------------------

    def sweep_start(self, total: int, cached: int, to_run: int) -> None:
        self._t0 = self._clock()
        self._total = total
        self._done = 0
        self._executed = 0
        self.emit({
            "event": "sweep-start",
            "total": total,
            "cached": cached,
            "to_run": to_run,
            "jobs": self.jobs,
        })

    def cell_done(
        self,
        cell: Any,
        value: float,
        *,
        cached: bool,
        in_flight: int = 0,
    ) -> None:
        """Report one finished cell (cache hit or fresh execution)."""
        self._done += 1
        if not cached:
            self._executed += 1
        elapsed = self._elapsed()
        remaining = max(0, self._total - self._done)
        # rate from executed cells only: cache hits are ~instant and
        # would make the ETA wildly optimistic for the cells still to run
        if self._executed > 0 and remaining > 0:
            eta = elapsed / self._executed * remaining
        else:
            eta = 0.0
        self.emit({
            "event": "cell",
            "figure": getattr(cell, "figure", None),
            "series": getattr(cell, "series", None),
            "x": getattr(cell, "x", None),
            "value": value,
            "cached": cached,
            "done": self._done,
            "total": self._total,
            "elapsed_s": round(elapsed, 6),
            "eta_s": round(eta, 6),
            "in_flight": in_flight,
            "utilization": round(min(1.0, in_flight / self.jobs), 4),
        })

    def sweep_end(self, stats: Any) -> None:
        """Final record: reconciles against the cumulative STATS counters."""
        self.emit({
            "event": "sweep-end",
            "elapsed_s": round(self._elapsed(), 6),
            "done": self._done,
            "total": self._total,
            "stats": {
                "cells": stats.cells,
                "cache_hits": stats.cache_hits,
                "executed": stats.executed,
            },
        })


def open_live_log(
    spec: Optional[str],
    *,
    clock: Callable[[], float],
    jobs: int = 1,
) -> Optional[LiveLog]:
    """Build a :class:`LiveLog` from a destination spec.

    ``None``/empty disables telemetry; ``"-"`` or ``"stderr"`` streams to
    stderr; anything else is a file path opened for append (so several
    sweeps in one command share a coherent stream).
    """
    if not spec:
        return None
    if spec in ("-", "stderr"):
        return LiveLog(sys.stderr, clock=clock, jobs=jobs, close_sink=False)
    sink = open(spec, "a", encoding="utf-8")
    return LiveLog(sink, clock=clock, jobs=jobs, close_sink=True)
