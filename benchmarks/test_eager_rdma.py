"""RDMA-eager channel benchmark (Liu et al. [19], the companion MVAPICH
design this paper's implementation sits on).

Compares small-message ping-pong latency of the channel-semantics eager
path against the polled RDMA ring across message sizes, and checks the
ring's advantage fades once messages cross into rendezvous.
"""

import functools

import pytest

from repro import Cluster, types
from repro.bench.report import Series, print_table, write_csv

SIZES = (8, 64, 256, 1024, 4096, 8192, 65536)


def _latency(nbytes: int, eager_rdma: bool, iters: int = 4) -> float:
    dt = types.contiguous(nbytes, types.BYTE)

    def rank0(mpi):
        buf = mpi.alloc(max(nbytes, 1))
        t0 = None
        for i in range(iters):
            if i == 1:
                t0 = mpi.now
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)
            yield from mpi.recv(buf, dt, 1, source=1, tag=1)
        return (mpi.now - t0) / (iters - 1) / 2

    def rank1(mpi):
        buf = mpi.alloc(max(nbytes, 1))
        for _ in range(iters):
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            yield from mpi.send(buf, dt, 1, dest=0, tag=1)

    return Cluster(2, eager_rdma=eager_rdma).run([rank0, rank1]).values[0]


@functools.lru_cache(maxsize=None)
def sweep():
    out = {
        "channel": Series("send/recv channel"),
        "ring": Series("RDMA ring"),
    }
    for size in SIZES:
        out["channel"].y.append(_latency(size, False))
        out["ring"].y.append(_latency(size, True))
    series = list(out.values())
    print_table(
        "Eager path: channel semantics vs polled RDMA ring (one-way latency)",
        "bytes", list(SIZES), series, unit="us", baseline="send/recv channel",
    )
    write_csv("results/eager_rdma.csv", "bytes", list(SIZES), series)
    return list(SIZES), out


def test_eager_rdma_latency(benchmark):
    sizes, out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    chan = out["channel"].y
    ring = out["ring"].y
    for i, size in enumerate(sizes):
        if size <= 8192:  # eager regime
            assert ring[i] < chan[i], size
        else:  # rendezvous: identical path, no ring involvement
            assert ring[i] == pytest.approx(chan[i], rel=0.01), size
    # the absolute saving is a constant (per-hop protocol overhead), so
    # the relative gain is largest for the smallest messages
    gains = [c - r for c, r, s in zip(chan, ring, sizes) if s <= 8192]
    assert max(gains) == pytest.approx(min(gains), abs=0.5)
    assert (chan[0] - ring[0]) / chan[0] > 0.08  # >8% at 8 bytes
