"""Figure 13 — effect of list descriptor post in Multi-W (Section 8.5).

Paper's observation: "the list post offers improvement with a maximum
factor of 2.0 and a minimum factor of 1.2 over the single post.  The
average improvement factor is 1.6.  ... posting descriptor is costly."

In our cost model the posting cost is CPU-side only, so the improvement
concentrates where the per-descriptor post cost rivals the per-descriptor
wire time (small/medium blocks) and fades as the wire dominates — the
max factor reproduces; the paper's nonzero floor at the largest blocks
suggests their posts also consumed PCI bandwidth, which we note in
EXPERIMENTS.md as a known deviation.
"""

import pytest

from repro.bench.figures import fig13


def test_fig13_list_post(run_figure):
    cols, out = run_figure(fig13)
    listed = out["list"].y
    single = out["single"].y
    factors = {c: l / s for c, l, s in zip(cols, listed, single)}

    # list post never loses measurably
    for c, f in factors.items():
        assert f > 0.97, (c, f)
    # substantial gain where descriptors are small
    assert max(factors.values()) == pytest.approx(1.8, abs=0.5)
    small_mid = [f for c, f in factors.items() if 4 <= c <= 256]
    assert sum(small_mid) / len(small_mid) > 1.15
