"""Figure 8 — ping-pong latency of the four schemes (Section 8.2).

Paper's observations to reproduce:

1. "BC-SPUP performs better than the Generic scheme consistently",
   with "a factor of 1.5 improvement ... for large datatype messages";
2. "RWG-UP performs better than the Generic scheme in most cases,
   except [when] the size of contiguous block is too small", reaching
   "a factor of up to 1.8";
3. "Multi-W offers a factor of 3.4 improvement when the number of
   columns is large.  When the size of contiguous blocks is small,
   Multi-W performance degrades significantly";
4. for 1-2 columns all new schemes follow the same eager path with
   identical performance, perceivably better than Generic.
"""

import pytest

from repro.bench.figures import fig08


def test_fig08_latency(run_figure):
    cols, out = run_figure(fig08)
    gen = out["generic"].y
    bcs = out["bc-spup"].y
    rwg = out["rwg-up"].y
    mw = out["multi-w"].y

    # (1) BC-SPUP consistently better than Generic; >= 1.3x at 1-2 MB
    for i in range(len(cols)):
        assert bcs[i] <= gen[i] * 1.005, cols[i]
    big = cols.index(2048)
    assert gen[big] / bcs[big] >= 1.3

    # (2) RWG-UP up to ~1.8x, better than Generic for blocks >= 128 B
    assert max(g / r for g, r in zip(gen, rwg)) == pytest.approx(1.8, abs=0.35)
    for i, c in enumerate(cols):
        if c >= 32:
            assert rwg[i] < gen[i]

    # (3) Multi-W: large win at large columns, significant degradation at
    # small blocks (worse than Generic below the crossover)
    assert gen[big] / mw[big] >= 2.3
    small = cols.index(32)
    assert mw[small] > gen[small]
    # crossover exists between 32 and 2048 columns
    crossed = [c for i, c in enumerate(cols) if 32 <= c and mw[i] < gen[i]]
    assert crossed, "Multi-W never overtook Generic"

    # (4) eager region: all new schemes identical, better than Generic
    for i, c in enumerate(cols):
        if c <= 2:
            assert bcs[i] == pytest.approx(rwg[i]) == pytest.approx(mw[i])
            assert bcs[i] < gen[i]
