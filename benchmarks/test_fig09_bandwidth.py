"""Figure 9 — streaming bandwidth (Section 8.2).

Paper's observations to reproduce:

1. "Both BC-SPUP and RWG-UP give a factor of 1.2-2.0 improvement over
   the Generic scheme";
2. "Multi-W gives a factor of 1.4-3.6 improvement ... when the number
   of columns is larger than 64"; between 4 and 64 columns "Multi-W
   performance degrades a lot because of the large number of RDMA Write
   operations and the small message size in each operation".
"""

from repro.bench.figures import fig09


def test_fig09_bandwidth(run_figure):
    cols, out = run_figure(fig09)
    gen = out["generic"].y
    bcs = out["bc-spup"].y
    rwg = out["rwg-up"].y
    mw = out["multi-w"].y
    rndv = [i for i, c in enumerate(cols) if c >= 32]  # rendezvous regime

    # (1) BC-SPUP and RWG-UP land in roughly the 1.2-2.0x band
    for i in rndv:
        assert 1.1 < bcs[i] / gen[i] < 2.6, (cols[i], bcs[i] / gen[i])
        assert 1.1 < rwg[i] / gen[i] < 2.6, (cols[i], rwg[i] / gen[i])

    # (2) Multi-W: strong wins beyond the crossover (the paper's 1.4-3.6x
    # band starts at 64 columns; our crossover lands one step later, at
    # ~128 columns — see EXPERIMENTS.md)
    for i, c in enumerate(cols):
        if c >= 256:
            assert mw[i] / gen[i] >= 1.2, (c, mw[i] / gen[i])
        if c == 128:
            assert mw[i] / gen[i] >= 1.0, (c, mw[i] / gen[i])
    big = cols.index(2048)
    assert mw[big] / gen[big] >= 2.0
    degraded = [c for i, c in enumerate(cols) if 4 <= c <= 64 and mw[i] < gen[i]]
    assert degraded, "Multi-W never degraded in the 4-64 column range"

    # sanity: everything stays below the wire's capability
    for series in (gen, bcs, rwg, mw):
        assert all(v < 900 for v in series)
