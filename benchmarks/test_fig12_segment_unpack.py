"""Figure 12 — effect of segment unpack in RWG-UP (Section 8.4).

Paper's observation: "a factor of 1.3 improvement in bandwidth can be
achieved using the segment unpack" — unpacking each segment as it
arrives overlaps unpacking with communication, instead of waiting for
the whole message.
"""

import pytest

from repro.bench.figures import fig12


def test_fig12_segment_unpack(run_figure):
    cols, out = run_figure(fig12)
    seg = out["seg-unpack"].y
    whole = out["whole-unpack"].y

    # segment unpack never hurts and reaches a ~1.3x gain at large sizes
    for i in range(len(cols)):
        assert seg[i] >= whole[i] * 0.99, cols[i]
    factors = [s / w for s, w in zip(seg, whole) if s and w]
    assert max(factors) == pytest.approx(1.3, abs=0.25), max(factors)
    big = [f for c, f in zip(cols, factors) if c >= 512]
    assert all(f > 1.1 for f in big), big
