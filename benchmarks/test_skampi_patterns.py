"""SKaMPI-style datatype pattern benchmark (paper Section 8, ref [25]).

Checks that every scheme handles every datatype *shape* (including
nested and irregular constructions) and that the scheme ranking follows
the block-size story across shapes.
"""

import pytest

from repro.bench.skampi import PATTERNS, make_pattern, skampi_sweep


def test_skampi_patterns(benchmark):
    patterns, out = benchmark.pedantic(skampi_sweep, rounds=1, iterations=1)
    idx = {name: i for i, name in enumerate(patterns)}

    # every scheme produced a finite latency for every shape
    for series in out.values():
        assert len(series.y) == len(patterns)
        assert all(v > 0 for v in series.y)

    gen = out["generic"].y
    bcs = out["bc-spup"].y
    mw = out["multi-w"].y
    ada = out["adaptive"].y

    # BC-SPUP never loses to Generic on any shape
    for i in range(len(patterns)):
        assert bcs[i] <= gen[i] * 1.01, patterns[i]

    # Multi-W wins the big-block shapes, loses the tiny-block one
    assert mw[idx["vector-large"]] < gen[idx["vector-large"]]
    assert mw[idx["vector-small"]] > mw[idx["vector-large"]]

    # the adaptive selector never loses to Generic on any shape
    for i in range(len(patterns)):
        assert ada[i] <= gen[i] * 1.01, patterns[i]


def test_patterns_carry_equal_payload():
    sizes = {name: make_pattern(name).size for name in PATTERNS}
    target = sizes["contig"]
    for name, size in sizes.items():
        assert size == pytest.approx(target, rel=0.05), (name, size)
