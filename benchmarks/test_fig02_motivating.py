"""Figure 2 — the motivating example (Section 3.2).

Paper's observations to reproduce:

1. "no more than one quarter of contiguous communication performance is
   achieved in any scheme" (for the noncontiguous strategies, at large
   sizes where the asymptotic ratio is meaningful);
2. "Manual performs a little better than Datatype" (datatype-processing
   overhead);
3. "Datatype plus registration and deregistration (DT+reg) is much
   slower than Datatype";
4. "Multiple performs a little better when the block size is large
   enough", but collapses for small blocks.
"""

from repro.bench.figures import fig02


def test_fig02_motivating_example(run_figure):
    cols, out = run_figure(fig02)
    contig = out["Contig"].y
    datatype = out["Datatype"].y
    dt_reg = out["DT+reg"].y
    manual = out["Manual"].y
    multiple = out["Multiple"].y
    large = [i for i, c in enumerate(cols) if c >= 64]

    # (1) every noncontiguous strategy stays well under half of Contig at
    # large sizes ("no more than one quarter" in the paper)
    for i in large:
        for series in (datatype, dt_reg, manual, multiple):
            assert contig[i] / series[i] < 0.45, (cols[i], contig[i], series[i])

    # (2) Manual beats Datatype (by a little) wherever rendezvous is used
    for i in large:
        assert manual[i] < datatype[i] * 1.02

    # (3) DT+reg is much slower than Datatype in the rendezvous regime
    for i in large:
        assert dt_reg[i] > datatype[i] * 1.15

    # (4) Multiple loses badly at small blocks, wins at the largest
    small = cols.index(8)
    assert multiple[small] > datatype[small] * 2
    big = cols.index(2048)
    assert multiple[big] < datatype[big]
