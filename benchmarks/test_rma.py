"""One-sided vs two-sided datatype communication.

RMA put needs no rendezvous handshake — the origin already knows the
target layout — so for repeated strided updates it undercuts even the
best two-sided scheme by the control round trip, at the price of
explicit synchronization (the fence amortizes over many operations).
This is the setting the datatype cache was invented in ([14], Section
5.4.2).
"""

import functools

import pytest

from repro import Cluster, types
from repro.bench.report import Series, print_table, write_csv

COLS = (64, 256, 1024, 2048)


def _put_latency(cols: int, ops_per_fence: int = 8, epochs: int = 3) -> float:
    import numpy as np

    dt = types.vector(128, cols, 4096, types.INT)
    span = dt.flatten(1).span + 64

    def origin(mpi):
        src = mpi.alloc(span)
        wbase = mpi.alloc(span)
        win = yield from mpi.win_create(wbase, span)
        yield from mpi.win_fence(win)
        t0 = mpi.now
        for _ in range(epochs):
            for _ in range(ops_per_fence):
                yield from mpi.put(win, 1, src, dt)
            yield from mpi.win_fence(win)
        return (mpi.now - t0) / (epochs * ops_per_fence)

    def target(mpi):
        src = mpi.alloc(span)
        wbase = mpi.alloc(span)
        win = yield from mpi.win_create(wbase, span)
        yield from mpi.win_fence(win)
        for _ in range(epochs):
            yield from mpi.win_fence(win)

    return Cluster(2).run([origin, target]).values[0]


def _send_latency(cols: int, scheme: str = "multi-w", iters: int = 8) -> float:
    dt = types.vector(128, cols, 4096, types.INT)
    span = dt.flatten(1).span + 64

    def rank0(mpi):
        buf = mpi.alloc(span)
        yield from mpi.send(buf, dt, 1, dest=1, tag=0)  # warm
        t0 = mpi.now
        for k in range(iters):
            yield from mpi.send(buf, dt, 1, dest=1, tag=1 + k)
        return (mpi.now - t0) / iters

    def rank1(mpi):
        buf = mpi.alloc(span)
        yield from mpi.recv(buf, dt, 1, source=0, tag=0)
        for k in range(iters):
            yield from mpi.recv(buf, dt, 1, source=0, tag=1 + k)

    return Cluster(2, scheme=scheme).run([rank0, rank1]).values[0]


@functools.lru_cache(maxsize=None)
def sweep():
    out = {"put": Series("RMA put"), "send": Series("Multi-W send")}
    for cols in COLS:
        out["put"].y.append(_put_latency(cols))
        out["send"].y.append(_send_latency(cols))
    series = list(out.values())
    print_table(
        "One-sided put vs two-sided Multi-W send, per strided update (us)",
        "cols", list(COLS), series, unit="us", baseline="Multi-W send",
    )
    write_csv("results/rma_vs_send.csv", "cols", list(COLS), series)
    return list(COLS), out


def test_rma_put_vs_send(benchmark):
    cols, out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for i, c in enumerate(cols):
        # amortized over an epoch, put never loses to the best two-sided
        # scheme: same zero-copy data path minus the per-message handshake
        assert out["put"].y[i] < out["send"].y[i] * 1.05, c
    # the advantage is most visible for the smallest message (handshake
    # is a larger fraction)
    gain0 = out["send"].y[0] / out["put"].y[0]
    gain_last = out["send"].y[-1] / out["put"].y[-1]
    assert gain0 > gain_last
