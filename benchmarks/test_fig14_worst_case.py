"""Figure 14 — latency in the worst case of buffer usage (Section 8.6).

Every operation allocates, registers and deregisters its buffers on the
fly: no pin-down cache for user buffers, no pre-registered segment
pools, fresh staging buffers in Generic.

Paper's observations to reproduce:

1. "When the number of columns is less than 512, both RWG-UP and Multi-W
   schemes perform very poor[ly]" — they register/deregister the whole
   user array (OGR merges the small gaps) while the message itself is
   small;
2. "When the number of columns increases ... both RWG-UP and Multi-W
   perform better than Generic due to reduced memory copies";
3. "In this test, BC-SPUP always performs better than Generic ... the
   benefits completely come from the overlap between packing,
   communication, and unpacking."
"""

from repro.bench.figures import fig14


def test_fig14_worst_case(run_figure):
    cols, out = run_figure(fig14)
    gen = out["generic"].y
    bcs = out["bc-spup"].y
    rwg = out["rwg-up"].y
    mw = out["multi-w"].y

    # (1) user-buffer registration dominates the RDMA schemes at small
    # column counts: clearly worse than Generic below 256 columns
    for i, c in enumerate(cols):
        if 32 <= c <= 128:
            assert rwg[i] > gen[i], (c, rwg[i], gen[i])
            assert mw[i] > gen[i], (c, mw[i], gen[i])

    # (2) both cross over as the copies grow: better than Generic at 2048
    big = cols.index(2048)
    assert rwg[big] < gen[big]
    assert mw[big] < gen[big]

    # (3) BC-SPUP is never worse than Generic
    for i in range(len(cols)):
        assert bcs[i] <= gen[i] * 1.01, cols[i]
