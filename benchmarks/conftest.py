"""Shared benchmark configuration.

Every benchmark target runs one full figure sweep (simulated time inside,
wall time measured by pytest-benchmark) and asserts the paper's
qualitative claims about that figure.  Sweeps are cached per session
(``functools.lru_cache`` on the figure functions), so asking for the same
figure twice costs nothing.
"""

import pytest


@pytest.fixture(autouse=True)
def _no_fault_injection(monkeypatch):
    """Benchmarks measure the fault-free cost model; a leaked
    REPRO_FAULT_PROFILE would poison every cached sweep."""
    monkeypatch.delenv("REPRO_FAULT_PROFILE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)


@pytest.fixture
def run_figure(benchmark):
    """Run a cached figure sweep under pytest-benchmark; returns the
    figure's (x_values, series) result."""

    def runner(fn, *args):
        return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)

    return runner
