"""Figure 11 — MPI_Alltoall with the Figure 10 struct datatype on 8
processes (Section 8.3).

Paper's observations to reproduce:

1. "all BC-SPUP, RWG-UP and Multi-W schemes outperform the Generic
   scheme";
2. improvement factors: BC-SPUP min 1.2 / max 1.5 / avg 1.3; RWG-UP
   min 1.2 / max 1.4 / avg 1.3; Multi-W min 1.8 / max 2.1 / avg 2.0;
3. "For this datatype, it can be observed that Multi-W is a good
   choice."
"""

import pytest

from repro.bench.figures import fig11


def _stats(gen, series):
    factors = [g / s for g, s in zip(gen, series)]
    return min(factors), max(factors), sum(factors) / len(factors)


def test_fig11_alltoall(run_figure):
    xs, out = run_figure(fig11)
    gen = out["generic"].y
    bcs = out["bc-spup"].y
    rwg = out["rwg-up"].y
    mw = out["multi-w"].y

    # (1) every scheme beats Generic at every point
    for i in range(len(xs)):
        assert bcs[i] < gen[i]
        assert rwg[i] < gen[i]
        assert mw[i] < gen[i]

    # (2) improvement bands (generous tolerances around the paper's
    # min/avg/max: BC-SPUP ~1.3, RWG-UP ~1.3, Multi-W ~2.0 average)
    lo, hi, avg = _stats(gen, bcs)
    assert 1.05 < lo and hi < 2.2 and 1.1 < avg < 1.9, (lo, hi, avg)
    lo, hi, avg = _stats(gen, rwg)
    assert 1.05 < lo and hi < 2.2 and 1.1 < avg < 1.9, (lo, hi, avg)
    lo, hi, avg = _stats(gen, mw)
    assert 1.3 < lo and avg > 1.6, (lo, hi, avg)

    # (3) Multi-W is the best choice for this datatype
    for i in range(len(xs)):
        assert mw[i] <= min(bcs[i], rwg[i])
