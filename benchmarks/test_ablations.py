"""Ablation benchmarks: design choices the paper discusses but does not
plot, measured end-to-end (see repro.bench.ablations for the rationale
behind each)."""

import pytest

from repro.bench import ablations


def test_ablation_segment_size(run_figure):
    """Too-small segments drown in per-segment overheads; the paper's
    128 KB choice should be at or near the best latency."""
    sizes, out = run_figure(ablations.segment_size)
    lat = out["latency"].y
    assert lat[0] > lat[-1]  # 8 KB segments clearly worse than 128 KB
    assert min(lat) >= lat[-1] * 0.9  # 128 KB within 10% of the sweep's best


def test_ablation_registration_strategies(run_figure):
    """Section 5.4.1: per-block registration pays a base cost per block;
    whole-buffer registration pins the gaps; OGR should never lose to
    either by more than noise."""
    cols, out = run_figure(ablations.registration_strategies)
    for i, c in enumerate(cols):
        ogr = out["ogr"].y[i]
        per_block = out["per-block"].y[i]
        whole = out["whole"].y[i]
        assert ogr <= per_block * 1.02, (c, ogr, per_block)
        assert ogr <= whole * 1.02, (c, ogr, whole)
    # per-block registration is painful for the 128-block vector
    assert out["per-block"].y[0] > out["ogr"].y[0] * 1.3


def test_ablation_datatype_cache(run_figure):
    """The cache removes the per-operation layout shipment; warm-path
    latency must never be worse with the cache, and the benefit should
    be visible (the 128-block layout is 2 KB of control traffic)."""
    cols, out = run_figure(ablations.datatype_cache)
    for i in range(len(cols)):
        assert out["cached"].y[i] <= out["uncached"].y[i] * 1.005
    gains = [
        u / c for u, c in zip(out["uncached"].y, out["cached"].y)
    ]
    assert max(gains) > 1.005


def test_ablation_adaptive(run_figure):
    """The selector tracks the best fixed scheme and never loses to the
    Generic baseline."""
    cols, out = run_figure(ablations.adaptive_vs_fixed)
    for i, c in enumerate(cols):
        fixed_best = min(
            out[s].y[i] for s in ("generic", "bc-spup", "rwg-up", "multi-w")
        )
        assert out["adaptive"].y[i] <= out["generic"].y[i] * 1.005
        assert out["adaptive"].y[i] <= fixed_best * 1.30, (c,)


def test_ablation_prrs(run_figure):
    """Section 5.2's prediction: P-RRS trails RWG-UP (read bandwidth and
    per-segment control round trips)."""
    cols, out = run_figure(ablations.prrs_vs_rwgup)
    for i in range(len(cols)):
        assert out["p-rrs"].y[i] > out["rwg-up"].y[i]
    # ... but not catastrophically: it beats nothing by orders of magnitude
    for i in range(len(cols)):
        assert out["p-rrs"].y[i] < out["rwg-up"].y[i] * 2.5


def test_ablation_hybrid_bimodal(run_figure):
    """The Section 10 future-work direction, implemented and measured:
    on bimodal datatypes the per-piece hybrid beats every fixed scheme,
    and Multi-W (per-block descriptors) is the worst RDMA scheme."""
    xs, out = run_figure(ablations.hybrid_bimodal)
    for i, tiny in enumerate(xs):
        fixed_best = min(
            out[s].y[i] for s in ("generic", "bc-spup", "rwg-up", "multi-w")
        )
        assert out["hybrid"].y[i] < fixed_best, (tiny,)
    # with thousands of tiny blocks, Multi-W drowns in startups
    last = len(xs) - 1
    assert out["multi-w"].y[last] > out["rwg-up"].y[last]


def test_ablation_eager_threshold(run_figure):
    """Below every threshold the paths coincide; messages that fall
    between two thresholds reveal the eager-vs-rendezvous seam."""
    cols, out = run_figure(ablations.eager_threshold)
    t_small, t_mid, t_big = sorted(out)
    # 2-column messages (1 KB) are eager under every threshold: identical
    i = cols.index(2)
    vals = [out[t].y[i] for t in (t_small, t_mid, t_big)]
    assert max(vals) == pytest.approx(min(vals))
    # a 64 KB message (128 cols) is rendezvous for every threshold too
    i = cols.index(128)
    vals = [out[t].y[i] for t in (t_small, t_mid, t_big)]
    assert max(vals) == pytest.approx(min(vals), rel=0.02)
    # in between, at least one size separates the thresholds
    diffs = [
        max(out[t].y[i] for t in out) - min(out[t].y[i] for t in out)
        for i, c in enumerate(cols)
        if 8 <= c <= 64
    ]
    assert max(diffs) > 1.0


def test_ablation_window_sweep(run_figure):
    """Bandwidth rises with pipeline depth and saturates well before the
    paper's 100-message window."""
    windows, out = run_figure(ablations.window_sweep)
    for s in out.values():
        assert s.y[0] < s.y[-1]  # depth 1 is latency-bound
        # saturation: the last doubling gains little
        assert s.y[-1] < s.y[-2] * 1.15
    # import-time sanity: measured with the same message, deeper windows
    # never reduce bandwidth by more than jitter
    for s in out.values():
        for a, b in zip(s.y, s.y[1:]):
            assert b > a * 0.85


def test_ablation_network_presets(run_figure):
    """The paper's premise (Section 1): overlap matters *because* the
    wire is comparable to memcpy.  A much slower wire shrinks the copy
    penalty (schemes converge); a faster wire widens Multi-W's lead."""
    names, out = run_figure(ablations.network_presets)
    t = {name: {s: out[s].y[i] for s in out} for i, name in enumerate(names)}
    # slow wire: copies hide behind the wire; generic within 40% of best
    slow = t["slow-wire"]
    assert slow["generic"] < min(slow.values()) * 1.4
    # fast wire: zero-copy advantage grows vs the testbed
    fast_gain = t["fast-wire"]["generic"] / t["fast-wire"]["multi-w"]
    testbed_gain = t["testbed"]["generic"] / t["testbed"]["multi-w"]
    assert fast_gain > testbed_gain
