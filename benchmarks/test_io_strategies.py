"""Noncontiguous I/O strategy benchmark (the abstract's "other domains"
claim, and the authors' PVFS work [33] this paper builds on).

Sweeps the client-memory block size for a fixed 1 MB file write/read and
compares list-I/O ("pack") against RDMA write-gather / read-scatter
("rdma").  Expected shape, per [33]: RDMA wins by eliminating the client
copy, and its margin narrows as blocks shrink (per-SGE/per-descriptor
costs grow while the copy cost of packing stays flat).
"""

import functools

import pytest

from repro import types
from repro.bench.report import Series, print_table, write_csv
from repro.io import StorageCluster

TOTAL_INTS = 1 << 18  # 1 MB of data
BLOCK_INTS = (16, 64, 256, 1024, 4096, 16384)


def _measure(block_ints: int, strategy: str, op: str) -> float:
    nblocks = TOTAL_INTS // block_ints
    dt = types.vector(nblocks, block_ints, 2 * block_ints, types.INT)
    cluster = StorageCluster(1)
    client = cluster.clients[0]
    addr = client.node.memory.alloc(dt.extent + 64)

    def prog(io):
        fh = yield from io.open("f", dt.size)
        yield from io.write(fh, 0, addr, dt, strategy=strategy)  # warm
        t0 = io.sim.now
        if op == "write":
            yield from io.write(fh, 0, addr, dt, strategy=strategy)
        else:
            yield from io.read(fh, 0, addr, dt, strategy=strategy)
        return io.sim.now - t0

    return cluster.run(prog)[0]


@functools.lru_cache(maxsize=None)
def sweep():
    out = {
        "write-pack": Series("write pack"),
        "write-rdma": Series("write rdma"),
        "read-pack": Series("read pack"),
        "read-rdma": Series("read rdma"),
    }
    for block_ints in BLOCK_INTS:
        out["write-pack"].y.append(_measure(block_ints, "pack", "write"))
        out["write-rdma"].y.append(_measure(block_ints, "rdma", "write"))
        out["read-pack"].y.append(_measure(block_ints, "pack", "read"))
        out["read-rdma"].y.append(_measure(block_ints, "rdma", "read"))
    xs = [b * 4 for b in BLOCK_INTS]  # block bytes
    series = list(out.values())
    print_table(
        "I/O strategies: 1 MB noncontiguous file access (us)",
        "block (B)", xs, series, unit="us", baseline="write pack",
    )
    write_csv("results/io_strategies.csv", "block_bytes", xs, series)
    return xs, out


def test_io_strategies(benchmark):
    xs, out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    n = len(xs)
    # RDMA eliminates the client copy: faster at every block size here
    for i in range(n):
        assert out["write-rdma"].y[i] < out["write-pack"].y[i]
        assert out["read-rdma"].y[i] < out["read-pack"].y[i]
    # the margin narrows as blocks shrink
    write_gain = [p / r for p, r in zip(out["write-pack"].y, out["write-rdma"].y)]
    assert write_gain[0] < write_gain[-1]
    # reads trail writes (RDMA read bandwidth < write bandwidth)
    big = n - 1
    assert out["read-rdma"].y[big] > out["write-rdma"].y[big]
