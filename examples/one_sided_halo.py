#!/usr/bin/env python3
"""One-sided halo exchange: MPI-2 RMA put with derived datatypes.

The same 2-D halo pattern as ``halo_exchange_2d.py``, but each rank
*puts* its boundary cells directly into the neighbours' halo regions —
no receives, no matching, no handshake.  The origin specifies the
*target* datatype (the neighbour's halo column is a vector into the
neighbour's window), so strided remote updates go as direct RDMA writes.
A fence closes each epoch.

This is the setting where the paper's datatype machinery originated:
Träff's datatype cache ([14], cited in Section 5.4.2) was built for
exactly this one-sided case.

Run:  python examples/one_sided_halo.py
"""

import numpy as np

from repro import Cluster, types

PX, PY = 2, 2
LOCAL = 192
ITERS = 3


def neighbours(rank):
    py, px = divmod(rank, PX)
    return (
        ((py - 1) % PY) * PX + px,  # north
        ((py + 1) % PY) * PX + px,  # south
        py * PX + (px - 1) % PX,  # west
        py * PX + (px + 1) % PX,  # east
    )


def program(mpi):
    n = LOCAL + 2
    item = 8
    tile = mpi.alloc_array((n, n), np.float64)
    tile.array[1:-1, 1:-1] = mpi.rank + 1
    win = yield from mpi.win_create(tile.addr, n * n * item)
    north, south, west, east = neighbours(mpi.rank)

    def disp(r, c):  # byte displacement of cell (r, c) inside the window
        return (r * n + c) * item

    row = types.contiguous(LOCAL, types.DOUBLE)
    col = types.vector(LOCAL, 1, n, types.DOUBLE)

    yield from mpi.win_fence(win)
    t0 = mpi.now
    for _ in range(ITERS):
        # put my top boundary row into my north neighbour's BOTTOM halo
        yield from mpi.put(win, north, tile.addr + disp(1, 1), row,
                           target_disp=disp(n - 1, 1))
        # my bottom boundary -> south neighbour's top halo
        yield from mpi.put(win, south, tile.addr + disp(n - 2, 1), row,
                           target_disp=disp(0, 1))
        # my left boundary column -> west neighbour's right halo column
        yield from mpi.put(win, west, tile.addr + disp(1, 1), col,
                           target_disp=disp(1, n - 1), target_dt=col)
        # my right boundary -> east neighbour's left halo column
        yield from mpi.put(win, east, tile.addr + disp(1, n - 2), col,
                           target_disp=disp(1, 0), target_dt=col)
        yield from mpi.win_fence(win)
    elapsed = mpi.now - t0

    assert (tile.array[0, 1:-1] == north + 1).all()
    assert (tile.array[-1, 1:-1] == south + 1).all()
    assert (tile.array[1:-1, 0] == west + 1).all()
    assert (tile.array[1:-1, -1] == east + 1).all()
    return elapsed


def main():
    print(f"{PX}x{PY} grid, {LOCAL}x{LOCAL} double tiles, {ITERS} one-sided "
          "halo epochs (put + fence)\n")
    cluster = Cluster(PX * PY)
    result = cluster.run(program)
    worst = max(result.values)
    print(f"total {worst:.1f} us, {worst / ITERS:.1f} us per epoch — all "
          "halos verified via direct RDMA puts into neighbour windows.")


if __name__ == "__main__":
    main()
