#!/usr/bin/env python3
"""2-D halo exchange with derived datatypes — the paper's motivating
application pattern ("(de)composition of multi-dimensional data volumes",
finite-element codes).

A global field is block-decomposed over a Px x Py process grid.  Each
iteration, every rank exchanges one-cell-deep halos with its four
neighbours:

* north/south halos are **contiguous** rows;
* east/west halos are **noncontiguous** columns, described by a vector
  datatype — no manual packing anywhere.

The example runs a few exchange iterations under each datatype scheme and
verifies the halos carry the neighbours' data.

Run:  python examples/halo_exchange_2d.py
"""

import numpy as np

from repro import Cluster, types

PX, PY = 2, 2  # process grid
LOCAL = 256  # local tile is LOCAL x LOCAL doubles (plus halo ring)
ITERS = 3


def neighbours(rank):
    """(north, south, west, east) ranks on a periodic grid."""
    py, px = divmod(rank, PX)
    return (
        ((py - 1) % PY) * PX + px,
        ((py + 1) % PY) * PX + px,
        py * PX + (px - 1) % PX,
        py * PX + (px + 1) % PX,
    )


def make_program():
    n = LOCAL + 2  # tile plus halo ring

    def program(mpi):
        tile = mpi.alloc_array((n, n), np.float64)
        tile.array[1:-1, 1:-1] = mpi.rank + 1  # interior holds our rank id
        row = types.contiguous(LOCAL, types.DOUBLE)
        col = types.vector(LOCAL, 1, n, types.DOUBLE)
        north, south, west, east = neighbours(mpi.rank)
        itemsize = 8

        def at(r, c):
            return tile.addr + (r * n + c) * itemsize

        t0 = mpi.now
        for _ in range(ITERS):
            reqs = []
            # post halo receives: rows from north/south, columns from
            # west/east (noncontiguous!)
            for args in (
                (at(0, 1), row, 1, north, 0),
                (at(n - 1, 1), row, 1, south, 1),
                (at(1, 0), col, 1, west, 2),
                (at(1, n - 1), col, 1, east, 3),
            ):
                r = yield from mpi.irecv(*args)
                reqs.append(r)
            # send our boundary cells outward (tags match the neighbour's
            # receive direction)
            for args in (
                (at(1, 1), row, 1, north, 1),
                (at(n - 2, 1), row, 1, south, 0),
                (at(1, 1), col, 1, west, 3),
                (at(1, n - 2), col, 1, east, 2),
            ):
                r = yield from mpi.isend(*args)
                reqs.append(r)
            yield from mpi.waitall(reqs)
        elapsed = mpi.now - t0
        # verify: each halo now holds the neighbour's rank id
        assert (tile.array[0, 1:-1] == north + 1).all()
        assert (tile.array[-1, 1:-1] == south + 1).all()
        assert (tile.array[1:-1, 0] == west + 1).all()
        assert (tile.array[1:-1, -1] == east + 1).all()
        return elapsed

    return program


def main():
    print(f"{PX}x{PY} process grid, {LOCAL}x{LOCAL} double tiles, "
          f"{ITERS} halo-exchange iterations")
    print("East/west halos are vector datatypes "
          f"({LOCAL} blocks of 8 B, stride {8 * (LOCAL + 2)} B)\n")
    print(f"{'scheme':>10} {'total (us)':>12} {'per iter (us)':>14}")
    for scheme in ("generic", "bc-spup", "rwg-up", "multi-w", "adaptive"):
        cluster = Cluster(PX * PY, scheme=scheme)
        result = cluster.run(make_program())
        worst = max(result.values)
        print(f"{scheme:>10} {worst:12.1f} {worst / ITERS:14.1f}")
    print("\nAll halos verified on every rank.")


if __name__ == "__main__":
    main()
