#!/usr/bin/env python3
"""Irregular particle exchange: datatypes that change every iteration.

The paper's happy cases reuse one datatype (the cache pays once) and one
buffer (registration amortizes).  Particle codes are the unhappy case
the paper's Section 6 worries about: the set of particles leaving a rank
changes every step, so the hindexed datatype describing them is *fresh*
each time — the Multi-W layout shipment repeats, registration churn is
real, and the adaptive selector's job gets interesting.

Each iteration every rank picks a random subset of its particle array
(seeded per iteration), builds an hindexed datatype over those slots,
and exchanges with its ring neighbour.  We compare schemes under this
adversarial usage.

Run:  python examples/particle_exchange.py
"""

import numpy as np

from repro import Cluster, types

NRANKS = 4
NPARTICLES = 4096  # per rank
PARTICLE_BYTES = 48  # position, velocity, id, ...
ITERS = 4
LEAVE_FRACTION = 0.25


def leaving_datatype(seed):
    """An hindexed type over a random quarter of the particle slots."""
    rng = np.random.default_rng(seed)
    nleave = int(NPARTICLES * LEAVE_FRACTION)
    slots = np.sort(rng.choice(NPARTICLES, size=nleave, replace=False))
    disps = (slots * PARTICLE_BYTES).tolist()
    lengths = [PARTICLE_BYTES] * nleave
    return types.hindexed(lengths, disps, types.BYTE)


def make_program():
    def program(mpi):
        right = (mpi.rank + 1) % NRANKS
        left = (mpi.rank - 1) % NRANKS
        particles = mpi.alloc(NPARTICLES * PARTICLE_BYTES)
        inbox = mpi.alloc(NPARTICLES * PARTICLE_BYTES)
        mpi.node.memory.view(particles, NPARTICLES * PARTICLE_BYTES)[:] = (
            mpi.rank + 1
        )
        t0 = mpi.now
        for it in range(ITERS):
            # the leaving set differs per (iteration, rank): fresh types
            send_dt = leaving_datatype(seed=1000 * it + mpi.rank)
            recv_dt = leaving_datatype(seed=1000 * it + left)
            sreq = yield from mpi.isend(particles, send_dt, 1, right, it)
            rreq = yield from mpi.irecv(inbox, recv_dt, 1, left, it)
            yield from mpi.waitall([sreq, rreq])
            # verify: every received slot carries the left neighbour's id
            for off, ln in recv_dt.flatten(1).blocks():
                blk = mpi.node.memory.view(inbox + off, ln)
                assert (blk == left + 1).all()
        return mpi.now - t0

    return program


def main():
    nleave = int(NPARTICLES * LEAVE_FRACTION)
    print(
        f"{NRANKS} ranks on a ring; {nleave} of {NPARTICLES} particles "
        f"({PARTICLE_BYTES} B each) leave per iteration, {ITERS} iterations."
    )
    print("The leaving set — and therefore the datatype — is different "
          "every time.\n")
    print(f"{'scheme':>10} {'total (us)':>12}  layout shipments")
    for scheme in ("generic", "bc-spup", "rwg-up", "multi-w", "adaptive"):
        cluster = Cluster(NRANKS, scheme=scheme)
        result = cluster.run(make_program())
        worst = max(result.values)
        shipments = sum(c.dt_cache.misses for c in cluster.contexts)
        print(f"{scheme:>10} {worst:12.1f}  {shipments:4d}")
    print("\nFresh datatypes defeat the Multi-W layout cache (one shipment "
          "per message); the pack-based schemes shrug.")


if __name__ == "__main__":
    main()
