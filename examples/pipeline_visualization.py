#!/usr/bin/env python3
"""Visualize the pack/wire/unpack pipeline (the paper's Figure 3) from a
real simulation trace.

One 512 KB vector message is sent under each scheme with interval tracing
on; the script renders a text Gantt chart of CPU copy and wire activity
and prints the measured overlap fractions.  You can *see* why BC-SPUP is
faster than Generic (the stages interleave) and why Multi-W beats both
(there are no copy rows at all).

Run:  python examples/pipeline_visualization.py
"""

from repro import types
from repro.bench.overlap import measure_overlap
from repro.bench.workloads import column_vector
from repro.ib.costmodel import MB
from repro.mpi.world import Cluster

COLS = 1024
WIDTH = 88  # characters across the time axis


def gantt(cluster, total_us):
    """Render traced intervals as rows of a text timeline."""
    rows = [
        ("rank0 pack ", "pack", 0, "#"),
        ("rank0 wire ", "wire", 0, "="),
        ("rank1 unpack", "unpack", 1, "#"),
    ]
    scale = WIDTH / total_us
    lines = []
    for label, cat, node, ch in rows:
        cells = [" "] * WIDTH
        for rec in cluster.tracer.iter_category(cat, node):
            lo = min(WIDTH - 1, int(rec.start * scale))
            hi = min(WIDTH, max(lo + 1, int(rec.end * scale)))
            for i in range(lo, hi):
                cells[i] = ch
        lines.append(f"  {label} |{''.join(cells)}|")
    return "\n".join(lines)


def run_one(scheme):
    dt = column_vector(COLS).datatype
    cluster = Cluster(2, scheme=scheme, trace=True, memory_per_rank=512 * MB)
    span = dt.flatten(1).span + 64

    def rank0(mpi):
        buf = mpi.alloc(span)
        yield from mpi.send(buf, dt, 1, dest=1, tag=0)
        return mpi.now

    def rank1(mpi):
        buf = mpi.alloc(span)
        yield from mpi.recv(buf, dt, 1, source=0, tag=0)
        return mpi.now

    result = cluster.run([rank0, rank1])
    return cluster, result.time_us


def main():
    w = column_vector(COLS)
    print(f"One {w.nbytes >> 10} KB vector message "
          f"({w.nblocks} blocks of {int(w.block_bytes)} B); "
          f"time axis spans each scheme's own transfer\n")
    for scheme in ("generic", "bc-spup", "rwg-up", "multi-w"):
        cluster, total = run_one(scheme)
        print(f"{scheme}  ({total:.0f} us total)")
        print(gantt(cluster, total))
        rep = measure_overlap(scheme, w.datatype)
        print(f"  overlap: pack {rep.pack_hidden_fraction:.0%} hidden, "
              f"unpack {rep.unpack_hidden_fraction:.0%} hidden\n")
    print("'#' = CPU copying (pack/unpack), '=' = HCA injecting on the wire.")
    print("Generic serializes the three stages; BC-SPUP interleaves them "
          "(Figure 3); RWG-UP drops the pack row; Multi-W drops both.")


if __name__ == "__main__":
    main()
