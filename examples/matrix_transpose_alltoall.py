#!/usr/bin/env python3
"""Distributed matrix transpose via MPI_Alltoall with derived datatypes —
the communication core of a parallel FFT (a workload the paper's
introduction names as naturally noncontiguous).

An N x N matrix is row-distributed over P ranks.  The transpose sends
block (i, j) of the row panel to rank j: the send chunks are
**noncontiguous column slabs**, described directly with a vector datatype
so the whole transpose is one Alltoall call — no user packing.  After the
exchange, each rank locally transposes the received blocks.

Run:  python examples/matrix_transpose_alltoall.py
"""

import numpy as np

from repro import Cluster, types

P = 4  # ranks
N = 512  # global matrix is N x N float64
ROWS = N // P  # rows per rank


def make_program():
    cols_per = N // P

    def program(mpi):
        panel = mpi.alloc_array((ROWS, N), np.float64)
        # global value at (r, c) = r * N + c, for easy verification
        first_row = mpi.rank * ROWS
        panel.array[:] = (
            np.arange(first_row, first_row + ROWS)[:, None] * N + np.arange(N)
        )
        recv = mpi.alloc_array((P, ROWS, cols_per), np.float64)

        # send chunk j = columns [j*cols_per, (j+1)*cols_per) of my panel:
        # a vector of ROWS blocks, cols_per elements each, stride N.
        # resized so consecutive chunks are cols_per elements apart.
        slab = types.vector(ROWS, cols_per, N, types.DOUBLE)
        send_chunk = types.resized(slab, lb=0, extent=cols_per * 8)
        recv_chunk = types.contiguous(ROWS * cols_per, types.DOUBLE)

        t0 = mpi.now
        yield from mpi.alltoall(panel.addr, send_chunk, 1, recv.addr, recv_chunk, 1)
        elapsed = mpi.now - t0

        # local rearrangement: chunk i holds rank i's rows of my columns
        mine = np.concatenate([recv.array[i] for i in range(P)], axis=0)  # N x cols_per
        transposed = mine.T  # cols_per x N

        # verify against the global transpose
        first_col = mpi.rank * cols_per
        expect = (
            np.arange(N)[None, :] * N
            + np.arange(first_col, first_col + cols_per)[:, None]
        )
        assert np.array_equal(transposed, expect), "transpose corrupted"
        return elapsed

    return program


def main():
    print(f"Transposing a {N}x{N} float64 matrix over {P} ranks "
          f"(row panels of {ROWS}x{N})")
    print(f"Send chunks are vector datatypes: {ROWS} blocks of "
          f"{N // P * 8} B, stride {N * 8} B\n")
    print(f"{'scheme':>10} {'alltoall (us)':>14}")
    for scheme in ("generic", "bc-spup", "rwg-up", "multi-w", "adaptive"):
        cluster = Cluster(P, scheme=scheme)
        result = cluster.run(make_program())
        print(f"{scheme:>10} {max(result.values):14.1f}")
    print("\nTranspose verified on every rank.")


if __name__ == "__main__":
    main()
