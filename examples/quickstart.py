#!/usr/bin/env python3
"""Quickstart: send a noncontiguous column slice between two ranks.

This is the paper's Section 3.2 scenario: transfer ``COLS`` columns of a
128 x 4096 integer array from rank 0 to rank 1 using an MPI vector
datatype, on a simulated InfiniBand cluster.  We run it once per
datatype-communication scheme and print the simulated transfer times.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Cluster, types

ROWS, ROW_LEN, COLS = 128, 4096, 512


def make_programs():
    """Rank programs are generators over the ``mpi`` context."""
    column_type = types.vector(ROWS, COLS, ROW_LEN, types.INT)

    def sender(mpi):
        matrix = mpi.alloc_array((ROWS, ROW_LEN), np.int32)
        matrix.array[:] = np.arange(ROWS * ROW_LEN).reshape(ROWS, ROW_LEN)
        t0 = mpi.now
        yield from mpi.send(matrix.addr, column_type, 1, dest=1, tag=0)
        # second, warm send: registration and datatype caches are hot
        yield from mpi.send(matrix.addr, column_type, 1, dest=1, tag=1)
        return mpi.now - t0

    def receiver(mpi):
        matrix = mpi.alloc_array((ROWS, ROW_LEN), np.int32)
        yield from mpi.recv(matrix.addr, column_type, 1, source=0, tag=0)
        yield from mpi.recv(matrix.addr, column_type, 1, source=0, tag=1)
        expected = np.arange(ROWS * ROW_LEN).reshape(ROWS, ROW_LEN)[:, :COLS]
        assert np.array_equal(matrix.array[:, :COLS], expected)
        return "data verified"

    return [sender, receiver]


def main():
    print(f"Sending {COLS} columns of a {ROWS}x{ROW_LEN} int array "
          f"({ROWS * COLS * 4 // 1024} KB in {ROWS} blocks of {COLS * 4} B)\n")
    print(f"{'scheme':>10} {'two sends (us)':>16}   data check")
    for scheme in ("generic", "bc-spup", "rwg-up", "p-rrs", "multi-w", "adaptive"):
        cluster = Cluster(2, scheme=scheme)
        result = cluster.run(make_programs())
        print(f"{scheme:>10} {result.values[0]:16.1f}   {result.values[1]}")
    print("\nLower is better; 'generic' is the MPICH-derived baseline the "
          "paper improves on.")


if __name__ == "__main__":
    main()
