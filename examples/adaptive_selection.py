#!/usr/bin/env python3
"""Dynamic scheme selection (paper Section 6) in action.

A mixed workload sends datatypes with very different block-size profiles.
The adaptive selector inspects each message's flattened block statistics
and routes it to the scheme the paper's analysis recommends:

* tiny blocks  -> BC-SPUP (RDMA per block would drown in startups),
* medium blocks -> RWG-UP (gather descriptors amortize startups),
* large blocks -> Multi-W (zero copy wins outright).

The example prints the per-message decisions and compares the adaptive
run's total time against every fixed-scheme run.

Run:  python examples/adaptive_selection.py
"""

from repro import Cluster, types
from repro.ib.costmodel import MB

WORKLOAD = [
    ("tiny blocks", types.vector(4096, 8, 64, types.INT)),  # 32 B blocks
    ("medium blocks", types.vector(256, 256, 2048, types.INT)),  # 1 KB blocks
    ("large blocks", types.vector(64, 4096, 8192, types.INT)),  # 16 KB blocks
    ("struct mix", types.struct([64, 512, 4096], [0, 1024, 65536], [types.INT] * 3)),
    ("contiguous", types.contiguous(131072, types.INT)),
]


def make_programs():
    def sender(mpi):
        bufs = [mpi.alloc(dt.flatten(1).span + 64) for _name, dt in WORKLOAD]
        t0 = mpi.now
        for k, (buf, (_name, dt)) in enumerate(zip(bufs, WORKLOAD)):
            yield from mpi.send(buf, dt, 1, dest=1, tag=k)
        return mpi.now - t0

    def receiver(mpi):
        bufs = [mpi.alloc(dt.flatten(1).span + 64) for _name, dt in WORKLOAD]
        for k, (buf, (_name, dt)) in enumerate(zip(bufs, WORKLOAD)):
            yield from mpi.recv(buf, dt, 1, source=0, tag=k)

    return [sender, receiver]


def main():
    print("Workload block-size profiles:")
    for name, dt in WORKLOAD:
        flat = dt.flatten(1)
        print(
            f"  {name:>13}: {dt.size >> 10:5d} KB in {flat.nblocks:5d} blocks, "
            f"mean block {flat.mean_block:9.0f} B"
        )

    # adaptive run, with the selection log
    cluster = Cluster(2, scheme="adaptive", memory_per_rank=512 * MB)
    result = cluster.run(make_programs())
    adaptive_time = result.values[0]
    selector = cluster.contexts[0].get_scheme("adaptive")
    print("\nAdaptive selector decisions:")
    for (name, _dt), choice in zip(WORKLOAD, selector.choices.values()):
        print(f"  {name:>13} -> {choice}")
    print("  (contiguous messages bypass the selector: the runtime always "
          "takes the zero-copy rendezvous path for them)")

    print(f"\n{'scheme':>10} {'total (us)':>12}")
    print(f"{'adaptive':>10} {adaptive_time:12.1f}")
    for scheme in ("generic", "bc-spup", "rwg-up", "multi-w"):
        cluster = Cluster(2, scheme=scheme, memory_per_rank=512 * MB)
        t = cluster.run(make_programs()).values[0]
        print(f"{scheme:>10} {t:12.1f}")
    print("\nThe adaptive run should track the best fixed scheme per regime.")


if __name__ == "__main__":
    main()
