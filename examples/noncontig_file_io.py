#!/usr/bin/env python3
"""Noncontiguous file I/O over RDMA — the paper's closing claim applied.

"Techniques discussed in this paper can be applied to other domains such
as file and storage systems to support efficient noncontiguous I/O
access."  This example checkpoints a strided in-memory dataset (every
rank's slice of a 2-D array, described by a vector datatype) to a
PVFS-style storage server, comparing:

* ``pack``  — list-I/O baseline: pack locally, ship contiguously;
* ``rdma``  — RDMA write gather straight from user memory into the file
  region (writes) / RDMA read scatter back (reads), zero copy.

The server CPU never touches the data path in either case; only the
client-side copies differ.

Run:  python examples/noncontig_file_io.py
"""

import numpy as np

from repro import types
from repro.io import StorageCluster

ROWS, ROW_LEN, COLS = 256, 2048, 512  # checkpoint 512 columns per client
NCLIENTS = 2


def main():
    dt = types.vector(ROWS, COLS, ROW_LEN, types.DOUBLE)
    print(
        f"Checkpointing {dt.size >> 20} MB per client "
        f"({ROWS} blocks of {COLS * 8} B) to a storage server, "
        f"{NCLIENTS} clients\n"
    )
    results = {}
    for strategy in ("pack", "rdma"):
        cluster = StorageCluster(NCLIENTS)
        addrs = []
        for client in cluster.clients:
            addr = client.node.memory.alloc(dt.extent + 64)
            view = client.node.memory.view_as(addr, (ROWS, ROW_LEN), np.float64)
            view[:] = client.client_id
            addrs.append(addr)

        def make_prog(idx):
            def prog(io):
                fh = yield from io.open(f"ckpt{idx}", dt.size)
                # warm write (registration), then a timed write + readback
                yield from io.write(fh, 0, addrs[idx], dt, strategy=strategy)
                t0 = io.sim.now
                yield from io.write(fh, 0, addrs[idx], dt, strategy=strategy)
                write_us = io.sim.now - t0
                t0 = io.sim.now
                yield from io.read(fh, 0, addrs[idx], dt, strategy=strategy)
                read_us = io.sim.now - t0
                return write_us, read_us

            return prog

        values = cluster.run([make_prog(i) for i in range(NCLIENTS)])
        # verify the checkpoints landed intact
        for i, client in enumerate(cluster.clients):
            data = cluster.server.file_view(f"ckpt{i}").view(np.float64)
            assert (data == client.client_id).all()
        results[strategy] = values

    print(f"{'strategy':>8} {'write (us)':>12} {'read (us)':>12}   (worst client)")
    for strategy, values in results.items():
        w = max(v[0] for v in values)
        r = max(v[1] for v in values)
        print(f"{strategy:>8} {w:12.1f} {r:12.1f}")
    w_gain = max(v[0] for v in results["pack"]) / max(v[0] for v in results["rdma"])
    print(f"\nRDMA gather/scatter saves the client-side copy: "
          f"{w_gain:.2f}x faster checkpoint writes.  All data verified.")


if __name__ == "__main__":
    main()
