"""Tests for probe/iprobe and waitany."""

import numpy as np
import pytest

from repro import ANY_TAG, Cluster, types


class TestWaitany:
    def test_returns_first_completion(self):
        dt = types.contiguous(64, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            yield mpi.sim.timeout(100.0)
            yield from mpi.send(buf, dt, 1, dest=1, tag=5)  # only tag 5 comes
            yield mpi.sim.timeout(500.0)
            yield from mpi.send(buf, dt, 1, dest=1, tag=6)

        def rank1(mpi):
            a = mpi.alloc(dt.extent)
            b = mpi.alloc(dt.extent)
            r5 = yield from mpi.irecv(a, dt, 1, source=0, tag=5)
            r6 = yield from mpi.irecv(b, dt, 1, source=0, tag=6)
            idx, req = yield from mpi.waitany([r6, r5])
            first = (idx, req.tag)
            yield from mpi.waitall([r5, r6])
            return first

        res = Cluster(2).run([rank0, rank1])
        assert res.values[1] == (1, 5)  # tag 5 finished first, index 1


class TestProbe:
    def test_iprobe_miss_and_hit(self):
        dt = types.contiguous(16, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            yield mpi.sim.timeout(50.0)
            yield from mpi.send(buf, dt, 1, dest=1, tag=9)

        def rank1(mpi):
            before = mpi.iprobe(0, 9)
            # wait long enough for the unexpected message to arrive
            yield mpi.sim.timeout(200.0)
            after = mpi.iprobe(0, 9)
            wrong_tag = mpi.iprobe(0, 10)
            buf = mpi.alloc(dt.extent)
            yield from mpi.recv(buf, dt, 1, source=0, tag=9)
            return before, after, wrong_tag

        res = Cluster(2).run([rank0, rank1])
        before, after, wrong_tag = res.values[1]
        assert before is None
        assert after == (0, 9)
        assert wrong_tag is None

    def test_probe_blocks_until_arrival(self):
        dt = types.contiguous(16, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            yield mpi.sim.timeout(300.0)
            yield from mpi.send(buf, dt, 1, dest=1, tag=3)

        def rank1(mpi):
            t0 = mpi.now
            src, tag = yield from mpi.probe(0, ANY_TAG)
            waited = mpi.now - t0
            buf = mpi.alloc(dt.extent)
            yield from mpi.recv(buf, dt, 1, source=0, tag=tag)
            return src, tag, waited

        res = Cluster(2).run([rank0, rank1])
        src, tag, waited = res.values[1]
        assert (src, tag) == (0, 3)
        assert waited > 290.0

    def test_probe_does_not_consume(self):
        dt = types.contiguous(16, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            mpi.node.memory.view(buf, 4)[:] = 42
            yield from mpi.send(buf, dt, 1, dest=1, tag=1)

        def rank1(mpi):
            yield from mpi.probe(0, 1)
            hit = mpi.iprobe(0, 1)  # still there
            buf = mpi.alloc(dt.extent)
            yield from mpi.recv(buf, dt, 1, source=0, tag=1)
            return hit, int(mpi.node.memory.view(buf, 1)[0])

        res = Cluster(2).run([rank0, rank1])
        assert res.values[1] == ((0, 1), 42)

    def test_probe_rendezvous_start(self):
        """Probing also sees large (rendezvous) messages."""
        dt = types.vector(64, 256, 1024, types.INT)  # 64 KB

        def rank0(mpi):
            buf = mpi.alloc(dt.flatten(1).span + 64)
            yield from mpi.send(buf, dt, 1, dest=1, tag=8)

        def rank1(mpi):
            src, tag = yield from mpi.probe(0, ANY_TAG)
            buf = mpi.alloc(dt.flatten(1).span + 64)
            yield from mpi.recv(buf, dt, 1, source=0, tag=tag)
            return src, tag

        res = Cluster(2, scheme="bc-spup").run([rank0, rank1])
        assert res.values[1] == (0, 8)
