"""Tests for MPI_Comm_split and sub-communicator operation."""

import numpy as np
import pytest

from repro import Cluster, types


class TestSplit:
    def test_row_column_ranks(self):
        """4 ranks as a 2x2 grid: row and column communicators."""

        def program(mpi):
            row = yield from mpi.comm_split(color=mpi.rank // 2, key=mpi.rank)
            col = yield from mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            return (row.rank, row.nranks, row.members, col.rank, col.members)

        res = Cluster(4).run(program)
        assert res.values[0] == (0, 2, [0, 1], 0, [0, 2])
        assert res.values[3] == (1, 2, [2, 3], 1, [1, 3])

    def test_key_orders_ranks(self):
        def program(mpi):
            comm = yield from mpi.comm_split(color=0, key=-mpi.rank)
            return comm.rank

        res = Cluster(3).run(program)
        assert res.values == [2, 1, 0]  # reversed by key

    def test_undefined_color(self):
        def program(mpi):
            comm = yield from mpi.comm_split(
                color=None if mpi.rank == 1 else 0
            )
            yield mpi.sim.timeout(0.0)
            return comm.members if comm else None

        res = Cluster(3).run(program)
        assert res.values[1] is None
        assert res.values[0] == [0, 2]


class TestSubCommTraffic:
    def test_send_recv_translates_ranks(self):
        dt = types.contiguous(16, types.INT)

        def program(mpi):
            comm = yield from mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            buf = mpi.alloc_array((16,), np.int32)
            if comm.rank == 0:
                buf.array[:] = 500 + mpi.rank
                yield from comm.send(buf.addr, dt, 1, dest=1, tag=0)
                return None
            yield from comm.recv(buf.addr, dt, 1, source=0, tag=0)
            return int(buf.array[0])

        res = Cluster(4).run(program)
        # comm {0,2}: rank2 receives from world rank 0; comm {1,3}: rank3 from 1
        assert res.values[2] == 500
        assert res.values[3] == 501

    def test_same_tag_isolated_between_comms(self):
        """Identical tags in sibling communicators never cross-match."""
        dt = types.contiguous(4, types.INT)

        def program(mpi):
            comm = yield from mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            buf = mpi.alloc_array((4,), np.int32)
            if comm.rank == 0:
                buf.array[:] = 100 + mpi.rank
                yield from comm.send(buf.addr, dt, 1, dest=1, tag=7)
                return None
            yield from comm.recv(buf.addr, dt, 1, source=0, tag=7)
            return int(buf.array[0])

        res = Cluster(4).run(program)
        assert res.values[2] == 100  # from world 0, not from world 1
        assert res.values[3] == 101

    def test_collectives_on_subcomm(self):
        def program(mpi):
            row = yield from mpi.comm_split(color=mpi.rank // 2, key=mpi.rank)
            send = mpi.alloc_array((8,), np.int32)
            send.array[:] = mpi.rank + 1
            recv = mpi.alloc_array((2, 8), np.int32)
            dt = types.contiguous(8, types.INT)
            yield from row.allgather(send.addr, dt, 1, recv.addr, dt, 1)
            return [int(recv.array[i, 0]) for i in range(2)]

        res = Cluster(4).run(program)
        assert res.values[0] == [1, 2]
        assert res.values[2] == [3, 4]

    def test_allreduce_on_subcomm(self):
        def program(mpi):
            comm = yield from mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            send = mpi.alloc_array((4,), np.int64)
            send.array[:] = mpi.rank
            recv = mpi.alloc_array((4,), np.int64)
            yield from comm.allreduce(send.addr, recv.addr, 4, np.int64, "sum")
            return int(recv.array[0])

        res = Cluster(6).run(program)
        # evens: 0+2+4=6; odds: 1+3+5=9
        assert res.values == [6, 9, 6, 9, 6, 9]

    def test_barrier_on_subcomm_does_not_block_others(self):
        def program(mpi):
            comm = yield from mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            if mpi.rank % 2 == 0:
                yield from comm.barrier()
                return mpi.now
            # odd ranks never enter a barrier; they just finish
            yield mpi.sim.timeout(1.0)
            return mpi.now

        res = Cluster(4).run(program)  # must not deadlock
        assert all(v >= 0 for v in res.values)
