"""Tests for gather/scatter/reduce/allreduce collectives."""

import numpy as np
import pytest

from repro import Cluster, types


class TestGatherScatter:
    @pytest.mark.parametrize("root", [0, 2])
    def test_gather(self, root):
        n, count = 4, 128
        dt = types.contiguous(count, types.INT)

        def program(mpi):
            send = mpi.alloc_array((count,), np.int32)
            send.array[:] = mpi.rank * 10
            recv = mpi.alloc_array((n, count), np.int32)
            recv.array[:] = -1
            yield from mpi.gather(send.addr, dt, 1, recv.addr, dt, 1, root)
            if mpi.rank == root:
                return [int(recv.array[i, 0]) for i in range(n)]
            return None

        res = Cluster(n, scheme="bc-spup").run(program)
        assert res.values[root] == [0, 10, 20, 30]
        assert all(v is None for i, v in enumerate(res.values) if i != root)

    @pytest.mark.parametrize("root", [0, 1])
    def test_scatter(self, root):
        n, count = 4, 64
        dt = types.contiguous(count, types.INT)

        def program(mpi):
            send = mpi.alloc_array((n, count), np.int32)
            if mpi.rank == root:
                for j in range(n):
                    send.array[j, :] = 100 + j
            recv = mpi.alloc_array((count,), np.int32)
            yield from mpi.scatter(send.addr, dt, 1, recv.addr, dt, 1, root)
            return int(recv.array[0])

        res = Cluster(n, scheme="bc-spup").run(program)
        assert res.values == [100, 101, 102, 103]

    def test_gather_noncontiguous_send(self):
        n = 3
        send_dt = types.vector(8, 2, 4, types.INT)  # 64 B data
        recv_dt = types.contiguous(16, types.INT)

        def program(mpi):
            send = mpi.alloc(send_dt.extent + 64)
            flat = send_dt.flatten(1)
            for off, ln in flat.blocks():
                mpi.node.memory.view(send + off, ln)[:] = mpi.rank + 1
            recv = mpi.alloc_array((n, 16), np.int32)
            yield from mpi.gather(send, send_dt, 1, recv.addr, recv_dt, 1, 0)
            if mpi.rank == 0:
                return [int(recv.array[i, 0]) for i in range(n)]

        res = Cluster(n, scheme="rwg-up").run(program)
        assert res.values[0] == [
            0x01010101, 0x02020202, 0x03030303
        ]


class TestReduce:
    @pytest.mark.parametrize("n", [2, 4, 7])
    def test_reduce_sum(self, n):
        count = 256

        def program(mpi):
            send = mpi.alloc_array((count,), np.int64)
            send.array[:] = mpi.rank + 1
            recv = mpi.alloc_array((count,), np.int64)
            yield from mpi.reduce(send.addr, recv.addr, count, np.int64, "sum", 0)
            if mpi.rank == 0:
                return int(recv.array[0]), int(recv.array[-1])

        res = Cluster(n, scheme="bc-spup").run(program)
        expect = n * (n + 1) // 2
        assert res.values[0] == (expect, expect)

    def test_reduce_max_min_prod(self):
        n, count = 4, 16
        for op, expect in (("max", 4), ("min", 1), ("prod", 24)):

            def program(mpi, op=op):
                send = mpi.alloc_array((count,), np.int64)
                send.array[:] = mpi.rank + 1
                recv = mpi.alloc_array((count,), np.int64)
                yield from mpi.reduce(send.addr, recv.addr, count, np.int64, op, 0)
                if mpi.rank == 0:
                    return int(recv.array[0])

            res = Cluster(n, scheme="multi-w").run(program)
            assert res.values[0] == expect, op

    def test_reduce_unknown_op(self):
        def program(mpi):
            send = mpi.alloc_array((4,), np.int64)
            recv = mpi.alloc_array((4,), np.int64)
            yield from mpi.reduce(send.addr, recv.addr, 4, np.int64, "xor", 0)

        with pytest.raises(ValueError):
            Cluster(2, scheme="bc-spup").run(program)

    def test_reduce_nonroot_recv_untouched(self):
        n, count = 3, 8

        def program(mpi):
            send = mpi.alloc_array((count,), np.float64)
            send.array[:] = 1.0
            recv = mpi.alloc_array((count,), np.float64)
            recv.array[:] = -7.0
            yield from mpi.reduce(send.addr, recv.addr, count, np.float64, "sum", 0)
            return float(recv.array[0])

        res = Cluster(n, scheme="bc-spup").run(program)
        assert res.values[0] == 3.0
        assert res.values[1] == -7.0 and res.values[2] == -7.0


class TestAllreduce:
    @pytest.mark.parametrize("n", [2, 5, 8])
    def test_allreduce_sum(self, n):
        count = 100

        def program(mpi):
            send = mpi.alloc_array((count,), np.float64)
            send.array[:] = float(mpi.rank)
            recv = mpi.alloc_array((count,), np.float64)
            yield from mpi.allreduce(send.addr, recv.addr, count, np.float64, "sum")
            return float(recv.array[50])

        res = Cluster(n, scheme="bc-spup").run(program)
        expect = float(sum(range(n)))
        assert all(v == expect for v in res.values)

    def test_allreduce_large_payload_uses_rendezvous(self):
        n, count = 4, 100_000  # 800 KB payload

        def program(mpi):
            send = mpi.alloc_array((count,), np.float64)
            send.array[:] = 1.0
            recv = mpi.alloc_array((count,), np.float64)
            yield from mpi.allreduce(send.addr, recv.addr, count, np.float64, "sum")
            return float(recv.array[-1])

        res = Cluster(n, scheme="multi-w").run(program)
        assert all(v == float(n) for v in res.values)
