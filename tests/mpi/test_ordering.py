"""Regression tests for MPI non-overtaking (found by the protocol
fuzzer): an eager send followed by a rendezvous send on the same
(source, tag) stream must match posted receives in posting order, even
though the rendezvous start physically reaches the wire first."""

import numpy as np
import pytest

from repro import Cluster, types
from tests.mpi.helpers import ALL_SCHEMES


class TestNonOvertaking:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_eager_then_rendezvous_same_tag(self, scheme):
        """The fuzzer's minimal counterexample: 4 B eager then 9000 B
        rendezvous, same stream.  Without sequence-number admission the
        rendezvous start overtakes the eager message (its sender posts
        control immediately while the eager path is still staging)."""

        def rank0(mpi):
            b4 = mpi.alloc(4)
            mpi.node.memory.view(b4, 4)[:] = 42
            b9 = mpi.alloc(9000)
            mpi.node.memory.view(b9, 9000)[:] = 77
            r1 = yield from mpi.isend(b4, types.contiguous(4, types.BYTE), 1, 1, 0)
            r2 = yield from mpi.isend(b9, types.contiguous(9000, types.BYTE), 1, 1, 0)
            yield from mpi.waitall([r1, r2])

        def rank1(mpi):
            b4 = mpi.alloc(4)
            b9 = mpi.alloc(9000)
            r1 = yield from mpi.irecv(b4, types.contiguous(4, types.BYTE), 1, 0, 0)
            r2 = yield from mpi.irecv(b9, types.contiguous(9000, types.BYTE), 1, 0, 0)
            yield from mpi.waitall([r1, r2])
            return (
                int(mpi.node.memory.view(b4, 1)[0]),
                int(mpi.node.memory.view(b9, 1)[0]),
            )

        res = Cluster(2, scheme=scheme).run([rank0, rank1])
        assert res.values[1] == (42, 77)

    def test_rendezvous_then_eager_same_tag(self):
        def rank0(mpi):
            b9 = mpi.alloc(9000)
            mpi.node.memory.view(b9, 9000)[:] = 11
            b4 = mpi.alloc(4)
            mpi.node.memory.view(b4, 4)[:] = 22
            r1 = yield from mpi.isend(b9, types.contiguous(9000, types.BYTE), 1, 1, 0)
            r2 = yield from mpi.isend(b4, types.contiguous(4, types.BYTE), 1, 1, 0)
            yield from mpi.waitall([r1, r2])

        def rank1(mpi):
            b9 = mpi.alloc(9000)
            b4 = mpi.alloc(4)
            r1 = yield from mpi.irecv(b9, types.contiguous(9000, types.BYTE), 1, 0, 0)
            r2 = yield from mpi.irecv(b4, types.contiguous(4, types.BYTE), 1, 0, 0)
            yield from mpi.waitall([r1, r2])
            return (
                int(mpi.node.memory.view(b9, 1)[0]),
                int(mpi.node.memory.view(b4, 1)[0]),
            )

        res = Cluster(2).run([rank0, rank1])
        assert res.values[1] == (11, 22)

    def test_interleaved_sizes_long_stream(self):
        """A longer alternating stream stays strictly ordered."""
        sizes = [16, 20000, 64, 9000, 4, 12000, 256]

        def rank0(mpi):
            reqs = []
            for k, size in enumerate(sizes):
                buf = mpi.alloc(size)
                mpi.node.memory.view(buf, size)[:] = (k + 1) * 3 % 251
                r = yield from mpi.isend(
                    buf, types.contiguous(size, types.BYTE), 1, 1, 0
                )
                reqs.append(r)
            yield from mpi.waitall(reqs)

        def rank1(mpi):
            out = []
            reqs, bufs = [], []
            for size in sizes:
                buf = mpi.alloc(size)
                r = yield from mpi.irecv(
                    buf, types.contiguous(size, types.BYTE), 1, 0, 0
                )
                reqs.append(r)
                bufs.append(buf)
            yield from mpi.waitall(reqs)
            for buf in bufs:
                out.append(int(mpi.node.memory.view(buf, 1)[0]))
            return out

        res = Cluster(2, scheme="bc-spup").run([rank0, rank1])
        assert res.values[1] == [(k + 1) * 3 % 251 for k in range(len(sizes))]

    def test_ordering_with_eager_rdma(self):
        """The polled ring and channel paths have different delivery
        delays; sequencing still holds."""

        def rank0(mpi):
            b1 = mpi.alloc(64)
            mpi.node.memory.view(b1, 64)[:] = 5
            b2 = mpi.alloc(30000)
            mpi.node.memory.view(b2, 30000)[:] = 6
            r1 = yield from mpi.isend(b1, types.contiguous(64, types.BYTE), 1, 1, 0)
            r2 = yield from mpi.isend(b2, types.contiguous(30000, types.BYTE), 1, 1, 0)
            yield from mpi.waitall([r1, r2])

        def rank1(mpi):
            b1 = mpi.alloc(64)
            b2 = mpi.alloc(30000)
            r1 = yield from mpi.irecv(b1, types.contiguous(64, types.BYTE), 1, 0, 0)
            r2 = yield from mpi.irecv(b2, types.contiguous(30000, types.BYTE), 1, 0, 0)
            yield from mpi.waitall([r1, r2])
            return int(mpi.node.memory.view(b1, 1)[0]), int(mpi.node.memory.view(b2, 1)[0])

        res = Cluster(2, eager_rdma=True).run([rank0, rank1])
        assert res.values[1] == (5, 6)
