"""Tests for RankContext conveniences and error paths."""

import numpy as np
import pytest

from repro import Cluster, types


def single_rank(program):
    return Cluster(1).run(program).values[0]


class TestAllocation:
    def test_alloc_array_typed_view(self):
        def program(mpi):
            arr = mpi.alloc_array((4, 8), np.float32)
            arr.array[:] = 2.5
            raw = mpi.node.memory.view(arr.addr, 4 * 8 * 4).view(np.float32)
            yield mpi.sim.timeout(0.0)
            return float(raw.sum()), arr.nbytes

        total, nbytes = single_rank(program)
        assert total == 2.5 * 32
        assert nbytes == 128

    def test_alloc_alignment(self):
        def program(mpi):
            yield mpi.sim.timeout(0.0)
            return mpi.alloc(100, align=256)

        assert single_rank(program) % 256 == 0

    def test_now_is_wtime(self):
        def program(mpi):
            t0 = mpi.now
            yield mpi.sim.timeout(42.0)
            return mpi.now - t0

        assert single_rank(program) == 42.0


class TestUserPackUnpack:
    def test_roundtrip(self):
        dt = types.vector(8, 2, 4, types.INT)

        def program(mpi):
            src = mpi.alloc(dt.extent + 64)
            flat = dt.flatten(1)
            for k, (off, ln) in enumerate(flat.blocks()):
                mpi.node.memory.view(src + off, ln)[:] = k + 1
            stage = mpi.alloc(dt.size)
            yield from mpi.user_pack(src, dt, 1, stage)
            dst = mpi.alloc(dt.extent + 64)
            yield from mpi.user_unpack(dst, dt, 1, stage)
            ok = all(
                (mpi.node.memory.view(dst + off, ln) == k + 1).all()
                for k, (off, ln) in enumerate(flat.blocks())
            )
            return ok

        assert single_rank(program)

    def test_pack_charges_time(self):
        dt = types.vector(64, 64, 256, types.INT)

        def program(mpi):
            src = mpi.alloc(dt.extent + 64)
            stage = mpi.alloc(dt.size)
            t0 = mpi.now
            yield from mpi.user_pack(src, dt, 1, stage)
            return mpi.now - t0

        dt_us = single_rank(program)
        assert dt_us > 0


class TestErrorPaths:
    def test_bad_dest_rank(self):
        dt = types.contiguous(4, types.INT)

        def program(mpi):
            buf = mpi.alloc(16)
            yield from mpi.isend(buf, dt, 1, dest=5, tag=0)

        from repro.mpi.errors import RankError

        with pytest.raises(RankError, match="destination"):
            Cluster(2).run([program, _idle])

    def test_bad_source_rank(self):
        dt = types.contiguous(4, types.INT)

        def program(mpi):
            buf = mpi.alloc(16)
            yield from mpi.irecv(buf, dt, 1, source=-1, tag=0)

        from repro.mpi.errors import RankError

        with pytest.raises(RankError, match="source"):
            Cluster(2).run([program, _idle])

    def test_recv_buffer_too_small_rendezvous(self):
        send_dt = types.contiguous(100_000, types.INT)
        recv_dt = types.contiguous(10, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(send_dt.extent)
            yield from mpi.send(buf, send_dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(64)
            yield from mpi.recv(buf, recv_dt, 1, source=0, tag=0)

        with pytest.raises(Exception):
            Cluster(2, scheme="bc-spup").run([rank0, rank1])


def _idle(mpi):
    yield mpi.sim.timeout(0.0)


class TestRequestStatus:
    def test_status_fields_after_recv(self):
        dt = types.contiguous(16, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            yield from mpi.send(buf, dt, 1, dest=1, tag=33)

        def rank1(mpi):
            buf = mpi.alloc(dt.extent)
            req = yield from mpi.recv(buf, dt, 1, source=0, tag=33)
            return req.status_src, req.status_tag, req.completed

        res = Cluster(2).run([rank0, rank1])
        assert res.values[1] == (0, 33, True)

    def test_request_properties(self):
        dt = types.vector(4, 2, 8, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent + 64)
            req = yield from mpi.isend(buf, dt, 2, dest=0, tag=1)
            rreq = yield from mpi.irecv(buf, dt, 2, source=0, tag=1)
            yield from mpi.waitall([req, rreq])
            return req.nbytes, req.cursor.total, req.is_contiguous

        nbytes, total, contig = Cluster(1).run(rank0).values[0]
        assert nbytes == dt.size * 2 == total
        assert not contig
