"""Tests for one-sided communication (MPI-2 RMA) over the simulated verbs."""

import numpy as np
import pytest

from repro import Cluster, types


def make_window_program(body, win_ints=1024):
    """Each rank creates a window over an int32 array initialized to its
    rank id, then runs ``body(mpi, win, array)``."""

    def program(mpi):
        arr = mpi.alloc_array((win_ints,), np.int32)
        arr.array[:] = mpi.rank
        win = yield from mpi.win_create(arr.addr, win_ints * 4)
        result = yield from body(mpi, win, arr)
        return result

    return program


class TestPutGet:
    def test_put_contiguous(self):
        dt = types.contiguous(256, types.INT)

        def body(mpi, win, arr):
            src = mpi.alloc_array((256,), np.int32)
            src.array[:] = 100 + mpi.rank
            if mpi.rank == 0:
                yield from mpi.put(win, 1, src.addr, dt)
            yield from mpi.win_fence(win)
            return int(arr.array[0]), int(arr.array[255]), int(arr.array[256])

        res = Cluster(2).run(make_window_program(body))
        assert res.values[1] == (100, 100, 1)  # first 256 ints overwritten
        assert res.values[0] == (0, 0, 0)  # rank 0 untouched

    def test_put_with_target_displacement(self):
        dt = types.contiguous(16, types.INT)

        def body(mpi, win, arr):
            src = mpi.alloc_array((16,), np.int32)
            src.array[:] = 7
            if mpi.rank == 0:
                yield from mpi.put(win, 1, src.addr, dt, target_disp=400)
            yield from mpi.win_fence(win)
            return int(arr.array[99]), int(arr.array[100]), int(arr.array[116])

        res = Cluster(2).run(make_window_program(body))
        assert res.values[1] == (1, 7, 1)  # ints 100..115 overwritten

    def test_put_noncontiguous_target(self):
        """The origin drives a strided *target* layout — the case that
        needs no receiver datatype exchange in RMA."""
        origin_dt = types.contiguous(64, types.INT)
        target_dt = types.vector(64, 1, 4, types.INT)  # every 4th int

        def body(mpi, win, arr):
            src = mpi.alloc_array((64,), np.int32)
            src.array[:] = np.arange(64)
            if mpi.rank == 0:
                yield from mpi.put(
                    win, 1, src.addr, origin_dt, target_dt=target_dt
                )
            yield from mpi.win_fence(win)
            return arr.array[:16].tolist()

        res = Cluster(2).run(make_window_program(body))
        # ints at stride 4 hold 0,1,2,3...; others keep rank id 1
        assert res.values[1] == [0, 1, 1, 1, 1, 1, 1, 1, 2, 1, 1, 1, 3, 1, 1, 1]

    def test_get_contiguous(self):
        dt = types.contiguous(128, types.INT)

        def body(mpi, win, arr):
            dst = mpi.alloc_array((128,), np.int32)
            dst.array[:] = -1
            peer = (mpi.rank + 1) % mpi.nranks
            yield from mpi.get(win, peer, dst.addr, dt)
            yield from mpi.win_fence(win)
            return int(dst.array[0]), int(dst.array[-1])

        res = Cluster(3).run(make_window_program(body))
        assert res.values == [(1, 1), (2, 2), (0, 0)]

    def test_get_noncontiguous_both_sides(self):
        origin_dt = types.vector(16, 2, 8, types.INT)
        target_dt = types.vector(32, 1, 2, types.INT)
        assert origin_dt.size == target_dt.size

        def body(mpi, win, arr):
            span = origin_dt.flatten(1).span + 64
            dst = mpi.alloc(span)
            if mpi.rank == 0:
                yield from mpi.get(
                    win, 1, dst, origin_dt, target_dt=target_dt
                )
            yield from mpi.win_fence(win)
            if mpi.rank == 0:
                flat = origin_dt.flatten(1)
                got = np.concatenate([
                    mpi.node.memory.view(dst + off, ln) for off, ln in flat.blocks()
                ]).view(np.int32)
                return got.tolist()

        res = Cluster(2).run(make_window_program(body))
        assert res.values[0] == [1] * 32  # rank 1's window data

    def test_local_put_and_get(self):
        dt = types.contiguous(32, types.INT)

        def body(mpi, win, arr):
            src = mpi.alloc_array((32,), np.int32)
            src.array[:] = 55
            yield from mpi.put(win, mpi.rank, src.addr, dt)
            dst = mpi.alloc_array((32,), np.int32)
            yield from mpi.get(win, mpi.rank, dst.addr, dt)
            yield from mpi.win_fence(win)
            return int(arr.array[0]), int(dst.array[0])

        res = Cluster(1).run(make_window_program(body))
        assert res.values[0] == (55, 55)

    def test_access_outside_window_rejected(self):
        dt = types.contiguous(64, types.INT)

        def body(mpi, win, arr):
            src = mpi.alloc_array((64,), np.int32)
            if mpi.rank == 0:
                yield from mpi.put(win, 1, src.addr, dt, target_disp=4000)
            yield from mpi.win_fence(win)

        with pytest.raises(ValueError, match="outside"):
            Cluster(2).run(make_window_program(body))


class TestFence:
    def test_fence_makes_puts_visible(self):
        """After the fence, every rank observes every other rank's put."""
        n = 4
        dt = types.contiguous(1, types.INT)

        def body(mpi, win, arr):
            src = mpi.alloc_array((1,), np.int32)
            src.array[:] = 1000 + mpi.rank
            for target in range(n):
                if target != mpi.rank:
                    yield from mpi.put(
                        win, target, src.addr, dt, target_disp=mpi.rank * 4
                    )
            yield from mpi.win_fence(win)
            return [int(arr.array[r]) for r in range(n)]

        res = Cluster(n).run(make_window_program(body))
        for rank, vals in enumerate(res.values):
            for r in range(n):
                expect = rank if r == rank else 1000 + r
                assert vals[r] == expect, (rank, r)

    def test_double_fence_idempotent(self):
        def body(mpi, win, arr):
            yield from mpi.win_fence(win)
            yield from mpi.win_fence(win)
            return True

        res = Cluster(2).run(make_window_program(body))
        assert all(res.values)


class TestLocks:
    def test_exclusive_lock_serializes_epochs(self):
        """Two origins increment the same counter under a lock; both
        updates survive (no lost update)."""
        n = 3  # rank 0 is the target
        dt = types.contiguous(1, types.INT)

        def body(mpi, win, arr):
            if mpi.rank == 0:
                # target: just wait for the others at the end
                yield from mpi.barrier()
                return int(arr.array[0])
            tmp = mpi.alloc_array((1,), np.int32)
            yield from mpi.win_lock(win, 0)
            yield from mpi.get(win, 0, tmp.addr, dt)
            # get completes at unlock/fence; here we order via unlock:
            # read-modify-write inside the epoch
            yield from mpi.win_unlock(win, 0)
            yield from mpi.win_lock(win, 0)
            tmp.array[0] += 10
            yield from mpi.put(win, 0, tmp.addr, dt)
            yield from mpi.win_unlock(win, 0)
            yield from mpi.barrier()
            return None

        res = Cluster(n).run(make_window_program(body))
        # both increments happened on top of SOME value; with the window
        # initialized to 0 (rank id of target), final is 10 or 20
        # depending on interleaving of the read epochs; what the lock
        # guarantees here is that the final value is one of the two
        # serializable outcomes, never a torn/other value
        assert res.values[0] in (10, 20)

    def test_lock_blocks_second_origin(self):
        """While rank 1 holds the lock, rank 2's epoch waits."""
        timestamps = {}

        def body(mpi, win, arr):
            if mpi.rank == 0:
                yield from mpi.barrier()
                return None
            if mpi.rank == 1:
                yield from mpi.win_lock(win, 0)
                yield mpi.sim.timeout(500.0)  # hold the lock
                yield from mpi.win_unlock(win, 0)
                yield from mpi.barrier()
                return None
            # rank 2 starts later, must wait out rank 1's hold
            yield mpi.sim.timeout(100.0)
            t0 = mpi.now
            yield from mpi.win_lock(win, 0)
            timestamps["acquired"] = mpi.now - t0
            yield from mpi.win_unlock(win, 0)
            yield from mpi.barrier()
            return None

        Cluster(3).run(make_window_program(body))
        assert timestamps["acquired"] > 350.0  # waited for most of the hold
