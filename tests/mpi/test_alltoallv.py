"""Tests for MPI_Alltoallv."""

import numpy as np
import pytest

from repro import Cluster, types


class TestAlltoallv:
    def test_variable_counts(self):
        """Rank r sends (d+1) ints to rank d; everyone verifies."""
        n = 4
        dt = types.contiguous(1, types.INT)

        def program(mpi):
            sendcounts = [d + 1 for d in range(n)]
            sdispls = [sum(sendcounts[:d]) * 4 for d in range(n)]
            send = mpi.alloc_array((sum(sendcounts),), np.int32)
            pos = 0
            for d in range(n):
                send.array[pos : pos + d + 1] = 100 * mpi.rank + d
                pos += d + 1
            recvcounts = [mpi.rank + 1] * n
            rdispls = [s * (mpi.rank + 1) * 4 for s in range(n)]
            recv = mpi.alloc_array((n * (mpi.rank + 1),), np.int32)
            recv.array[:] = -1
            yield from mpi.alltoallv(
                send.addr, dt, sendcounts, sdispls,
                recv.addr, dt, recvcounts, rdispls,
            )
            ok = True
            for s in range(n):
                chunk = recv.array[s * (mpi.rank + 1) : (s + 1) * (mpi.rank + 1)]
                ok = ok and (chunk == 100 * s + mpi.rank).all()
            return bool(ok)

        res = Cluster(n, scheme="bc-spup").run(program)
        assert all(res.values)

    def test_zero_counts_skip_messages(self):
        """Ranks exchange only with their right neighbour."""
        n = 3
        dt = types.contiguous(64, types.INT)

        def program(mpi):
            right = (mpi.rank + 1) % n
            left = (mpi.rank - 1) % n
            sendcounts = [0] * n
            sendcounts[right] = 1
            recvcounts = [0] * n
            recvcounts[left] = 1
            send = mpi.alloc_array((64,), np.int32)
            send.array[:] = mpi.rank
            recv = mpi.alloc_array((64,), np.int32)
            recv.array[:] = -1
            yield from mpi.alltoallv(
                send.addr, dt, sendcounts, [0] * n,
                recv.addr, dt, recvcounts, [0] * n,
            )
            return int(recv.array[0])

        res = Cluster(n, scheme="multi-w").run(program)
        assert res.values == [2, 0, 1]  # everyone got the left neighbour's id

    def test_noncontiguous_types(self):
        n = 2
        send_dt = types.vector(16, 4, 8, types.INT)  # 256 B per count

        def program(mpi):
            send = mpi.alloc(2 * send_dt.extent + 128)
            flat = send_dt.flatten(1)
            for off, ln in flat.blocks():
                mpi.node.memory.view(send + off, ln)[:] = mpi.rank + 1
                mpi.node.memory.view(send + send_dt.extent + off, ln)[:] = mpi.rank + 1
            recv = mpi.alloc_array((2 * 64 * 2,), np.int32)
            recv_dt = types.contiguous(64, types.INT)
            yield from mpi.alltoallv(
                send, send_dt, [1, 1], [0, send_dt.extent],
                recv.addr, recv_dt, [1, 1], [0, 256],
            )
            # chunk at rdispls[src] holds rank src's data: bytes of src+1
            def word_of(byte):
                return byte | (byte << 8) | (byte << 16) | (byte << 24)

            return (
                int(recv.array[0]) == word_of(1)  # from rank 0
                and int(recv.array[64]) == word_of(2)  # from rank 1
            )

        res = Cluster(n, scheme="rwg-up").run(program)
        assert all(res.values)

    def test_argument_length_validation(self):
        dt = types.contiguous(1, types.INT)

        def program(mpi):
            buf = mpi.alloc(64)
            yield from mpi.alltoallv(buf, dt, [1], [0], buf, dt, [1], [0])

        with pytest.raises(ValueError, match="nranks"):
            Cluster(2).run(program)
