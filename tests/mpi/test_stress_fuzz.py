"""Protocol stress fuzzing: random traffic patterns must always deliver.

Since the workload-IR port this is a thin wrapper: the traffic strategy
lives in :mod:`repro.workloads.fuzz` as a Hypothesis grammar over the
IR (random rank counts, message matrices, nested datatypes, sizes
straddling the eager/rendezvous boundary, tag collisions, posting
orders, and **all seven** schemes — the old inline strategy missed
``p-rrs``), and the invariant is the grammar's static oracle: every
receive completes with exactly the bytes its matched send carried.
Counterexamples shrink to minimal IR programs that can be checked into
``tests/workloads/corpus/`` verbatim.
"""

from hypothesis import HealthCheck, given, settings

from repro.schemes import SCHEME_NAMES
from repro.workloads.fuzz import check_workload, workloads

#: the grammar draws schemes from the full registry — all seven
SCHEMES = SCHEME_NAMES


class TestStressFuzz:
    @given(workloads())
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_traffic_delivers_exactly(self, workload):
        assert workload.scheme in SCHEMES
        check_workload(workload)
