"""Protocol stress fuzzing: random traffic patterns must always deliver.

Hypothesis drives the whole stack — random rank counts, message matrices,
sizes straddling the eager/rendezvous boundary, tag collisions, posting
orders, and schemes — asserting the single invariant that matters:
every receive completes with exactly the bytes its matched send carried.
This is the test that catches progress-engine races, credit leaks,
matching-order violations, and buffer recycling bugs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, types
from repro.ib.costmodel import MB

SCHEMES = ("generic", "bc-spup", "rwg-up", "multi-w", "hybrid", "adaptive")


@st.composite
def traffic(draw):
    nranks = draw(st.integers(2, 4))
    nmsgs = draw(st.integers(1, 10))
    msgs = []
    for m in range(nmsgs):
        src = draw(st.integers(0, nranks - 1))
        dst = draw(st.integers(0, nranks - 1))
        # sizes straddle the 8 KB eager threshold
        size = draw(st.sampled_from([4, 64, 1024, 8192, 9000, 40000]))
        tag = draw(st.integers(0, 2))  # deliberate collisions
        msgs.append((src, dst, size, tag, m))
    scheme = draw(st.sampled_from(SCHEMES))
    eager_rdma = draw(st.booleans())
    reverse_recv_order = draw(st.booleans())
    return nranks, msgs, scheme, eager_rdma, reverse_recv_order


class TestStressFuzz:
    @given(traffic())
    @settings(max_examples=40, deadline=None)
    def test_random_traffic_delivers_exactly(self, case):
        nranks, msgs, scheme, eager_rdma, reverse = case
        # expected per (src, dst, tag) FIFO streams
        cluster = Cluster(
            nranks, scheme=scheme, eager_rdma=eager_rdma,
            memory_per_rank=128 * MB,
        )

        def pattern(mid, size):
            return np.full(size, (mid * 37 + 11) % 251, dtype=np.uint8)

        def make_program(rank):
            my_sends = [m for m in msgs if m[0] == rank]
            my_recvs = [m for m in msgs if m[1] == rank]
            # MPI non-overtaking: receives for a given (src, tag) must be
            # posted in send order; across distinct (src, tag) streams the
            # order is free — optionally reversed stream-wise
            if reverse:
                streams = {}
                for m in my_recvs:
                    streams.setdefault((m[0], m[3]), []).append(m)
                my_recvs = [m for key in sorted(streams, reverse=True)
                            for m in streams[key]]

            def program(mpi):
                reqs = []
                bufs = []
                for src, _dst, size, tag, mid in my_recvs:
                    dt = types.contiguous(size, types.BYTE)
                    buf = mpi.alloc(max(size, 1))
                    r = yield from mpi.irecv(buf, dt, 1, src, tag)
                    reqs.append(r)
                    bufs.append((buf, size, mid))
                for _src, dst, size, tag, mid in my_sends:
                    dt = types.contiguous(size, types.BYTE)
                    buf = mpi.alloc(max(size, 1))
                    mpi.node.memory.view(buf, size)[:] = pattern(mid, size)
                    r = yield from mpi.isend(buf, dt, 1, dst, tag)
                    reqs.append(r)
                yield from mpi.waitall(reqs)
                out = []
                for buf, size, mid in bufs:
                    out.append(bytes(mpi.node.memory.view(buf, size)))
                return out

            return program

        result = cluster.run([make_program(r) for r in range(nranks)])
        # verify: each receive stream (src, dst, tag) got the matching
        # send stream's payloads in order
        for rank in range(nranks):
            my_recvs = [m for m in msgs if m[1] == rank]
            if reverse:
                streams = {}
                for m in my_recvs:
                    streams.setdefault((m[0], m[3]), []).append(m)
                my_recvs = [m for key in sorted(streams, reverse=True)
                            for m in streams[key]]
            got = result.values[rank]
            # group receives by stream; k-th receive of a stream matches
            # the k-th send of that stream (in message-creation order,
            # which equals posting order here)
            stream_pos = {}
            for (src, _dst, size, tag, _mid), payload in zip(my_recvs, got):
                key = (src, rank, tag)
                k = stream_pos.get(key, 0)
                stream_pos[key] = k + 1
                sends = [m for m in msgs if (m[0], m[1], m[3]) == key]
                s_src, s_dst, s_size, s_tag, s_mid = sends[k]
                assert s_size == size or True  # sizes may differ per msg
                expect = bytes(
                    np.full(min(size, s_size), (s_mid * 37 + 11) % 251,
                            dtype=np.uint8)
                )
                assert payload[: len(expect)] == expect, (
                    scheme, eager_rdma, key, k
                )
