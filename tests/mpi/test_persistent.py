"""Tests for persistent requests (MPI_Send_init / MPI_Recv_init)."""

import numpy as np
import pytest

from repro import Cluster, types
from repro.simulator import SimulationError


class TestPersistent:
    def test_repeated_starts_deliver(self):
        dt = types.vector(32, 8, 32, types.INT)
        iters = 4

        def rank0(mpi):
            buf = mpi.alloc(dt.extent + 64)
            view = mpi.node.memory.view(buf, 4)
            op = mpi.send_init(buf, dt, 1, dest=1, tag=0)
            for k in range(iters):
                view[:] = k + 1
                yield from op.start()
                yield from op.wait()

        def rank1(mpi):
            buf = mpi.alloc(dt.extent + 64)
            op = mpi.recv_init(buf, dt, 1, source=0, tag=0)
            got = []
            for _ in range(iters):
                yield from op.start()
                yield from op.wait()
                got.append(int(mpi.node.memory.view(buf, 1)[0]))
            return got

        res = Cluster(2).run([rank0, rank1])
        assert res.values[1] == [1, 2, 3, 4]

    def test_cursor_shared_across_starts(self):
        dt = types.vector(16, 4, 16, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent + 64)
            op = mpi.send_init(buf, dt, 1, dest=1, tag=0)
            r1 = yield from op.start()
            yield from op.wait()
            c1 = r1.cursor
            r2 = yield from op.start()
            yield from op.wait()
            return c1 is r2.cursor

        def rank1(mpi):
            buf = mpi.alloc(dt.extent + 64)
            for _ in range(2):
                yield from mpi.recv(buf, dt, 1, source=0, tag=0)

        res = Cluster(2).run([rank0, rank1])
        assert res.values[0] is True

    def test_start_while_active_rejected(self):
        dt = types.contiguous(64, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            op = mpi.recv_init(buf, dt, 1, source=1, tag=0)
            yield from op.start()
            yield from op.start()  # active, never completed

        def rank1(mpi):
            yield mpi.sim.timeout(1.0)

        with pytest.raises(SimulationError, match="while active"):
            Cluster(2).run([rank0, rank1])

    def test_wait_before_start_rejected(self):
        dt = types.contiguous(4, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(16)
            op = mpi.send_init(buf, dt, 1, dest=0, tag=0)
            yield from op.wait()

        with pytest.raises(SimulationError, match="never started"):
            Cluster(1).run(rank0)

    def test_startall(self):
        dt = types.contiguous(32, types.INT)

        def rank0(mpi):
            bufs = [mpi.alloc(dt.extent) for _ in range(3)]
            for k, b in enumerate(bufs):
                mpi.node.memory.view(b, 4)[:] = k + 10
            ops = [mpi.send_init(b, dt, 1, dest=1, tag=k) for k, b in enumerate(bufs)]
            reqs = yield from mpi.startall(ops)
            yield from mpi.waitall(reqs)

        def rank1(mpi):
            bufs = [mpi.alloc(dt.extent) for _ in range(3)]
            ops = [mpi.recv_init(b, dt, 1, source=0, tag=k) for k, b in enumerate(bufs)]
            reqs = yield from mpi.startall(ops)
            yield from mpi.waitall(reqs)
            return [int(mpi.node.memory.view(b, 1)[0]) for b in bufs]

        res = Cluster(2).run([rank0, rank1])
        assert res.values[1] == [10, 11, 12]

    def test_rendezvous_persistent(self):
        dt = types.vector(128, 512, 4096, types.INT)  # 256 KB

        def rank0(mpi):
            buf = mpi.alloc(dt.flatten(1).span + 64)
            op = mpi.send_init(buf, dt, 1, dest=1, tag=0)
            for _ in range(2):
                yield from op.start()
                yield from op.wait()

        def rank1(mpi):
            buf = mpi.alloc(dt.flatten(1).span + 64)
            op = mpi.recv_init(buf, dt, 1, source=0, tag=0)
            for _ in range(2):
                yield from op.start()
                yield from op.wait()
            return True

        res = Cluster(2, scheme="multi-w").run([rank0, rank1])
        assert res.values[1] is True
