"""Shared helpers for MPI-layer integration tests."""

import numpy as np

from repro import Cluster, types

ALL_SCHEMES = (
    "generic", "bc-spup", "rwg-up", "p-rrs", "multi-w", "hybrid", "adaptive"
)


def transfer(scheme, send_dt, recv_dt, count=1, fill=None, check=None,
             cluster_kwargs=None, tag=3):
    """Run a single send/recv between two ranks; returns (cluster, result).

    ``fill(mem_view_fn, addr)`` initializes the sender buffer;
    ``check(mem_view_fn, addr)`` validates the receiver buffer and returns
    a value.  Both get the rank's context.
    """
    cluster = Cluster(2, scheme=scheme, **(cluster_kwargs or {}))
    send_span = send_dt.flatten(count).span + abs(send_dt.lb) + 64
    recv_span = recv_dt.flatten(count).span + abs(recv_dt.lb) + 64

    def rank0(mpi):
        addr = mpi.alloc(send_span)
        if fill is not None:
            fill(mpi, addr)
        yield from mpi.send(addr, send_dt, count, dest=1, tag=tag)
        return addr

    def rank1(mpi):
        addr = mpi.alloc(recv_span)
        yield from mpi.recv(addr, recv_dt, count, source=0, tag=tag)
        if check is not None:
            return check(mpi, addr)
        return addr

    result = cluster.run([rank0, rank1])
    return cluster, result


def packed_stream(dt, count, base_view):
    """The packed byte stream of (dt, count) rooted at base_view[0]."""
    flat = dt.flatten(count)
    return np.concatenate(
        [base_view[off : off + ln] for off, ln in flat.blocks()]
    )


def fill_blocks(mpi, addr, dt, count, seed=123):
    """Write a deterministic pattern into every data block.

    The pattern is a function of the *stream position* only, so a receiver
    with a different block partition sees the same expected stream.
    """
    flat = dt.flatten(count)
    stream = expected_packed(dt, count, seed)
    pos = 0
    for off, ln in flat.blocks():
        mpi.node.memory.view(addr + off, ln)[:] = stream[pos : pos + ln]
        pos += ln


def expected_packed(dt, count, seed=123):
    total = dt.size * count
    rng = np.random.default_rng(seed)
    return rng.integers(0, 255, total, dtype=np.uint8)


def check_blocks(mpi, addr, dt, count, seed=123):
    """Validate the receive buffer holds the pattern in stream order."""
    flat = dt.flatten(count)
    got = np.concatenate(
        [mpi.node.memory.view(addr + off, ln) for off, ln in flat.blocks()]
    ) if flat.nblocks else np.empty(0, np.uint8)
    want = expected_packed(dt, count, seed)
    assert len(got) == len(want), f"{len(got)} != {len(want)} bytes"
    assert np.array_equal(got, want), "data corrupted in transfer"
    return True
