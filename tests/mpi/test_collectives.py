"""Integration tests for collective operations."""

import numpy as np
import pytest

from repro import Cluster, types
from tests.mpi.helpers import ALL_SCHEMES


class TestBarrier:
    pytestmark = pytest.mark.faultfree  # asserts timings
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8])
    def test_barrier_synchronizes(self, n):
        """No rank leaves the barrier before the last rank enters it."""

        def program(mpi):
            # stagger entry: rank r enters at r * 50 us
            yield mpi.sim.timeout(mpi.rank * 50.0)
            enter = mpi.now
            yield from mpi.barrier()
            return enter, mpi.now

        res = Cluster(n, scheme="bc-spup").run(program)
        last_enter = max(v[0] for v in res.values)
        for _enter, leave in res.values:
            assert leave >= last_enter

    def test_barrier_repeatable(self):
        def program(mpi):
            for _ in range(3):
                yield from mpi.barrier()
            return mpi.now

        res = Cluster(4, scheme="bc-spup").run(program)
        assert len(set(res.values)) <= 2  # all ranks leave close together


class TestBcast:
    @pytest.mark.parametrize("n", [2, 4, 7])
    @pytest.mark.parametrize("root", [0, 1])
    def test_bcast_contiguous(self, n, root):
        dt = types.contiguous(1000, types.INT)

        def program(mpi):
            buf = mpi.alloc_array((1000,), np.int32)
            if mpi.rank == root:
                buf.array[:] = np.arange(1000)
            yield from mpi.bcast(buf.addr, dt, 1, root)
            return int(buf.array.sum())

        res = Cluster(n, scheme="bc-spup").run(program)
        expect = int(np.arange(1000).sum())
        assert all(v == expect for v in res.values)

    def test_bcast_large_vector(self):
        rows, cols = 64, 512
        dt = types.vector(rows, 64, cols, types.INT)

        def program(mpi):
            buf = mpi.alloc_array((rows, cols), np.int32)
            if mpi.rank == 0:
                buf.array[:] = np.arange(rows * cols).reshape(rows, cols)
            yield from mpi.bcast(buf.addr, dt, 1, 0)
            return buf.array[:, :64].sum()

        res = Cluster(4, scheme="rwg-up").run(program)
        expect = np.arange(rows * cols).reshape(rows, cols)[:, :64].sum()
        assert all(v == expect for v in res.values)


class TestAllgather:
    def test_allgather_values(self):
        n, count = 4, 256
        dt = types.contiguous(count, types.INT)

        def program(mpi):
            send = mpi.alloc_array((count,), np.int32)
            send.array[:] = mpi.rank + 1
            recv = mpi.alloc_array((n, count), np.int32)
            yield from mpi.allgather(send.addr, dt, 1, recv.addr, dt, 1)
            return [int(recv.array[i, 0]) for i in range(n)]

        res = Cluster(n, scheme="bc-spup").run(program)
        for v in res.values:
            assert v == [1, 2, 3, 4]


class TestAlltoall:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_alltoall_contiguous(self, scheme):
        n, count = 4, 512
        dt = types.contiguous(count, types.INT)

        def program(mpi):
            send = mpi.alloc_array((n, count), np.int32)
            for j in range(n):
                send.array[j, :] = 100 * mpi.rank + j
            recv = mpi.alloc_array((n, count), np.int32)
            recv.array[:] = -1
            yield from mpi.alltoall(send.addr, dt, 1, recv.addr, dt, 1)
            # chunk i must hold rank i's row for me: 100*i + my_rank
            return all(
                (recv.array[i] == 100 * i + mpi.rank).all() for i in range(n)
            )

        res = Cluster(n, scheme=scheme).run(program)
        assert all(res.values)

    @pytest.mark.parametrize("scheme", ["generic", "bc-spup", "rwg-up", "multi-w"])
    def test_alltoall_struct_datatype(self, scheme):
        """The Figure 11 workload shape: struct with growing blocks."""
        n = 4
        lengths = [2**k for k in range(8)]  # 1..128 ints
        disps, pos = [], 0
        for m in lengths:
            disps.append(pos * 4)
            pos += 2 * m
        dt = types.struct([m * 32 for m in lengths], [d * 32 for d in disps],
                          [types.INT] * len(lengths))
        extent = dt.extent

        def program(mpi):
            send = mpi.alloc(n * extent + 64)
            recv = mpi.alloc(n * extent + 64)
            flat = dt.flatten(1)
            for j in range(n):
                for off, ln in flat.blocks():
                    mpi.node.memory.view(send + j * extent + off, ln)[:] = (
                        (10 + mpi.rank * n + j) % 251
                    )
            yield from mpi.alltoall(send, dt, 1, recv, dt, 1)
            ok = True
            for i in range(n):
                want = (10 + i * n + mpi.rank) % 251
                for off, ln in flat.blocks():
                    blk = mpi.node.memory.view(recv + i * extent + off, ln)
                    ok = ok and (blk == want).all()
            return bool(ok)

        res = Cluster(n, scheme=scheme).run(program)
        assert all(res.values)

    @pytest.mark.faultfree  # asserts a timing ordering
    def test_alltoall_schemes_improve_over_generic(self):
        """Figure 11 shape: the new schemes beat Generic on an 8-process
        alltoall with the struct datatype."""
        n = 8
        lengths, disps, pos = [], [], 0
        for k in range(12):  # last block 2048 ints
            m = 2**k
            lengths.append(m)
            disps.append(pos * 4)
            pos += 2 * m
        dt = types.struct(lengths, disps, [types.INT] * len(lengths))
        extent = dt.extent

        def program(mpi):
            send = mpi.alloc(n * extent + 64)
            recv = mpi.alloc(n * extent + 64)
            t0 = mpi.now
            for _ in range(2):
                yield from mpi.alltoall(send, dt, 1, recv, dt, 1)
            return mpi.now - t0

        times = {}
        for scheme in ("generic", "bc-spup", "multi-w"):
            res = Cluster(n, scheme=scheme).run(program)
            times[scheme] = max(res.values)
        assert times["bc-spup"] < times["generic"]
        assert times["multi-w"] < times["generic"]
