"""Tests for Cluster construction, run semantics, and statistics."""

import numpy as np
import pytest

from repro import Cluster, CostModel, types
from repro.simulator import SimulationError


class TestConstruction:
    def test_bad_nranks(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_bad_scheme(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            Cluster(2, scheme="warp-drive")

    def test_contexts_have_full_mesh(self):
        c = Cluster(4)
        for ctx in c.contexts:
            peers = {r for r in range(4) if r != ctx.rank}
            assert set(ctx.ctrl_qps) == peers
            assert set(ctx.data_qps) == peers

    def test_custom_cost_model(self):
        cm = CostModel.slow_network()
        c = Cluster(2, cost_model=cm)
        assert c.cm.wire_bandwidth == cm.wire_bandwidth


class TestRun:
    def test_same_program_everywhere(self):
        def program(mpi):
            yield mpi.sim.timeout(1.0)
            return mpi.rank * 2

        res = Cluster(3).run(program)
        assert res.values == [0, 2, 4]

    def test_program_count_mismatch(self):
        def program(mpi):
            yield mpi.sim.timeout(1.0)

        with pytest.raises(ValueError, match="programs"):
            Cluster(3).run([program, program])

    def test_deadlock_detected(self):
        dt = types.contiguous(4, types.INT)

        def stuck(mpi):
            buf = mpi.alloc(16)
            # recv that never gets a message
            yield from mpi.recv(buf, dt, 1, source=(mpi.rank + 1) % 2, tag=0)

        with pytest.raises(SimulationError, match="did not finish"):
            Cluster(2).run(stuck)

    def test_until_cutoff(self):
        def slowpoke(mpi):
            yield mpi.sim.timeout(1e9)

        with pytest.raises(SimulationError, match="did not finish"):
            Cluster(1).run(slowpoke, until=100.0)

    def test_run_result_value_accessor(self):
        def program(mpi):
            yield mpi.sim.timeout(1.0)
            return "ok"

        res = Cluster(1).run(program)
        assert res.value(0) == "ok"
        assert res.time_us == 1.0

    def test_exception_in_program_propagates(self):
        def bad(mpi):
            yield mpi.sim.timeout(1.0)
            raise RuntimeError("application bug")

        with pytest.raises(RuntimeError, match="application bug"):
            Cluster(1).run(bad)


class TestSchemeRouting:
    def test_contiguous_rendezvous_uses_zero_copy_path(self):
        """Even under the Generic configuration, large contiguous sends
        take the zero-copy (Multi-W) path, as MVAPICH does."""
        dt = types.contiguous(100_000, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(dt.extent)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)

        c = Cluster(2, scheme="generic")
        c.run([rank0, rank1])
        # the generic scheme's staging pools were never touched
        gen0 = c.contexts[0].get_scheme("generic")
        assert not gen0._pack_stage._free  # no staging buffer was created

    def test_noncontiguous_uses_configured_scheme(self):
        dt = types.vector(64, 64, 256, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent + 64)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(dt.extent + 64)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)

        c = Cluster(2, scheme="generic")
        c.run([rank0, rank1])
        gen0 = c.contexts[0].get_scheme("generic")
        assert gen0._pack_stage._free  # staging was used and returned


class TestStats:
    def test_stats_shape(self):
        dt = types.vector(64, 128, 512, types.INT)  # 32 KB -> rendezvous

        def rank0(mpi):
            buf = mpi.alloc(dt.extent + 64)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(dt.extent + 64)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)

        c = Cluster(2, scheme="multi-w")
        c.run([rank0, rank1])
        stats = c.stats()
        assert stats["time_us"] > 0
        assert stats["bytes_injected"][0] > 0
        assert len(stats["cpu_busy_us"]) == 2
        assert stats["dt_cache_misses"][0] == 1  # first layout shipment

    def test_determinism_across_identical_clusters(self):
        dt = types.vector(64, 16, 64, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent + 64)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)
            return mpi.now

        def rank1(mpi):
            buf = mpi.alloc(dt.extent + 64)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            return mpi.now

        t1 = Cluster(2, scheme="bc-spup").run([rank0, rank1]).values
        t2 = Cluster(2, scheme="bc-spup").run([rank0, rank1]).values
        assert t1 == t2
