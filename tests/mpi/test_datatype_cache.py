"""Unit tests for the receiver-datatype cache (Section 5.4.2)."""

import pytest

from repro.datatypes.flatten import Flattened
from repro.mpi.datatype_cache import DatatypeCache, ReceiverTypeRegistry


def flat(*blocks):
    return Flattened.from_blocks(blocks)


class TestReceiverRegistry:
    def test_intern_assigns_index(self):
        reg = ReceiverTypeRegistry()
        idx, ver = reg.intern(("a",), flat((0, 4)))
        assert ver == 1
        idx2, ver2 = reg.intern(("b",), flat((0, 8)))
        assert idx2 != idx

    def test_intern_same_signature_same_index(self):
        reg = ReceiverTypeRegistry()
        a = reg.intern(("a",), flat((0, 4)))
        assert reg.intern(("a",), flat((0, 4))) == a

    def test_encode_full_then_ref(self):
        reg = ReceiverTypeRegistry()
        f = flat((0, 4), (8, 4))
        first = reg.encode_for(peer=1, signature=("a",), flattened=f)
        assert first[0] == "full"
        second = reg.encode_for(peer=1, signature=("a",), flattened=f)
        assert second[0] == "ref"

    def test_encode_per_peer_state(self):
        reg = ReceiverTypeRegistry()
        f = flat((0, 4))
        reg.encode_for(peer=1, signature=("a",), flattened=f)
        other = reg.encode_for(peer=2, signature=("a",), flattened=f)
        assert other[0] == "full"  # peer 2 never saw it

    def test_free_and_reuse_bumps_version(self):
        """The paper's extension: freed index reused -> version change ->
        receiver resends the full representation."""
        reg = ReceiverTypeRegistry(max_indices=1)
        f1, f2 = flat((0, 4)), flat((0, 8))
        idx1, ver1 = reg.intern(("a",), f1)
        reg.free(("a",))
        idx2, ver2 = reg.intern(("b",), f2)
        assert idx2 == idx1  # index reused
        assert ver2 == ver1 + 1  # version bumped
        assert reg.evictions == 1  # the reuse is counted as an eviction

    def test_reuse_forces_full_resend(self):
        reg = ReceiverTypeRegistry(max_indices=1)
        f1, f2 = flat((0, 4)), flat((0, 8))
        assert reg.encode_for(1, ("a",), f1)[0] == "full"
        assert reg.encode_for(1, ("a",), f1)[0] == "ref"
        reg.free(("a",))
        enc = reg.encode_for(1, ("b",), f2)
        assert enc[0] == "full"
        assert enc[2] == 2  # new version


class TestSenderCache:
    def test_full_then_ref_roundtrip(self):
        reg = ReceiverTypeRegistry()
        cache = DatatypeCache()
        f = flat((0, 4), (8, 4))
        enc1 = reg.encode_for(1, ("a",), f)
        assert cache.resolve(1, enc1) == f
        enc2 = reg.encode_for(1, ("a",), f)
        assert cache.resolve(1, enc2) == f
        assert cache.hits == 1 and cache.misses == 1

    def test_ref_without_full_is_protocol_error(self):
        cache = DatatypeCache()
        with pytest.raises(KeyError):
            cache.resolve(1, ("ref", 0, 1))

    def test_version_mismatch_detected(self):
        reg = ReceiverTypeRegistry()
        cache = DatatypeCache()
        f = flat((0, 4))
        cache.resolve(1, reg.encode_for(1, ("a",), f))
        with pytest.raises(KeyError):
            cache.resolve(1, ("ref", 0, 99))

    def test_bad_encoding(self):
        with pytest.raises(ValueError):
            DatatypeCache().resolve(1, ("junk",))

    def test_hit_rate(self):
        cache = DatatypeCache()
        assert cache.hit_rate == 0.0
        reg = ReceiverTypeRegistry()
        f = flat((0, 4))
        cache.resolve(1, reg.encode_for(1, ("a",), f))
        cache.resolve(1, reg.encode_for(1, ("a",), f))
        assert cache.hit_rate == 0.5

    def test_full_replacement_counts_eviction(self):
        """A 'full' layout replacing a cached (peer, index) entry is an
        eviction: the obsolete datatype is dropped (Section 5.4.2)."""
        reg = ReceiverTypeRegistry(max_indices=1)
        cache = DatatypeCache()
        f1, f2 = flat((0, 4)), flat((0, 8))
        cache.resolve(1, reg.encode_for(1, ("a",), f1))
        assert cache.evictions == 0
        reg.free(("a",))
        cache.resolve(1, reg.encode_for(1, ("b",), f2))  # same index, v2
        assert cache.evictions == 1
        assert cache.misses == 2

    def test_eviction_counters_reach_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        reg = ReceiverTypeRegistry(max_indices=1, metrics=metrics, node=1)
        cache = DatatypeCache(metrics=metrics, node=0)
        f1, f2 = flat((0, 4)), flat((0, 8))
        cache.resolve(1, reg.encode_for(0, ("a",), f1))
        reg.free(("a",))
        cache.resolve(1, reg.encode_for(0, ("b",), f2))
        assert metrics.counter("dtype.registry.evictions", 1).value == 1
        assert metrics.counter("dtype.cache.evictions", 0).value == 1
        assert metrics.counter("dtype.cache.misses", 0).value == 2

    def test_per_peer_isolation(self):
        """Layouts cached for one peer do not serve another."""
        reg1 = ReceiverTypeRegistry()
        cache = DatatypeCache()
        f = flat((0, 4))
        cache.resolve(1, reg1.encode_for(0, ("a",), f))
        with pytest.raises(KeyError):
            cache.resolve(2, ("ref", 0, 1))
