"""Tests for Bruck's small-message alltoall and algorithm selection."""

import numpy as np
import pytest

from repro import Cluster, types
from repro.mpi.collectives import (
    BRUCK_MIN_RANKS,
    BRUCK_THRESHOLD,
    _alltoall_bruck,
    _alltoall_pairwise,
)


def alltoall_program(count, n, force=None):
    """Alltoall of (count int32) chunks; verify the standard pattern."""
    dt = types.contiguous(count, types.INT)

    def program(mpi):
        send = mpi.alloc_array((n, count), np.int32)
        for j in range(n):
            send.array[j, :] = 1000 * mpi.rank + j
        recv = mpi.alloc_array((n, count), np.int32)
        recv.array[:] = -1
        if force == "bruck":
            yield from _alltoall_bruck(mpi, send.addr, dt, 1, recv.addr, dt, 1)
        elif force == "pairwise":
            yield from _alltoall_pairwise(mpi, send.addr, dt, 1, recv.addr, dt, 1)
        else:
            yield from mpi.alltoall(send.addr, dt, 1, recv.addr, dt, 1)
        ok = all(
            (recv.array[i] == 1000 * i + mpi.rank).all() for i in range(n)
        )
        return bool(ok), mpi.now

    return program


class TestBruckCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7, 8])
    def test_bruck_all_sizes(self, n):
        res = Cluster(n).run(alltoall_program(8, n, force="bruck"))
        assert all(ok for ok, _t in res.values)

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_matches_pairwise_result(self, n):
        res_b = Cluster(n).run(alltoall_program(16, n, force="bruck"))
        res_p = Cluster(n).run(alltoall_program(16, n, force="pairwise"))
        assert all(ok for ok, _t in res_b.values)
        assert all(ok for ok, _t in res_p.values)


class TestSelection:
    pytestmark = pytest.mark.faultfree  # asserts timings
    def test_bruck_wins_at_scale_with_tiny_chunks(self):
        """The measured crossover: at >= 32 ranks and <= 16 B chunks,
        Bruck's startup savings beat its extra copies."""
        n, count = 32, 1  # 4 B chunks
        res_b = Cluster(n).run(alltoall_program(count, n, force="bruck"))
        res_p = Cluster(n).run(alltoall_program(count, n, force="pairwise"))
        t_bruck = max(t for _ok, t in res_b.values)
        t_pair = max(t for _ok, t in res_p.values)
        assert t_bruck < t_pair

    def test_pairwise_wins_below_the_crossover(self):
        """At small process counts the fully-pipelined pairwise exchange
        dominates (this model's eager messages are cheap)."""
        n, count = 8, 16
        res_b = Cluster(n).run(alltoall_program(count, n, force="bruck"))
        res_p = Cluster(n).run(alltoall_program(count, n, force="pairwise"))
        assert max(t for _ok, t in res_p.values) < max(
            t for _ok, t in res_b.values
        )

    def test_auto_selection_tracks_best(self):
        for n, count, better in ((32, 1, "bruck"), (8, 65536, "pairwise")):
            res_auto = Cluster(n).run(alltoall_program(count, n))
            res_best = Cluster(n).run(alltoall_program(count, n, force=better))
            t_auto = max(t for _ok, t in res_auto.values)
            t_best = max(t for _ok, t in res_best.values)
            assert t_auto == pytest.approx(t_best, rel=0.02), (n, count)

    def test_cutoff_constants(self):
        assert BRUCK_THRESHOLD == 16
        assert BRUCK_MIN_RANKS == 32
