"""Tests for MPI_Info-style buffer reuse hints (paper Section 6)."""

import pytest

from repro import Cluster, types


class TestHintSemantics:
    def test_no_hint_returns_none(self):
        c = Cluster(1)
        assert c.contexts[0].buffer_hint(0, 100) is None

    def test_covering_hint_applies(self):
        c = Cluster(1)
        ctx = c.contexts[0]
        ctx.set_buffer_hint(1000, 5000, reuse=False)
        assert ctx.buffer_hint(1000, 5000) is False
        assert ctx.buffer_hint(2000, 100) is False

    def test_partial_coverage_does_not_apply(self):
        c = Cluster(1)
        ctx = c.contexts[0]
        ctx.set_buffer_hint(1000, 5000, reuse=False)
        assert ctx.buffer_hint(500, 1000) is None
        assert ctx.buffer_hint(5999, 100) is None

    def test_latest_hint_wins(self):
        c = Cluster(1)
        ctx = c.contexts[0]
        ctx.set_buffer_hint(0, 10000, reuse=False)
        ctx.set_buffer_hint(0, 10000, reuse=True)
        assert ctx.buffer_hint(100, 100) is True

    def test_bad_length(self):
        c = Cluster(1)
        with pytest.raises(ValueError):
            c.contexts[0].set_buffer_hint(0, 0, reuse=True)


class TestCacheInteraction:
    def test_oneshot_hint_prevents_caching(self):
        dt = types.vector(64, 1024, 4096, types.INT)
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            mpi.set_buffer_hint(buf, span, reuse=False)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)
            yield from mpi.send(buf, dt, 1, dest=1, tag=1)

        def rank1(mpi):
            buf = mpi.alloc(span)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            yield from mpi.recv(buf, dt, 1, source=0, tag=1)

        c = Cluster(2, scheme="multi-w")
        c.run([rank0, rank1])
        # sender registered its user buffer on BOTH sends (no cache hit)
        assert c.contexts[0].reg_cache.misses >= 2
        # and nothing of the sender's user buffer stays pinned
        sender_user = [
            mr for mr in c.contexts[0].node.memory.registered_regions
            if mr.length > 1 << 20 and mr.length < c.cm.pool_size
        ]
        assert sender_user == []

    def test_reused_buffer_still_cached(self):
        dt = types.vector(64, 1024, 4096, types.INT)
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            mpi.set_buffer_hint(buf, span, reuse=True)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)
            yield from mpi.send(buf, dt, 1, dest=1, tag=1)

        def rank1(mpi):
            buf = mpi.alloc(span)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            yield from mpi.recv(buf, dt, 1, source=0, tag=1)

        c = Cluster(2, scheme="multi-w")
        c.run([rank0, rank1])
        assert c.contexts[0].reg_cache.hits >= 1


class TestSelectorInteraction:
    def _choice(self, hint):
        dt = types.vector(64, 2048, 4096, types.INT)  # 8 KB blocks
        span = dt.flatten(1).span + 64

        def rank0(mpi):
            buf = mpi.alloc(span)
            if hint is not None:
                mpi.set_buffer_hint(buf, span, reuse=hint)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(span)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)

        c = Cluster(2, scheme="adaptive")
        c.run([rank0, rank1])
        sel = c.contexts[0].get_scheme("adaptive")
        return list(sel.choices.values())[0]

    def test_oneshot_hint_avoids_registration_schemes(self):
        assert self._choice(hint=False) == "bc-spup"

    def test_reuse_hint_keeps_zero_copy(self):
        assert self._choice(hint=True) == "multi-w"

    def test_no_hint_default(self):
        assert self._choice(hint=None) == "multi-w"
