"""Unit tests for the MPI message-matching engine."""

from dataclasses import dataclass

import pytest

from repro.mpi.matching import ANY_TAG, MatchEngine


@dataclass
class FakeRecv:
    source: int
    tag: int


@dataclass
class FakeEnvelope:
    src: int
    tag: int


class TestMatching:
    def test_posted_then_arrive(self):
        m = MatchEngine()
        r = FakeRecv(0, 5)
        assert m.post_recv(r) is None
        assert m.arrive(FakeEnvelope(0, 5)) is r

    def test_arrive_then_post(self):
        m = MatchEngine()
        e = FakeEnvelope(0, 5)
        assert m.arrive(e) is None
        assert m.post_recv(FakeRecv(0, 5)) is e

    def test_tag_mismatch_queues(self):
        m = MatchEngine()
        m.post_recv(FakeRecv(0, 5))
        assert m.arrive(FakeEnvelope(0, 6)) is None
        assert m.posted_count == 1
        assert m.unexpected_count == 1

    def test_source_mismatch_queues(self):
        m = MatchEngine()
        m.post_recv(FakeRecv(1, 5))
        assert m.arrive(FakeEnvelope(0, 5)) is None

    def test_any_tag_matches(self):
        m = MatchEngine()
        r = FakeRecv(0, ANY_TAG)
        m.post_recv(r)
        assert m.arrive(FakeEnvelope(0, 42)) is r

    def test_fifo_posted_order(self):
        m = MatchEngine()
        r1, r2 = FakeRecv(0, 5), FakeRecv(0, 5)
        m.post_recv(r1)
        m.post_recv(r2)
        assert m.arrive(FakeEnvelope(0, 5)) is r1
        assert m.arrive(FakeEnvelope(0, 5)) is r2

    def test_fifo_unexpected_order(self):
        m = MatchEngine()
        e1, e2 = FakeEnvelope(0, 5), FakeEnvelope(0, 5)
        m.arrive(e1)
        m.arrive(e2)
        assert m.post_recv(FakeRecv(0, 5)) is e1
        assert m.post_recv(FakeRecv(0, 5)) is e2

    def test_earlier_nonmatching_skipped(self):
        m = MatchEngine()
        e1, e2 = FakeEnvelope(0, 1), FakeEnvelope(0, 2)
        m.arrive(e1)
        m.arrive(e2)
        assert m.post_recv(FakeRecv(0, 2)) is e2
        assert m.unexpected_count == 1

    def test_cancel(self):
        m = MatchEngine()
        r = FakeRecv(0, 5)
        m.post_recv(r)
        assert m.cancel_recv(r)
        assert not m.cancel_recv(r)
        assert m.arrive(FakeEnvelope(0, 5)) is None
