"""Integration tests: point-to-point datatype transfers over every scheme.

Every test moves real bytes through the simulated fabric and checks the
receive buffer byte-for-byte — schemes must be functionally
indistinguishable and differ only in simulated time.
"""

import numpy as np
import pytest

from repro import ANY_TAG, Cluster, types
from tests.mpi.helpers import ALL_SCHEMES, check_blocks, fill_blocks, transfer


@pytest.fixture(params=ALL_SCHEMES)
def scheme(request):
    return request.param


class TestEagerMessages:
    def test_small_contiguous(self, scheme):
        dt = types.contiguous(100, types.INT)  # 400 B, eager
        _c, res = transfer(
            scheme, dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, dt, 1),
        )
        assert res.values[1] is True

    def test_small_vector(self, scheme):
        dt = types.vector(16, 4, 32, types.INT)  # 256 B data
        _c, res = transfer(
            scheme, dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, dt, 1),
        )
        assert res.values[1] is True

    def test_zero_byte_message(self, scheme):
        dt = types.contiguous(0, types.BYTE)
        _c, res = transfer(scheme, dt, dt, check=lambda mpi, a: True)
        assert res.values[1] is True

    def test_eager_asymmetric_types(self, scheme):
        """Sender packs a vector; receiver unpacks into an indexed layout
        with the same total size."""
        send_dt = types.vector(8, 2, 6, types.INT)  # 64 B
        recv_dt = types.indexed([4, 4, 8], [0, 8, 20], types.INT)  # 64 B
        _c, res = transfer(
            scheme, send_dt, recv_dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, send_dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, recv_dt, 1),
        )
        assert res.values[1] is True


class TestRendezvousMessages:
    def test_large_vector(self, scheme):
        dt = types.vector(128, 64, 4096, types.INT)  # 32 KB data
        _c, res = transfer(
            scheme, dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, dt, 1),
        )
        assert res.values[1] is True

    def test_megabyte_vector(self, scheme):
        dt = types.vector(128, 2048, 4096, types.INT)  # 1 MB data
        _c, res = transfer(
            scheme, dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, dt, 1),
        )
        assert res.values[1] is True

    def test_struct_datatype(self, scheme):
        lengths = [2**k for k in range(6)]
        disps, pos = [], 0
        for n in lengths:
            disps.append(pos * 4)
            pos += 2 * n
        dt = types.struct([n * 130 for n in lengths], [d * 130 for d in disps],
                          [types.INT] * len(lengths))
        _c, res = transfer(
            scheme, dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, dt, 1),
        )
        assert res.values[1] is True

    def test_count_greater_than_one(self, scheme):
        dt = types.vector(32, 16, 64, types.INT)
        _c, res = transfer(
            scheme, dt, dt, count=8,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 8),
            check=lambda mpi, a: check_blocks(mpi, a, dt, 8),
        )
        assert res.values[1] is True

    def test_asymmetric_types_rendezvous(self, scheme):
        """Different layouts on the two sides (same type signature size)
        exercise the common-refinement / cursor machinery."""
        send_dt = types.vector(64, 128, 512, types.INT)  # 32 KB in 64 blocks
        recv_dt = types.vector(256, 32, 64, types.INT)  # 32 KB in 256 blocks
        assert send_dt.size == recv_dt.size
        _c, res = transfer(
            scheme, send_dt, recv_dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, send_dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, recv_dt, 1),
        )
        assert res.values[1] is True

    def test_contiguous_rendezvous(self, scheme):
        dt = types.contiguous(100_000, types.INT)  # 400 KB contiguous
        _c, res = transfer(
            scheme, dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, dt, 1),
        )
        assert res.values[1] is True

    def test_contiguous_sender_noncontiguous_receiver(self, scheme):
        send_dt = types.contiguous(8192, types.INT)  # 32 KB contiguous
        recv_dt = types.vector(128, 64, 256, types.INT)  # 32 KB
        _c, res = transfer(
            scheme, send_dt, recv_dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, send_dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, recv_dt, 1),
        )
        assert res.values[1] is True


class TestWorstCaseModes:
    """Figure 14 configuration: no registration cache, no staging pools."""

    def test_correct_without_caches(self, scheme):
        dt = types.vector(64, 256, 1024, types.INT)  # 64 KB
        _c, res = transfer(
            scheme, dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            check=lambda mpi, a: check_blocks(mpi, a, dt, 1),
            cluster_kwargs={"reg_cache_bytes": 0, "staging_pools": False},
        )
        assert res.values[1] is True

    def test_worst_case_slower(self, scheme):
        dt = types.vector(128, 512, 4096, types.INT)
        _c, warm = transfer(
            scheme, dt, dt, fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1)
        )
        _c, cold = transfer(
            scheme, dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            cluster_kwargs={"reg_cache_bytes": 0, "staging_pools": False},
        )
        assert cold.time_us >= warm.time_us

    def test_nothing_left_registered_after_worst_case(self):
        dt = types.vector(64, 256, 1024, types.INT)
        cluster, _res = transfer(
            "multi-w", dt, dt,
            fill=lambda mpi, a: fill_blocks(mpi, a, dt, 1),
            cluster_kwargs={"reg_cache_bytes": 0},
        )
        for ctx in cluster.contexts:
            # only the infrastructure regions (eager slots, pools) remain;
            # no user-buffer regions leak
            user_regions = [
                mr
                for mr in ctx.node.memory.registered_regions
                if mr.length < ctx.cm.pool_size
                and mr.length != 64 * ctx._slot_size
                and mr.length != 128 * ctx._slot_size
            ]
            assert user_regions == [], user_regions


class TestNonblocking:
    def test_isend_irecv_waitall(self, scheme):
        dt = types.vector(16, 16, 64, types.INT)
        nmsg = 5

        def rank0(mpi):
            bufs = [mpi.alloc(dt.extent + 64) for _ in range(nmsg)]
            for k, b in enumerate(bufs):
                fill_blocks(mpi, b, dt, 1, seed=k)
            reqs = []
            for k, b in enumerate(bufs):
                r = yield from mpi.isend(b, dt, 1, dest=1, tag=k)
                reqs.append(r)
            yield from mpi.waitall(reqs)

        def rank1(mpi):
            bufs = [mpi.alloc(dt.extent + 64) for _ in range(nmsg)]
            reqs = []
            for k, b in enumerate(bufs):
                r = yield from mpi.irecv(b, dt, 1, source=0, tag=k)
                reqs.append(r)
            yield from mpi.waitall(reqs)
            for k, b in enumerate(bufs):
                check_blocks(mpi, b, dt, 1, seed=k)
            return True

        res = Cluster(2, scheme=scheme).run([rank0, rank1])
        assert res.values[1] is True

    def test_out_of_order_tags(self, scheme):
        """Receiver posts tags in reverse order of sends."""
        dt = types.contiguous(64, types.INT)

        def rank0(mpi):
            bufs = []
            for k in range(3):
                b = mpi.alloc(dt.extent)
                mpi.node.memory.view(b, dt.extent)[:] = k + 1
                bufs.append(b)
            for k in range(3):
                yield from mpi.send(bufs[k], dt, 1, dest=1, tag=k)

        def rank1(mpi):
            out = []
            for k in reversed(range(3)):
                b = mpi.alloc(dt.extent)
                yield from mpi.recv(b, dt, 1, source=0, tag=k)
                out.append(int(mpi.node.memory.view(b, 1)[0]))
            return out  # received tag2, tag1, tag0 -> values 3, 2, 1

        res = Cluster(2, scheme=scheme).run([rank0, rank1])
        assert res.values[1] == [3, 2, 1]

    def test_any_tag(self, scheme):
        dt = types.contiguous(16, types.INT)

        def rank0(mpi):
            b = mpi.alloc(dt.extent)
            yield from mpi.send(b, dt, 1, dest=1, tag=77)

        def rank1(mpi):
            b = mpi.alloc(dt.extent)
            req = yield from mpi.recv(b, dt, 1, source=0, tag=ANY_TAG)
            return req.status_tag

        res = Cluster(2, scheme=scheme).run([rank0, rank1])
        assert res.values[1] == 77


class TestSelfMessages:
    def test_send_to_self(self, scheme):
        dt = types.vector(8, 4, 16, types.INT)

        def rank0(mpi):
            src = mpi.alloc(dt.extent + 64)
            dst = mpi.alloc(dt.extent + 64)
            fill_blocks(mpi, src, dt, 1)
            sreq = yield from mpi.isend(src, dt, 1, dest=0, tag=1)
            rreq = yield from mpi.irecv(dst, dt, 1, source=0, tag=1)
            yield from mpi.waitall([sreq, rreq])
            return check_blocks(mpi, dst, dt, 1)

        res = Cluster(1, scheme=scheme).run([rank0])
        assert res.values[0] is True


class TestFlowControl:
    def test_many_eager_messages_exceed_credits(self):
        """200 eager messages (> the 64-credit window) still deliver."""
        dt = types.contiguous(256, types.INT)  # 1 KB eager
        nmsg = 200

        def rank0(mpi):
            b = mpi.alloc(dt.extent)
            reqs = []
            for k in range(nmsg):
                mpi.node.memory.view(b, 4)[:] = k % 251
                r = yield from mpi.isend(b, dt, 1, dest=1, tag=0)
                reqs.append(r)
            yield from mpi.waitall(reqs)

        def rank1(mpi):
            got = 0
            b = mpi.alloc(dt.extent)
            for _ in range(nmsg):
                yield from mpi.recv(b, dt, 1, source=0, tag=0)
                got += 1
            return got

        res = Cluster(2, scheme="bc-spup").run([rank0, rank1])
        assert res.values[1] == nmsg


class TestTimingSanity:
    pytestmark = pytest.mark.faultfree  # asserts timings
    """Coarse timing-shape assertions (precise shapes: benchmarks/)."""

    def _pingpong(self, scheme, cols, iters=4):
        dt = types.vector(128, cols, 4096, types.INT)

        def rank0(mpi):
            a = mpi.alloc(dt.extent + 64)
            t0 = None
            for i in range(iters):
                if i == 1:
                    t0 = mpi.now
                yield from mpi.send(a, dt, 1, dest=1, tag=0)
                yield from mpi.recv(a, dt, 1, source=1, tag=1)
            return (mpi.now - t0) / (iters - 1) / 2

        def rank1(mpi):
            b = mpi.alloc(dt.extent + 64)
            for _ in range(iters):
                yield from mpi.recv(b, dt, 1, source=0, tag=0)
                yield from mpi.send(b, dt, 1, dest=0, tag=1)

        return Cluster(2, scheme=scheme).run([rank0, rank1]).values[0]

    def test_large_blocks_ordering(self):
        """At 8 KB blocks: Multi-W < RWG-UP < BC-SPUP < Generic (Fig. 8)."""
        t = {s: self._pingpong(s, 2048) for s in ("generic", "bc-spup", "rwg-up", "multi-w")}
        assert t["multi-w"] < t["rwg-up"] < t["bc-spup"] < t["generic"]

    def test_small_blocks_multiw_degrades(self):
        """At 256 B blocks Multi-W is worse than Generic (Fig. 8)."""
        t_multi = self._pingpong("multi-w", 64)
        t_gen = self._pingpong("generic", 64)
        assert t_multi > t_gen

    def test_eager_identical_across_new_schemes(self):
        """1-2 columns follow the eager path in all new schemes, with
        identical times (Section 8.2), faster than Generic (Fig. 7)."""
        times = {s: self._pingpong(s, 2) for s in ("bc-spup", "rwg-up", "multi-w")}
        vals = list(times.values())
        assert all(v == pytest.approx(vals[0]) for v in vals)
        assert self._pingpong("generic", 2) > vals[0]

    def test_bcspup_always_at_least_generic(self):
        for cols in (8, 64, 512, 2048):
            assert self._pingpong("bc-spup", cols) <= self._pingpong("generic", cols) * 1.01
