"""Tests for the polled RDMA-eager channel (Liu et al. [19])."""

import numpy as np
import pytest

from repro import Cluster, types
from tests.mpi.helpers import check_blocks, fill_blocks


def pingpong_latency(eager_rdma, nbytes=256, iters=4):
    dt = types.contiguous(nbytes, types.BYTE)

    def rank0(mpi):
        buf = mpi.alloc(max(nbytes, 1))
        t0 = None
        for i in range(iters):
            if i == 1:
                t0 = mpi.now
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)
            yield from mpi.recv(buf, dt, 1, source=1, tag=1)
        return (mpi.now - t0) / (iters - 1) / 2

    def rank1(mpi):
        buf = mpi.alloc(max(nbytes, 1))
        for _ in range(iters):
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            yield from mpi.send(buf, dt, 1, dest=0, tag=1)

    return Cluster(2, eager_rdma=eager_rdma).run([rank0, rank1]).values[0]


class TestCorrectness:
    def test_small_messages_delivered(self):
        dt = types.vector(16, 4, 32, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent + 64)
            fill_blocks(mpi, buf, dt, 1)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(dt.extent + 64)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            return check_blocks(mpi, buf, dt, 1)

        res = Cluster(2, eager_rdma=True).run([rank0, rank1])
        assert res.values[1] is True

    def test_many_messages_flow_control(self):
        """More messages than ring slots: ring credits must recycle."""
        dt = types.contiguous(64, types.INT)
        nmsg = 150  # >> the 32-slot ring

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            for k in range(nmsg):
                mpi.node.memory.view(buf, 4)[:] = k % 251
                yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(dt.extent)
            got = 0
            for _ in range(nmsg):
                yield from mpi.recv(buf, dt, 1, source=0, tag=0)
                got += 1
            return got

        res = Cluster(2, eager_rdma=True).run([rank0, rank1])
        assert res.values[1] == nmsg

    def test_unexpected_messages_park_in_ring(self):
        dt = types.contiguous(32, types.INT)

        def rank0(mpi):
            buf = mpi.alloc(dt.extent)
            for k in range(3):
                mpi.node.memory.view(buf, 4)[:] = k + 1
                yield from mpi.send(buf, dt, 1, dest=1, tag=k)

        def rank1(mpi):
            yield mpi.sim.timeout(500.0)  # let all three arrive unexpected
            out = []
            buf = mpi.alloc(dt.extent)
            for k in reversed(range(3)):
                yield from mpi.recv(buf, dt, 1, source=0, tag=k)
                out.append(int(mpi.node.memory.view(buf, 1)[0]))
            return out

        res = Cluster(2, eager_rdma=True).run([rank0, rank1])
        assert res.values[1] == [3, 2, 1]

    def test_rendezvous_unaffected(self):
        dt = types.vector(128, 512, 4096, types.INT)  # 256 KB

        def rank0(mpi):
            buf = mpi.alloc(dt.extent + 64)
            fill_blocks(mpi, buf, dt, 1)
            yield from mpi.send(buf, dt, 1, dest=1, tag=0)

        def rank1(mpi):
            buf = mpi.alloc(dt.extent + 64)
            yield from mpi.recv(buf, dt, 1, source=0, tag=0)
            return check_blocks(mpi, buf, dt, 1)

        res = Cluster(2, scheme="multi-w", eager_rdma=True).run([rank0, rank1])
        assert res.values[1] is True

    def test_collectives_over_ring(self):
        def program(mpi):
            send = mpi.alloc_array((4, 64), np.int32)
            send.array[:] = mpi.rank
            recv = mpi.alloc_array((4, 64), np.int32)
            dt = types.contiguous(64, types.INT)
            yield from mpi.alltoall(send.addr, dt, 1, recv.addr, dt, 1)
            return [int(recv.array[i, 0]) for i in range(4)]

        res = Cluster(4, eager_rdma=True).run(program)
        for v in res.values:
            assert v == [0, 1, 2, 3]


class TestLatency:
    pytestmark = pytest.mark.faultfree  # asserts timings
    def test_ring_faster_than_channel(self):
        """The point of [19]: the polled ring shaves the responder's
        receive-WQE processing off the eager latency."""
        chan = pingpong_latency(eager_rdma=False)
        ring = pingpong_latency(eager_rdma=True)
        assert ring < chan
        # the saving is roughly channel_recv_overhead per one-way hop
        from repro import CostModel

        cm = CostModel.mellanox_2003()
        assert (chan - ring) == pytest.approx(
            cm.channel_recv_overhead + cm.cqe_delay - cm.eager_rdma_poll, abs=0.6
        )

    def test_both_modes_same_wire_bytes(self):
        """The ring changes latency, not the amount of data moved."""

        def run(eager_rdma):
            dt = types.contiguous(256, types.INT)

            def rank0(mpi):
                buf = mpi.alloc(dt.extent)
                yield from mpi.send(buf, dt, 1, dest=1, tag=0)

            def rank1(mpi):
                buf = mpi.alloc(dt.extent)
                yield from mpi.recv(buf, dt, 1, source=0, tag=0)

            c = Cluster(2, eager_rdma=eager_rdma)
            c.run([rank0, rank1])
            return c.contexts[0].node.hca.bytes_injected

        assert run(True) == run(False)
