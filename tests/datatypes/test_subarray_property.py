"""Property test: subarray datatypes against numpy slicing ground truth.

For random array shapes and slabs, packing a subarray datatype must
produce exactly ``arr[slices].ravel(order)`` — numpy is the oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import INT, SegmentCursor, pack_bytes, subarray
from repro.ib.memory import NodeMemory


@st.composite
def slab_case(draw):
    ndims = draw(st.integers(1, 3))
    sizes = [draw(st.integers(1, 8)) for _ in range(ndims)]
    subsizes, starts = [], []
    for s in sizes:
        sub = draw(st.integers(1, s))
        start = draw(st.integers(0, s - sub))
        subsizes.append(sub)
        starts.append(start)
    order = draw(st.sampled_from(["C", "F"]))
    return sizes, subsizes, starts, order


class TestSubarrayAgainstNumpy:
    @given(slab_case())
    @settings(max_examples=150, deadline=None)
    def test_pack_equals_numpy_slab(self, case):
        sizes, subsizes, starts, order = case
        dt = subarray(sizes, subsizes, starts, INT, order=order)
        total = int(np.prod(sizes))
        mem = NodeMemory(0, total * 4 + dt.size + 4096)
        base = mem.alloc(total * 4)
        arr = mem.view(base, total * 4).view(np.int32)
        arr[:] = np.arange(total)
        nd = np.arange(total, dtype=np.int32).reshape(sizes, order=order)
        slices = tuple(
            slice(st0, st0 + su) for st0, su in zip(starts, subsizes)
        )
        expect = nd[slices].ravel(order=order)
        cur = SegmentCursor(dt)
        out = mem.alloc(max(dt.size, 4))
        pack_bytes(mem, base, cur, 0, cur.total, out)
        got = mem.view(out, dt.size).view(np.int32)
        assert np.array_equal(got, expect), (sizes, subsizes, starts, order)

    @given(slab_case())
    @settings(max_examples=80, deadline=None)
    def test_extent_covers_whole_array(self, case):
        sizes, subsizes, starts, order = case
        dt = subarray(sizes, subsizes, starts, INT, order=order)
        assert dt.extent == int(np.prod(sizes)) * 4
        assert dt.size == int(np.prod(subsizes)) * 4
        assert dt.lb == 0
