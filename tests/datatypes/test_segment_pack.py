"""Tests for partial datatype processing and operational pack/unpack,
including hypothesis property tests on randomly composed datatypes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datatypes import (
    INT,
    CHAR,
    SegmentCursor,
    contiguous,
    hindexed,
    pack_bytes,
    struct,
    unpack_bytes,
    vector,
)
from repro.ib.memory import NodeMemory


@pytest.fixture
def mem():
    return NodeMemory(node=0, capacity=1 << 22)


class TestSegmentCursor:
    def test_total(self):
        cur = SegmentCursor(vector(4, 2, 8, INT), count=3)
        assert cur.total == 4 * 2 * 4 * 3

    def test_full_range_covers_all_blocks(self):
        dt = vector(4, 2, 8, INT)
        cur = SegmentCursor(dt)
        slices = cur.slices(0, cur.total)
        assert sum(l for _o, l in slices) == dt.size
        assert [o for o, _l in slices] == list(dt.flatten(1).offsets)

    def test_mid_block_split(self):
        dt = vector(2, 2, 8, INT)  # blocks of 8 bytes at 0 and 32
        cur = SegmentCursor(dt)
        assert cur.slices(4, 12) == [(4, 4), (32, 4)]

    def test_range_inside_one_block(self):
        dt = vector(2, 2, 8, INT)
        cur = SegmentCursor(dt)
        assert cur.slices(1, 3) == [(1, 2)]

    def test_empty_range(self):
        cur = SegmentCursor(INT)
        assert cur.slices(2, 2) == []

    def test_out_of_range_rejected(self):
        cur = SegmentCursor(INT)
        with pytest.raises(ValueError):
            cur.slices(0, 5)
        with pytest.raises(ValueError):
            cur.slices(-1, 2)

    def test_block_count(self):
        dt = vector(4, 1, 4, INT)  # 4 blocks of 4 bytes
        cur = SegmentCursor(dt)
        assert cur.block_count(0, 16) == 4
        assert cur.block_count(0, 4) == 1
        assert cur.block_count(2, 6) == 2
        assert cur.block_count(5, 5) == 0

    def test_advance_streaming(self):
        dt = vector(3, 1, 4, INT)
        cur = SegmentCursor(dt)
        assert not cur.done
        first = cur.advance(6)
        assert cur.pos == 6
        second = cur.advance(100)  # clamped to total
        assert cur.done
        combined = first + second
        full = cur.slices(0, cur.total)
        # recombine: total bytes match and offsets are consistent
        assert sum(l for _o, l in combined) == sum(l for _o, l in full)

    def test_reset(self):
        cur = SegmentCursor(INT)
        cur.advance(4)
        assert cur.done
        cur.reset()
        assert cur.pos == 0

    def test_segments_cover_exactly(self):
        dt = vector(10, 3, 7, INT)
        cur = SegmentCursor(dt, count=2)
        segs = list(cur.segments(100))
        assert segs[0][0] == 0
        assert segs[-1][1] == cur.total
        for (a_lo, a_hi), (b_lo, b_hi) in zip(segs, segs[1:]):
            assert a_hi == b_lo
        assert all(hi - lo <= 100 for lo, hi in segs)

    def test_segments_bad_size(self):
        with pytest.raises(ValueError):
            list(SegmentCursor(INT).segments(0))


class TestPackUnpack:
    def _roundtrip(self, mem, dt, count=1):
        """pack whole message, clear source, unpack, compare."""
        extent_span = dt.flatten(count).span + abs(dt.lb) + 64
        base = mem.alloc(extent_span + 64)
        cur = SegmentCursor(dt, count)
        rng = np.random.default_rng(42)
        original = rng.integers(0, 255, size=extent_span, dtype=np.uint8)
        mem.view(base, extent_span)[:] = original
        packbuf = mem.alloc(max(cur.total, 1))
        pack_bytes(mem, base, cur, 0, cur.total, packbuf)
        # scramble the data blocks, then unpack and verify restoration
        mem.view(base, extent_span)[:] = 0
        unpack_bytes(mem, base, cur, 0, cur.total, packbuf)
        for off, length in cur.flat.blocks():
            assert np.array_equal(
                mem.view(base + off, length), original[off : off + length]
            ), f"block at {off} corrupted"

    def test_roundtrip_vector(self, mem):
        self._roundtrip(mem, vector(16, 3, 10, INT))

    def test_roundtrip_struct(self, mem):
        self._roundtrip(mem, struct([1, 2, 4], [0, 8, 24], [INT, INT, INT]))

    def test_roundtrip_count(self, mem):
        self._roundtrip(mem, vector(4, 1, 3, INT), count=5)

    def test_pack_matches_numpy_reference(self, mem):
        """Packing columns of a 2D array equals numpy fancy slicing."""
        rows, cols, x = 16, 32, 5
        base = mem.alloc(rows * cols * 4)
        arr = mem.view_as(base, (rows, cols), np.int32)
        arr[:] = np.arange(rows * cols).reshape(rows, cols)
        dt = vector(rows, x, cols, INT)
        cur = SegmentCursor(dt)
        packbuf = mem.alloc(cur.total)
        pack_bytes(mem, base, cur, 0, cur.total, packbuf)
        packed = mem.view(packbuf, cur.total).view(np.int32).reshape(rows, x)
        assert np.array_equal(packed, arr[:, :x])

    def test_segmented_pack_equals_whole_pack(self, mem):
        """Packing in arbitrary segments produces the same bytes as one
        whole-message pack — the correctness property of partial
        processing (Section 4.3.1)."""
        dt = vector(32, 3, 9, INT)
        cur = SegmentCursor(dt, count=2)
        base = mem.alloc(dt.extent * 2 + 64)
        rng = np.random.default_rng(7)
        mem.view(base, dt.extent * 2 + 64)[:] = rng.integers(
            0, 255, dt.extent * 2 + 64, dtype=np.uint8
        )
        whole = mem.alloc(cur.total)
        pack_bytes(mem, base, cur, 0, cur.total, whole)
        segged = mem.alloc(cur.total)
        for lo, hi in cur.segments(100):
            pack_bytes(mem, base, cur, lo, hi, segged + lo)
        assert np.array_equal(
            mem.view(whole, cur.total), mem.view(segged, cur.total)
        )

    def test_block_count_returned(self, mem):
        dt = vector(8, 1, 4, INT)
        cur = SegmentCursor(dt)
        base = mem.alloc(dt.extent + 64)
        buf = mem.alloc(cur.total)
        n = pack_bytes(mem, base, cur, 0, cur.total, buf)
        assert n == 8


# -- hypothesis property tests ------------------------------------------------

@st.composite
def random_datatype(draw):
    """Random small datatype: vector, hindexed or struct over INT/CHAR."""
    kind = draw(st.sampled_from(["vector", "hindexed", "struct", "contig"]))
    base = draw(st.sampled_from([INT, CHAR]))
    if kind == "vector":
        count = draw(st.integers(1, 12))
        blocklen = draw(st.integers(1, 6))
        stride = draw(st.integers(blocklen, blocklen + 8))
        return vector(count, blocklen, stride, base)
    if kind == "contig":
        return contiguous(draw(st.integers(1, 64)), base)
    n = draw(st.integers(1, 8))
    lengths = draw(st.lists(st.integers(1, 5), min_size=n, max_size=n))
    # build strictly non-overlapping displacements
    disps, pos = [], 0
    for length in lengths:
        gap = draw(st.integers(0, 7))
        pos += gap
        disps.append(pos)
        pos += length * base.extent
    if kind == "hindexed":
        return hindexed(lengths, disps, base)
    return struct(lengths, disps, [base] * n)


@st.composite
def datatype_and_count(draw):
    dt = draw(random_datatype())
    count = draw(st.integers(1, 4))
    return dt, count


class TestProperties:
    @given(datatype_and_count())
    @settings(max_examples=120, deadline=None)
    def test_flatten_size_invariant(self, dc):
        """sum of flattened block lengths == count * datatype.size."""
        dt, count = dc
        assert dt.flatten(count).size == dt.size * count

    @given(datatype_and_count())
    @settings(max_examples=120, deadline=None)
    def test_flatten_blocks_sorted_disjoint(self, dc):
        dt, count = dc
        flat = dt.flatten(count)
        ends = flat.offsets + flat.lengths
        assert (flat.offsets[1:] > ends[:-1]).all()  # strictly disjoint, merged

    @given(datatype_and_count(), st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_segmented_equals_whole(self, dc, segsize):
        """Any segmentation packs to the identical contiguous image."""
        dt, count = dc
        cur = SegmentCursor(dt, count)
        if cur.total == 0:
            return
        mem = NodeMemory(0, cur.flat.span + abs(dt.lb) + 2 * cur.total + 4096)
        base = mem.alloc(cur.flat.span + 8)
        rng = np.random.default_rng(0)
        mem.view(base, cur.flat.span + 8)[:] = rng.integers(
            0, 255, cur.flat.span + 8, dtype=np.uint8
        )
        whole = mem.alloc(cur.total)
        pack_bytes(mem, base, cur, 0, cur.total, whole)
        segged = mem.alloc(cur.total)
        for lo, hi in cur.segments(segsize):
            pack_bytes(mem, base, cur, lo, hi, segged + lo)
        assert np.array_equal(mem.view(whole, cur.total), mem.view(segged, cur.total))

    @given(datatype_and_count())
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_roundtrip(self, dc):
        """unpack(pack(x)) == x on all data blocks."""
        dt, count = dc
        cur = SegmentCursor(dt, count)
        if cur.total == 0:
            return
        mem = NodeMemory(0, cur.flat.span + cur.total + 4096)
        base = mem.alloc(cur.flat.span + 8)
        rng = np.random.default_rng(1)
        original = rng.integers(0, 255, cur.flat.span + 8, dtype=np.uint8)
        mem.view(base, cur.flat.span + 8)[:] = original
        buf = mem.alloc(cur.total)
        pack_bytes(mem, base, cur, 0, cur.total, buf)
        mem.view(base, cur.flat.span + 8)[:] = 0
        unpack_bytes(mem, base, cur, 0, cur.total, buf)
        for off, length in cur.flat.blocks():
            assert np.array_equal(mem.view(base + off, length), original[off : off + length])
