"""Unit tests for the Flattened block list."""

import numpy as np
import pytest

from repro.datatypes.flatten import Flattened


class TestFromBlocks:
    def test_sorts_and_keeps_disjoint(self):
        f = Flattened.from_blocks([(10, 2), (0, 4)])
        assert list(f.offsets) == [0, 10]
        assert list(f.lengths) == [4, 2]

    def test_merges_adjacent(self):
        f = Flattened.from_blocks([(0, 4), (4, 4), (8, 2)])
        assert f.nblocks == 1
        assert f.size == 10

    def test_drops_zero_length(self):
        f = Flattened.from_blocks([(0, 0), (5, 3)])
        assert f.nblocks == 1

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            Flattened.from_blocks([(0, 5), (3, 4)])

    def test_empty(self):
        f = Flattened.empty()
        assert f.nblocks == 0
        assert f.size == 0
        assert f.span == 0
        assert f.is_contiguous

    def test_immutable_arrays(self):
        f = Flattened.from_blocks([(0, 4)])
        with pytest.raises(ValueError):
            f.offsets[0] = 99


class TestProperties:
    def test_stats(self):
        f = Flattened.from_blocks([(0, 4), (10, 8), (30, 12)])
        assert f.size == 24
        assert f.span == 42
        assert f.gap_bytes == 18
        assert f.min_block == 4
        assert f.max_block == 12
        assert f.mean_block == 8.0
        assert f.median_block == 8.0

    def test_wire_bytes(self):
        f = Flattened.from_blocks([(0, 4), (10, 8)])
        assert f.wire_bytes == 32


class TestRepeat:
    def test_repeat_tiles_by_extent(self):
        f = Flattened.from_blocks([(0, 4)])
        r = f.repeat(3, extent=10)
        assert list(r.offsets) == [0, 10, 20]

    def test_repeat_merges_when_touching(self):
        f = Flattened.from_blocks([(0, 4)])
        r = f.repeat(3, extent=4)
        assert r.nblocks == 1
        assert r.size == 12

    def test_repeat_zero(self):
        f = Flattened.from_blocks([(0, 4)])
        assert f.repeat(0, 10).nblocks == 0

    def test_repeat_one_is_same(self):
        f = Flattened.from_blocks([(0, 4)])
        assert f.repeat(1, 10) is f

    def test_repeat_negative_rejected(self):
        with pytest.raises(ValueError):
            Flattened.from_blocks([(0, 4)]).repeat(-1, 10)


class TestOps:
    def test_shift(self):
        f = Flattened.from_blocks([(0, 4), (8, 4)]).shift(100)
        assert list(f.offsets) == [100, 108]

    def test_blocks_iter(self):
        f = Flattened.from_blocks([(0, 4), (8, 4)])
        assert list(f.blocks()) == [(0, 4), (8, 4)]

    def test_equality_and_hash(self):
        a = Flattened.from_blocks([(0, 4), (8, 4)])
        b = Flattened.from_blocks([(8, 4), (0, 4)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Flattened.from_blocks([(0, 4)])
