"""Unit tests for datatype constructors: sizes, extents, flattening."""

import pytest

from repro.datatypes import (
    CHAR,
    DOUBLE,
    INT,
    contiguous,
    hindexed,
    hvector,
    indexed,
    indexed_block,
    resized,
    struct,
    subarray,
    vector,
)


class TestPrimitives:
    def test_sizes(self):
        assert CHAR.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8

    def test_extent_equals_size(self):
        assert INT.extent == 4

    def test_contiguous_flag(self):
        assert INT.is_contiguous

    def test_flatten(self):
        flat = INT.flatten(3)
        assert flat.nblocks == 1  # merged
        assert flat.size == 12


class TestContiguous:
    def test_size_and_extent(self):
        dt = contiguous(10, INT)
        assert dt.size == 40
        assert dt.extent == 40
        assert dt.is_contiguous

    def test_flatten_merges(self):
        assert contiguous(10, INT).flatten(5).nblocks == 1

    def test_zero_count(self):
        dt = contiguous(0, INT)
        assert dt.size == 0
        assert dt.flatten(1).nblocks == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            contiguous(-1, INT)

    def test_nested(self):
        dt = contiguous(4, contiguous(5, INT))
        assert dt.size == 80
        assert dt.flatten(1).nblocks == 1


class TestVector:
    def test_paper_example(self):
        """MPI_Type_vector(128, x, 4096, MPI_INT) — Section 3.2."""
        x = 7
        dt = vector(128, x, 4096, INT)
        assert dt.size == 128 * x * 4
        flat = dt.flatten(1)
        assert flat.nblocks == 128
        assert flat.lengths[0] == x * 4
        assert flat.offsets[1] - flat.offsets[0] == 4096 * 4

    def test_extent(self):
        # extent spans first block start to last block end
        dt = vector(3, 2, 10, INT)
        assert dt.extent == (2 * 10 + 2) * 4

    def test_full_width_vector_is_contiguous(self):
        dt = vector(4, 10, 10, INT)
        assert dt.flatten(1).nblocks == 1
        assert dt.is_contiguous

    def test_blocklength_equal_stride_merges(self):
        assert vector(8, 3, 3, INT).flatten(2).nblocks == 1

    def test_count_repetition_tiles_by_extent(self):
        # extent = ((count-1)*stride + blocklength) * elsize = 20 bytes, so
        # the second element's first block (at 20) touches the first
        # element's last block (16..20) and they merge: 3 blocks total.
        dt = vector(2, 1, 4, INT)
        assert dt.extent == 20
        flat2 = dt.flatten(2)
        assert flat2.nblocks == 3
        assert flat2.size == 16

    def test_hvector_bytes(self):
        dt = hvector(3, 1, 100, INT)
        flat = dt.flatten(1)
        assert list(flat.offsets) == [0, 100, 200]


class TestIndexed:
    def test_indexed_scales_by_extent(self):
        dt = indexed([2, 1], [0, 5], INT)
        flat = dt.flatten(1)
        assert list(flat.offsets) == [0, 20]
        assert list(flat.lengths) == [8, 4]

    def test_hindexed_bytes(self):
        dt = hindexed([1, 1], [0, 9], CHAR)
        assert list(dt.flatten(1).offsets) == [0, 9]

    def test_indexed_block(self):
        dt = indexed_block(2, [0, 4, 8], INT)
        flat = dt.flatten(1)
        assert flat.nblocks == 3
        assert all(l == 8 for l in flat.lengths)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            indexed([1, 2], [0], INT)

    def test_out_of_order_displacements_sorted(self):
        dt = indexed([1, 1], [5, 0], INT)
        offs = list(dt.flatten(1).offsets)
        assert offs == sorted(offs)


class TestStruct:
    def test_paper_figure10_struct(self):
        """Block k has 2**k ints, gap after block k equals block k's size."""
        nblocks, lengths, disps = 4, [], []
        pos = 0
        for k in range(nblocks):
            n = 2**k
            lengths.append(n)
            disps.append(pos * 4)
            pos += 2 * n  # block + equal gap
        dt = struct(lengths, disps, [INT] * nblocks)
        assert dt.size == sum(2**k for k in range(nblocks)) * 4
        flat = dt.flatten(1)
        assert flat.nblocks == nblocks
        assert list(flat.lengths) == [4, 8, 16, 32]

    def test_heterogeneous(self):
        dt = struct([1, 2], [0, 8], [INT, DOUBLE])
        assert dt.size == 4 + 16
        flat = dt.flatten(1)
        assert list(flat.offsets) == [0, 8]

    def test_argument_mismatch(self):
        with pytest.raises(ValueError):
            struct([1], [0, 8], [INT, INT])


class TestTrueExtent:
    def test_primitive(self):
        assert INT.true_lb == 0
        assert INT.true_extent == 4

    def test_resized_true_extent_excludes_padding(self):
        dt = resized(INT, lb=0, extent=64)
        assert dt.extent == 64
        assert dt.true_extent == 4

    def test_vector_true_extent_spans_blocks(self):
        dt = vector(3, 1, 4, INT)
        assert dt.true_lb == 0
        assert dt.true_ub == 2 * 16 + 4

    def test_offset_struct_true_lb(self):
        dt = struct([1], [100], [INT])
        assert dt.true_lb == 100
        assert dt.true_extent == 4

    def test_empty_type(self):
        dt = contiguous(0, INT)
        assert dt.true_extent == 0


class TestResized:
    def test_overrides_extent(self):
        dt = resized(INT, lb=0, extent=16)
        assert dt.extent == 16
        assert dt.size == 4
        flat = dt.flatten(3)
        assert list(flat.offsets) == [0, 16, 32]

    def test_negative_lb(self):
        dt = resized(INT, lb=-4, extent=12)
        assert dt.lb == -4
        assert dt.extent == 12


class TestSubarray:
    def test_2d_column_slab(self):
        # 4 x 6 int array, take columns 1..2 (subsizes (4, 2), start (0, 1))
        dt = subarray([4, 6], [4, 2], [0, 1], INT)
        assert dt.size == 4 * 2 * 4
        assert dt.extent == 4 * 6 * 4
        flat = dt.flatten(1)
        assert flat.nblocks == 4
        assert list(flat.offsets) == [4, 28, 52, 76]
        assert all(l == 8 for l in flat.lengths)

    def test_full_array_contiguous(self):
        dt = subarray([4, 6], [4, 6], [0, 0], INT)
        assert dt.flatten(1).nblocks == 1

    def test_3d_slab(self):
        dt = subarray([2, 3, 4], [2, 2, 2], [0, 1, 1], INT)
        assert dt.size == 8 * 4
        flat = dt.flatten(1)
        assert flat.nblocks == 4  # 2*2 rows of 2 contiguous ints

    def test_fortran_order(self):
        # F order: first dim contiguous. Take rows 1..2 of a 6 x 4 array.
        dt = subarray([6, 4], [2, 4], [1, 0], INT, order="F")
        assert dt.size == 8 * 4
        flat = dt.flatten(1)
        assert flat.nblocks == 4
        assert flat.offsets[0] == 4  # starts at row 1

    def test_bounds_check(self):
        with pytest.raises(ValueError):
            subarray([4, 4], [2, 2], [3, 0], INT)

    def test_bad_order(self):
        with pytest.raises(ValueError):
            subarray([4], [2], [0], INT, order="X")


class TestSignatureEquality:
    def test_equal_constructions_equal(self):
        assert vector(4, 2, 8, INT) == vector(4, 2, 8, INT)
        assert hash(vector(4, 2, 8, INT)) == hash(vector(4, 2, 8, INT))

    def test_different_params_differ(self):
        assert vector(4, 2, 8, INT) != vector(4, 3, 8, INT)

    def test_primitive_identity(self):
        assert INT == INT
        assert INT != DOUBLE

    def test_describe(self):
        assert "blocks=128" in vector(128, 1, 4096, INT).describe()
