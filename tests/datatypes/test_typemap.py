"""Tests for the MPI typemap / type-signature API."""

import pytest

from repro.datatypes import (
    DOUBLE,
    INT,
    contiguous,
    resized,
    struct,
    vector,
)


class TestTypemap:
    def test_primitive(self):
        assert INT.typemap() == [("INT", 0)]

    def test_contiguous(self):
        assert contiguous(3, INT).typemap() == [("INT", 0), ("INT", 4), ("INT", 8)]

    def test_vector_offsets(self):
        dt = vector(2, 1, 4, INT)
        assert dt.typemap() == [("INT", 0), ("INT", 16)]

    def test_struct_heterogeneous(self):
        dt = struct([1, 2], [0, 8], [INT, DOUBLE])
        assert dt.typemap() == [("INT", 0), ("DOUBLE", 8), ("DOUBLE", 16)]

    def test_nested(self):
        inner = contiguous(2, INT)
        dt = vector(2, 1, 2, inner)  # two inner elements 16 bytes apart
        assert dt.typemap() == [
            ("INT", 0), ("INT", 4), ("INT", 16), ("INT", 20)
        ]

    def test_resized_keeps_typemap(self):
        dt = resized(INT, lb=0, extent=64)
        assert dt.typemap() == [("INT", 0)]

    def test_type_signature_ignores_offsets(self):
        a = vector(4, 1, 8, INT)
        b = contiguous(4, INT)
        assert a.type_signature() == b.type_signature() == ("INT",) * 4

    def test_signature_distinguishes_primitives(self):
        a = contiguous(2, INT)
        b = contiguous(1, DOUBLE)
        assert a.size == b.size  # same bytes...
        assert a.type_signature() != b.type_signature()  # ...different types

    def test_typemap_consistent_with_size(self):
        from repro.datatypes import hindexed

        dt = hindexed([2, 1], [0, 32], INT)
        tm = dt.typemap()
        assert len(tm) * 4 == dt.size
