"""Unit tests for Resource, Store and Signal primitives."""

import pytest

from repro.simulator import Resource, Signal, SimulationError, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_immediate_grant_when_free(self, sim):
        res = Resource(sim, capacity=1)

        def proc(sim):
            grant = yield res.acquire()
            t = sim.now
            res.release(grant)
            return t

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 0.0

    def test_serializes_capacity_one(self, sim):
        res = Resource(sim, capacity=1)
        spans = []

        def proc(sim, tag):
            grant = yield res.acquire()
            start = sim.now
            yield sim.timeout(10.0)
            res.release(grant)
            spans.append((tag, start, sim.now))

        for tag in range(3):
            sim.process(proc(sim, tag))
        sim.run()
        assert spans == [(0, 0.0, 10.0), (1, 10.0, 20.0), (2, 20.0, 30.0)]

    def test_capacity_two_overlaps(self, sim):
        res = Resource(sim, capacity=2)
        done = []

        def proc(sim, tag):
            grant = yield res.acquire()
            yield sim.timeout(10.0)
            res.release(grant)
            done.append((tag, sim.now))

        for tag in range(4):
            sim.process(proc(sim, tag))
        sim.run()
        assert done == [(0, 10.0), (1, 10.0), (2, 20.0), (3, 20.0)]

    def test_fifo_granting(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def holder(sim):
            grant = yield res.acquire()
            yield sim.timeout(5.0)
            res.release(grant)

        def waiter(sim, tag, arrive):
            yield sim.timeout(arrive)
            grant = yield res.acquire()
            order.append(tag)
            res.release(grant)

        sim.process(holder(sim))
        sim.process(waiter(sim, "first", 1.0))
        sim.process(waiter(sim, "second", 2.0))
        sim.run()
        assert order == ["first", "second"]

    def test_release_unknown_grant_rejected(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release(999)

    def test_busy_time_accounting(self, sim):
        res = Resource(sim, capacity=1)

        def proc(sim):
            grant = yield res.acquire()
            yield sim.timeout(7.0)
            res.release(grant)

        sim.process(proc(sim))
        sim.run()
        assert res.busy_time == 7.0

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_queue_length(self, sim):
        res = Resource(sim, capacity=1)

        def holder(sim):
            grant = yield res.acquire()
            yield sim.timeout(10.0)
            res.release(grant)

        def waiter(sim):
            grant = yield res.acquire()
            res.release(grant)

        sim.process(holder(sim))
        sim.process(waiter(sim))
        sim.run(until=5.0)
        assert res.queue_length == 1
        sim.run()
        assert res.queue_length == 0


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("x")

        def proc(sim):
            item = yield store.get()
            return item

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter(sim):
            item = yield store.get()
            return (sim.now, item)

        def putter(sim):
            yield sim.timeout(8.0)
            store.put("late")

        g = sim.process(getter(sim))
        sim.process(putter(sim))
        sim.run()
        assert g.value == (8.0, "late")

    def test_fifo_items_and_getters(self, sim):
        store = Store(sim)
        got = []

        def getter(sim, tag):
            item = yield store.get()
            got.append((tag, item))

        sim.process(getter(sim, "g1"))
        sim.process(getter(sim, "g2"))

        def putter(sim):
            yield sim.timeout(1.0)
            store.put("a")
            store.put("b")

        sim.process(putter(sim))
        sim.run()
        assert got == [("g1", "a"), ("g2", "b")]

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1
        assert store.try_get() is None

    def test_len_and_peek_all(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peek_all() == [1, 2]
        assert len(store) == 2  # peek does not consume


class TestSignal:
    def test_wait_after_set_completes_immediately(self, sim):
        sig = Signal(sim)
        sig.set("v")

        def proc(sim):
            got = yield sig.wait()
            return (sim.now, got)

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == (0.0, "v")

    def test_set_releases_all_waiters(self, sim):
        sig = Signal(sim)
        released = []

        def waiter(sim, tag):
            yield sig.wait()
            released.append((tag, sim.now))

        for tag in range(3):
            sim.process(waiter(sim, tag))

        def setter(sim):
            yield sim.timeout(4.0)
            sig.set()

        sim.process(setter(sim))
        sim.run()
        assert released == [(0, 4.0), (1, 4.0), (2, 4.0)]

    def test_clear_blocks_again(self, sim):
        sig = Signal(sim)
        sig.set()
        sig.clear()
        assert not sig.is_set

        def proc(sim):
            yield sig.wait()
            return sim.now

        p = sim.process(proc(sim))

        def setter(sim):
            yield sim.timeout(2.0)
            sig.set()

        sim.process(setter(sim))
        sim.run()
        assert p.value == 2.0

    def test_double_set_is_noop(self, sim):
        sig = Signal(sim)
        sig.set(1)
        sig.set(2)  # ignored

        def proc(sim):
            got = yield sig.wait()
            return got

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 1


class TestStoreCancelGet:
    def test_cancel_pending_getter(self, sim):
        store = Store(sim)
        ev = store.get()
        assert store.cancel_get(ev) is True
        store.put("x")  # must not be consumed by the cancelled getter

        def proc(sim):
            got = yield store.get()
            return got

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "x"

    def test_cancel_returns_false_once_satisfied(self, sim):
        store = Store(sim)
        store.put("x")
        ev = store.get()  # satisfied immediately
        assert store.cancel_get(ev) is False

        def proc(sim):
            got = yield ev
            return got

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "x"
