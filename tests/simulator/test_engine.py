"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_initial_state(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed

    def test_succeed_carries_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        sim.run()
        assert ev.processed
        assert ev.value == 42

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_raises_on_value_access(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        sim.run()
        with pytest.raises(ValueError):
            _ = ev.value

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_delayed_succeed(self, sim):
        ev = sim.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(sim.now))
        ev.succeed(delay=7.5)
        sim.run()
        assert seen == [7.5]


class TestTimeout:
    def test_advances_clock(self, sim):
        def proc(sim):
            yield sim.timeout(10.0)
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 10.0

    def test_zero_delay_ok(self, sim):
        def proc(sim):
            yield sim.timeout(0.0)
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_timeout_value(self, sim):
        def proc(sim):
            got = yield sim.timeout(1.0, value="hello")
            return got

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "hello"


class TestOrdering:
    def test_same_time_fifo(self, sim):
        order = []

        def proc(sim, tag):
            yield sim.timeout(5.0)
            order.append(tag)

        for tag in range(5):
            sim.process(proc(sim, tag))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_earlier_event_first(self, sim):
        order = []

        def proc(sim, delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(proc(sim, 10.0, "late"))
        sim.process(proc(sim, 1.0, "early"))
        sim.run()
        assert order == ["early", "late"]

    def test_run_until(self, sim):
        ticks = []

        def ticker(sim):
            while True:
                yield sim.timeout(1.0)
                ticks.append(sim.now)

        sim.process(ticker(sim))
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert sim.now == 5.5

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0


class TestProcess:
    def test_return_value(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "done"

    def test_process_waits_on_process(self, sim):
        def child(sim):
            yield sim.timeout(4.0)
            return 99

        def parent(sim):
            got = yield sim.process(child(sim))
            return (sim.now, got)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == (4.0, 99)

    def test_waiting_on_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")

        def late(sim):
            yield sim.timeout(10.0)
            got = yield ev
            return got

        p = sim.process(late(sim))
        sim.run()
        assert p.value == "early"

    def test_yield_non_event_is_error(self, sim):
        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_unhandled_exception_aborts_run(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        sim.process(bad(sim))
        with pytest.raises(RuntimeError, match="kaput"):
            sim.run()

    def test_exception_propagates_to_waiter(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise ValueError("inner")

        def parent(sim):
            try:
                yield sim.process(bad(sim))
            except ValueError as exc:
                return f"caught {exc}"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "caught inner"

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            Process(sim, lambda: None)

    def test_is_alive(self, sim):
        def proc(sim):
            yield sim.timeout(5.0)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as irq:
                return ("interrupted", irq.cause, sim.now)

        def interrupter(sim, victim):
            yield sim.timeout(3.0)
            victim.interrupt("wakeup")

        victim = sim.process(sleeper(sim))
        sim.process(interrupter(sim, victim))
        sim.run()
        assert victim.value == ("interrupted", "wakeup", 3.0)

    def test_interrupt_finished_process_rejected(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()


class TestConditions:
    def test_all_of_values_in_order(self, sim):
        def proc(sim, delay, val):
            yield sim.timeout(delay)
            return val

        def parent(sim):
            ps = [sim.process(proc(sim, d, v)) for d, v in [(5, "a"), (1, "b")]]
            vals = yield sim.all_of(ps)
            return (sim.now, vals)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == (5.0, ["a", "b"])

    def test_all_of_empty(self, sim):
        def parent(sim):
            vals = yield sim.all_of([])
            return vals

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == []

    def test_any_of_first_wins(self, sim):
        def proc(sim, delay, val):
            yield sim.timeout(delay)
            return val

        def parent(sim):
            fast = sim.process(proc(sim, 1, "fast"))
            slow = sim.process(proc(sim, 9, "slow"))
            ev, val = yield sim.any_of([fast, slow])
            return (sim.now, val, ev is fast)

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == (1.0, "fast", True)

    def test_all_of_propagates_failure(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise ValueError("nope")

        def ok(sim):
            yield sim.timeout(2.0)

        def parent(sim):
            try:
                yield sim.all_of([sim.process(bad(sim)), sim.process(ok(sim))])
            except ValueError:
                return "failed"

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == "failed"

    def test_all_of_with_pre_triggered_event(self, sim):
        ev = sim.event()
        ev.succeed(7)

        def parent(sim):
            t = sim.timeout(2.0, value=8)
            vals = yield sim.all_of([ev, t])
            return vals

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == [7, 8]

    def test_condition_rejects_non_event(self, sim):
        with pytest.raises(TypeError):
            AllOf(sim, [42])


class TestDeterminism:
    def test_repeated_runs_identical(self):
        def make_trace():
            sim = Simulator()
            trace = []

            def worker(sim, tag, delays):
                for d in delays:
                    yield sim.timeout(d)
                    trace.append((sim.now, tag))

            sim.process(worker(sim, "a", [1, 1, 3]))
            sim.process(worker(sim, "b", [2, 1, 2]))
            sim.process(worker(sim, "c", [1, 2, 2]))
            sim.run()
            return trace

        assert make_trace() == make_trace()


class TestCancel:
    def test_cancelled_timeout_does_not_advance_clock(self, sim):
        def proc(sim):
            t = sim.timeout(1000.0)
            yield sim.timeout(5.0)
            t.cancel()
            return sim.now

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 5.0
        assert sim.now == 5.0  # the dead timer never dragged the clock

    def test_losing_any_of_arm_cancellable(self, sim):
        def proc(sim):
            fast = sim.timeout(3.0, "fast")
            slow = sim.timeout(500.0, "slow")
            ev, value = yield sim.any_of([fast, slow])
            slow.cancel()
            return value

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == "fast"
        assert sim.now == 3.0

    def test_cancel_is_idempotent(self, sim):
        t = sim.timeout(10.0)
        t.cancel()
        t.cancel()
        sim.run()
        assert sim.now == 0.0

    def test_cancel_processed_event_rejected(self, sim):
        t = sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            t.cancel()

    def test_peek_skips_cancelled(self, sim):
        first = sim.timeout(1.0)
        sim.timeout(2.0)
        first.cancel()
        assert sim.peek() == 2.0

    def test_run_until_ignores_cancelled_head(self, sim):
        sim.timeout(50.0).cancel()
        sim.timeout(100.0)
        sim.run(until=75.0)
        assert sim.now == 75.0


class TestStepHygiene:
    """The dispatch cursor must not leak across driver-code boundaries."""

    def test_current_event_cleared_after_run(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)

        sim.process(proc(sim))
        sim.run()
        # events scheduled from driver code after a run are causal roots;
        # a stale cursor here is what falsely chained back-to-back
        # profiled transfers (see test_profile.py)
        assert sim._current_event is None

    def test_root_event_between_runs_has_no_cause(self, sim):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.profile import Profiler

        sim.profiler = Profiler(MetricsRegistry())

        def proc(sim):
            yield sim.timeout(1.0)

        sim.process(proc(sim))
        sim.run()
        p2 = sim.process(proc(sim))  # scheduled from driver code
        root = p2
        # the kick-off event of the new process must be a causal root,
        # not a child of the previous run's last dispatched event
        sim.run()
        walk = root
        seen = 0
        while walk is not None and seen < 100:
            walk = walk._cause
            seen += 1
        assert seen < 100  # chain terminates (no cross-run cycle/link)

    def test_events_processed_counts_dispatches(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            yield sim.timeout(1.0)

        sim.process(proc(sim))
        sim.run()
        assert sim.events_processed > 0

    def test_cancelled_events_not_counted(self, sim):
        before_events = sim.events_processed
        sim.timeout(5.0).cancel()
        sim.run()
        assert sim.events_processed == before_events
