"""Unit tests for the tracer's interval arithmetic and span hierarchy."""

import pytest

from repro.simulator import Tracer


def make_tracer(records):
    tr = Tracer(enabled=True)
    for rec in records:
        tr.record(*rec)
    return tr


class TestTracer:
    def test_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.record(0, 1, 0, "cpu")
        assert tr.records == []

    def test_total_time(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (3, 9, 0, "cpu"), (0, 2, 0, "wire")])
        assert tr.total_time("cpu") == 11.0
        assert tr.total_time("wire") == 2.0

    def test_total_time_filters_node(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (0, 3, 1, "cpu")])
        assert tr.total_time("cpu", node=0) == 5.0
        assert tr.total_time("cpu", node=1) == 3.0

    def test_busy_time_merges_overlaps(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (3, 9, 0, "cpu"), (20, 21, 0, "cpu")])
        assert tr.busy_time("cpu") == 10.0

    def test_busy_time_touching_intervals(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (5, 8, 0, "cpu")])
        assert tr.busy_time("cpu") == 8.0

    def test_busy_time_empty(self):
        tr = Tracer(enabled=True)
        assert tr.busy_time("cpu") == 0.0

    def test_overlap_time(self):
        tr = make_tracer(
            [
                (0, 10, 0, "pack"),
                (5, 15, 0, "wire"),
                (20, 30, 0, "pack"),
                (25, 26, 0, "wire"),
            ]
        )
        assert tr.overlap_time("pack", "wire") == 6.0

    def test_overlap_time_disjoint(self):
        tr = make_tracer([(0, 5, 0, "pack"), (5, 10, 0, "wire")])
        assert tr.overlap_time("pack", "wire") == 0.0

    def test_clear(self):
        tr = make_tracer([(0, 5, 0, "cpu")])
        tr.clear()
        assert tr.records == []

    def test_record_fields(self):
        tr = make_tracer([(1.0, 2.0, 3, "reg", "mr0", {"pages": 4})])
        rec = tr.records[0]
        assert rec.duration == 1.0
        assert rec.node == 3
        assert rec.detail == "mr0"
        assert rec.meta == {"pages": 4}

    def test_summary(self):
        tr = make_tracer([(0, 5, 0, "cpu"), (3, 9, 0, "cpu"), (0, 2, 1, "wire")])
        s = tr.summary()
        assert s["cpu"]["total"] == 11.0
        assert s["cpu"]["busy"] == 9.0
        assert s["cpu"]["count"] == 2
        assert s["wire"]["count"] == 1
        s0 = tr.summary(node=0)
        assert "wire" not in s0

    def test_to_csv(self, tmp_path):
        import csv
        from dataclasses import fields

        from repro.simulator.trace import TraceRecord

        tr = make_tracer(
            [(0.0, 5.0, 0, "cpu", "pack"), (5.0, 6.0, 0, "reg", "mr0", "m")]
        )
        path = str(tmp_path / "t" / "trace.csv")
        tr.to_csv(path)
        rows = list(csv.reader(open(path)))
        # the header matches the TraceRecord fields exactly, in order
        assert rows[0] == [f.name for f in fields(TraceRecord)]
        assert rows[0] == [
            "start", "end", "node", "category", "detail", "meta",
            "span_id", "parent_id",
        ]
        # meta is "" when None, and the span ids round-trip
        assert rows[1] == ["0.0", "5.0", "0", "cpu", "pack", "", "1", "0"]
        assert rows[2] == ["5.0", "6.0", "0", "reg", "mr0", "m", "2", "0"]

    # -- edge cases for the interval arithmetic -------------------------

    def test_busy_time_zero_length_interval(self):
        tr = make_tracer([(5, 5, 0, "cpu")])
        assert tr.busy_time("cpu") == 0.0
        assert tr.total_time("cpu") == 0.0

    def test_busy_time_zero_length_inside_interval(self):
        tr = make_tracer([(0, 10, 0, "cpu"), (4, 4, 0, "cpu")])
        assert tr.busy_time("cpu") == 10.0

    def test_overlap_time_zero_length_intervals(self):
        # a zero-length interval intersects nothing, even when it sits
        # inside the other category's interval
        tr = make_tracer([(3, 3, 0, "pack"), (0, 10, 0, "wire")])
        assert tr.overlap_time("pack", "wire") == 0.0

    def test_overlap_time_exactly_touching(self):
        # [0,5) and [5,10) share only the boundary point: no overlap
        tr = make_tracer([(0, 5, 0, "pack"), (5, 10, 0, "wire")])
        assert tr.overlap_time("pack", "wire") == 0.0
        assert tr.overlap_time("wire", "pack") == 0.0

    def test_overlap_time_single_record_categories(self):
        tr = make_tracer([(0, 10, 0, "pack"), (4, 6, 0, "wire")])
        assert tr.overlap_time("pack", "wire") == 2.0
        assert tr.overlap_time("wire", "pack") == 2.0

    def test_overlap_time_identical_intervals(self):
        tr = make_tracer([(2, 8, 0, "pack"), (2, 8, 0, "wire")])
        assert tr.overlap_time("pack", "wire") == 6.0

    def test_busy_time_single_record(self):
        tr = make_tracer([(1, 4, 0, "cpu")])
        assert tr.busy_time("cpu") == 3.0


class TestSpans:
    def test_record_is_root_span(self):
        tr = make_tracer([(0, 1, 0, "cpu")])
        rec = tr.records[0]
        assert rec.span_id == 1
        assert rec.parent_id == 0
        assert tr.roots() == [rec]

    def test_begin_finish_parents_nested_records(self):
        tr = Tracer(enabled=True)
        span = tr.begin(0.0, 0, "scheme:bc-spup", "send")
        tr.record(1.0, 2.0, 0, "pack")
        tr.record(2.0, 3.0, 0, "wire")
        span.finish(4.0)
        pack, wire, scheme = tr.records
        assert scheme.category == "scheme:bc-spup"
        assert scheme.start == 0.0 and scheme.end == 4.0
        assert pack.parent_id == scheme.span_id
        assert wire.parent_id == scheme.span_id
        assert tr.children(scheme.span_id) == [pack, wire]

    def test_spans_nest(self):
        tr = Tracer(enabled=True)
        outer = tr.begin(0.0, 0, "outer")
        inner = tr.begin(1.0, 0, "inner")
        tr.record(1.0, 2.0, 0, "cpu")
        inner.finish(2.0)
        outer.finish(3.0)
        cpu, inner_rec, outer_rec = tr.records
        assert cpu.parent_id == inner_rec.span_id
        assert inner_rec.parent_id == outer_rec.span_id
        assert outer_rec.parent_id == 0

    def test_spans_per_node_independent(self):
        tr = Tracer(enabled=True)
        s0 = tr.begin(0.0, 0, "op")
        tr.record(0.0, 1.0, 1, "cpu")  # other node: not nested
        s0.finish(1.0)
        cpu = tr.records[0]
        assert cpu.parent_id == 0

    def test_finish_twice_raises(self):
        tr = Tracer(enabled=True)
        span = tr.begin(0.0, 0, "op")
        span.finish(1.0)
        with pytest.raises(ValueError):
            span.finish(2.0)

    def test_disabled_tracer_spans_are_inert(self):
        tr = Tracer(enabled=False)
        span = tr.begin(0.0, 0, "op")
        assert span.span_id == 0
        assert span.finish(1.0) is None
        assert tr.records == []

    def test_clear_resets_open_spans(self):
        tr = Tracer(enabled=True)
        tr.begin(0.0, 0, "op")
        tr.clear()
        assert tr.current_span(0) == 0
